"""Shared configuration for the benchmark harness.

Each benchmark runs one paper experiment (at a scale that keeps the
whole suite in minutes), records its headline numbers in
``benchmark.extra_info``, and prints the formatted table/series —
run ``pytest benchmarks/ --benchmark-only -s`` to see them.

Experiments resolve through the declarative registry
(:mod:`repro.experiments.registry`), so the benchmarks exercise the
exact definition of "run Figure 5b" that the CLI and the parallel
trial runner use.
"""

import importlib.util

import pytest

from repro.experiments import registry
from repro.population.synthesis import PopulationSpec

# Plain `pytest benchmarks/` without the pytest-benchmark plugin would
# otherwise collect every bench_*.py (pyproject's python_files) and
# fail on the missing `benchmark` fixture; skip collection instead.
if importlib.util.find_spec("pytest_benchmark") is None:
    collect_ignore_glob = ["bench_*.py"]

SMALL_ANCHORS = ((0, 0.0), (10, 0.106), (100, 0.5049), (1000, 1.0))


@pytest.fixture(scope="session")
def bench_spec():
    """A reduced population preserving the paper's clustering shape."""
    return PopulationSpec(
        total_hosts=30_000,
        num_slash8=20,
        num_slash16=1_000,
        anchors=SMALL_ANCHORS,
        major_slash8s=10,
        major_share=0.94,
    )


def run_once(benchmark, func, **kwargs):
    """Run an experiment exactly once under the benchmark clock."""
    return benchmark.pedantic(func, kwargs=kwargs, rounds=1, iterations=1)


def run_registered(benchmark, experiment_id, **kwargs):
    """Run one registered experiment once under the benchmark clock.

    Returns ``(result, formatter)`` so the caller can print the
    experiment's own rendering.
    """
    run, formatter = registry.get(experiment_id).resolve()
    result = benchmark.pedantic(run, kwargs=kwargs, rounds=1, iterations=1)
    return result, formatter
