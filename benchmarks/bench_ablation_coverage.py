"""Ablation: coverage efficiency across scanning strategies.

Measures, per strategy, how fast a small scanner population covers a
/16 region and how much of the probe budget it wastes re-probing —
the coverage-side view of the same algorithmic choices that create
hotspots (uniform ≈ coupon collector; permutation ≈ duplicate-free;
local preference from outside the region ≈ blind).
"""

import numpy as np
import pytest

from repro.analysis.coverage import (
    scan_coverage_curve,
    uniform_coverage_expectation,
)
from repro.net.cidr import BlockSet, CIDRBlock
from repro.worms.hitlist import HitListWorm
from repro.worms.permutation import PermutationScanWorm

REGION = CIDRBlock.parse("60.0.0.0/16")


def test_uniform_coverage(benchmark):
    rng = np.random.default_rng(0)

    def run():
        return scan_coverage_curve(
            HitListWorm(BlockSet([REGION])),
            REGION.random_addresses(10, rng),
            REGION,
            steps=20,
            probes_per_step=2_000,
            rng=np.random.default_rng(1),
        )

    curve = benchmark.pedantic(run, rounds=1, iterations=1)
    expected = uniform_coverage_expectation(curve.probes, REGION.size)
    print(
        f"\nuniform: coverage={curve.final_coverage():.3f} "
        f"(analytic {expected[-1]:.3f}), "
        f"duplicates={curve.final_duplicate_rate():.3f}"
    )
    benchmark.extra_info["coverage"] = round(curve.final_coverage(), 3)
    benchmark.extra_info["duplicates"] = round(curve.final_duplicate_rate(), 3)
    assert curve.final_coverage() == pytest.approx(expected[-1], abs=0.03)


def test_permutation_coverage(benchmark):
    rng = np.random.default_rng(2)

    def run():
        return scan_coverage_curve(
            PermutationScanWorm(),
            REGION.random_addresses(10, rng),
            REGION,
            steps=10,
            probes_per_step=20_000,
            rng=np.random.default_rng(3),
        )

    curve = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\npermutation: coverage={curve.final_coverage():.4f} "
        f"duplicates={curve.final_duplicate_rate():.5f}"
    )
    benchmark.extra_info["duplicates"] = round(curve.final_duplicate_rate(), 5)
    # Permutation scanning wastes essentially nothing.
    assert curve.final_duplicate_rate() < 0.001
