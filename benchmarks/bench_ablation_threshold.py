"""Ablation: sensor alert threshold vs sensor placement.

The paper fixes the alert threshold at 5 payloads.  This bench sweeps
the threshold and shows that, against a hotspot worm, no threshold
rescues badly placed sensors: sensors outside the hotspot see zero
payloads, so even threshold 1 cannot make them alert, while sensors
inside the hotspot alert quickly at any threshold.  Placement — not
sensitivity — is the binding constraint, which is the paper's point.
"""

import numpy as np
import pytest

from repro.net.cidr import BlockSet
from repro.population.model import HostPopulation
from repro.sensors.deployment import SensorGrid, place_random
from repro.sim.engine import EpidemicSimulator, SimulationConfig
from repro.worms.hitlist import HitListCodeRedIIWorm

HITLIST = BlockSet.parse(["88.10.0.0/16", "99.20.0.0/16"])


def outbreak(threshold: int, seed: int = 11):
    rng = np.random.default_rng(seed)
    hosts = np.unique(HITLIST.random_addresses(2_000, rng))
    population = HostPopulation(hosts)
    worm = HitListCodeRedIIWorm(HITLIST)
    inside_grid = SensorGrid(
        place_random(200, rng, within=HITLIST), alert_threshold=threshold
    )
    outside_grid = SensorGrid(
        place_random(2_000, rng), alert_threshold=threshold
    )
    simulator = EpidemicSimulator(
        worm, population, sensor_grids=[inside_grid, outside_grid]
    )
    config = SimulationConfig(
        scan_rate=10.0, max_time=400.0, seed_count=5, stop_at_fraction=0.9
    )
    simulator.run(config, rng)
    return inside_grid.fraction_alerted(), outside_grid.fraction_alerted()


@pytest.mark.parametrize("threshold", [1, 5, 20])
def test_threshold_ablation(benchmark, threshold):
    inside, outside = benchmark.pedantic(
        outbreak, kwargs={"threshold": threshold}, rounds=1, iterations=1
    )
    print(
        f"\nthreshold={threshold}: inside-hotspot alerted={inside:.1%}, "
        f"outside alerted={outside:.1%}"
    )
    benchmark.extra_info["inside_alerted"] = round(inside, 3)
    benchmark.extra_info["outside_alerted"] = round(outside, 3)
    # Placement dominates: sensors inside the hotspot alert regardless
    # of threshold; sensors outside it stay silent regardless.
    assert inside > 0.8
    assert outside < 0.02
