"""Benchmark: Figure 5 — hit-list outbreaks, NATs, and detection.

Three benches mirror the paper's three panels.  They run at a scaled
population (30,000 hosts in 1,000 /16s, same clustering anchors) so
the whole suite completes in minutes; the experiments accept the
full-scale :class:`~repro.population.synthesis.PopulationSpec` for
paper-scale runs.  Runners resolve through the experiment registry —
the same definition the CLI and trial runner dispatch.
"""

from conftest import run_registered

SMALL_HITLISTS = (10, 100, 1000)


def test_figure5a_infection(benchmark, bench_spec):
    result, formatter = run_registered(
        benchmark,
        "figure5a",
        population_spec=bench_spec,
        hitlist_sizes=SMALL_HITLISTS,
        max_time=1_200.0,
        seed=2005,
    )
    print()
    print(formatter(result))
    for run in result.runs:
        benchmark.extra_info[f"final_{run.num_prefixes}"] = round(
            run.result.final_fraction_infected, 3
        )
    # Paper shape: the smallest hit-list saturates its reachable hosts
    # fastest; larger lists reach a larger fraction of the population.
    assert result.small_list_fastest
    finals = [run.result.final_fraction_infected for run in result.runs]
    assert finals[-1] > finals[0]


def test_figure5b_detection(benchmark, bench_spec):
    result, formatter = run_registered(
        benchmark,
        "figure5b",
        population_spec=bench_spec,
        hitlist_sizes=SMALL_HITLISTS,
        max_time=1_200.0,
        seed=2005,
    )
    print()
    print(formatter(result))
    for run in result.runs:
        benchmark.extra_info[f"alerted_{run.num_prefixes}"] = round(
            run.alert_timeline.final_fraction(), 3
        )
    # Paper shape: sensors outside the hit-list never alert, so the
    # alert fraction tracks the hit-list share and quorum detection
    # starves ("a quorum-based alerting approach would likely never
    # alert").
    assert result.detection_starved
    small_run = result.runs[0]
    assert small_run.alert_timeline.final_fraction() < 0.05


def test_figure5c_nat_placement(benchmark, bench_spec):
    result, formatter = run_registered(
        benchmark,
        "figure5c",
        population_spec=bench_spec,
        num_random_sensors=3_000,
        max_time=1_000.0,
        stop_at_fraction=0.4,
        seed=2006,
    )
    print()
    print(formatter(result))
    for run in result.placements:
        benchmark.extra_info[run.name] = round(
            run.alerted_at_20pct_infected, 3
        )
    # Paper shape: random placement is starved; population-aware
    # placement helps; "every single sensor [in 192/8] generated an
    # alert before the worm has infected 20% of the vulnerable
    # population".
    assert result.targeted_placement_wins
    assert (
        result.placement("random").alerted_at_20pct_infected
        <= result.placement("top-20 /8s").alerted_at_20pct_infected + 0.05
    )
