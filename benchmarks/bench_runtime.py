"""Benchmark: the parallel trial runner vs the serial loop.

The acceptance check for ``repro.runtime``: a ``figure5b`` campaign
with ``--trials 4 --workers 4`` must produce results identical to the
serial campaign and finish in measurably less wall-clock time than
the 4 serial trials.  The benchmark clock times the parallel
campaign; the serial campaign is timed alongside and reported in
``extra_info`` together with the speedup.

Wall-clock speedup needs real parallelism, so the bench skips on
single-core machines; bitwise serial/parallel identity is asserted
unconditionally in ``tests/runtime/``.
"""

import os
import time

import pytest

from repro.experiments import registry
from repro.runtime import results_equal

TRIALS = 4
WORKERS = 4


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="speedup needs at least 2 cores; determinism is covered "
    "in tests/runtime/",
)
def test_figure5b_parallel_campaign_speedup(benchmark, bench_spec):
    experiment = registry.get("figure5b")
    params = dict(
        population_spec=bench_spec,
        hitlist_sizes=(10, 100),
        max_time=600.0,
        seed=2005,
    )

    serial_start = time.perf_counter()
    serial = experiment.run(trials=TRIALS, workers=1, **params)
    serial_seconds = time.perf_counter() - serial_start

    parallel = benchmark.pedantic(
        experiment.run,
        kwargs=dict(trials=TRIALS, workers=WORKERS, **params),
        rounds=1,
        iterations=1,
    )
    parallel_seconds = benchmark.stats.stats.total

    # Identical results, measurably faster.
    assert results_equal(serial.results, parallel.results)
    assert parallel_seconds < serial_seconds

    speedup = serial_seconds / parallel_seconds
    benchmark.extra_info["trials"] = TRIALS
    benchmark.extra_info["workers"] = WORKERS
    benchmark.extra_info["serial_seconds"] = round(serial_seconds, 2)
    benchmark.extra_info["parallel_seconds"] = round(parallel_seconds, 2)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    print()
    print(
        f"figure5b x{TRIALS} trials: serial {serial_seconds:.1f}s, "
        f"{WORKERS} workers {parallel_seconds:.1f}s "
        f"(speedup {speedup:.2f}x)"
    )
