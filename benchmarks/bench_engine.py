"""Engine benchmarks: the fused tick pipeline vs the reference path.

Where :mod:`bench_kernels` measures individual probe-path kernels,
this suite measures the *whole tick loop* — the fused pipeline
(:class:`~repro.sim.arena.TickArena` buffers, the uniform-rate fast
path, and the merged verdict partition) against the reference path
under ``kernel_override(False)``.  Three sections:

``fused``
    End-to-end outbreak with an integral per-tick budget, so the
    uniform-rate fast path is live.  Also records per-stage seconds
    (generate/filter/dispatch/infect) from one instrumented run.
``fused_general``
    The same outbreak at a fractional scan rate, which disqualifies
    the uniform fast path and exercises the general arena path
    (accumulator + active-mask + survivor gather).
``allocations``
    tracemalloc peaks for fused vs reference runs, plus the arena's
    own allocation accounting — steady-state ticks must not grow the
    arena (O(1) amortized array allocations per tick).

Every section carries an ``equivalent`` flag: the fused result must
be bitwise-equal (:func:`repro.runtime.compare.results_equal`) to the
reference result.  A perf number without that gate is meaningless —
the pipeline's contract is "faster and identical".

Run directly for the tracked baseline (``BENCH_engine.json``)::

    PYTHONPATH=src python benchmarks/bench_engine.py --quick
    PYTHONPATH=src python benchmarks/bench_engine.py --output BENCH_engine.json

or through pytest-benchmark::

    PYTHONPATH=src:benchmarks python -m pytest benchmarks/bench_engine.py
"""

from __future__ import annotations

import argparse
import json
import sys
import tracemalloc

import numpy as np

from bench_kernels import (
    FULL_SIZES,
    QUICK_SIZES,
    _best_of,
    _end_to_end_config,
    build_outbreak_simulator,
)

from repro.net.kernels import kernel_override
from repro.runtime.compare import results_equal
from repro.runtime.perf import perf_collection
from repro.runtime.runner import Trial, TrialRunner
from repro.sim.engine import SimulationConfig, run_simulation_trial


def _fractional_config(num_hosts: int, num_ticks: int) -> SimulationConfig:
    """Like ``_end_to_end_config`` but with a non-integral per-tick
    budget (2.5 probes/host/tick), which keeps the accumulator live
    and forces the general arena path."""
    base = _end_to_end_config(num_hosts, num_ticks)
    return SimulationConfig(
        scan_rate=2.5,
        max_time=base.max_time,
        seed_count=base.seed_count,
        stop_at_fraction=base.stop_at_fraction,
    )


def _run_fused(num_hosts: int, config: SimulationConfig, seed: int):
    """One fused run, dispatched through ``TrialRunner`` — the same
    unit the experiment registry executes per trial."""
    runner = TrialRunner(workers=1)
    [result] = runner.run(
        [
            Trial(
                func=run_simulation_trial,
                kwargs={
                    "simulator": build_outbreak_simulator(num_hosts, seed),
                    "config": config,
                    "seed": seed,
                },
            )
        ]
    )
    return result


def _run_reference(num_hosts: int, config: SimulationConfig, seed: int):
    with kernel_override(False):
        return run_simulation_trial(
            build_outbreak_simulator(num_hosts, seed), config, seed
        )


def bench_fused(
    num_hosts: int, num_ticks: int, seed: int = 2006, repeats: int = 2
) -> dict:
    """Fused pipeline (uniform fast path live) vs reference."""
    config = _end_to_end_config(num_hosts, num_ticks)

    fused_result = _run_fused(num_hosts, config, seed)
    reference_result = _run_reference(num_hosts, config, seed)
    equivalent = results_equal(reference_result, fused_result)

    fused_s = _best_of(repeats, lambda: _run_fused(num_hosts, config, seed))
    reference_s = _best_of(
        repeats, lambda: _run_reference(num_hosts, config, seed)
    )

    # One instrumented run for the stage breakdown; timing overhead is
    # why the headline numbers come from the uninstrumented runs above.
    with perf_collection() as timings:
        _run_fused(num_hosts, config, seed)

    ticks = len(fused_result.times)
    return {
        "num_hosts": num_hosts,
        "num_ticks": ticks,
        "total_probes": int(fused_result.total_probes),
        "reference_s": reference_s,
        "fused_s": fused_s,
        "reference_ticks_per_s": ticks / reference_s,
        "fused_ticks_per_s": ticks / fused_s,
        "fused_probes_per_s": fused_result.total_probes / fused_s,
        "speedup": reference_s / fused_s,
        "stage_seconds": {
            stage: round(seconds, 4)
            for stage, seconds in sorted(timings.seconds.items())
        },
        "equivalent": bool(equivalent),
    }


def bench_fused_general(
    num_hosts: int, num_ticks: int, seed: int = 2006, repeats: int = 2
) -> dict:
    """General arena path (fractional rate) vs reference."""
    config = _fractional_config(num_hosts, num_ticks)

    fused_result = _run_fused(num_hosts, config, seed)
    reference_result = _run_reference(num_hosts, config, seed)
    equivalent = results_equal(reference_result, fused_result)

    fused_s = _best_of(repeats, lambda: _run_fused(num_hosts, config, seed))
    reference_s = _best_of(
        repeats, lambda: _run_reference(num_hosts, config, seed)
    )

    ticks = len(fused_result.times)
    return {
        "num_hosts": num_hosts,
        "num_ticks": ticks,
        "scan_rate": config.scan_rate,
        "total_probes": int(fused_result.total_probes),
        "reference_s": reference_s,
        "fused_s": fused_s,
        "reference_ticks_per_s": ticks / reference_s,
        "fused_ticks_per_s": ticks / fused_s,
        "speedup": reference_s / fused_s,
        "equivalent": bool(equivalent),
    }


def bench_allocations(num_hosts: int, num_ticks: int, seed: int = 2006) -> dict:
    """Allocation behaviour: tracemalloc peaks + arena accounting.

    The arena's ``allocations`` counter increments once per buffer
    growth; steady-state ticks reuse buffers, so the counter must
    converge well below one-per-tick.  tracemalloc runs make both
    paths slower by a similar factor — the peaks are comparable, the
    wall-clock is not (hence no timing here).
    """
    config = _end_to_end_config(num_hosts, num_ticks)

    simulator = build_outbreak_simulator(num_hosts, seed)
    tracemalloc.start()
    fused_result = simulator.run(config, np.random.default_rng(seed))
    _, fused_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    arena = simulator.last_arena
    arena_allocations = arena.allocations if arena is not None else -1

    tracemalloc.start()
    with kernel_override(False):
        reference_result = run_simulation_trial(
            build_outbreak_simulator(num_hosts, seed), config, seed
        )
    _, reference_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    ticks = len(fused_result.times)
    return {
        "num_hosts": num_hosts,
        "num_ticks": ticks,
        "fused_peak_mib": round(fused_peak / 2**20, 2),
        "reference_peak_mib": round(reference_peak / 2**20, 2),
        "arena_allocations": int(arena_allocations),
        "arena_allocations_per_tick": round(arena_allocations / max(ticks, 1), 3),
        "equivalent": bool(results_equal(reference_result, fused_result)),
    }


# -- suite driver ----------------------------------------------------


def run_suite(quick: bool, seed: int = 2006) -> dict:
    """Every engine benchmark at the chosen scale, as one report."""
    sizes = QUICK_SIZES if quick else FULL_SIZES
    hosts = sizes["end_to_end_hosts"]
    ticks = sizes["end_to_end_ticks"]
    report = {
        "suite": "engine",
        "mode": "quick" if quick else "full",
        "sizes": {"end_to_end_hosts": hosts, "end_to_end_ticks": ticks},
        "fused": bench_fused(hosts, ticks, seed),
        "fused_general": bench_fused_general(hosts, ticks, seed),
        "allocations": bench_allocations(hosts, ticks, seed),
    }
    report["equivalent"] = all(
        report[section]["equivalent"]
        for section in ("fused", "fused_general", "allocations")
    )
    return report


def format_report(report: dict) -> str:
    """Human-oriented rendering of :func:`run_suite` output."""
    fused = report["fused"]
    general = report["fused_general"]
    alloc = report["allocations"]
    stages = fused["stage_seconds"]
    stage_text = " ".join(
        f"{stage}={stages[stage]:.2f}s"
        for stage in ("generate", "filter", "dispatch", "infect")
        if stage in stages
    )
    lines = [
        f"engine benchmarks ({report['mode']} mode)",
        (
            f"  fused:    {fused['fused_ticks_per_s']:.2f} ticks/s"
            f" vs {fused['reference_ticks_per_s']:.2f} reference"
            f" ({fused['speedup']:.2f}x, {fused['total_probes']:,} probes)"
        ),
        f"            stages: {stage_text}",
        (
            f"  general:  {general['fused_ticks_per_s']:.2f} ticks/s"
            f" vs {general['reference_ticks_per_s']:.2f} reference"
            f" ({general['speedup']:.2f}x, rate {general['scan_rate']})"
        ),
        (
            f"  memory:   fused peak {alloc['fused_peak_mib']:.1f} MiB"
            f" vs reference {alloc['reference_peak_mib']:.1f} MiB;"
            f" {alloc['arena_allocations']} arena allocations over"
            f" {alloc['num_ticks']} ticks"
            f" ({alloc['arena_allocations_per_tick']:.2f}/tick)"
        ),
        f"  equivalence: {'ok' if report['equivalent'] else 'FAILED'}",
    ]
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-smoke sizes (seconds, not minutes)",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="write the JSON report to this path",
    )
    parser.add_argument("--seed", type=int, default=2006)
    args = parser.parse_args(argv)

    report = run_suite(quick=args.quick, seed=args.seed)
    print(format_report(report))
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.output}")
    if not report["equivalent"]:
        print("fused/reference equivalence FAILED", file=sys.stderr)
        return 2
    return 0


# -- pytest-benchmark wrappers ---------------------------------------


def test_fused_end_to_end(benchmark):
    sizes = QUICK_SIZES
    result = benchmark.pedantic(
        lambda: bench_fused(
            sizes["end_to_end_hosts"], sizes["end_to_end_ticks"]
        ),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["speedup"] = result["speedup"]
    assert result["equivalent"]


def test_fused_general_path(benchmark):
    sizes = QUICK_SIZES
    result = benchmark.pedantic(
        lambda: bench_fused_general(
            sizes["end_to_end_hosts"], sizes["end_to_end_ticks"]
        ),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["speedup"] = result["speedup"]
    assert result["equivalent"]


if __name__ == "__main__":
    raise SystemExit(main())
