"""Ablation: how each scanning strategy shapes hotspots.

DESIGN.md calls out the worm target-generation strategy as the core
algorithmic design choice; this bench sweeps every implemented
strategy on the same source host and scores the resulting per-/8
distribution, alongside raw generation throughput.

Expected ordering: uniform and permutation scanning are flat; local
preference, Slammer's cycles, Blaster's sweep, and hit-lists are
progressively more concentrated.
"""

import numpy as np
import pytest

from repro.analysis.hotspots import hotspot_report
from repro.net.address import parse_addr
from repro.net.cidr import BlockSet
from repro.worms import (
    BlasterWorm,
    CodeRedIIWorm,
    HitListWorm,
    LocalPreferenceWorm,
    PermutationScanWorm,
    SlammerWorm,
    UniformScanWorm,
)

SCANS = 200_000
SOURCE = parse_addr("141.212.55.99")

STRATEGIES = {
    "uniform": UniformScanWorm,
    "permutation": PermutationScanWorm,
    "localpref-weak": lambda: LocalPreferenceWorm(0.25, 0.0),
    "codered2": CodeRedIIWorm,
    "slammer": SlammerWorm,
    "blaster": BlasterWorm,
    "hitlist": lambda: HitListWorm(BlockSet.parse(["128.32.0.0/16"])),
}


@pytest.mark.parametrize("strategy", sorted(STRATEGIES))
def test_scanning_strategy_hotspots(benchmark, strategy):
    worm = STRATEGIES[strategy]()

    def generate():
        return worm.single_host_targets(
            SOURCE, SCANS, np.random.default_rng(7)
        )

    targets = benchmark(generate)
    report = hotspot_report(np.bincount(targets >> 24, minlength=256))
    print(
        f"\n{strategy:<16} gini={report.gini:.3f} "
        f"entropy={report.normalized_entropy:.3f} "
        f"peak/mean={report.peak_to_mean:.1f}"
    )
    benchmark.extra_info["gini"] = round(report.gini, 3)
    benchmark.extra_info["peak_to_mean"] = round(report.peak_to_mean, 1)

    if strategy in ("uniform", "permutation"):
        assert report.gini < 0.05
    elif strategy == "localpref-weak":
        # A 25% same-/8 bias concentrates a quarter of the probes in
        # one /8 — visible but milder than the real worms.
        assert 0.1 < report.gini < 0.5
    else:
        assert report.gini > 0.3
