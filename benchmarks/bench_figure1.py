"""Benchmark: Figure 1 — Blaster hotspots and boot-time inversion."""

from conftest import run_once

from repro.experiments import figure1


def test_figure1(benchmark):
    result = run_once(benchmark, figure1.run, num_hosts=500_000, seed=2003)
    print()
    print(figure1.format_result(result))
    counts = result.unique_sources
    benchmark.extra_info["max_per_slash24"] = int(counts.max())
    benchmark.extra_info["gini"] = round(result.hotspots.gini, 3)
    benchmark.extra_info["spike_minutes"] = [
        round(m, 1) for m in result.spike_boot_minutes
    ]
    # Paper shape: visible hotspots; spikes invert to minutes-scale
    # worm-start times ("centered around 4-5 minutes").
    assert not result.hotspots.is_uniform
    assert result.spikes_have_plausible_start_times
