"""Benchmark: Figure 2 — aggregate Slammer bias across blocks."""

from conftest import run_once

from repro.experiments import figure2


def test_figure2(benchmark):
    result = run_once(
        benchmark, figure2.run, num_hosts=30_000, probes_per_host=4_000_000
    )
    print()
    print(figure2.format_result(result))
    for name in ("D", "H", "I"):
        benchmark.extra_info[f"{name}_per_slash24"] = round(
            result.observed_per_slash24_mean(name), 1
        )
    # Paper shape: M filtered to zero; H clearly below D and I; the
    # cycle-theory prediction matches the simulation.
    assert result.m_block_observed == 0
    assert result.h_deficit_reproduced
    for name in ("D", "H", "I"):
        observed = result.observed_total(name)
        predicted = float(result.predicted_by_slash24[name].sum())
        assert abs(observed - predicted) < 0.15 * max(predicted, 1.0)
