"""Benchmark: Table 2 — enterprise egress filtering vs broadband."""

from conftest import run_once

from repro.experiments import table2


def test_table2(benchmark):
    result = run_once(
        benchmark, table2.run, probes_per_host=1_500, blaster_reach=50_000_000
    )
    print()
    print(table2.format_result(result))
    for row in result.filtered.rows:
        benchmark.extra_info[row.name] = sum(row.observed.values())
    # Paper shape: "almost no external indication of infections" from
    # enterprises; "10's of thousands of infections from the broadband
    # providers"; the counterfactual pins it on egress filtering.
    assert result.enterprises_hidden
    assert result.broadband_leaks
    assert result.filtering_is_the_cause
