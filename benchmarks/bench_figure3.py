"""Benchmark: Figure 3 — per-host Slammer bias and cycle spectrum."""

from conftest import run_once

from repro.experiments import figure3


def test_figure3(benchmark):
    result = run_once(benchmark, figure3.run, probes_per_host=20_000_000)
    print()
    print(figure3.format_result(result))
    benchmark.extra_info["host_a_I"] = result.host_a.total("I")
    benchmark.extra_info["host_a_D"] = result.host_a.total("D")
    benchmark.extra_info["num_cycles"] = len(result.cycle_lengths)
    # Paper shape: Host A hits I but not D; 64 cycles spanning from
    # period 1 to 2^30.
    assert result.host_a_block_bias
    assert len(result.cycle_lengths) == 64
    assert result.spectrum_spans_orders_of_magnitude
