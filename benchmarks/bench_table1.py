"""Benchmark: Table 1 — captured botnet scan commands."""

from conftest import run_registered


def test_table1(benchmark):
    result, formatter = run_registered(benchmark, "table1", seed=2004)
    print()
    print(formatter(result))
    benchmark.extra_info["commands"] = len(result.rows)
    benchmark.extra_info["restricted_fraction"] = round(
        result.restricted_fraction, 3
    )
    # Paper shape: commands exist and overwhelmingly carry hit-lists.
    assert len(result.rows) >= 11
    assert result.restricted_fraction > 0.6
