"""Benchmark: Table 1 — captured botnet scan commands."""

from conftest import run_once

from repro.experiments import table1


def test_table1(benchmark):
    result = run_once(benchmark, table1.run, seed=2004)
    print()
    print(table1.format_result(result))
    benchmark.extra_info["commands"] = len(result.rows)
    benchmark.extra_info["restricted_fraction"] = round(
        result.restricted_fraction, 3
    )
    # Paper shape: commands exist and overwhelmingly carry hit-lists.
    assert len(result.rows) >= 11
    assert result.restricted_fraction > 0.6
