"""Benchmark: compiled probe-path kernels vs their reference paths.

Three measurements, each paired with an equivalence gate:

* **LPM** — batched longest-prefix-match through
  ``PrefixTree.compile()`` vs the per-address trie walk
  (``lookup_array``), on a policy-table-sized prefix set.
* **Sensor dispatch** — one shared :class:`SensorIndex` pass over the
  IMS deployment plus a /24 grid vs the per-sensor ``observe`` loop.
* **End-to-end** — simulated outbreak ticks per second with every
  kernel enabled vs every kernel forced off
  (``kernel_override(False)``), bitwise-equal results required.

Runs two ways:

* under pytest-benchmark: ``pytest benchmarks/bench_kernels.py``;
* standalone, which writes the tracked perf baseline::

      python benchmarks/bench_kernels.py --quick --output BENCH_kernels.json

  Standalone mode exits non-zero if any kernel/reference equivalence
  check fails, which is what the CI ``bench-smoke`` job gates on.
  ``scripts/bench_baseline.py`` drives the same functions at full
  scale to refresh the committed ``BENCH_kernels.json``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Callable

import numpy as np

from repro.env.environment import NetworkEnvironment
from repro.env.failures import LossModel, RegionLoss
from repro.env.filtering import FilterRule, FilteringPolicy
from repro.net.cidr import CIDRBlock
from repro.net.kernels import kernel_override
from repro.net.prefixtree import PrefixTree
from repro.population.model import HostPopulation
from repro.runtime.compare import results_equal
from repro.runtime.runner import Trial, TrialRunner
from repro.sensors.darknet import ims_standard_deployment
from repro.sensors.deployment import SensorGrid
from repro.sensors.index import SensorIndex
from repro.sim.engine import (
    EpidemicSimulator,
    SimulationConfig,
    run_simulation_trial,
)
from repro.worms.uniform import UniformScanWorm

#: Quick (CI smoke) and full (tracked baseline) workload sizes.
QUICK_SIZES = {
    "lpm_batch": 20_000,
    "lpm_prefixes": 64,
    "dispatch_batch": 200_000,
    "dispatch_batches": 3,
    "end_to_end_hosts": 20_000,
    "end_to_end_ticks": 30,
}
FULL_SIZES = {
    "lpm_batch": 200_000,
    "lpm_prefixes": 64,
    "dispatch_batch": 1_000_000,
    "dispatch_batches": 5,
    "end_to_end_hosts": 60_000,
    "end_to_end_ticks": 60,
}


def _best_of(repeats: int, func: Callable[[], object]) -> float:
    """Best wall-clock seconds over ``repeats`` calls."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


# -- LPM -------------------------------------------------------------


def build_policy_table(num_prefixes: int, seed: int = 2006) -> PrefixTree:
    """A policy-table-shaped trie of random /8../24 prefixes."""
    rng = np.random.default_rng(seed)
    tree: PrefixTree[int] = PrefixTree()
    for index in range(num_prefixes):
        prefix_len = int(rng.integers(8, 25))
        block = CIDRBlock.containing(
            int(rng.integers(0, 1 << 32)), prefix_len
        )
        tree.insert(block, index)
    return tree


def bench_lpm(
    batch_size: int, num_prefixes: int, seed: int = 2006, repeats: int = 3
) -> dict:
    """Compiled batched LPM vs the per-address trie walk."""
    tree = build_policy_table(num_prefixes, seed)
    compiled = tree.compile()
    rng = np.random.default_rng(seed + 1)
    addrs = rng.integers(0, 1 << 32, size=batch_size, dtype=np.uint64).astype(
        np.uint32
    )

    equivalent = tree.lookup_array(addrs, default=-1) == compiled.lookup_array(
        addrs, default=-1
    )
    reference_s = _best_of(repeats, lambda: tree.lookup_array(addrs, default=-1))
    compiled_s = _best_of(
        repeats, lambda: compiled.lookup_indices(addrs)
    )
    return {
        "batch_size": batch_size,
        "num_prefixes": num_prefixes,
        "num_intervals": compiled.num_intervals,
        "reference_s": reference_s,
        "compiled_s": compiled_s,
        "reference_probes_per_s": batch_size / reference_s,
        "compiled_probes_per_s": batch_size / compiled_s,
        "speedup": reference_s / compiled_s,
        "equivalent": bool(equivalent),
    }


# -- sensor dispatch -------------------------------------------------


def _dispatch_fixture(seed: int):
    """IMS darknet sensors + a 2000-sensor /24 grid, with probe batches."""
    rng = np.random.default_rng(seed)
    sensors = ims_standard_deployment()
    grid = SensorGrid(
        rng.integers(0, 1 << 24, size=2000, dtype=np.uint64).astype(np.uint32),
        alert_threshold=5,
    )
    return sensors, grid


def bench_sensor_dispatch(
    batch_size: int, num_batches: int, seed: int = 2006, repeats: int = 3
) -> dict:
    """Shared SensorIndex pass vs the per-sensor observe loop."""
    rng = np.random.default_rng(seed + 2)
    batches = [
        (
            rng.integers(0, 1 << 32, size=batch_size, dtype=np.uint64).astype(
                np.uint32
            ),
            rng.integers(0, 1 << 32, size=batch_size, dtype=np.uint64).astype(
                np.uint32
            ),
        )
        for _ in range(num_batches)
    ]

    # Fixtures are built once and reset between runs: in a simulation
    # the sensors and the SensorIndex exist once per run and serve
    # thousands of ticks, so construction is not part of the per-batch
    # cost being compared.
    ref_sensors, ref_grid = _dispatch_fixture(seed)
    idx_sensors, idx_grid = _dispatch_fixture(seed)
    index = SensorIndex(idx_sensors, [idx_grid])

    def run_reference() -> None:
        for sensor in ref_sensors:
            sensor.reset()
        ref_grid.reset()
        for tick, (sources, targets) in enumerate(batches):
            for sensor in ref_sensors:
                sensor.observe(sources, targets)
            ref_grid.observe(targets, float(tick))

    def run_indexed() -> None:
        for sensor in idx_sensors:
            sensor.reset()
        idx_grid.reset()
        for tick, (sources, targets) in enumerate(batches):
            index.dispatch(sources, targets, float(tick))

    run_reference()
    run_indexed()
    equivalent = all(
        np.array_equal(a.probes_by_slash24(), b.probes_by_slash24())
        and np.array_equal(
            a.unique_sources_by_slash24(), b.unique_sources_by_slash24()
        )
        for a, b in zip(ref_sensors, idx_sensors)
    ) and np.array_equal(ref_grid.payload_counts(), idx_grid.payload_counts())

    reference_s = _best_of(repeats, run_reference)
    indexed_s = _best_of(repeats, run_indexed)
    probes = batch_size * num_batches
    return {
        "batch_size": batch_size,
        "num_batches": num_batches,
        "num_sensors": len(ref_sensors),
        "grid_sensors": int(ref_grid.num_sensors),
        "reference_s": reference_s,
        "indexed_s": indexed_s,
        "reference_probes_per_s": probes / reference_s,
        "indexed_probes_per_s": probes / indexed_s,
        "speedup": reference_s / indexed_s,
        "equivalent": bool(equivalent),
    }


# -- end to end ------------------------------------------------------


def build_outbreak_simulator(num_hosts: int, seed: int = 2006) -> EpidemicSimulator:
    """A figure1-flavoured outbreak: IMS sensors, policy, loss."""
    rng = np.random.default_rng(seed)
    addrs = np.unique(
        rng.integers(1 << 24, 224 << 24, size=num_hosts, dtype=np.uint64).astype(
            np.uint32
        )
    )
    policy = FilteringPolicy(
        [
            FilterRule("egress", CIDRBlock.parse("20.0.0.0/8")),
            FilterRule("ingress", CIDRBlock.parse("60.0.0.0/8")),
        ]
    )
    loss = LossModel(
        base_rate=0.05,
        region_losses=[RegionLoss(CIDRBlock.parse("100.0.0.0/8"), 0.5)],
    )
    return EpidemicSimulator(
        UniformScanWorm(),
        HostPopulation(addrs),
        environment=NetworkEnvironment(policy=policy, loss=loss),
        sensors=ims_standard_deployment(),
    )


def _end_to_end_config(num_hosts: int, num_ticks: int) -> SimulationConfig:
    # Seeding half the population keeps every tick at figure-scale
    # probe volume (hosts/2 * scan_rate probes per tick) from tick 1.
    return SimulationConfig(
        scan_rate=10.0,
        max_time=float(num_ticks),
        seed_count=max(1, num_hosts // 4),
        stop_at_fraction=1.0,
    )


def bench_end_to_end(
    num_hosts: int, num_ticks: int, seed: int = 2006, repeats: int = 2
) -> dict:
    """Whole-simulator tick rate, kernels on vs kernels off.

    The kernelized run dispatches through ``TrialRunner`` — the same
    unit the experiment registry fans out — so this measures exactly
    what a registered campaign executes per trial.
    """
    config = _end_to_end_config(num_hosts, num_ticks)

    def run_kernelized():
        runner = TrialRunner(workers=1)
        [result] = runner.run(
            [
                Trial(
                    func=run_simulation_trial,
                    kwargs={
                        "simulator": build_outbreak_simulator(num_hosts, seed),
                        "config": config,
                        "seed": seed,
                    },
                )
            ]
        )
        return result

    def run_reference():
        with kernel_override(False):
            return run_simulation_trial(
                build_outbreak_simulator(num_hosts, seed), config, seed
            )

    kernel_result = run_kernelized()
    reference_result = run_reference()
    equivalent = results_equal(reference_result, kernel_result)

    kernel_s = _best_of(repeats, run_kernelized)
    reference_s = _best_of(repeats, run_reference)
    ticks = len(kernel_result.times)
    return {
        "num_hosts": num_hosts,
        "num_ticks": ticks,
        "total_probes": int(kernel_result.total_probes),
        "reference_s": reference_s,
        "kernel_s": kernel_s,
        "reference_ticks_per_s": ticks / reference_s,
        "kernel_ticks_per_s": ticks / kernel_s,
        "kernel_probes_per_s": kernel_result.total_probes / kernel_s,
        "speedup": reference_s / kernel_s,
        "equivalent": bool(equivalent),
    }


# -- suite driver ----------------------------------------------------


def run_suite(quick: bool, seed: int = 2006) -> dict:
    """Every kernel benchmark at the chosen scale, as one report."""
    sizes = QUICK_SIZES if quick else FULL_SIZES
    report = {
        "suite": "kernels",
        "mode": "quick" if quick else "full",
        "sizes": dict(sizes),
        "lpm": bench_lpm(sizes["lpm_batch"], sizes["lpm_prefixes"], seed),
        "sensor_dispatch": bench_sensor_dispatch(
            sizes["dispatch_batch"], sizes["dispatch_batches"], seed
        ),
        "end_to_end": bench_end_to_end(
            sizes["end_to_end_hosts"], sizes["end_to_end_ticks"], seed
        ),
    }
    report["equivalent"] = all(
        report[section]["equivalent"]
        for section in ("lpm", "sensor_dispatch", "end_to_end")
    )
    return report


def format_report(report: dict) -> str:
    """Human-oriented rendering of :func:`run_suite` output."""
    lpm = report["lpm"]
    dispatch = report["sensor_dispatch"]
    end = report["end_to_end"]
    lines = [
        f"kernel benchmarks ({report['mode']} mode)",
        (
            f"  LPM:      {lpm['compiled_probes_per_s']:,.0f} probes/s compiled"
            f" vs {lpm['reference_probes_per_s']:,.0f} reference"
            f" ({lpm['speedup']:.1f}x, {lpm['num_prefixes']} prefixes,"
            f" batch {lpm['batch_size']:,})"
        ),
        (
            f"  sensors:  {dispatch['indexed_probes_per_s']:,.0f} probes/s indexed"
            f" vs {dispatch['reference_probes_per_s']:,.0f} per-sensor loop"
            f" ({dispatch['speedup']:.1f}x, {dispatch['num_sensors']} darknets"
            f" + {dispatch['grid_sensors']} grid /24s)"
        ),
        (
            f"  end2end:  {end['kernel_ticks_per_s']:.2f} ticks/s kernelized"
            f" vs {end['reference_ticks_per_s']:.2f} reference"
            f" ({end['speedup']:.2f}x, {end['total_probes']:,} probes)"
        ),
        f"  equivalence: {'ok' if report['equivalent'] else 'FAILED'}",
    ]
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-smoke sizes (seconds, not minutes)",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="write the JSON report to this path",
    )
    parser.add_argument("--seed", type=int, default=2006)
    args = parser.parse_args(argv)

    report = run_suite(quick=args.quick, seed=args.seed)
    print(format_report(report))
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.output}")
    if not report["equivalent"]:
        print("kernel/reference equivalence FAILED", file=sys.stderr)
        return 2
    return 0


# -- pytest-benchmark wrappers ---------------------------------------


def test_lpm_kernel(benchmark):
    sizes = QUICK_SIZES
    tree = build_policy_table(sizes["lpm_prefixes"])
    compiled = tree.compile()
    rng = np.random.default_rng(1)
    addrs = rng.integers(
        0, 1 << 32, size=sizes["lpm_batch"], dtype=np.uint64
    ).astype(np.uint32)
    benchmark(compiled.lookup_indices, addrs)
    assert tree.lookup_array(addrs, default=-1) == compiled.lookup_array(
        addrs, default=-1
    )


def test_sensor_dispatch_kernel(benchmark):
    result = benchmark.pedantic(
        bench_sensor_dispatch,
        kwargs={
            "batch_size": QUICK_SIZES["dispatch_batch"],
            "num_batches": QUICK_SIZES["dispatch_batches"],
            "repeats": 1,
        },
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["speedup"] = round(result["speedup"], 2)
    assert result["equivalent"]


def test_end_to_end_kernel(benchmark):
    result = benchmark.pedantic(
        bench_end_to_end,
        kwargs={
            "num_hosts": QUICK_SIZES["end_to_end_hosts"],
            "num_ticks": QUICK_SIZES["end_to_end_ticks"],
            "repeats": 1,
        },
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["speedup"] = round(result["speedup"], 2)
    assert result["equivalent"]


if __name__ == "__main__":
    raise SystemExit(main())
