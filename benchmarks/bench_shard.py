"""Benchmark: the sharded address-space engine vs the fused baseline.

Four measurements, each paired with a bitwise-equivalence gate
against the unsharded fused engine (the PR 5 baseline):

* **serial shards** — ``ShardedSimulator`` with K in-process shards
  (exchange + per-shard verdict/dispatch) vs the single fused engine.
  On one core this measures pure exchange overhead; the gate is that
  sharding costs little and changes nothing.  A per-stage breakdown
  (route / exchange / shards / merge) from one instrumented run shows
  where the driver's time goes.
* **process pool** — the same spec with ``shard_workers > 1``: shards
  resident in dedicated worker processes, one driver round-trip per
  tick.  Throughput here is *hardware-bound*: when the host has fewer
  cores than workers the timing keys are replaced by an explicit
  ``skipped`` entry (a single-core box would measure IPC overhead and
  poison ``--compare`` baselines), while ``cpu_count``, equivalence,
  and the transport byte counters — shared-memory control messages vs
  pickled arrays — are recorded unconditionally.  Byte counters are
  keyed by the transport each measurement *actually used* (a host
  without shared memory silently degrades the shmem run to pickle;
  the report must say so instead of mislabeling the numbers).
* **pipelined pool** — the ring transport (persistent worker command
  rings + double-buffered arenas + streamed per-shard dispatch) vs
  the submit-per-shard shmem pool.  The claim under test: control
  traffic amortizes below one executor round trip per shard per tick
  (``ring_submits_per_shard_tick`` well under 1) and, on a host with
  real cores, the pipelined pool is at least as fast.  Timings are
  core-gated exactly like the pool section; counters and equivalence
  are unconditional.
* **million hosts** — the 10^6-host regime that motivates sharding:
  serial reference vs K in-process shards at scale, equivalence-gated
  like everything else.

Runs two ways:

* under pytest-benchmark: ``pytest benchmarks/bench_shard.py``;
* standalone, which writes the tracked perf baseline::

      python benchmarks/bench_shard.py --quick --output BENCH_shard.json

  Standalone mode exits non-zero if any sharded/unsharded equivalence
  check fails, which is what the CI ``shard-smoke`` job gates on.
  ``--pool-only`` trims the run to the two pool sections (the CI
  smoke's time budget); ``scripts/bench_baseline.py`` drives the same
  functions at full scale to refresh the committed
  ``BENCH_shard.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Callable

import numpy as np

from repro.env.environment import NetworkEnvironment
from repro.env.failures import LossModel, RegionLoss
from repro.env.filtering import FilterRule, FilteringPolicy
from repro.net.cidr import CIDRBlock
from repro.population.model import HostPopulation
from repro.runtime.compare import results_equal
from repro.runtime.perf import perf_collection
from repro.sensors.darknet import ims_standard_deployment
from repro.sim.shard import ShardedSimulator
from repro.sim.spec import SimulationSpec, simulate
from repro.worms.uniform import UniformScanWorm

#: Quick (CI smoke) and full (tracked baseline) workload sizes.
QUICK_SIZES = {
    "num_hosts": 20_000,
    "num_ticks": 15,
    "num_shards": 4,
    "pool_workers": 2,
    "million_hosts": 1_000_000,
    "million_ticks": 2,
    "million_shards": 4,
}
FULL_SIZES = {
    "num_hosts": 250_000,
    "num_ticks": 12,
    "num_shards": 4,
    "pool_workers": 4,
    "million_hosts": 4_000_000,
    "million_ticks": 4,
    "million_shards": 8,
}


def _best_of(repeats: int, func: Callable[[], object]) -> float:
    """Best wall-clock seconds over ``repeats`` calls."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def build_outbreak_spec(
    num_hosts: int,
    num_ticks: int,
    shards: "int | None",
    seed: int = 2006,
) -> SimulationSpec:
    """The bench_kernels outbreak (policy, loss, IMS) as a spec.

    Built fresh per run — populations and sensors are stateful, and
    pool mode requires both pristine.  Seeding a quarter of the hosts
    keeps every tick at figure-scale probe volume from tick 1.
    """
    rng = np.random.default_rng(seed)
    addrs = np.unique(
        rng.integers(
            1 << 24, 224 << 24, size=num_hosts, dtype=np.uint64
        ).astype(np.uint32)
    )
    policy = FilteringPolicy(
        [
            FilterRule("egress", CIDRBlock.parse("20.0.0.0/8")),
            FilterRule("ingress", CIDRBlock.parse("60.0.0.0/8")),
        ]
    )
    loss = LossModel(
        base_rate=0.05,
        region_losses=[RegionLoss(CIDRBlock.parse("100.0.0.0/8"), 0.5)],
    )
    return SimulationSpec(
        worm=UniformScanWorm(),
        population=HostPopulation(addrs),
        environment=NetworkEnvironment(policy=policy, loss=loss),
        sensors=tuple(ims_standard_deployment()),
        scan_rate=10.0,
        max_time=float(num_ticks),
        seed_count=max(1, num_hosts // 4),
        shards=shards,
    )


# -- serial shards ---------------------------------------------------


def bench_serial_shards(
    num_hosts: int,
    num_ticks: int,
    num_shards: int,
    seed: int = 2006,
    repeats: int = 2,
) -> dict:
    """K in-process shards vs the unsharded fused engine."""

    def run_unsharded():
        return simulate(
            build_outbreak_spec(num_hosts, num_ticks, None, seed), seed
        )

    def run_sharded():
        return simulate(
            build_outbreak_spec(num_hosts, num_ticks, num_shards, seed), seed
        )

    unsharded_result = run_unsharded()
    sharded_result = run_sharded()
    equivalent = results_equal(unsharded_result, sharded_result)

    reference_s = _best_of(repeats, run_unsharded)
    sharded_s = _best_of(repeats, run_sharded)
    # One instrumented run for the driver-stage breakdown (route /
    # exchange / shards / merge); headline numbers stay uninstrumented.
    with perf_collection() as timings:
        run_sharded()
    ticks = len(sharded_result.times)
    return {
        "num_hosts": num_hosts,
        "num_ticks": ticks,
        "num_shards": num_shards,
        "total_probes": int(sharded_result.total_probes),
        "reference_s": reference_s,
        "sharded_s": sharded_s,
        "reference_ticks_per_s": ticks / reference_s,
        "sharded_ticks_per_s": ticks / sharded_s,
        "sharded_probes_per_s": sharded_result.total_probes / sharded_s,
        "overhead": sharded_s / reference_s,
        "stage_seconds": {
            stage: round(seconds, 4)
            for stage, seconds in sorted(timings.seconds.items())
        },
        "equivalent": bool(equivalent),
    }


# -- process pool ----------------------------------------------------


def bench_pool_shards(
    num_hosts: int,
    num_ticks: int,
    num_shards: int,
    workers: int,
    seed: int = 2006,
    repeats: int = 1,
) -> dict:
    """Worker-process shards vs both serial flavours.

    Timings are advisory (``*_s`` / speedup keys only), and skipped
    outright — replaced by a ``skipped`` key naming the reason — when
    the host has fewer cores than workers: a single-core box's pool
    "speedup" measures IPC overhead, not parallelism, and must not
    poison a ``--compare`` baseline read on real hardware.  The
    equivalence gate and the transport byte counters (shared-memory
    control messages vs pickled arrays through the executor pipe) are
    recorded unconditionally.
    """
    cpu_count = os.cpu_count() or 1

    def run_unsharded():
        return simulate(
            build_outbreak_spec(num_hosts, num_ticks, None, seed), seed
        )

    def run_serial_shards():
        return simulate(
            build_outbreak_spec(num_hosts, num_ticks, num_shards, seed), seed
        )

    def run_pooled(transport: str = "shmem"):
        simulator = ShardedSimulator(
            build_outbreak_spec(num_hosts, num_ticks, num_shards, seed),
            workers=workers,
            transport=transport,
        )
        result = simulator.run(np.random.default_rng(seed))
        return result, simulator.transport_stats

    unsharded_result = run_unsharded()
    fast_result, fast_stats = run_pooled("shmem")
    pickle_result, pickle_stats = run_pooled("pickle")
    equivalent = results_equal(
        unsharded_result, fast_result
    ) and results_equal(unsharded_result, pickle_result)

    # Record what each measurement *actually* ran: a host without
    # shared memory degrades the shmem request to pickle, and labeling
    # that run's pipe bytes "shmem" would fake a 1x reduction as real.
    fast_transport = str(fast_stats["transport"])
    ticks = len(fast_result.times)
    report = {
        "num_hosts": num_hosts,
        "num_ticks": ticks,
        "num_shards": num_shards,
        "workers": workers,
        "cpu_count": cpu_count,
        "total_probes": int(fast_result.total_probes),
        "transports_used": {
            "shmem": fast_transport,
            "pickle": str(pickle_stats["transport"]),
        },
        "transport_payload_bytes": int(fast_stats["payload_bytes"]),
        "transport_pipe_bytes_pickle": int(pickle_stats["pipe_bytes"]),
        "equivalent": bool(equivalent),
    }
    report[f"transport_pipe_bytes_{fast_transport}"] = int(
        fast_stats["pipe_bytes"]
    )
    if fast_transport != "pickle":
        report["transport_pipe_reduction"] = (
            int(pickle_stats["pipe_bytes"])
            / max(1, int(fast_stats["pipe_bytes"]))
        )
    if cpu_count < workers:
        report["skipped"] = (
            f"pool timings skipped: cpu_count ({cpu_count}) < workers "
            f"({workers}) — a core-starved host measures IPC overhead, "
            "not parallelism"
        )
        return report
    reference_s = _best_of(repeats, run_unsharded)
    serial_shard_s = _best_of(repeats, run_serial_shards)
    pool_s = _best_of(repeats, lambda: run_pooled()[0])
    report.update(
        {
            "reference_s": reference_s,
            "serial_shard_s": serial_shard_s,
            "pool_s": pool_s,
            "pool_speedup_vs_fused": reference_s / pool_s,
            "pool_speedup_vs_serial_shards": serial_shard_s / pool_s,
        }
    )
    return report


# -- pipelined pool --------------------------------------------------


def bench_pipelined_pool(
    num_hosts: int,
    num_ticks: int,
    num_shards: int,
    workers: int,
    seed: int = 2006,
    repeats: int = 1,
) -> dict:
    """Ring transport (pipelined dispatch) vs the submit-per-shard pool.

    Both runs stage arrays through shared memory; the difference is
    the control path.  The submit pool pays one executor round trip
    per shard per tick; the ring pool pushes a ~100 B command into a
    persistent per-worker ring and rings a doorbell, keeping executor
    submits bounded by setup/teardown.  Counters make the amortization
    auditable (``ring_submits_per_shard_tick``); timings follow the
    same core-starvation gate as the pool section.  When shared
    memory is unavailable both requests degrade to pickle —
    ``transports_used`` records it and the comparison keys are
    withheld rather than faked.
    """
    cpu_count = os.cpu_count() or 1

    def run_unsharded():
        return simulate(
            build_outbreak_spec(num_hosts, num_ticks, None, seed), seed
        )

    def run_pooled(transport: str):
        simulator = ShardedSimulator(
            build_outbreak_spec(num_hosts, num_ticks, num_shards, seed),
            workers=workers,
            transport=transport,
        )
        result = simulator.run(np.random.default_rng(seed))
        return result, simulator.transport_stats

    unsharded_result = run_unsharded()
    ring_result, ring_stats = run_pooled("ring")
    submit_result, submit_stats = run_pooled("shmem")
    equivalent = results_equal(
        unsharded_result, ring_result
    ) and results_equal(unsharded_result, submit_result)

    ticks = len(ring_result.times)
    shard_ticks = ticks * num_shards
    report = {
        "num_hosts": num_hosts,
        "num_ticks": ticks,
        "num_shards": num_shards,
        "workers": workers,
        "cpu_count": cpu_count,
        "shard_ticks": shard_ticks,
        "total_probes": int(ring_result.total_probes),
        "transports_used": {
            "ring": str(ring_stats["transport"]),
            "shmem": str(submit_stats["transport"]),
        },
        "equivalent": bool(equivalent),
    }
    if str(ring_stats["transport"]) == "ring":
        report.update(
            {
                "ring_round_trips": int(ring_stats["ring_round_trips"]),
                "ring_bytes": int(ring_stats["ring_bytes"]),
                "ring_pipe_bytes": int(ring_stats["pipe_bytes"]),
                "ring_submit_round_trips": int(
                    ring_stats["submit_round_trips"]
                ),
                "ring_submits_per_shard_tick": (
                    int(ring_stats["submit_round_trips"]) / shard_ticks
                ),
                "ring_backpressure_waits": int(
                    ring_stats["ring_backpressure_waits"]
                ),
                "doorbell_timeouts": int(ring_stats["doorbell_timeouts"]),
                "dispatch_overlap_s": round(
                    float(ring_stats["dispatch_overlap_s"]), 4
                ),
                "submit_round_trips_per_shard_tick": (
                    int(submit_stats["submit_round_trips"]) / shard_ticks
                ),
            }
        )
    if cpu_count < workers:
        report["skipped"] = (
            f"pipelined timings skipped: cpu_count ({cpu_count}) < "
            f"workers ({workers}) — a core-starved host measures IPC "
            "overhead, not pipelining"
        )
        return report
    ring_s = _best_of(repeats, lambda: run_pooled("ring")[0])
    submit_s = _best_of(repeats, lambda: run_pooled("shmem")[0])
    report.update(
        {
            "ring_pool_s": ring_s,
            "submit_pool_s": submit_s,
            "pipelined_speedup_vs_submit": submit_s / ring_s,
        }
    )
    return report


# -- million hosts ---------------------------------------------------


def bench_million_hosts(
    num_hosts: int,
    num_ticks: int,
    num_shards: int,
    seed: int = 2006,
    repeats: int = 1,
) -> dict:
    """Serial reference vs K in-process shards at 10^6+ hosts.

    The regime sharding exists for: the memory-slim per-shard state
    (population views into the global table, lazy sensor/verdict
    layers) has to hold millions of hosts, and per-shard locality has
    to keep the exchange overhead flat as the batch volume grows.
    Equivalence-gated like every other section.
    """

    def run_unsharded():
        return simulate(
            build_outbreak_spec(num_hosts, num_ticks, None, seed), seed
        )

    def run_sharded():
        return simulate(
            build_outbreak_spec(num_hosts, num_ticks, num_shards, seed), seed
        )

    unsharded_result = run_unsharded()
    sharded_result = run_sharded()
    equivalent = results_equal(unsharded_result, sharded_result)

    reference_s = _best_of(repeats, run_unsharded)
    sharded_s = _best_of(repeats, run_sharded)
    ticks = len(sharded_result.times)
    return {
        "num_hosts": num_hosts,
        "num_ticks": ticks,
        "num_shards": num_shards,
        "total_probes": int(sharded_result.total_probes),
        "reference_s": reference_s,
        "sharded_s": sharded_s,
        "reference_ticks_per_s": ticks / reference_s,
        "sharded_ticks_per_s": ticks / sharded_s,
        "sharded_probes_per_s": sharded_result.total_probes / sharded_s,
        "overhead": sharded_s / reference_s,
        "equivalent": bool(equivalent),
    }


# -- suite driver ----------------------------------------------------


#: Sections every run records; ``pool_only`` trims to the pool pair.
_ALL_SECTIONS = (
    "serial_shards",
    "pool_shards",
    "pipelined_pool",
    "million_hosts",
)
_POOL_SECTIONS = ("pool_shards", "pipelined_pool")


def run_suite(
    quick: bool, seed: int = 2006, pool_only: bool = False
) -> dict:
    """The shard benchmarks at the chosen scale, as one report.

    ``pool_only`` runs just the two pool sections — the CI smoke's
    time budget — and the aggregate ``equivalent`` gate then covers
    exactly the sections present.
    """
    sizes = QUICK_SIZES if quick else FULL_SIZES
    sections = _POOL_SECTIONS if pool_only else _ALL_SECTIONS
    report = {
        "suite": "shard",
        "mode": "quick" if quick else "full",
        "pool_only": bool(pool_only),
        "sizes": dict(sizes),
    }
    if "serial_shards" in sections:
        report["serial_shards"] = bench_serial_shards(
            sizes["num_hosts"],
            sizes["num_ticks"],
            sizes["num_shards"],
            seed,
        )
    if "pool_shards" in sections:
        report["pool_shards"] = bench_pool_shards(
            sizes["num_hosts"],
            sizes["num_ticks"],
            sizes["num_shards"],
            sizes["pool_workers"],
            seed,
        )
    if "pipelined_pool" in sections:
        report["pipelined_pool"] = bench_pipelined_pool(
            sizes["num_hosts"],
            sizes["num_ticks"],
            sizes["num_shards"],
            sizes["pool_workers"],
            seed,
        )
    if "million_hosts" in sections:
        report["million_hosts"] = bench_million_hosts(
            sizes["million_hosts"],
            sizes["million_ticks"],
            sizes["million_shards"],
            seed,
        )
    report["equivalent"] = all(
        report[section]["equivalent"] for section in sections
    )
    return report


def format_report(report: dict) -> str:
    """Human-oriented rendering of :func:`run_suite` output."""
    lines = [
        "shard benchmarks"
        f" ({report['mode']} mode"
        f"{', pool only' if report.get('pool_only') else ''})"
    ]
    serial = report.get("serial_shards")
    if serial is not None:
        lines.append(
            f"  serial:   {serial['sharded_ticks_per_s']:.2f} ticks/s with "
            f"{serial['num_shards']} in-process shards"
            f" vs {serial['reference_ticks_per_s']:.2f} unsharded"
            f" ({serial['overhead']:.2f}x cost,"
            f" {serial['total_probes']:,} probes)"
        )
    pool = report.get("pool_shards")
    if pool is not None:
        if "skipped" in pool:
            lines.append(f"  pool:     {pool['skipped']}")
        else:
            lines.append(
                f"  pool:     {pool['pool_s']:.2f}s with {pool['workers']}"
                f" worker processes vs {pool['serial_shard_s']:.2f}s serial"
                f" shards ({pool['pool_speedup_vs_serial_shards']:.2f}x,"
                f" {pool['cpu_count']} cores available)"
            )
        fast_transport = pool["transports_used"]["shmem"]
        fast_bytes = pool[f"transport_pipe_bytes_{fast_transport}"]
        line = (
            f"  transport: {fast_transport} pipes"
            f" {fast_bytes:,} B/run vs pickled"
            f" {pool['transport_pipe_bytes_pickle']:,} B/run"
        )
        if "transport_pipe_reduction" in pool:
            line += f" ({pool['transport_pipe_reduction']:,.0f}x less)"
        lines.append(line)
    pipelined = report.get("pipelined_pool")
    if pipelined is not None:
        if "skipped" in pipelined:
            lines.append(f"  pipelined: {pipelined['skipped']}")
        else:
            lines.append(
                f"  pipelined: {pipelined['ring_pool_s']:.2f}s ring vs"
                f" {pipelined['submit_pool_s']:.2f}s submit-per-shard"
                f" ({pipelined['pipelined_speedup_vs_submit']:.2f}x,"
                f" {pipelined['cpu_count']} cores available)"
            )
        if "ring_submits_per_shard_tick" in pipelined:
            lines.append(
                "  control:  "
                f"{pipelined['ring_submits_per_shard_tick']:.3f} executor"
                " submits per shard-tick (ring) vs"
                f" {pipelined['submit_round_trips_per_shard_tick']:.3f}"
                " (submit pool),"
                f" {pipelined['dispatch_overlap_s']:.3f}s dispatch overlap"
            )
    million = report.get("million_hosts")
    if million is not None:
        lines.append(
            f"  million:  {million['num_hosts']:,} hosts,"
            f" {million['num_shards']} shards:"
            f" {million['sharded_ticks_per_s']:.2f} ticks/s vs"
            f" {million['reference_ticks_per_s']:.2f} unsharded"
            f" ({million['overhead']:.2f}x cost,"
            f" {million['total_probes']:,} probes)"
        )
    lines.append(
        f"  equivalence: {'ok' if report['equivalent'] else 'FAILED'}"
    )
    return "\n".join(lines)


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-smoke sizes (seconds, not minutes)",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="write the JSON report to this path",
    )
    parser.add_argument(
        "--pool-only",
        action="store_true",
        help="run only the pool sections (pool_shards + pipelined_pool)",
    )
    parser.add_argument("--seed", type=int, default=2006)
    args = parser.parse_args(argv)

    report = run_suite(
        quick=args.quick, seed=args.seed, pool_only=args.pool_only
    )
    print(format_report(report))
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.output}")
    if not report["equivalent"]:
        print("sharded/unsharded equivalence FAILED", file=sys.stderr)
        return 2
    return 0


# -- pytest-benchmark wrappers ---------------------------------------


def test_serial_shards(benchmark):
    result = benchmark.pedantic(
        bench_serial_shards,
        kwargs={
            "num_hosts": QUICK_SIZES["num_hosts"],
            "num_ticks": QUICK_SIZES["num_ticks"],
            "num_shards": QUICK_SIZES["num_shards"],
            "repeats": 1,
        },
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["overhead"] = round(result["overhead"], 2)
    assert result["equivalent"]


def test_pool_shards(benchmark):
    result = benchmark.pedantic(
        bench_pool_shards,
        kwargs={
            "num_hosts": QUICK_SIZES["num_hosts"],
            "num_ticks": QUICK_SIZES["num_ticks"],
            "num_shards": QUICK_SIZES["num_shards"],
            "workers": QUICK_SIZES["pool_workers"],
            "repeats": 1,
        },
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["cpu_count"] = result["cpu_count"]
    assert result["equivalent"]


def test_pipelined_pool(benchmark):
    result = benchmark.pedantic(
        bench_pipelined_pool,
        kwargs={
            "num_hosts": QUICK_SIZES["num_hosts"],
            "num_ticks": QUICK_SIZES["num_ticks"],
            "num_shards": QUICK_SIZES["num_shards"],
            "workers": QUICK_SIZES["pool_workers"],
            "repeats": 1,
        },
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["cpu_count"] = result["cpu_count"]
    assert result["equivalent"]
    if result["transports_used"]["ring"] == "ring":
        # The amortization claim: well under one executor submit per
        # shard-tick on the ring path, against exactly >= 1 for the
        # submit pool.
        assert result["ring_submits_per_shard_tick"] < 0.5
        assert result["submit_round_trips_per_shard_tick"] >= 1.0


if __name__ == "__main__":
    raise SystemExit(main())
