"""Benchmark: the sharded address-space engine vs the fused baseline.

Two measurements, each paired with a bitwise-equivalence gate against
the unsharded fused engine (the PR 5 baseline):

* **serial shards** — ``ShardedSimulator`` with K in-process shards
  (exchange + per-shard verdict/dispatch) vs the single fused engine.
  On one core this measures pure exchange overhead; the gate is that
  sharding costs little and changes nothing.
* **process pool** — the same spec with ``shard_workers > 1``: shards
  resident in dedicated worker processes, one driver round-trip per
  tick.  Throughput here is *hardware-bound*: the report records
  ``cpu_count`` and ``workers`` so a single-core CI box's numbers are
  read for what they are (IPC overhead, no parallel win).  Pool
  timings are recorded as advisory keys (not ``*_per_s``) so the
  ``--compare`` regression gate never gates on core count.

Runs two ways:

* under pytest-benchmark: ``pytest benchmarks/bench_shard.py``;
* standalone, which writes the tracked perf baseline::

      python benchmarks/bench_shard.py --quick --output BENCH_shard.json

  Standalone mode exits non-zero if any sharded/unsharded equivalence
  check fails, which is what the CI ``shard-smoke`` job gates on.
  ``scripts/bench_baseline.py`` drives the same functions at full
  scale to refresh the committed ``BENCH_shard.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Callable

import numpy as np

from repro.env.environment import NetworkEnvironment
from repro.env.failures import LossModel, RegionLoss
from repro.env.filtering import FilterRule, FilteringPolicy
from repro.net.cidr import CIDRBlock
from repro.population.model import HostPopulation
from repro.runtime.compare import results_equal
from repro.sensors.darknet import ims_standard_deployment
from repro.sim.spec import SimulationSpec, simulate
from repro.worms.uniform import UniformScanWorm

#: Quick (CI smoke) and full (tracked baseline) workload sizes.
QUICK_SIZES = {
    "num_hosts": 20_000,
    "num_ticks": 15,
    "num_shards": 4,
    "pool_workers": 2,
}
FULL_SIZES = {
    "num_hosts": 250_000,
    "num_ticks": 12,
    "num_shards": 4,
    "pool_workers": 4,
}


def _best_of(repeats: int, func: Callable[[], object]) -> float:
    """Best wall-clock seconds over ``repeats`` calls."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def build_outbreak_spec(
    num_hosts: int,
    num_ticks: int,
    shards: "int | None",
    seed: int = 2006,
) -> SimulationSpec:
    """The bench_kernels outbreak (policy, loss, IMS) as a spec.

    Built fresh per run — populations and sensors are stateful, and
    pool mode requires both pristine.  Seeding a quarter of the hosts
    keeps every tick at figure-scale probe volume from tick 1.
    """
    rng = np.random.default_rng(seed)
    addrs = np.unique(
        rng.integers(
            1 << 24, 224 << 24, size=num_hosts, dtype=np.uint64
        ).astype(np.uint32)
    )
    policy = FilteringPolicy(
        [
            FilterRule("egress", CIDRBlock.parse("20.0.0.0/8")),
            FilterRule("ingress", CIDRBlock.parse("60.0.0.0/8")),
        ]
    )
    loss = LossModel(
        base_rate=0.05,
        region_losses=[RegionLoss(CIDRBlock.parse("100.0.0.0/8"), 0.5)],
    )
    return SimulationSpec(
        worm=UniformScanWorm(),
        population=HostPopulation(addrs),
        environment=NetworkEnvironment(policy=policy, loss=loss),
        sensors=tuple(ims_standard_deployment()),
        scan_rate=10.0,
        max_time=float(num_ticks),
        seed_count=max(1, num_hosts // 4),
        shards=shards,
    )


# -- serial shards ---------------------------------------------------


def bench_serial_shards(
    num_hosts: int,
    num_ticks: int,
    num_shards: int,
    seed: int = 2006,
    repeats: int = 2,
) -> dict:
    """K in-process shards vs the unsharded fused engine."""

    def run_unsharded():
        return simulate(
            build_outbreak_spec(num_hosts, num_ticks, None, seed), seed
        )

    def run_sharded():
        return simulate(
            build_outbreak_spec(num_hosts, num_ticks, num_shards, seed), seed
        )

    unsharded_result = run_unsharded()
    sharded_result = run_sharded()
    equivalent = results_equal(unsharded_result, sharded_result)

    reference_s = _best_of(repeats, run_unsharded)
    sharded_s = _best_of(repeats, run_sharded)
    ticks = len(sharded_result.times)
    return {
        "num_hosts": num_hosts,
        "num_ticks": ticks,
        "num_shards": num_shards,
        "total_probes": int(sharded_result.total_probes),
        "reference_s": reference_s,
        "sharded_s": sharded_s,
        "reference_ticks_per_s": ticks / reference_s,
        "sharded_ticks_per_s": ticks / sharded_s,
        "sharded_probes_per_s": sharded_result.total_probes / sharded_s,
        "overhead": sharded_s / reference_s,
        "equivalent": bool(equivalent),
    }


# -- process pool ----------------------------------------------------


def bench_pool_shards(
    num_hosts: int,
    num_ticks: int,
    num_shards: int,
    workers: int,
    seed: int = 2006,
    repeats: int = 1,
) -> dict:
    """Worker-process shards vs both serial flavours.

    Timings are advisory (``*_s`` / speedup keys only): the win is
    proportional to real cores, and a quick-mode CI box measuring IPC
    overhead on one core must not trip the throughput gate.  The
    equivalence gate is unconditional.
    """
    cpu_count = os.cpu_count() or 1

    def run_unsharded():
        return simulate(
            build_outbreak_spec(num_hosts, num_ticks, None, seed), seed
        )

    def run_serial_shards():
        return simulate(
            build_outbreak_spec(num_hosts, num_ticks, num_shards, seed), seed
        )

    def run_pooled():
        return simulate(
            build_outbreak_spec(num_hosts, num_ticks, num_shards, seed),
            seed,
            shard_workers=workers,
        )

    unsharded_result = run_unsharded()
    pooled_result = run_pooled()
    equivalent = results_equal(unsharded_result, pooled_result)

    reference_s = _best_of(repeats, run_unsharded)
    serial_shard_s = _best_of(repeats, run_serial_shards)
    pool_s = _best_of(repeats, run_pooled)
    ticks = len(pooled_result.times)
    return {
        "num_hosts": num_hosts,
        "num_ticks": ticks,
        "num_shards": num_shards,
        "workers": workers,
        "cpu_count": cpu_count,
        "total_probes": int(pooled_result.total_probes),
        "reference_s": reference_s,
        "serial_shard_s": serial_shard_s,
        "pool_s": pool_s,
        "pool_speedup_vs_fused": reference_s / pool_s,
        "pool_speedup_vs_serial_shards": serial_shard_s / pool_s,
        "equivalent": bool(equivalent),
    }


# -- suite driver ----------------------------------------------------


def run_suite(quick: bool, seed: int = 2006) -> dict:
    """Both shard benchmarks at the chosen scale, as one report."""
    sizes = QUICK_SIZES if quick else FULL_SIZES
    report = {
        "suite": "shard",
        "mode": "quick" if quick else "full",
        "sizes": dict(sizes),
        "serial_shards": bench_serial_shards(
            sizes["num_hosts"],
            sizes["num_ticks"],
            sizes["num_shards"],
            seed,
        ),
        "pool_shards": bench_pool_shards(
            sizes["num_hosts"],
            sizes["num_ticks"],
            sizes["num_shards"],
            sizes["pool_workers"],
            seed,
        ),
    }
    report["equivalent"] = all(
        report[section]["equivalent"]
        for section in ("serial_shards", "pool_shards")
    )
    return report


def format_report(report: dict) -> str:
    """Human-oriented rendering of :func:`run_suite` output."""
    serial = report["serial_shards"]
    pool = report["pool_shards"]
    lines = [
        f"shard benchmarks ({report['mode']} mode)",
        (
            f"  serial:   {serial['sharded_ticks_per_s']:.2f} ticks/s with "
            f"{serial['num_shards']} in-process shards"
            f" vs {serial['reference_ticks_per_s']:.2f} unsharded"
            f" ({serial['overhead']:.2f}x cost,"
            f" {serial['total_probes']:,} probes)"
        ),
        (
            f"  pool:     {pool['pool_s']:.2f}s with {pool['workers']}"
            f" worker processes vs {pool['serial_shard_s']:.2f}s serial"
            f" shards ({pool['pool_speedup_vs_serial_shards']:.2f}x,"
            f" {pool['cpu_count']} cores available)"
        ),
        f"  equivalence: {'ok' if report['equivalent'] else 'FAILED'}",
    ]
    return "\n".join(lines)


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-smoke sizes (seconds, not minutes)",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="write the JSON report to this path",
    )
    parser.add_argument("--seed", type=int, default=2006)
    args = parser.parse_args(argv)

    report = run_suite(quick=args.quick, seed=args.seed)
    print(format_report(report))
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.output}")
    if not report["equivalent"]:
        print("sharded/unsharded equivalence FAILED", file=sys.stderr)
        return 2
    return 0


# -- pytest-benchmark wrappers ---------------------------------------


def test_serial_shards(benchmark):
    result = benchmark.pedantic(
        bench_serial_shards,
        kwargs={
            "num_hosts": QUICK_SIZES["num_hosts"],
            "num_ticks": QUICK_SIZES["num_ticks"],
            "num_shards": QUICK_SIZES["num_shards"],
            "repeats": 1,
        },
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["overhead"] = round(result["overhead"], 2)
    assert result["equivalent"]


def test_pool_shards(benchmark):
    result = benchmark.pedantic(
        bench_pool_shards,
        kwargs={
            "num_hosts": QUICK_SIZES["num_hosts"],
            "num_ticks": QUICK_SIZES["num_ticks"],
            "num_shards": QUICK_SIZES["num_shards"],
            "workers": QUICK_SIZES["pool_workers"],
            "repeats": 1,
        },
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["cpu_count"] = result["cpu_count"]
    assert result["equivalent"]


if __name__ == "__main__":
    raise SystemExit(main())
