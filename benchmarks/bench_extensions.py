"""Benchmarks: the beyond-the-paper extension experiments.

* local-detection — the paper's concluding argument quantified: an
  organization's own dark space beats a global quorum detector.
* containment — quorum-triggered quarantine caps a uniform worm but
  not a hotspot worm.
* visibility — same-size darknets at different positions see wildly
  different unique-source counts under local preference (the
  blackhole-placement observation the paper builds on).
"""

import numpy as np

from conftest import run_once

from repro.analysis.visibility import placement_variability
from repro.experiments import extension_containment, extension_local_detection
from repro.net.address import parse_addr
from repro.worms.codered2 import CodeRedIIWorm
from repro.worms.uniform import UniformScanWorm


def test_local_detection(benchmark):
    result = run_once(
        benchmark,
        extension_local_detection.run,
        num_target_slash16s=6,
        hosts_per_slash16=400,
        num_global_sensors=2_000,
        max_time=600.0,
    )
    print()
    print(extension_local_detection.format_result(result))
    benchmark.extra_info["local_time"] = result.local_detection_time
    benchmark.extra_info["global_alert_fraction"] = round(
        result.global_alert_fraction, 4
    )
    assert result.local_wins
    assert result.global_quorum_time is None


def test_containment(benchmark):
    result = run_once(benchmark, extension_containment.run, max_time=1_200.0)
    print()
    print(extension_containment.format_result(result))
    benchmark.extra_info["uniform_final"] = round(
        result.uniform.final_infected_fraction, 3
    )
    benchmark.extra_info["hotspot_final"] = round(
        result.hotspot.final_infected_fraction, 3
    )
    assert result.hotspots_defeat_containment


def test_placement_visibility(benchmark):
    rng = np.random.default_rng(5)
    hosts = (
        np.uint32(50 << 24) + rng.choice(2**24, 500, replace=False)
    ).astype(np.uint32)
    positions = [
        parse_addr("50.200.0.0"),
        parse_addr("80.0.0.0"),
        parse_addr("120.0.0.0"),
        parse_addr("180.0.0.0"),
    ]

    def study():
        local_rng = np.random.default_rng(6)
        crii = placement_variability(
            CodeRedIIWorm(), hosts, 5_000, positions, 12, local_rng
        )
        uniform = placement_variability(
            UniformScanWorm(), hosts, 5_000, positions, 12, local_rng
        )
        return crii, uniform

    crii, uniform = benchmark.pedantic(study, rounds=1, iterations=1)
    print(
        f"\nplacement spread (CV): codered2={crii.coefficient_of_variation:.2f} "
        f"uniform={uniform.coefficient_of_variation:.2f}"
    )
    benchmark.extra_info["crii_cv"] = round(crii.coefficient_of_variation, 3)
    benchmark.extra_info["uniform_cv"] = round(
        uniform.coefficient_of_variation, 3
    )
    # "Orders-of-magnitude different amounts of traffic": local
    # preference makes position dominate; uniform scanning does not.
    assert crii.coefficient_of_variation > 3 * uniform.coefficient_of_variation
