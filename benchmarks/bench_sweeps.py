"""Benchmarks: sensitivity sweeps over the paper's estimated inputs."""

from conftest import run_once

from repro.experiments import sweeps


def test_nat_fraction_sweep(benchmark, bench_spec):
    result = run_once(
        benchmark,
        sweeps.sweep_nat_fraction,
        fractions=(0.05, 0.15, 0.30),
        population_spec=bench_spec,
        num_random_sensors=2_000,
        max_time=1_200.0,
    )
    print()
    print(sweeps.format_nat_sweep(result))
    for fraction, final in zip(result.fractions, result.targeted_final_alerts):
        benchmark.extra_info[f"targeted_final_{fraction}"] = round(final, 3)
    # The paper's conclusion survives its own "crude estimate": the
    # targeted placement wins at every NATed fraction swept.
    assert result.targeted_always_wins


def test_hitlist_share_sweep(benchmark, bench_spec):
    result = run_once(
        benchmark,
        sweeps.sweep_hitlist_share,
        sizes=(5, 20, 50, 150, 400, 800),
        population_spec=bench_spec,
        max_time=900.0,
    )
    print()
    print(sweeps.format_share_sweep(result))
    benchmark.extra_info["shares"] = [round(s, 4) for s in result.shares]
    benchmark.extra_info["alerts"] = [
        round(a, 4) for a in result.final_alert_fractions
    ]
    # The detection-share law holds along the whole axis, not just at
    # the paper's four sampled sizes.
    assert result.share_law_holds
