"""Benchmark: Figure 4 — CodeRedII NAT leakage and the M-block spike."""

from conftest import run_once

from repro.experiments import figure4


def test_figure4(benchmark):
    result = run_once(
        benchmark,
        figure4.run,
        num_hosts=2_000,
        probes_per_host=15_000,
        quarantine_probes=7_567_093,
    )
    print()
    print(figure4.format_result(result))
    benchmark.extra_info["m_mean_per_slash24"] = round(
        result.per_slash24_mean("M"), 2
    )
    benchmark.extra_info["private_quarantine_m_hits"] = (
        result.private_quarantine.total("M")
    )
    benchmark.extra_info["public_quarantine_m_hits"] = (
        result.public_quarantine.total("M")
    )
    # Paper shape: M-block hotspot in the population view; the
    # 192.168.0.100 quarantine run shows "a distinct spike at the M
    # block" while the public-source run shows none.
    assert result.m_block_hotspot
    assert result.quarantine_contrast
