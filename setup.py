"""Setup shim.

This environment has no network access and no ``wheel`` package, so
PEP 517 editable installs (which build an editable wheel) fail.  This
shim lets ``pip install -e . --no-use-pep517 --no-build-isolation``
fall back to the legacy develop-mode install.  All project metadata
lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
