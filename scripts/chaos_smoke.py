"""Chaos smoke test: a real CLI campaign survives injected worker faults.

Scenario 1 (trial-level) runs ``hotspots figure5b`` twice over a
small synthetic population:

1. clean and serial — the ground truth;
2. parallel with ``--retries 2`` and a ``$REPRO_FAULT_PLAN`` that
   kills the worker running trial 1 on its first attempt (and makes
   trial 2 raise), so the run exercises pool replacement *and*
   deterministic retry.

Scenario 2 (shard-level) runs the same experiment with the address
space sharded over a supervised worker pool and ``--checkpoint-every``
on, then hard-kills one shard worker mid-run via
``$REPRO_MIDRUN_FAULT``.  The supervisor must respawn just that
worker and replay from the last checkpoint — *not* fall back to the
serial re-run — and the output must still be byte-identical to the
clean serial run.

Every chaotic run must exit 0, report its recovery on stderr, and
print stdout byte-identical to the clean run — the repo's determinism
guarantee, end to end through the real CLI.  Exit status: 0 on pass,
1 on any divergence (suitable for CI).

    python scripts/chaos_smoke.py [--verbose]
"""

import argparse
import difflib
import json
import os
import shutil
import subprocess
import sys
import tempfile

#: Small enough for CI, large enough that hotspot structure (and thus
#: the figure's starvation effect) survives: 20k hosts over 300 /16s.
POPULATION_SPEC = (
    "{'total_hosts': 20000, 'num_slash8': 8, 'num_slash16': 300, "
    "'anchors': ((0, 0.0), (10, 0.35), (100, 0.85), (300, 1.0))}"
)

#: Kill trial 1's worker on its first attempt; make trial 2's first
#: attempt raise.  Both must recover via --retries with no output drift.
FAULT_PLAN = '{"1": ["kill"], "2": ["raise"]}'

BASE_ARGS = [
    sys.executable,
    "-m",
    "repro.cli",
    "figure5b",
    "--trials",
    "4",
    "--set",
    f"population_spec={POPULATION_SPEC}",
    "--set",
    "max_time=300",
]


#: The shard-supervision scenario runs one trial of one hit-list size
#: only (CI time; the trailing --trials wins over BASE_ARGS), kills
#: shard 0's worker at tick 30, and checkpoints every 20 ticks — so
#: recovery must restore the tick-19 snapshot and replay.
SHARD_ARGS = ["--set", "hitlist_sizes=(100,)", "--trials", "1"]
SHARD_KILL_FAULT = json.dumps({"kind": "kill-worker", "tick": 30, "shard": 0})


def run_cli(extra_args, fault_plan=None, midrun_fault=None):
    env = dict(os.environ)
    env.pop("REPRO_FAULT_PLAN", None)
    env.pop("REPRO_MIDRUN_FAULT", None)
    if fault_plan is not None:
        env["REPRO_FAULT_PLAN"] = fault_plan
    if midrun_fault is not None:
        env["REPRO_MIDRUN_FAULT"] = midrun_fault
    return subprocess.run(
        BASE_ARGS + extra_args,
        env=env,
        capture_output=True,
        text=True,
        timeout=900,
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--verbose", action="store_true", help="print both runs' stderr"
    )
    args = parser.parse_args()

    print("[chaos-smoke] clean serial run ...", flush=True)
    clean = run_cli(["--workers", "1"])
    if clean.returncode != 0:
        print("[chaos-smoke] FAIL: clean run exited nonzero")
        print(clean.stderr)
        return 1

    print("[chaos-smoke] chaotic parallel run (kill + raise) ...", flush=True)
    chaos = run_cli(
        ["--workers", "2", "--retries", "2"], fault_plan=FAULT_PLAN
    )
    if args.verbose:
        print(chaos.stderr)

    failed = False
    if chaos.returncode != 0:
        print("[chaos-smoke] FAIL: chaotic run exited nonzero")
        print(chaos.stderr)
        failed = True
    if chaos.stdout != clean.stdout:
        print("[chaos-smoke] FAIL: chaotic output diverged from clean run")
        sys.stdout.writelines(
            difflib.unified_diff(
                clean.stdout.splitlines(keepends=True),
                chaos.stdout.splitlines(keepends=True),
                fromfile="clean",
                tofile="chaos",
            )
        )
        failed = True
    if "retried" not in chaos.stderr:
        # The faults must actually have fired; a silently clean run
        # would make this smoke test vacuous.
        print("[chaos-smoke] FAIL: no retries reported — faults never fired?")
        print(chaos.stderr)
        failed = True
    if failed:
        return 1
    print(
        "[chaos-smoke] PASS: worker killed, trial raised, campaign "
        "recovered, output identical to the clean serial run"
    )

    print("[chaos-smoke] clean serial run (shard scenario) ...", flush=True)
    shard_clean = run_cli(["--workers", "1"] + SHARD_ARGS)
    if shard_clean.returncode != 0:
        print("[chaos-smoke] FAIL: shard-scenario clean run exited nonzero")
        print(shard_clean.stderr)
        return 1

    print(
        "[chaos-smoke] supervised shard-pool run "
        "(kill shard worker at tick 30) ...",
        flush=True,
    )
    checkpoint_dir = tempfile.mkdtemp(prefix="chaos-ckpt-")
    try:
        shard_chaos = run_cli(
            SHARD_ARGS
            + [
                "--shards",
                "2",
                "--set",
                "shard_workers=2",
                "--checkpoint-every",
                "20",
                "--checkpoint-dir",
                checkpoint_dir,
            ],
            midrun_fault=SHARD_KILL_FAULT,
        )
    finally:
        shutil.rmtree(checkpoint_dir, ignore_errors=True)
    if args.verbose:
        print(shard_chaos.stderr)

    if shard_chaos.returncode != 0:
        print("[chaos-smoke] FAIL: shard-kill run exited nonzero")
        print(shard_chaos.stderr)
        failed = True
    if shard_chaos.stdout != shard_clean.stdout:
        print(
            "[chaos-smoke] FAIL: shard-kill output diverged from clean run"
        )
        sys.stdout.writelines(
            difflib.unified_diff(
                shard_clean.stdout.splitlines(keepends=True),
                shard_chaos.stdout.splitlines(keepends=True),
                fromfile="clean",
                tofile="shard-chaos",
            )
        )
        failed = True
    if "worker-respawn" not in shard_chaos.stderr:
        # The kill must have fired *and* been recovered through the
        # supervisor (visible in the RunReport's recovery events).
        print(
            "[chaos-smoke] FAIL: no worker-respawn reported — fault "
            "never fired, or recovery took another path?"
        )
        print(shard_chaos.stderr)
        failed = True
    if "serial-rerun" in shard_chaos.stderr:
        # A checkpointed pool must recover by respawn + replay; the
        # whole-run serial fallback means supervision failed.
        print(
            "[chaos-smoke] FAIL: supervised pool degraded to the "
            "serial re-run"
        )
        print(shard_chaos.stderr)
        failed = True
    if failed:
        return 1
    print(
        "[chaos-smoke] PASS: shard worker killed mid-run, supervisor "
        "respawned it from the checkpoint, output identical to the "
        "clean serial run"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
