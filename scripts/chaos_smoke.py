"""Chaos smoke test: a real CLI campaign survives an injected worker kill.

Runs ``hotspots figure5b`` twice over a small synthetic population:

1. clean and serial — the ground truth;
2. parallel with ``--retries 2`` and a ``$REPRO_FAULT_PLAN`` that
   kills the worker running trial 1 on its first attempt (and makes
   trial 2 raise), so the run exercises pool replacement *and*
   deterministic retry.

The chaotic run must exit 0, report the recovery on stderr, and print
stdout byte-identical to the clean run — the repo's determinism
guarantee, end to end through the real CLI.  Exit status: 0 on pass,
1 on any divergence (suitable for CI).

    python scripts/chaos_smoke.py [--verbose]
"""

import argparse
import difflib
import os
import subprocess
import sys

#: Small enough for CI, large enough that hotspot structure (and thus
#: the figure's starvation effect) survives: 20k hosts over 300 /16s.
POPULATION_SPEC = (
    "{'total_hosts': 20000, 'num_slash8': 8, 'num_slash16': 300, "
    "'anchors': ((0, 0.0), (10, 0.35), (100, 0.85), (300, 1.0))}"
)

#: Kill trial 1's worker on its first attempt; make trial 2's first
#: attempt raise.  Both must recover via --retries with no output drift.
FAULT_PLAN = '{"1": ["kill"], "2": ["raise"]}'

BASE_ARGS = [
    sys.executable,
    "-m",
    "repro.cli",
    "figure5b",
    "--trials",
    "4",
    "--set",
    f"population_spec={POPULATION_SPEC}",
    "--set",
    "max_time=300",
]


def run_cli(extra_args, fault_plan=None):
    env = dict(os.environ)
    env.pop("REPRO_FAULT_PLAN", None)
    if fault_plan is not None:
        env["REPRO_FAULT_PLAN"] = fault_plan
    return subprocess.run(
        BASE_ARGS + extra_args,
        env=env,
        capture_output=True,
        text=True,
        timeout=900,
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--verbose", action="store_true", help="print both runs' stderr"
    )
    args = parser.parse_args()

    print("[chaos-smoke] clean serial run ...", flush=True)
    clean = run_cli(["--workers", "1"])
    if clean.returncode != 0:
        print("[chaos-smoke] FAIL: clean run exited nonzero")
        print(clean.stderr)
        return 1

    print("[chaos-smoke] chaotic parallel run (kill + raise) ...", flush=True)
    chaos = run_cli(
        ["--workers", "2", "--retries", "2"], fault_plan=FAULT_PLAN
    )
    if args.verbose:
        print(chaos.stderr)

    failed = False
    if chaos.returncode != 0:
        print("[chaos-smoke] FAIL: chaotic run exited nonzero")
        print(chaos.stderr)
        failed = True
    if chaos.stdout != clean.stdout:
        print("[chaos-smoke] FAIL: chaotic output diverged from clean run")
        sys.stdout.writelines(
            difflib.unified_diff(
                clean.stdout.splitlines(keepends=True),
                chaos.stdout.splitlines(keepends=True),
                fromfile="clean",
                tofile="chaos",
            )
        )
        failed = True
    if "retried" not in chaos.stderr:
        # The faults must actually have fired; a silently clean run
        # would make this smoke test vacuous.
        print("[chaos-smoke] FAIL: no retries reported — faults never fired?")
        print(chaos.stderr)
        failed = True
    if failed:
        return 1
    print(
        "[chaos-smoke] PASS: worker killed, trial raised, campaign "
        "recovered, output identical to the clean serial run"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
