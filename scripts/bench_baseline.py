"""Refresh or check the tracked perf baselines.

Two modes.  **Refresh** (the default) runs the chosen benchmark
suites at full (baseline) scale and writes their JSON reports to the
repository root::

    python scripts/bench_baseline.py                    # all suites
    python scripts/bench_baseline.py --suite engine     # just the engine
    python scripts/bench_baseline.py --quick            # CI-smoke sizes

Commit the refreshed ``BENCH_kernels.json`` / ``BENCH_engine.json``
alongside any change that touches the probe-path kernels or the tick
pipeline, so reviewers can diff throughput and the CI equivalence
gate stays anchored to a known-good baseline.

**Compare** re-runs a suite against a committed baseline and fails on
regression::

    python scripts/bench_baseline.py --compare BENCH_engine.json

The suite and workload mode (quick/full) are read from the baseline
file, so the fresh run is always like-for-like.  Exit status is
non-zero when any kernel/fused throughput metric drops more than
``--tolerance`` (default 20%) below the baseline, or when any
fused/reference equivalence check fails.  Reference-path throughput
is informational only — a slow machine slows both paths, and gating
on the reference would just re-measure the hardware.
"""

import argparse
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

import bench_engine  # noqa: E402
import bench_kernels  # noqa: E402
import bench_shard  # noqa: E402

SUITES = {
    "kernels": bench_kernels,
    "engine": bench_engine,
    "shard": bench_shard,
}

#: Throughput keys gated by --compare; ``reference_*`` stays advisory.
#: The pipelined-pool counters (``dispatch_overlap_s``,
#: ``ring_round_trips``, back-pressure/doorbell tallies, speedup
#: ratios) deliberately match neither suffix: they are recorded for
#: review, not gated — their absolute values are hardware noise.
_GATED_SUFFIXES = ("_ticks_per_s", "_probes_per_s")


def _suite_kwargs(module, args) -> dict:
    """Extra run_suite kwargs a suite supports (shard: pool_only)."""
    if module is bench_shard and getattr(args, "pool_only", False):
        return {"pool_only": True}
    return {}


def _gated_metrics(report: dict) -> "dict[str, float]":
    """``{"section.metric": value}`` for every gated throughput key."""
    metrics = {}
    for section, body in report.items():
        if not isinstance(body, dict):
            continue
        for key, value in body.items():
            if key.startswith("reference_"):
                continue
            if any(key.endswith(suffix) for suffix in _GATED_SUFFIXES):
                metrics[f"{section}.{key}"] = float(value)
    return metrics


def compare_reports(baseline, fresh, tolerance):
    """Regression messages (empty = pass).

    A metric regresses when the fresh value drops more than
    ``tolerance`` (fractional) below the baseline.  Metrics present
    on only one side are skipped — renames should not fail CI — but
    an equivalence failure in the fresh run always fails.
    """
    problems = []
    if not fresh.get("equivalent", False):
        problems.append("fresh run failed its equivalence gate")
    baseline_metrics = _gated_metrics(baseline)
    for name, fresh_value in _gated_metrics(fresh).items():
        baseline_value = baseline_metrics.get(name)
        if baseline_value is None or baseline_value <= 0:
            continue
        floor = baseline_value * (1.0 - tolerance)
        if fresh_value < floor:
            problems.append(
                f"{name}: {fresh_value:,.1f} < {floor:,.1f}"
                f" (baseline {baseline_value:,.1f}, "
                f"-{(1 - fresh_value / baseline_value) * 100:.1f}%)"
            )
    return problems


def _run_compare(args) -> int:
    baseline_path = pathlib.Path(args.compare)
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    suite_name = baseline.get("suite")
    module = SUITES.get(suite_name)
    if module is None:
        print(
            f"unknown suite {suite_name!r} in {baseline_path}",
            file=sys.stderr,
        )
        return 2
    quick = baseline.get("mode") == "quick"
    print(
        f"comparing against {baseline_path} "
        f"(suite {suite_name}, {'quick' if quick else 'full'} mode, "
        f"tolerance {args.tolerance * 100:.0f}%)"
    )
    fresh = module.run_suite(
        quick=quick, seed=args.seed, **_suite_kwargs(module, args)
    )
    print(module.format_report(fresh))
    problems = compare_reports(baseline, fresh, args.tolerance)
    if problems:
        print("PERF REGRESSION:", file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return 1
    print("no regression beyond tolerance")
    return 0


def _run_refresh(args) -> int:
    names = list(SUITES) if args.suite == "all" else [args.suite]
    failed = False
    for name in names:
        module = SUITES[name]
        report = module.run_suite(
            quick=args.quick, seed=args.seed, **_suite_kwargs(module, args)
        )
        print(module.format_report(report))
        output = pathlib.Path(args.output_dir) / f"BENCH_{name}.json"
        with open(output, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {output}")
        if not report["equivalent"]:
            print(f"{name}: equivalence FAILED", file=sys.stderr)
            failed = True
    return 2 if failed else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--suite",
        choices=[*SUITES, "all"],
        default="all",
        help="which suite(s) to refresh (ignored with --compare; the "
        "baseline file names its own suite)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-smoke sizes instead of the full baseline sizes "
        "(ignored with --compare; the baseline file names its mode)",
    )
    parser.add_argument(
        "--compare",
        default=None,
        metavar="BASELINE.json",
        help="regression mode: re-run the baseline's suite and fail "
        "on >tolerance throughput drop or equivalence failure",
    )
    parser.add_argument(
        "--pool-only",
        action="store_true",
        help="shard suite only: run just the pool sections "
        "(pool_shards + pipelined_pool) — the CI smoke's time budget; "
        "in --compare mode, baseline metrics for the skipped sections "
        "are simply not re-checked",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.20,
        help="allowed fractional throughput drop in --compare mode "
        "(default: 0.20)",
    )
    parser.add_argument(
        "--output-dir",
        default=str(REPO_ROOT),
        help="where refreshed BENCH_<suite>.json files go "
        "(default: repo root)",
    )
    parser.add_argument("--seed", type=int, default=2006)
    args = parser.parse_args(argv)

    if args.compare:
        return _run_compare(args)
    return _run_refresh(args)


if __name__ == "__main__":
    raise SystemExit(main())
