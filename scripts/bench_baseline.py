"""Refresh the tracked kernel perf baseline (``BENCH_kernels.json``).

Runs the kernel benchmark suite at full (baseline) scale and writes
the JSON report to the repository root::

    python scripts/bench_baseline.py            # full sizes, ~1-2 min
    python scripts/bench_baseline.py --quick    # CI-smoke sizes

Commit the refreshed ``BENCH_kernels.json`` alongside any change that
touches the probe-path kernels, so reviewers can diff probes/sec and
the CI equivalence gate stays anchored to a known-good baseline.
Exits non-zero if any kernel/reference equivalence check fails.
"""

import argparse
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from bench_kernels import format_report, run_suite  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-smoke sizes instead of the full baseline sizes",
    )
    parser.add_argument(
        "--output",
        default=str(REPO_ROOT / "BENCH_kernels.json"),
        help="where to write the JSON report (default: repo root)",
    )
    parser.add_argument("--seed", type=int, default=2006)
    args = parser.parse_args(argv)

    report = run_suite(quick=args.quick, seed=args.seed)
    print(format_report(report))

    import json

    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")

    if not report["equivalent"]:
        print("kernel/reference equivalence FAILED", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
