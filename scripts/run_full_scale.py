"""Run every experiment at paper scale and log the formatted results.

This is the source of the numbers recorded in EXPERIMENTS.md::

    python scripts/run_full_scale.py | tee fullscale_output.txt

Budget: ~15-25 minutes on a laptop-class machine, dominated by the
Figure 5 outbreak simulations over the full 134,586-host population;
``--workers N`` fans the per-hit-list-size simulations out over N
processes (results identical to the serial run).
"""

import argparse
import time

from repro.experiments import (
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    table1,
    table2,
)


def banner(title: str) -> None:
    print(f"\n{'=' * 70}\n{title}\n{'=' * 70}", flush=True)


def timed(label, func, **kwargs):
    start = time.time()
    result = func(**kwargs)
    print(f"[{label}: {time.time() - start:.1f}s]", flush=True)
    return result


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="processes for the Figure 5 per-hit-list fan-out "
        "(0 = all cores)",
    )
    args = parser.parse_args()

    banner("Table 1 — botnet scan commands")
    print(table1.format_result(timed("table1", table1.run)))

    banner("Figure 1 — Blaster hotspots and boot-time inversion")
    print(figure1.format_result(timed("figure1", figure1.run)))

    banner("Figure 2 — aggregate Slammer bias (75,000 hosts)")
    print(
        figure2.format_result(
            timed("figure2", figure2.run, num_hosts=75_000)
        )
    )

    banner("Figure 3 — per-host Slammer footprints + cycle spectrum")
    print(figure3.format_result(timed("figure3", figure3.run)))

    banner("Figure 4 — CodeRedII NAT leakage")
    print(figure4.format_result(timed("figure4", figure4.run)))

    banner("Table 2 — enterprise egress filtering vs broadband")
    print(table2.format_result(timed("table2", table2.run)))

    banner("Figure 5(a/b) — hit-list outbreaks over 134,586 hosts")
    ab = timed(
        "figure5ab",
        figure5.run_infection,
        max_time=2_500.0,
        seed=2005,
        workers=args.workers,
    )
    print(figure5.format_infection(ab))
    print(figure5.format_detection(ab))

    banner("Figure 5(c) — NATed worm vs sensor placements (full scale)")
    c = timed(
        "figure5c",
        figure5.run_nat_detection,
        max_time=1_500.0,
        stop_at_fraction=0.5,
        seed=2006,
    )
    print(figure5.format_nat_detection(c))


if __name__ == "__main__":
    main()
