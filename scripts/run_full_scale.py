"""Run every experiment at paper scale and log the formatted results.

This is the source of the numbers recorded in EXPERIMENTS.md::

    python scripts/run_full_scale.py | tee fullscale_output.txt

Budget: ~15-25 minutes on a laptop-class machine, dominated by the
Figure 5 outbreak simulations over the full 134,586-host population.
Every section goes through the experiment registry and the
fault-tolerant trial runner, so the long campaigns survive worker
crashes, can bound a hung simulation, and resume after interruption::

    python scripts/run_full_scale.py --workers 4 --retries 2 \
        --timeout 3600 --cache --resume

``--workers N`` fans the Figure 5 per-hit-list-size simulations out
over N processes; no flag here changes results (all recovery paths
are bitwise-identical to a clean serial run).
"""

import argparse
import sys
import time

from repro.experiments import figure5, registry
from repro.runtime import ResultCache

#: The paper-scale campaign: (experiment id, parameter overrides).
#: figure5a's result carries the 5(b) detection curves too, so one
#: outbreak run prints both sections (as the paper derives both from
#: the same simulations).
FULL_SCALE = (
    ("table1", {}),
    ("figure1", {}),
    ("figure2", {"num_hosts": 75_000}),
    ("figure3", {}),
    ("figure4", {}),
    ("table2", {}),
    ("figure5a", {"max_time": 2_500.0, "seed": 2005}),
    ("figure5c", {"max_time": 1_500.0, "stop_at_fraction": 0.5, "seed": 2006}),
)


def banner(title: str) -> None:
    print(f"\n{'=' * 70}\n{title}\n{'=' * 70}", flush=True)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="processes for the Figure 5 per-hit-list fan-out "
        "(0 = all cores)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        help="extra attempts for a failed or timed-out section "
        "(retries re-run the identical seeded trial; default: 0)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-section runtime bound in seconds under parallel "
        "execution (default: unbounded)",
    )
    parser.add_argument(
        "--cache",
        action="store_true",
        help="memoize finished sections on disk (re-runs are instant)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="result cache directory (default: $REPRO_CACHE_DIR or "
        "~/.cache/hotspots-repro)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="skip sections a previous interrupted run already "
        "completed, per the campaign journal; implies --cache",
    )
    parser.add_argument(
        "--journal-dir",
        default=None,
        help="campaign journal directory (default: $REPRO_JOURNAL_DIR "
        "or ~/.cache/hotspots-repro/journals); implies --cache",
    )
    args = parser.parse_args()

    cache = None
    if args.cache or args.cache_dir or args.resume or args.journal_dir:
        cache = ResultCache(args.cache_dir)

    failures = []
    for experiment_id, overrides in FULL_SCALE:
        experiment = registry.get(experiment_id)
        banner(experiment.title)
        start = time.time()
        campaign = experiment.run(
            trials=1,
            workers=args.workers,
            cache=cache,
            retry=args.retries,
            timeout=args.timeout,
            journal_dir=args.journal_dir,
            resume=args.resume,
            raise_on_failure=False,
            **overrides,
        )
        print(f"[{experiment_id}: {time.time() - start:.1f}s]", flush=True)
        print(campaign.formatted(), flush=True)
        report = campaign.report
        if experiment_id == "figure5a" and (report is None or report.ok):
            # The same outbreak yields both 5(a) and 5(b).
            print(figure5.format_detection(campaign.result), flush=True)
        if report is not None and not report.uneventful:
            print(f"[runner] {report.describe()}", file=sys.stderr, flush=True)
        if report is not None and not report.ok:
            failures.append(experiment_id)

    if failures:
        print(
            f"[runner] {len(failures)} section(s) failed after retries: "
            f"{', '.join(failures)}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
