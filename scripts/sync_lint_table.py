"""Keep the DESIGN.md checker reference table in sync.

The table between the ``<!-- lint-checks:begin/end -->`` markers in
DESIGN.md §4.6 is generated from the checker registry (the same
output as ``hotspots lint --list-checks --markdown``).

Usage::

    python scripts/sync_lint_table.py --check   # CI: fail if stale
    python scripts/sync_lint_table.py --write   # regenerate in place

Exit status: 0 when current (or after a successful write), 1 when
``--check`` finds the committed table stale, 2 on marker errors.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.lint.cli import list_checks_markdown  # noqa: E402

BEGIN = "<!-- lint-checks:begin -->"
END = "<!-- lint-checks:end -->"
_BLOCK = re.compile(
    re.escape(BEGIN) + r".*?" + re.escape(END), flags=re.DOTALL
)


def render_block() -> str:
    return f"{BEGIN}\n{list_checks_markdown()}\n{END}"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument(
        "--check",
        action="store_true",
        help="exit 1 if the committed table is stale",
    )
    mode.add_argument(
        "--write",
        action="store_true",
        help="regenerate the table in place",
    )
    parser.add_argument(
        "--design",
        type=Path,
        default=REPO_ROOT / "DESIGN.md",
        help="path to DESIGN.md (default: repo root)",
    )
    args = parser.parse_args(argv)

    text = args.design.read_text(encoding="utf-8")
    if BEGIN not in text or END not in text:
        print(
            f"sync_lint_table: markers {BEGIN!r}/{END!r} not found in "
            f"{args.design}",
            file=sys.stderr,
        )
        return 2

    updated = _BLOCK.sub(lambda _match: render_block(), text, count=1)
    if args.write:
        if updated != text:
            args.design.write_text(updated, encoding="utf-8")
            print(f"sync_lint_table: updated {args.design}")
        else:
            print("sync_lint_table: already current")
        return 0
    if updated != text:
        print(
            "sync_lint_table: DESIGN.md checker table is stale; run "
            "`python scripts/sync_lint_table.py --write`",
            file=sys.stderr,
        )
        return 1
    print("sync_lint_table: table is current")
    return 0


if __name__ == "__main__":
    sys.exit(main())
