"""Outbreak simulation: NATed CodeRedII vs three sensor placements.

A scaled-down Figure 5(c): release a CodeRedII-type worm over a
clustered vulnerable population with 15% of hosts NATed at 192.168/16
addresses, and watch how three sensor deployments race the infection:

* 3,000 random /24 sensors across the whole IPv4 space;
* 3,000 random /24 sensors inside the top-20 populated /8s;
* one /24 sensor in each /16 of 192/8 (except 192.168/16).

Usage::

    python examples/outbreak_detection.py
"""

from repro.experiments import figure5
from repro.population.synthesis import PopulationSpec


def main() -> None:
    spec = PopulationSpec(
        total_hosts=30_000,
        num_slash8=20,
        num_slash16=1_000,
        anchors=((0, 0.0), (10, 0.106), (100, 0.5049), (1000, 1.0)),
        major_slash8s=10,
        major_share=0.94,
    )
    print("Simulating a NATed CodeRedII-type outbreak (scaled population)...")
    result = figure5.run_nat_detection(
        population_spec=spec,
        num_random_sensors=3_000,
        max_time=900.0,
        stop_at_fraction=0.4,
        seed=2006,
    )
    print(figure5.format_nat_detection(result))

    print("\nAlert curves (fraction of sensors alerted over time):")
    milestones = [60, 180, 300, 600]
    header = "  time(s)      " + "".join(f"{t:>8}" for t in milestones)
    print(header)
    for placement in result.placements:
        row = "".join(
            f"{placement.timeline.fraction_at(t):>8.1%}" for t in milestones
        )
        print(f"  {placement.name:<13}{row}")

    print(
        "\nThe environmental hotspot (NAT leakage into 192/8) makes a "
        "handful of well-placed local sensors worth more than thousands "
        "of random ones — the paper's closing argument for local "
        "detection."
    )


if __name__ == "__main__":
    main()
