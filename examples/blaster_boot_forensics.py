"""Blaster boot-time forensics: from hotspot /24s back to reboots.

Replays the paper's Section 4.2.2 analysis:

1. model ``GetTickCount()`` seeds for a Blaster population (boot ≈30 s
   plus a minutes-scale service-launch delay, quantized to the ~16 ms
   tick resolution);
2. fast-forward every host's sequential sweep and find the /24s of a
   dark /17 that observe the most unique sources;
3. invert the hot /24s through the decompiled seed-to-target map and
   recover the worm-start times that explain them.

Usage::

    python examples/blaster_boot_forensics.py
"""


from repro.experiments import figure1


def main() -> None:
    print("Modelling 1,000,000 Blaster hosts (this takes a few seconds)...")
    result = figure1.run(num_hosts=1_000_000, seed=2003)

    counts = result.unique_sources
    print(f"\nMonitored dark block: {result.block} ({len(counts)} /24 bins)")
    print(
        f"unique sources per /24: min={counts.min()} max={counts.max()} "
        f"mean={counts.mean():.1f} gini={result.hotspots.gini:.3f}"
    )

    # A terminal-friendly sparkline of the histogram.
    blocks = " ▁▂▃▄▅▆▇█"
    top = max(counts.max(), 1)
    line = "".join(blocks[int(c * (len(blocks) - 1) / top)] for c in counts)
    print(f"per-/24 histogram: |{line}|")

    low, high = result.plausible_window_minutes
    print(
        f"\nSpike /24s invert to worm-start times of "
        f"{[round(m, 1) for m in result.spike_boot_minutes]} minutes "
        f"(reboot-plausible window: {low:.1f}-{high:.1f} min)."
    )
    print(
        f"Cold /24s invert to {[round(m, 1) for m in result.cold_boot_minutes]} "
        "minutes — improbable uptimes, exactly the paper's cross-check."
    )
    print(
        f"\nspikes plausible? {result.spikes_have_plausible_start_times}   "
        f"cold bins implausible? {result.cold_bins_look_implausible}"
    )


if __name__ == "__main__":
    main()
