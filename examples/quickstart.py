"""Quickstart: generate worm scan traffic and measure its hotspots.

Runs each of the paper's worm models for one infected host, bins the
targets by first octet (/8), and prints hotspot metrics against the
uniform-scanning baseline.

Usage::

    python examples/quickstart.py
"""

import numpy as np

from repro import (
    BlasterWorm,
    BlockSet,
    CodeRedIIWorm,
    HitListWorm,
    SlammerWorm,
    UniformScanWorm,
    hotspot_report,
    parse_addr,
)


def main() -> None:
    rng = np.random.default_rng(7)
    source = parse_addr("141.212.55.99")
    scans = 200_000

    worms = [
        UniformScanWorm(),
        CodeRedIIWorm(),
        SlammerWorm(),
        BlasterWorm(),
        HitListWorm(BlockSet.parse(["128.32.0.0/16", "194.27.0.0/16"])),
    ]

    print(f"{'worm':<28} {'gini':>6} {'entropy':>8} {'peak/mean':>10}")
    for worm in worms:
        targets = worm.single_host_targets(source, scans, rng)
        per_slash8 = np.bincount(targets >> 24, minlength=256)
        report = hotspot_report(per_slash8)
        print(
            f"{worm.name:<28} {report.gini:>6.3f} "
            f"{report.normalized_entropy:>8.3f} {report.peak_to_mean:>10.1f}"
        )

    print()
    print(
        "Uniform scanning is flat (gini≈0); every real worm deviates —\n"
        "those deviations are the paper's hotspots."
    )


if __name__ == "__main__":
    main()
