"""Slammer PRNG forensics: cycles, per-host bias, block predictions.

Walks through the paper's Section 4.2.3 analysis:

1. derive the broken ``b`` values from the OR-for-XOR bug;
2. compute the complete cycle decomposition analytically (64 cycles);
3. show a host stuck in a short cycle behaving like targeted DoS;
4. predict which sensor blocks observe more unique sources, and
   verify with a bit-exact host replay.

Usage::

    python examples/slammer_forensics.py
"""

import numpy as np

from repro.analysis.slammer_cycles import (
    expected_unique_sources_per_slash24,
    slash16_observation_scores,
)
from repro.prng.cycles import cycle_structure
from repro.prng.lcg import LCG
from repro.worms.slammer import (
    SLAMMER_A,
    SLAMMER_B_VALUES,
    SLAMMER_INTENDED_B,
    SQLSORT_IAT_VALUES,
    state_to_address,
)


def main() -> None:
    print("The OR-for-XOR bug corrupts the LCG increment:")
    print(f"  intended b = {SLAMMER_INTENDED_B:#010x}")
    for iat, b in zip(SQLSORT_IAT_VALUES, SLAMMER_B_VALUES):
        print(f"  sqlsort IAT {iat:#010x}  ->  effective b = {b:#010x}")

    print("\nCycle decomposition (analytic, verified by brute force in tests):")
    for b in SLAMMER_B_VALUES:
        structure = cycle_structure(SLAMMER_A, b, bits=32)
        lengths = structure.cycle_lengths
        short = sum(1 for length in lengths if length <= 1_000)
        print(
            f"  b={b:#010x}: {structure.total_cycles} cycles, "
            f"min={lengths[0]}, max={lengths[-1]:,}, short(<=1000)={short}"
        )

    # A host trapped in a short cycle: targeted-DoS behaviour.
    b = SLAMMER_B_VALUES[1]
    structure = cycle_structure(SLAMMER_A, b, bits=32)
    short_cycle = next(info for info in structure.cycles if 1 < info.length <= 64)
    lcg = LCG(SLAMMER_A, b, seed=short_cycle.representative)
    states = lcg.stream_fast(10_000)
    addrs = state_to_address(states.astype(np.uint32))
    print(
        f"\nA host seeded on a {short_cycle.length}-state cycle probes only "
        f"{len(np.unique(addrs))} distinct addresses in 10,000 packets —"
    )
    print("  'appearing very much like a targeted denial of service attack'.")

    # Block-level prediction: hottest vs coldest /16 position.
    scores = slash16_observation_scores(probes_per_host=4_000_000)
    hot, cold = int(np.argmax(scores)), int(np.argmin(scores))

    def describe(low16: int) -> str:
        prefix = np.array(
            [((low16 & 0xFF) << 16) | ((low16 >> 8) << 8)], dtype=np.uint32
        )
        expected = expected_unique_sources_per_slash24(
            prefix, num_hosts=75_000, probes_per_host=4_000_000
        )[0]
        return (
            f"{low16 & 0xFF}.{(low16 >> 8) & 0xFF}.0.0/16 -> "
            f"E[unique sources per /24] = {expected:,.0f}"
        )

    print("\nWhere to expect Slammer hotspots (75,000 infected hosts):")
    print(f"  hottest /16: {describe(hot)}")
    print(f"  coldest /16: {describe(cold)}")
    print(
        "\nBlocks whose first octets pin short cycles observe fewer unique\n"
        "sources — the paper's H-block deficit."
    )


if __name__ == "__main__":
    main()
