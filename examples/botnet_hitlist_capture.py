"""Bot-command capture: from IRC payloads to hit-list worms.

Replays the paper's Table 1 methodology end to end:

1. synthesize a month of IRC traffic on a /15 academic network, with
   bot controllers issuing propagation commands amid chatter;
2. signature-match and parse the scan commands;
3. print them anonymized, the way the paper's Table 1 does;
4. turn one command into a live hit-list worm and confirm its probes
   never leave the commanded prefix.

Usage::

    python examples/botnet_hitlist_capture.py
"""

import numpy as np

from repro.botnet import (
    BotController,
    anonymize_command,
    extract_commands,
    synthesize_capture,
)
from repro.net.address import format_addr, parse_addrs


def main() -> None:
    rng = np.random.default_rng(2004)

    capture = synthesize_capture(
        num_bots=11, commands_per_bot=(1, 3), rng=rng, chatter_ratio=15.0
    )
    print(f"Synthetic capture: {len(capture)} payload lines")

    extracted = extract_commands(capture)
    print(f"Commands recovered by signature matching: {len(extracted)}\n")

    print("Bot Propagation Command (anonymized, Table 1 style)")
    for _, command in extracted:
        print(f"  {anonymize_command(command)}")

    restricted = [
        command
        for _, command in extracted
        if command.hitlist_block().prefix_len >= 8
    ]
    print(
        f"\n{len(restricted)}/{len(extracted)} commands restrict scanning "
        "to a subnet — hit-lists in the wild."
    )

    # Execute one command with a small botnet.
    controller = BotController(
        parse_addrs(["141.212.1.10", "141.212.3.20", "141.212.9.30"])
    )
    command = controller.issue("ipscan 194.27.x.x dcom2 -s")
    targets = controller.scan_targets(command, scans_per_bot=5_000, rng=rng)
    block = command.hitlist_block()
    inside = block.contains_array(targets).all()
    print(
        f"\nExecuted {command.render()!r} on {controller.size} bots: "
        f"{targets.size:,} probes, all inside {block}? {inside}"
    )
    print(f"  sample targets: {[format_addr(t) for t in targets[0, :3]]}")


if __name__ == "__main__":
    main()
