"""Tests for repro.env.failures."""

import numpy as np
import pytest

from repro.env.failures import LossModel, RegionLoss
from repro.net.cidr import CIDRBlock


class TestRegionLoss:
    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            RegionLoss(CIDRBlock.parse("10.0.0.0/8"), 1.5)


class TestLossModel:
    def test_no_loss_by_default(self):
        model = LossModel()
        targets = np.arange(1000, dtype=np.uint32)
        assert model.deliverable(targets, np.random.default_rng(0)).all()

    def test_rejects_bad_base_rate(self):
        with pytest.raises(ValueError):
            LossModel(base_rate=-0.1)

    def test_base_rate_applied(self):
        model = LossModel(base_rate=0.3)
        targets = np.zeros(100_000, dtype=np.uint32)
        survived = model.deliverable(targets, np.random.default_rng(1)).mean()
        assert survived == pytest.approx(0.7, abs=0.01)

    def test_total_loss(self):
        model = LossModel(base_rate=1.0)
        targets = np.arange(100, dtype=np.uint32)
        assert not model.deliverable(targets, np.random.default_rng(2)).any()

    def test_region_loss_only_in_region(self):
        region = CIDRBlock.parse("10.0.0.0/8")
        model = LossModel(region_losses=[RegionLoss(region, 0.5)])
        rng = np.random.default_rng(3)
        inside = region.random_addresses(50_000, rng)
        outside = CIDRBlock.parse("20.0.0.0/8").random_addresses(50_000, rng)
        assert model.deliverable(outside, rng).all()
        inside_rate = model.deliverable(inside, rng).mean()
        assert inside_rate == pytest.approx(0.5, abs=0.01)

    def test_losses_compose(self):
        region = CIDRBlock.parse("10.0.0.0/8")
        model = LossModel(base_rate=0.2, region_losses=[RegionLoss(region, 0.5)])
        rng = np.random.default_rng(4)
        inside = region.random_addresses(100_000, rng)
        rate = model.deliverable(inside, rng).mean()
        assert rate == pytest.approx(0.8 * 0.5, abs=0.01)

    def test_delivery_probability_analytic(self):
        region = CIDRBlock.parse("10.0.0.0/8")
        model = LossModel(base_rate=0.2, region_losses=[RegionLoss(region, 0.5)])
        targets = np.array(
            [CIDRBlock.parse("10.0.0.0/8").first, CIDRBlock.parse("20.0.0.0/8").first],
            dtype=np.uint32,
        )
        probs = model.delivery_probability(targets)
        assert probs[0] == pytest.approx(0.4)
        assert probs[1] == pytest.approx(0.8)
