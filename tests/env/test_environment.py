"""Tests for repro.env.environment — the composed stack."""

import numpy as np
import pytest

from repro.env.environment import NetworkEnvironment
from repro.env.failures import LossModel
from repro.env.filtering import FilterRule, FilteringPolicy
from repro.env.nat import NATDeployment
from repro.net.address import parse_addrs
from repro.net.cidr import CIDRBlock


@pytest.fixture()
def environment():
    nat = NATDeployment(parse_addrs(["192.168.0.10"]))
    policy = FilteringPolicy([FilterRule("egress", CIDRBlock.parse("155.0.0.0/8"))])
    return NetworkEnvironment(nat=nat, policy=policy, loss=LossModel(base_rate=0.0))


class TestDeliverable:
    def test_plain_public_probe_delivered(self, environment):
        ok = environment.deliverable(
            parse_addrs(["1.1.1.1"]), parse_addrs(["2.2.2.2"]), np.random.default_rng(0)
        )
        assert ok[0]

    def test_unroutable_target_dropped(self, environment):
        for target in ["127.0.0.1", "224.0.0.1", "240.0.0.1"]:
            ok = environment.deliverable(
                parse_addrs(["1.1.1.1"]), parse_addrs([target]), np.random.default_rng(0)
            )
            assert not ok[0], target

    def test_nat_blocked(self, environment):
        ok = environment.deliverable(
            parse_addrs(["1.1.1.1"]),
            parse_addrs(["192.168.0.10"]),
            np.random.default_rng(0),
        )
        assert not ok[0]

    def test_egress_filtered(self, environment):
        ok = environment.deliverable(
            parse_addrs(["155.1.1.1"]), parse_addrs(["2.2.2.2"]), np.random.default_rng(0)
        )
        assert not ok[0]

    def test_default_environment_is_open_internet(self):
        env = NetworkEnvironment()
        ok = env.deliverable(
            parse_addrs(["1.1.1.1"]), parse_addrs(["2.2.2.2"]), np.random.default_rng(0)
        )
        assert ok[0]


class TestVerdicts:
    def test_attribution_layers(self, environment):
        sources = parse_addrs(["1.1.1.1", "1.1.1.1", "155.1.1.1", "2.2.2.2"])
        targets = parse_addrs(["224.0.0.1", "192.168.0.10", "9.9.9.9", "8.8.8.8"])
        ok, verdict = environment.verdicts(sources, targets, np.random.default_rng(0))
        assert verdict.total == 4
        assert verdict.unroutable == 1
        assert verdict.nat_blocked == 1
        assert verdict.filtered == 1
        assert verdict.delivered == 1
        assert verdict.lost == 0
        assert list(ok) == [False, False, False, True]

    def test_loss_attribution(self):
        env = NetworkEnvironment(loss=LossModel(base_rate=1.0))
        ok, verdict = env.verdicts(
            parse_addrs(["1.1.1.1"]), parse_addrs(["2.2.2.2"]), np.random.default_rng(0)
        )
        assert not ok[0]
        assert verdict.lost == 1

    def test_counts_sum_to_total(self, environment):
        rng = np.random.default_rng(1)
        sources = rng.integers(0, 2**32, size=1000, dtype=np.uint64).astype(np.uint32)
        targets = rng.integers(0, 2**32, size=1000, dtype=np.uint64).astype(np.uint32)
        _, verdict = environment.verdicts(sources, targets, rng)
        total = (
            verdict.delivered
            + verdict.unroutable
            + verdict.nat_blocked
            + verdict.filtered
            + verdict.lost
        )
        assert total == verdict.total == 1000

    def test_private_targets_blocked_from_public_sources(self, environment):
        # RFC 1918 space is unroutable publicly; the NAT layer rejects
        # probes to private targets unless realms match.
        ok, verdict = environment.verdicts(
            parse_addrs(["1.1.1.1"]), parse_addrs(["10.1.2.3"]), np.random.default_rng(0)
        )
        assert not ok[0]
        assert verdict.nat_blocked == 1
