"""Tests for repro.env.topology."""

import numpy as np
import pytest

from repro.env.topology import LatencyModel, RegionLink, Topology
from repro.net.cidr import CIDRBlock


BROADBAND = CIDRBlock.parse("24.0.0.0/8")
ACADEMIC = CIDRBlock.parse("141.0.0.0/8")


class TestRegionLink:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            RegionLink(BROADBAND, -1.0, 100.0)
        with pytest.raises(ValueError):
            RegionLink(BROADBAND, 10.0, 0.0)


class TestLatencyModel:
    def test_base_latency_floor(self):
        model = LatencyModel(base_ms=50.0, jitter_ms=0.0)
        lat = model.sample_latency_ms(
            np.zeros(10, dtype=np.uint32),
            np.ones(10, dtype=np.uint32),
            np.random.default_rng(0),
        )
        assert (lat == 50.0).all()  # bitwise

    def test_region_latency_added_for_source_and_target(self):
        model = LatencyModel(
            base_ms=10.0,
            jitter_ms=0.0,
            region_links=[RegionLink(BROADBAND, 30.0, 100.0)],
        )
        src = np.array([BROADBAND.first], dtype=np.uint32)
        dst = np.array([BROADBAND.first + 1], dtype=np.uint32)
        lat = model.sample_latency_ms(src, dst, np.random.default_rng(1))
        assert lat[0] == pytest.approx(10.0 + 30.0 + 30.0)

    def test_jitter_positive_skew(self):
        model = LatencyModel(base_ms=10.0, jitter_ms=20.0)
        lat = model.sample_latency_ms(
            np.zeros(10_000, dtype=np.uint32),
            np.ones(10_000, dtype=np.uint32),
            np.random.default_rng(2),
        )
        assert (lat >= 10.0).all()
        assert lat.mean() == pytest.approx(30.0, rel=0.05)

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            LatencyModel(base_ms=-1.0)


class TestTopology:
    def test_default_rate(self):
        topo = Topology(default_scan_rate=10.0)
        rates = topo.scan_rates(np.arange(5, dtype=np.uint32))
        assert (rates == 10.0).all()  # bitwise

    def test_bandwidth_cap_applies_in_region(self):
        topo = Topology(
            default_scan_rate=4000.0,
            region_links=[RegionLink(BROADBAND, 10.0, 100.0)],
        )
        hosts = np.array([BROADBAND.first, ACADEMIC.first], dtype=np.uint32)
        rates = topo.scan_rates(hosts)
        assert rates[0] == 100.0  # bitwise
        assert rates[1] == 4000.0  # bitwise

    def test_cap_never_raises_rate(self):
        topo = Topology(
            default_scan_rate=10.0,
            region_links=[RegionLink(BROADBAND, 10.0, 100.0)],
        )
        rates = topo.scan_rates(np.array([BROADBAND.first], dtype=np.uint32))
        assert rates[0] == 10.0  # bitwise

    def test_rejects_bad_default(self):
        with pytest.raises(ValueError):
            Topology(default_scan_rate=0.0)
