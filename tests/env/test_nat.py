"""Tests for repro.env.nat."""

import numpy as np
import pytest

from repro.env.nat import NO_REALM, NATDeployment
from repro.net.address import parse_addrs


@pytest.fixture()
def two_realm_deployment():
    # Realm 0: 192.168.0.10 and 192.168.0.11; realm 1: 192.168.0.20.
    hosts = parse_addrs(["192.168.0.10", "192.168.0.11", "192.168.0.20"])
    return NATDeployment(hosts, np.array([0, 0, 1]))


class TestRealmAssignment:
    def test_realm_of_known_hosts(self, two_realm_deployment):
        realms = two_realm_deployment.realm_of(
            parse_addrs(["192.168.0.10", "192.168.0.20"])
        )
        assert realms[0] != realms[1]

    def test_public_hosts_have_no_realm(self, two_realm_deployment):
        realms = two_realm_deployment.realm_of(parse_addrs(["8.8.8.8"]))
        assert realms[0] == NO_REALM

    def test_default_realms_are_distinct(self):
        deployment = NATDeployment(parse_addrs(["192.168.0.1", "192.168.0.2"]))
        realms = deployment.realm_of(parse_addrs(["192.168.0.1", "192.168.0.2"]))
        assert realms[0] != realms[1]

    def test_rejects_duplicate_hosts(self):
        with pytest.raises(ValueError):
            NATDeployment(parse_addrs(["192.168.0.1", "192.168.0.1"]))

    def test_rejects_misaligned_realms(self):
        with pytest.raises(ValueError):
            NATDeployment(parse_addrs(["192.168.0.1"]), np.array([0, 1]))

    def test_empty_deployment(self):
        deployment = NATDeployment.empty()
        assert deployment.num_hosts == 0
        assert deployment.realm_of(parse_addrs(["192.168.0.1"]))[0] == NO_REALM


class TestReachability:
    def test_private_to_public_allowed(self, two_realm_deployment):
        ok = two_realm_deployment.deliverable(
            parse_addrs(["192.168.0.10"]), parse_addrs(["8.8.8.8"])
        )
        assert ok[0]

    def test_same_realm_private_allowed(self, two_realm_deployment):
        ok = two_realm_deployment.deliverable(
            parse_addrs(["192.168.0.10"]), parse_addrs(["192.168.0.11"])
        )
        assert ok[0]

    def test_cross_realm_private_blocked(self, two_realm_deployment):
        ok = two_realm_deployment.deliverable(
            parse_addrs(["192.168.0.10"]), parse_addrs(["192.168.0.20"])
        )
        assert not ok[0]

    def test_public_to_private_blocked(self, two_realm_deployment):
        ok = two_realm_deployment.deliverable(
            parse_addrs(["8.8.8.8"]), parse_addrs(["192.168.0.10"])
        )
        assert not ok[0]

    def test_probe_to_unoccupied_private_address_blocked(self, two_realm_deployment):
        ok = two_realm_deployment.deliverable(
            parse_addrs(["8.8.8.8"]), parse_addrs(["10.1.2.3"])
        )
        assert not ok[0]

    def test_public_to_public_always_passes_this_layer(self, two_realm_deployment):
        ok = two_realm_deployment.deliverable(
            parse_addrs(["8.8.8.8"]), parse_addrs(["9.9.9.9"])
        )
        assert ok[0]

    def test_batch_semantics(self, two_realm_deployment):
        sources = parse_addrs(["192.168.0.10", "192.168.0.10", "8.8.8.8"])
        targets = parse_addrs(["192.168.0.11", "192.168.0.20", "1.1.1.1"])
        ok = two_realm_deployment.deliverable(sources, targets)
        assert list(ok) == [True, False, True]


class TestStatisticalModel:
    def test_any_private_source_reaches_private_slots(self):
        hosts = parse_addrs(["192.168.0.10", "192.168.5.77"])
        deployment = NATDeployment(hosts, intra_private_model="statistical")
        ok = deployment.deliverable(
            parse_addrs(["192.168.9.9"]), parse_addrs(["192.168.5.77"])
        )
        assert ok[0]

    def test_public_source_still_blocked(self):
        hosts = parse_addrs(["192.168.0.10"])
        deployment = NATDeployment(hosts, intra_private_model="statistical")
        ok = deployment.deliverable(
            parse_addrs(["8.8.8.8"]), parse_addrs(["192.168.0.10"])
        )
        assert not ok[0]

    def test_rejects_unknown_model(self):
        with pytest.raises(ValueError):
            NATDeployment(parse_addrs(["192.168.0.1"]), intra_private_model="bogus")
