"""Compiled policy kernel vs the first-match-wins reference scan."""

import numpy as np

from repro.env.filtering import FilterAction, FilterRule, FilteringPolicy
from repro.net.cidr import CIDRBlock
from repro.net.kernels import kernel_override


def random_policy(rng):
    rules = []
    for _ in range(int(rng.integers(1, 10))):
        prefix_len = int(rng.integers(4, 25))
        region = CIDRBlock.containing(int(rng.integers(0, 1 << 32)), prefix_len)
        rules.append(
            FilterRule(
                direction=str(rng.choice(["egress", "ingress"])),
                region=region,
                action=(
                    FilterAction.ALLOW
                    if rng.random() < 0.3
                    else FilterAction.DROP
                ),
                worm=str(rng.choice(["", "slammer", "blaster"])) or None,
            )
        )
    if rng.random() < 0.5 and rules:
        # Nest a region inside an existing one: exercises the
        # cumulative-mask containment logic.
        outer = rules[0].region
        inner_len = min(outer.prefix_len + 6, 30)
        rules.append(
            FilterRule(
                direction="egress",
                region=CIDRBlock.containing(outer.first, inner_len),
            )
        )
    return FilteringPolicy(rules)


def batches(rng, policy, size=4000):
    sources = rng.integers(0, 1 << 32, size=size, dtype=np.uint64)
    targets = rng.integers(0, 1 << 32, size=size, dtype=np.uint64)
    # Aim some traffic at rule regions from both sides so matches occur.
    for offset, rule in enumerate(policy.rules):
        span = rule.region.last - rule.region.first + 1
        lo = offset * 100
        sources[lo : lo + 50] = rule.region.first + rng.integers(
            0, span, size=50, dtype=np.uint64
        )
        targets[lo + 50 : lo + 100] = rule.region.first + rng.integers(
            0, span, size=50, dtype=np.uint64
        )
    return sources.astype(np.uint32), targets.astype(np.uint32)


def test_kernel_matches_reference_scan():
    rng = np.random.default_rng(2006)
    for _ in range(40):
        policy = random_policy(rng)
        sources, targets = batches(rng, policy)
        for worm in (None, "slammer", "blaster"):
            expected = policy._deliverable_reference(sources, targets, worm)
            actual = policy.deliverable(sources, targets, worm=worm)
            assert np.array_equal(expected, actual)


def test_kernel_override_forces_reference_path():
    policy = FilteringPolicy([FilterRule("egress", CIDRBlock.parse("10.0.0.0/8"))])
    sources = np.array([0x0A000001], dtype=np.uint32)
    targets = np.array([0xC0000001], dtype=np.uint32)
    with kernel_override(False):
        assert not policy.deliverable(sources, targets)[0]
        assert not policy._kernels
    assert not policy.deliverable(sources, targets)[0]
    assert policy._kernels


def test_kernel_invalidated_by_rule_mutation():
    policy = FilteringPolicy([FilterRule("egress", CIDRBlock.parse("10.0.0.0/8"))])
    sources = np.array([0x14000001], dtype=np.uint32)
    targets = np.array([0xC0000001], dtype=np.uint32)
    assert policy.deliverable(sources, targets)[0]
    policy.add(FilterRule("egress", CIDRBlock.parse("20.0.0.0/8")))
    assert not policy.deliverable(sources, targets)[0]
    # Direct list mutation (not via add) must also invalidate.
    policy.rules.insert(
        0,
        FilterRule(
            "egress", CIDRBlock.parse("20.0.0.0/8"), action=FilterAction.ALLOW
        ),
    )
    assert policy.deliverable(sources, targets)[0]


def test_empty_policy_allows_everything():
    policy = FilteringPolicy()
    targets = np.arange(10, dtype=np.uint32)
    assert policy.deliverable(targets, targets).all()
