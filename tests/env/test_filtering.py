"""Tests for repro.env.filtering."""

import pytest

from repro.env.filtering import FilterAction, FilterRule, FilteringPolicy
from repro.net.address import parse_addrs
from repro.net.cidr import CIDRBlock


ENTERPRISE = CIDRBlock.parse("155.0.0.0/8")
DARKNET = CIDRBlock.parse("192.5.0.0/16")


class TestFilterRule:
    def test_rejects_unknown_direction(self):
        with pytest.raises(ValueError):
            FilterRule("sideways", ENTERPRISE)

    def test_egress_matches_inside_to_outside(self):
        rule = FilterRule("egress", ENTERPRISE)
        matched = rule.matches(
            parse_addrs(["155.1.2.3", "155.1.2.3", "8.8.8.8"]),
            parse_addrs(["8.8.8.8", "155.9.9.9", "8.8.4.4"]),
            worm=None,
        )
        assert list(matched) == [True, False, False]

    def test_ingress_matches_outside_to_inside(self):
        rule = FilterRule("ingress", DARKNET)
        matched = rule.matches(
            parse_addrs(["8.8.8.8", "192.5.0.1"]),
            parse_addrs(["192.5.1.1", "192.5.2.2"]),
            worm=None,
        )
        assert list(matched) == [True, False]

    def test_worm_specific_rule(self):
        rule = FilterRule("ingress", DARKNET, worm="slammer")
        sources = parse_addrs(["8.8.8.8"])
        targets = parse_addrs(["192.5.1.1"])
        assert rule.matches(sources, targets, worm="slammer")[0]
        assert not rule.matches(sources, targets, worm="blaster")[0]
        assert not rule.matches(sources, targets, worm=None)[0]


class TestFilteringPolicy:
    def test_empty_policy_allows_everything(self):
        policy = FilteringPolicy()
        ok = policy.deliverable(parse_addrs(["1.2.3.4"]), parse_addrs(["5.6.7.8"]))
        assert ok[0]

    def test_egress_drop(self):
        policy = FilteringPolicy([FilterRule("egress", ENTERPRISE)])
        ok = policy.deliverable(
            parse_addrs(["155.1.1.1", "154.1.1.1"]),
            parse_addrs(["8.8.8.8", "8.8.8.8"]),
        )
        assert list(ok) == [False, True]

    def test_internal_traffic_not_egress_filtered(self):
        # Infected hosts inside a filtered enterprise can still infect
        # other internal hosts — the paper's point about firewalls
        # leaving internal spread possible.
        policy = FilteringPolicy([FilterRule("egress", ENTERPRISE)])
        ok = policy.deliverable(
            parse_addrs(["155.1.1.1"]), parse_addrs(["155.2.2.2"])
        )
        assert ok[0]

    def test_first_match_wins_allow_overrides_later_drop(self):
        exempt = CIDRBlock.parse("155.7.0.0/16")
        policy = FilteringPolicy(
            [
                FilterRule("egress", exempt, action=FilterAction.ALLOW),
                FilterRule("egress", ENTERPRISE),
            ]
        )
        ok = policy.deliverable(
            parse_addrs(["155.7.0.1", "155.8.0.1"]),
            parse_addrs(["8.8.8.8", "8.8.8.8"]),
        )
        assert list(ok) == [True, False]

    def test_worm_specific_policy(self):
        # The M block's upstream provider filtered Slammer only.
        policy = FilteringPolicy([FilterRule("ingress", DARKNET, worm="slammer")])
        sources = parse_addrs(["8.8.8.8"])
        targets = parse_addrs(["192.5.1.1"])
        assert not policy.deliverable(sources, targets, worm="slammer")[0]
        assert policy.deliverable(sources, targets, worm="codered2")[0]

    def test_enterprise_convenience_constructor(self):
        policy = FilteringPolicy.egress_filtered_enterprises(
            [ENTERPRISE, CIDRBlock.parse("156.0.0.0/8")]
        )
        assert len(policy.rules) == 2
        ok = policy.deliverable(parse_addrs(["156.0.0.1"]), parse_addrs(["8.8.8.8"]))
        assert not ok[0]

    def test_add_appends_rule(self):
        policy = FilteringPolicy()
        policy.add(FilterRule("egress", ENTERPRISE))
        assert len(policy.rules) == 1

    def test_filtered_regions_reporting(self):
        policy = FilteringPolicy([FilterRule("egress", ENTERPRISE)])
        assert ENTERPRISE in policy.filtered_regions.blocks
