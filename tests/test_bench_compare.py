"""The perf-baseline ``--compare`` gate: regression + equivalence logic.

The CI smoke exercises the gate end-to-end (fresh run vs a quick
baseline); these tests pin down the pure comparison semantics —
what counts as a gated metric, where the tolerance floor sits, and
that an equivalence failure can never pass.
"""

import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "scripts"))

from bench_baseline import _gated_metrics, compare_reports  # noqa: E402


def report(fused_tps=100.0, ref_tps=50.0, equivalent=True, **extra):
    body = {
        "fused_ticks_per_s": fused_tps,
        "reference_ticks_per_s": ref_tps,
        "fused_s": 1.0,
        "equivalent": equivalent,
    }
    body.update(extra)
    return {
        "suite": "engine",
        "mode": "quick",
        "fused": body,
        "equivalent": equivalent,
    }


def test_gated_metrics_skip_reference_and_non_throughput():
    metrics = _gated_metrics(report(fused_probes_per_s=7.0))
    assert metrics == {
        "fused.fused_ticks_per_s": 100.0,
        "fused.fused_probes_per_s": 7.0,
    }


def test_identical_reports_pass():
    assert compare_reports(report(), report(), tolerance=0.20) == []


def test_drop_within_tolerance_passes():
    assert compare_reports(report(100.0), report(85.0), 0.20) == []


def test_drop_beyond_tolerance_fails():
    problems = compare_reports(report(100.0), report(75.0), 0.20)
    assert len(problems) == 1
    assert "fused.fused_ticks_per_s" in problems[0]


def test_reference_throughput_is_advisory():
    # Reference path 10x slower: machine noise, not a regression.
    assert compare_reports(report(ref_tps=500.0), report(ref_tps=50.0), 0.20) == []


def test_improvement_passes():
    assert compare_reports(report(100.0), report(300.0), 0.20) == []


def test_metric_missing_from_baseline_is_skipped():
    fresh = report()
    fresh["fused"]["fused_probes_per_s"] = 1.0  # renamed/new metric
    assert compare_reports(report(), fresh, 0.20) == []


def test_equivalence_failure_always_fails():
    problems = compare_reports(report(), report(equivalent=False), 0.20)
    assert any("equivalence" in problem for problem in problems)
