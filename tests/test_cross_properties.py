"""Cross-module property tests on the paper's core invariants.

Fast hypothesis checks tying layers together: environment composition,
worm/environment interaction, and the Slammer address/state duality.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.env.environment import NetworkEnvironment
from repro.env.filtering import FilterRule, FilteringPolicy
from repro.env.nat import NATDeployment
from repro.net.cidr import CIDRBlock
from repro.net.special import is_private, is_routable
from repro.prng.cycles import cycle_structure
from repro.worms.slammer import SLAMMER_A, address_to_state, state_to_address

addresses = st.integers(0, 2**32 - 1)


@given(st.lists(addresses, min_size=1, max_size=64))
def test_private_and_routable_are_disjoint(addrs):
    arr = np.array(addrs, dtype=np.uint32)
    assert not (is_private(arr) & is_routable(arr)).any()


@given(st.lists(addresses, min_size=1, max_size=32), st.integers(0, 2**32 - 1))
def test_environment_never_delivers_unroutable_specials(targets, source):
    env = NetworkEnvironment()
    rng = np.random.default_rng(0)
    target_arr = np.array(targets, dtype=np.uint32)
    source_arr = np.full(len(targets), source, dtype=np.uint32)
    delivered = env.deliverable(source_arr, target_arr, rng)
    first_octet = target_arr[delivered] >> 24
    assert not (first_octet == 127).any()
    assert not (first_octet >= 224).any()


@settings(max_examples=30)
@given(st.integers(0, 2**32 - 1), st.integers(0, 2**32 - 1))
def test_more_rules_never_deliver_more(source, target):
    """Adding a DROP rule can only shrink the deliverable set."""
    rng = np.random.default_rng(1)
    sources = np.array([source], dtype=np.uint32)
    targets = np.array([target], dtype=np.uint32)
    open_env = NetworkEnvironment()
    closed_env = NetworkEnvironment(
        policy=FilteringPolicy(
            [FilterRule("ingress", CIDRBlock.containing(target, 8))]
        )
    )
    open_ok = open_env.deliverable(sources, targets, rng)[0]
    closed_ok = closed_env.deliverable(sources, targets, rng)[0]
    assert (not closed_ok) or open_ok


@settings(max_examples=30)
@given(st.lists(addresses, min_size=1, max_size=16, unique=True))
def test_nat_strictness_ordering(addrs):
    """The strict realm model never delivers more than the statistical."""
    private_hosts = np.array(
        [(192 << 24) | (168 << 16) | (a & 0xFFFF) for a in addrs],
        dtype=np.uint32,
    )
    private_hosts = np.unique(private_hosts)
    strict = NATDeployment(private_hosts, intra_private_model="strict")
    statistical = NATDeployment(private_hosts, intra_private_model="statistical")
    rng = np.random.default_rng(2)
    sources = rng.choice(private_hosts, size=32)
    targets = rng.choice(private_hosts, size=32)
    strict_ok = strict.deliverable(sources, targets)
    statistical_ok = statistical.deliverable(sources, targets)
    assert not (strict_ok & ~statistical_ok).any()


@given(addresses)
def test_slammer_state_address_duality(value):
    """byteswap is an involution, so cycle statistics computed in
    state space equal those computed in address space."""
    arr = np.array([value], dtype=np.uint32)
    assert int(address_to_state(state_to_address(arr))[0]) == value
    assert int(state_to_address(address_to_state(arr))[0]) == value


@settings(max_examples=20)
@given(st.sampled_from([0x88215000, 0x8831FA24, 0x88336870]), addresses)
def test_cycle_length_invariant_along_orbit(b, seed):
    """Every state on an orbit reports the same cycle length."""
    structure = cycle_structure(SLAMMER_A, b, bits=32)
    length = structure.cycle_length_of_state(seed)
    successor = (SLAMMER_A * seed + b) % 2**32
    assert structure.cycle_length_of_state(successor) == length
    assert structure.cycle_id_of_state(seed) == structure.cycle_id_of_state(
        successor
    )
