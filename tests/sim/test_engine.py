"""Tests for repro.sim.engine."""

import numpy as np
import pytest

from repro.env.environment import NetworkEnvironment
from repro.env.failures import LossModel
from repro.env.filtering import FilterRule, FilteringPolicy
from repro.env.topology import RegionLink, Topology
from repro.net.cidr import BlockSet, CIDRBlock
from repro.population.model import HostPopulation
from repro.sensors.darknet import DarknetSensor
from repro.sensors.deployment import SensorGrid
from repro.sim.engine import EpidemicSimulator, SimulationConfig
from repro.worms.hitlist import HitListWorm


SPACE = CIDRBlock.parse("60.0.0.0/16")


def small_population(count=500, seed=0):
    rng = np.random.default_rng(seed)
    low = rng.choice(SPACE.size, size=count, replace=False)
    return HostPopulation((np.uint32(SPACE.network) + low).astype(np.uint32))


def hitlist_worm():
    return HitListWorm(BlockSet([SPACE]))


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"scan_rate": 0},
            {"tick_seconds": 0},
            {"max_time": 0},
            {"seed_count": 0},
            {"stop_at_fraction": 0.0},
            {"stop_at_fraction": 1.5},
            {"patch_rate": 1.0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            SimulationConfig(**kwargs)


class TestBasicOutbreak:
    def test_full_infection_in_closed_space(self):
        population = small_population()
        sim = EpidemicSimulator(hitlist_worm(), population)
        config = SimulationConfig(
            scan_rate=20.0, max_time=2000.0, seed_count=5, stop_at_fraction=1.0
        )
        result = sim.run(config, np.random.default_rng(1))
        assert result.final_fraction_infected == 1.0  # bitwise
        assert result.population_size == 500

    def test_infection_counts_monotone(self):
        population = small_population()
        sim = EpidemicSimulator(hitlist_worm(), population)
        config = SimulationConfig(scan_rate=10.0, max_time=300.0, seed_count=5)
        result = sim.run(config, np.random.default_rng(2))
        assert (np.diff(result.infected_counts) >= 0).all()

    def test_seed_count_respected(self):
        population = small_population()
        sim = EpidemicSimulator(hitlist_worm(), population)
        config = SimulationConfig(scan_rate=0.1, max_time=1.0, seed_count=7)
        result = sim.run(config, np.random.default_rng(3))
        assert result.infected_counts[0] >= 7
        assert len(result.infection_times) >= 7
        assert (result.infection_times[:7] == 0.0).all()  # bitwise

    def test_explicit_seeds(self):
        population = small_population()
        seeds = population.addresses()[:3]
        sim = EpidemicSimulator(hitlist_worm(), population)
        config = SimulationConfig(scan_rate=0.1, max_time=1.0)
        result = sim.run(config, np.random.default_rng(4), seed_addrs=seeds)
        assert result.infected_counts[0] == 3

    def test_too_many_seeds_rejected(self):
        population = small_population(count=10)
        sim = EpidemicSimulator(hitlist_worm(), population)
        config = SimulationConfig(seed_count=11, max_time=1.0)
        with pytest.raises(ValueError):
            sim.run(config, np.random.default_rng(5))

    def test_stop_at_fraction(self):
        population = small_population()
        sim = EpidemicSimulator(hitlist_worm(), population)
        config = SimulationConfig(
            scan_rate=20.0, max_time=5000.0, seed_count=5, stop_at_fraction=0.5
        )
        result = sim.run(config, np.random.default_rng(6))
        assert result.final_fraction_infected >= 0.5
        assert result.times[-1] < 5000.0

    def test_fractional_scan_rate(self):
        # Worm scans a space disjoint from the population so the host
        # count stays at the 50 seeds and probe counts are exact.
        population = small_population(count=100)
        worm = HitListWorm(BlockSet.parse(["61.0.0.0/16"]))
        sim = EpidemicSimulator(worm, population)
        config = SimulationConfig(scan_rate=0.5, max_time=20.0, seed_count=50)
        result = sim.run(config, np.random.default_rng(7))
        # 50 hosts at 0.5 scans/s over 20 s = 500 probes exactly.
        assert result.total_probes == 500

    def test_result_time_queries(self):
        population = small_population()
        sim = EpidemicSimulator(hitlist_worm(), population)
        config = SimulationConfig(scan_rate=20.0, max_time=2000.0, seed_count=5)
        result = sim.run(config, np.random.default_rng(8))
        assert result.fraction_infected_at(-1.0) == 0.0  # bitwise
        t_half = result.time_to_fraction(0.5)
        assert t_half is not None
        assert result.fraction_infected_at(t_half) >= 0.5
        assert result.time_to_fraction(2.0) is None


class TestEnvironmentIntegration:
    def test_total_loss_stops_spread(self):
        population = small_population()
        env = NetworkEnvironment(loss=LossModel(base_rate=1.0))
        sim = EpidemicSimulator(hitlist_worm(), population, environment=env)
        config = SimulationConfig(scan_rate=20.0, max_time=50.0, seed_count=5)
        result = sim.run(config, np.random.default_rng(0))
        assert result.infected_counts[-1] == 5
        assert result.delivered_probes == 0
        assert result.total_probes > 0

    def test_ingress_filter_protects_region(self):
        population = small_population()
        protected = CIDRBlock.parse("60.0.128.0/17")
        policy = FilteringPolicy([FilterRule("ingress", protected)])
        env = NetworkEnvironment(policy=policy)
        sim = EpidemicSimulator(hitlist_worm(), population, environment=env)
        config = SimulationConfig(scan_rate=20.0, max_time=1500.0, seed_count=5)
        rng = np.random.default_rng(1)
        # Seed only outside the protected region so all probes into it
        # must cross the filter.
        outside = population.addresses()[
            ~protected.contains_array(population.addresses())
        ]
        result = sim.run(config, rng, seed_addrs=outside[:5])
        infected = population.infected_addresses()
        assert not protected.contains_array(infected).any()
        assert result.final_fraction_infected < 1.0

    def test_topology_caps_scan_rate(self):
        population = small_population(count=100)
        topology = Topology(
            default_scan_rate=100.0,
            region_links=[RegionLink(SPACE, 10.0, 2.0)],
        )
        worm = HitListWorm(BlockSet.parse(["61.0.0.0/16"]))
        sim = EpidemicSimulator(worm, population, topology=topology)
        config = SimulationConfig(scan_rate=100.0, max_time=10.0, seed_count=50)
        result = sim.run(config, np.random.default_rng(2))
        # All hosts are inside SPACE, capped to 2 scans/s: 50*2*10.
        assert result.total_probes == 1000


class TestSensorsIntegration:
    def test_darknet_sees_probes(self):
        population = small_population()
        darknet = DarknetSensor("T", CIDRBlock.parse("60.0.200.0/24"))
        sim = EpidemicSimulator(hitlist_worm(), population, sensors=[darknet])
        config = SimulationConfig(scan_rate=20.0, max_time=600.0, seed_count=5)
        sim.run(config, np.random.default_rng(0))
        assert darknet.total_probes > 0

    def test_sensor_grid_alerts(self):
        population = small_population()
        grid = SensorGrid(
            np.array([CIDRBlock.parse("60.0.200.0/24").network >> 8], dtype=np.uint32),
            alert_threshold=5,
        )
        sim = EpidemicSimulator(hitlist_worm(), population, sensor_grids=[grid])
        config = SimulationConfig(scan_rate=20.0, max_time=600.0, seed_count=5)
        sim.run(config, np.random.default_rng(1))
        assert grid.fraction_alerted() == 1.0  # bitwise
        assert grid.alert_times()[0] > 0


class TestPatching:
    def test_patching_limits_outbreak(self):
        population = small_population()
        sim = EpidemicSimulator(hitlist_worm(), population)
        config = SimulationConfig(
            scan_rate=1.0, max_time=300.0, seed_count=5, patch_rate=0.05
        )
        sim.run(config, np.random.default_rng(0))
        assert population.num_immune > 0
        assert population.num_infected < population.size
