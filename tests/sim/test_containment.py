"""Tests for repro.sim.containment."""

import numpy as np
import pytest

from repro.net.address import parse_addr
from repro.net.cidr import BlockSet, CIDRBlock
from repro.population.model import HostPopulation
from repro.sensors.deployment import SensorGrid
from repro.sim.containment import QuorumTriggeredContainment
from repro.sim.engine import EpidemicSimulator, SimulationConfig
from repro.worms.hitlist import HitListWorm


def make_grid(threshold=1):
    return SensorGrid(
        np.array([parse_addr("60.0.200.0") >> 8], dtype=np.uint32),
        alert_threshold=threshold,
    )


class TestValidation:
    def test_rejects_bad_quorum(self):
        with pytest.raises(ValueError):
            QuorumTriggeredContainment(make_grid(), quorum_fraction=0.0)

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            QuorumTriggeredContainment(make_grid(), reaction_delay=-1.0)

    def test_rejects_bad_efficacy(self):
        with pytest.raises(ValueError):
            QuorumTriggeredContainment(make_grid(), block_probability=1.5)


class TestTriggerLogic:
    def test_latches_on_quorum(self):
        grid = make_grid()
        containment = QuorumTriggeredContainment(
            grid, quorum_fraction=1.0, reaction_delay=10.0
        )
        containment.update(5.0)
        assert containment.triggered_at is None
        grid.observe(np.array([parse_addr("60.0.200.5")], dtype=np.uint32), 6.0)
        containment.update(6.0)
        assert containment.triggered_at == 6.0  # bitwise
        assert containment.active_from == 16.0  # bitwise

    def test_trigger_time_not_overwritten(self):
        grid = make_grid()
        containment = QuorumTriggeredContainment(grid, quorum_fraction=1.0)
        grid.observe(np.array([parse_addr("60.0.200.5")], dtype=np.uint32), 1.0)
        containment.update(1.0)
        containment.update(50.0)
        assert containment.triggered_at == 1.0  # bitwise

    def test_reaction_delay_gates_activity(self):
        grid = make_grid()
        containment = QuorumTriggeredContainment(
            grid, quorum_fraction=1.0, reaction_delay=10.0
        )
        grid.observe(np.array([parse_addr("60.0.200.5")], dtype=np.uint32), 2.0)
        containment.update(2.0)
        assert not containment.is_active(5.0)
        assert containment.is_active(12.0)


class TestProbeFiltering:
    def test_inactive_passes_through(self):
        containment = QuorumTriggeredContainment(make_grid())
        mask = np.array([True, False, True])
        out = containment.filter_probes(mask, 0.0, np.random.default_rng(0))
        assert (out == mask).all()

    def test_perfect_block(self):
        grid = make_grid()
        containment = QuorumTriggeredContainment(
            grid, quorum_fraction=1.0, reaction_delay=0.0
        )
        grid.observe(np.array([parse_addr("60.0.200.5")], dtype=np.uint32), 1.0)
        containment.update(1.0)
        mask = np.ones(100, dtype=bool)
        out = containment.filter_probes(mask, 2.0, np.random.default_rng(0))
        assert not out.any()

    def test_partial_block(self):
        grid = make_grid()
        containment = QuorumTriggeredContainment(
            grid,
            quorum_fraction=1.0,
            reaction_delay=0.0,
            block_probability=0.5,
        )
        grid.observe(np.array([parse_addr("60.0.200.5")], dtype=np.uint32), 1.0)
        containment.update(1.0)
        mask = np.ones(100_000, dtype=bool)
        out = containment.filter_probes(mask, 2.0, np.random.default_rng(1))
        assert out.mean() == pytest.approx(0.5, abs=0.01)


class TestEngineIntegration:
    def test_containment_caps_outbreak(self):
        space = CIDRBlock.parse("60.0.0.0/16")
        rng = np.random.default_rng(0)
        hosts = np.unique(space.random_addresses(600, rng))
        population = HostPopulation(hosts)
        grid = SensorGrid(
            space.slash24_prefixes()[::8], alert_threshold=3
        )
        containment = QuorumTriggeredContainment(
            grid, quorum_fraction=0.2, reaction_delay=5.0
        )
        simulator = EpidemicSimulator(
            HitListWorm(BlockSet([space])),
            population,
            sensor_grids=[grid],
            containment=containment,
        )
        config = SimulationConfig(scan_rate=20.0, max_time=800.0, seed_count=5)
        result = simulator.run(config, rng)
        assert containment.triggered_at is not None
        # Infections stop (almost) entirely once filters activate:
        # allow the partial tick in flight.
        active_from = containment.active_from
        final = result.infected_counts[-1]
        at_activation = result.infected_counts[
            int(np.searchsorted(result.times, active_from))
        ]
        assert final <= at_activation + 1
        assert result.final_fraction_infected < 1.0
