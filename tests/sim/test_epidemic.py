"""Tests for repro.sim.epidemic — and simulator-vs-analytic convergence."""

import numpy as np
import pytest

from repro.net.cidr import BlockSet, CIDRBlock
from repro.population.model import HostPopulation
from repro.sim.engine import EpidemicSimulator, SimulationConfig
from repro.sim.epidemic import si_curve, si_time_to_fraction
from repro.worms.hitlist import HitListWorm


class TestSICurve:
    def test_starts_at_seeds(self):
        assert si_curve(0.0, population=1000, seeds=10, scan_rate=10.0) == pytest.approx(
            10.0
        )

    def test_saturates_at_population(self):
        value = si_curve(1e9, population=1000, seeds=10, scan_rate=10.0, address_space=1e6)
        assert value == pytest.approx(1000.0, rel=1e-6)

    def test_monotone_increasing(self):
        t = np.linspace(0, 1000, 100)
        curve = si_curve(t, population=500, seeds=5, scan_rate=10.0, address_space=1e5)
        # Non-decreasing everywhere; strictly increasing before the
        # tail saturates to float-equal values.
        assert (np.diff(curve) >= 0).all()
        assert (np.diff(curve[:20]) > 0).all()

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            si_curve(0.0, population=0, seeds=1, scan_rate=1.0)
        with pytest.raises(ValueError):
            si_curve(0.0, population=10, seeds=11, scan_rate=1.0)
        with pytest.raises(ValueError):
            si_curve(0.0, population=10, seeds=1, scan_rate=0.0)

    def test_faster_scan_rate_spreads_faster(self):
        slow = si_time_to_fraction(0.5, 1000, 10, 1.0, 1e6)
        fast = si_time_to_fraction(0.5, 1000, 10, 10.0, 1e6)
        assert fast < slow

    def test_time_to_fraction_inverts_curve(self):
        t = si_time_to_fraction(0.5, 1000, 10, 10.0, 1e6)
        assert si_curve(t, 1000, 10, 10.0, 1e6) == pytest.approx(500.0, rel=1e-6)

    def test_time_zero_when_already_reached(self):
        assert si_time_to_fraction(0.005, 1000, 10, 1.0, 1e6) == 0.0  # bitwise

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            si_time_to_fraction(1.0, 100, 1, 1.0)


class TestSimulatorMatchesAnalyticModel:
    def test_uniform_scanning_follows_logistic(self):
        # A hit-list worm scanning its whole space uniformly IS the SI
        # model; the simulator's t50 must match the analytic one.
        space = CIDRBlock.parse("60.0.0.0/14")  # 2^18 addresses
        rng = np.random.default_rng(0)
        hosts = space.random_addresses(2_000, rng)
        hosts = np.unique(hosts)
        population = HostPopulation(hosts)
        worm = HitListWorm(BlockSet([space]))
        sim = EpidemicSimulator(worm, population)
        config = SimulationConfig(
            scan_rate=10.0, max_time=500.0, seed_count=20, stop_at_fraction=0.9
        )
        result = sim.run(config, rng)
        analytic = si_time_to_fraction(
            0.5, len(hosts), 20, 10.0, address_space=space.size
        )
        simulated = result.time_to_fraction(0.5)
        assert simulated is not None
        assert simulated == pytest.approx(analytic, rel=0.25)

    def test_halving_density_doubles_time(self):
        # SI scaling law: t ∝ Ω / N, so half the hosts in the same
        # space takes about twice as long.
        space = CIDRBlock.parse("60.0.0.0/15")
        rng = np.random.default_rng(1)
        times = {}
        for count in (500, 1000):
            hosts = np.unique(space.random_addresses(count, rng))
            population = HostPopulation(hosts)
            sim = EpidemicSimulator(HitListWorm(BlockSet([space])), population)
            config = SimulationConfig(
                scan_rate=10.0, max_time=3000.0, seed_count=10, stop_at_fraction=0.6
            )
            result = sim.run(config, rng)
            times[count] = result.time_to_fraction(0.5)
        assert times[500] == pytest.approx(2 * times[1000], rel=0.3)
