"""Property-based invariants of the epidemic simulator."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.cidr import BlockSet, CIDRBlock
from repro.population.model import HostPopulation
from repro.sim.engine import EpidemicSimulator, SimulationConfig
from repro.worms.hitlist import HitListWorm

SPACE = CIDRBlock.parse("77.0.0.0/18")  # 16,384 addresses


def build_population(count, seed):
    rng = np.random.default_rng(seed)
    low = rng.choice(SPACE.size, size=count, replace=False)
    return HostPopulation((np.uint32(SPACE.network) + low).astype(np.uint32))


@settings(max_examples=15, deadline=None)
@given(
    hosts=st.integers(20, 200),
    seeds=st.integers(1, 10),
    scan_rate=st.floats(0.5, 30.0),
    run_seed=st.integers(0, 2**32 - 1),
)
def test_conservation_invariants(hosts, seeds, scan_rate, run_seed):
    seeds = min(seeds, hosts)
    population = build_population(hosts, seed=1)
    worm = HitListWorm(BlockSet([SPACE]))
    simulator = EpidemicSimulator(worm, population)
    config = SimulationConfig(
        scan_rate=scan_rate, max_time=60.0, seed_count=seeds
    )
    result = simulator.run(config, np.random.default_rng(run_seed))

    # Population conservation: statuses partition the host set.
    assert (
        population.num_infected
        + population.num_vulnerable
        + population.num_immune
        == population.size
    )
    # Monotone non-decreasing infection counts starting at the seeds.
    assert result.infected_counts[0] >= seeds
    assert (np.diff(result.infected_counts) >= 0).all()
    # Every infection has a timestamp; counts match.
    assert len(result.infection_times) == result.infected_counts[-1]
    # Delivered probes cannot exceed emitted probes.
    assert 0 <= result.delivered_probes <= result.total_probes
    # Times strictly increase.
    assert (np.diff(result.times) > 0).all()


@settings(max_examples=10, deadline=None)
@given(run_seed=st.integers(0, 2**16))
def test_determinism_given_rng_seed(run_seed):
    def one_run():
        population = build_population(100, seed=2)
        worm = HitListWorm(BlockSet([SPACE]))
        simulator = EpidemicSimulator(worm, population)
        config = SimulationConfig(scan_rate=5.0, max_time=40.0, seed_count=5)
        return simulator.run(config, np.random.default_rng(run_seed))

    a, b = one_run(), one_run()
    assert (a.infected_counts == b.infected_counts).all()
    assert a.total_probes == b.total_probes
