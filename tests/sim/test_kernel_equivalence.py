"""Kernelized simulation runs must be bitwise-equal to reference runs.

The compiled kernels (policy table, special-range classifier, sensor
index, population locator) only reorganize *how* masks are computed —
never what they contain and never how the RNG is consumed.  These
tests run figure1-flavoured outbreaks twice, kernels on and kernels
off, and demand `SimulationResult.__eq__` (bitwise over every field)
plus identical sensor state.
"""

import numpy as np
import pytest

from repro.env.environment import NetworkEnvironment
from repro.env.failures import LossModel, RegionLoss
from repro.env.filtering import FilterRule, FilteringPolicy
from repro.env.nat import NATDeployment
from repro.net.cidr import CIDRBlock
from repro.net.kernels import kernel_override
from repro.population.model import HostPopulation
from repro.sensors.darknet import ims_standard_deployment
from repro.sensors.deployment import SensorGrid
from repro.sim.engine import (
    EpidemicSimulator,
    SimulationConfig,
    run_simulation_trial,
)
from repro.worms.uniform import UniformScanWorm


def build_simulator(seed=2006, num_hosts=4000):
    """A small figure1-shaped outbreak exercising every kernel."""
    rng = np.random.default_rng(seed)
    addrs = np.unique(
        rng.integers(1 << 24, 224 << 24, size=num_hosts, dtype=np.uint64).astype(
            np.uint32
        )
    )
    policy = FilteringPolicy(
        [
            FilterRule("egress", CIDRBlock.parse("20.0.0.0/8")),
            FilterRule("ingress", CIDRBlock.parse("60.0.0.0/8")),
        ]
    )
    loss = LossModel(
        base_rate=0.05,
        region_losses=[RegionLoss(CIDRBlock.parse("100.0.0.0/8"), 0.5)],
    )
    nat = NATDeployment.empty()
    grid = SensorGrid(
        np.random.default_rng(seed + 1)
        .integers(0, 1 << 24, size=500, dtype=np.uint64)
        .astype(np.uint32),
        alert_threshold=3,
    )
    return EpidemicSimulator(
        UniformScanWorm(),
        HostPopulation(addrs),
        environment=NetworkEnvironment(policy=policy, nat=nat, loss=loss),
        sensors=ims_standard_deployment(),
        sensor_grids=[grid],
    )


CONFIG = SimulationConfig(
    scan_rate=10.0,
    max_time=25.0,
    seed_count=400,
    stop_at_fraction=1.0,
    patch_rate=0.001,
)


def run(enabled, seed=2006):
    simulator = build_simulator(seed)
    with kernel_override(enabled):
        result = run_simulation_trial(simulator, CONFIG, seed)
    return simulator, result


@pytest.mark.parametrize("seed", [2006, 7])
def test_kernel_run_bitwise_equals_reference_run(seed):
    kernel_sim, kernel_result = run(True, seed)
    reference_sim, reference_result = run(False, seed)

    assert kernel_result == reference_result
    assert kernel_result.times.dtype == reference_result.times.dtype
    assert (
        kernel_result.infected_counts.dtype
        == reference_result.infected_counts.dtype
    )

    for kernel_sensor, reference_sensor in zip(
        kernel_sim.sensors, reference_sim.sensors
    ):
        assert np.array_equal(
            kernel_sensor.probes_by_slash24(),
            reference_sensor.probes_by_slash24(),
        )
        assert np.array_equal(
            kernel_sensor.unique_sources_by_slash24(),
            reference_sensor.unique_sources_by_slash24(),
        )
    for kernel_grid, reference_grid in zip(
        kernel_sim.sensor_grids, reference_sim.sensor_grids
    ):
        assert np.array_equal(
            kernel_grid.payload_counts(), reference_grid.payload_counts()
        )
        assert np.array_equal(
            kernel_grid.alert_times(),
            reference_grid.alert_times(),
            equal_nan=True,
        )


def test_use_sensor_index_flag_off_matches():
    """The legacy per-sensor loop (flag, not override) is identical too."""
    seed = 11
    flagged = build_simulator(seed)
    flagged.use_sensor_index = False
    flagged_result = run_simulation_trial(flagged, CONFIG, seed)
    indexed = build_simulator(seed)
    indexed_result = run_simulation_trial(indexed, CONFIG, seed)
    assert flagged_result == indexed_result


def test_time_to_fraction():
    _, result = run(True)
    assert result.time_to_fraction(0.0) == result.times[0]
    reached = result.final_fraction_infected
    if reached > 0.01:
        t = result.time_to_fraction(0.01)
        assert t is not None
        # First crossing: count at t reaches, count before doesn't.
        index = int(np.searchsorted(result.times, t))
        assert result.infected_counts[index] >= 0.01 * result.population_size
        if index > 0:
            assert (
                result.infected_counts[index - 1]
                < 0.01 * result.population_size
            )
    assert result.time_to_fraction(1.1) is None
