"""Checkpoint → restore → continue must be bitwise-identical.

The contract of :mod:`repro.runtime.checkpoint` at the engine level:
a run that checkpoints is undisturbed by the capture; a run restored
from any checkpoint finishes with the same ``SimulationResult`` and
the same sensor/grid/containment state as one that never stopped —
across the serial engine, in-process shards (K in {1,2,4,8}), the
supervised worker pool, and even *across layouts* (a pool-mode
checkpoint restores into an in-process run).  The supervision half:
a shard worker killed mid-run is respawned and replayed from the
last checkpoint, never the whole-run serial fallback (unless the
respawn budget is exhausted — and then the fallback is still
bitwise-correct).
"""

import json
import warnings

import numpy as np
import pytest

from repro.env.environment import NetworkEnvironment
from repro.env.failures import LossModel, RegionLoss
from repro.env.filtering import FilterRule, FilteringPolicy
from repro.net.cidr import BlockSet, CIDRBlock
from repro.net.kernels import kernel_override
from repro.population.model import HostPopulation
from repro.runtime import shardpool
from repro.runtime.checkpoint import (
    CheckpointError,
    latest_checkpoint,
    recovery_collection,
)
from repro.runtime.faults import MIDRUN_FAULT_ENV
from repro.sensors.darknet import ims_standard_deployment
from repro.sensors.deployment import SensorGrid
from repro.sim.containment import QuorumTriggeredContainment
from repro.sim.spec import SimulationSpec, simulate
from repro.worms.hitlist import HitListWorm
from repro.worms.uniform import UniformScanWorm

pytestmark = pytest.mark.filterwarnings("error::RuntimeWarning")


def figure_spec(seed=2006, num_hosts=3000, shards=None, **overrides):
    """A small figure1-shaped outbreak: policy, loss, IMS, a grid."""
    rng = np.random.default_rng(seed)
    addrs = np.unique(
        rng.integers(
            1 << 24, 224 << 24, size=num_hosts, dtype=np.uint64
        ).astype(np.uint32)
    )
    policy = FilteringPolicy(
        [
            FilterRule("egress", CIDRBlock.parse("20.0.0.0/8")),
            FilterRule("ingress", CIDRBlock.parse("60.0.0.0/8")),
        ]
    )
    loss = LossModel(
        base_rate=0.05,
        region_losses=[RegionLoss(CIDRBlock.parse("100.0.0.0/8"), 0.5)],
    )
    grid = SensorGrid(
        np.random.default_rng(seed + 1)
        .integers(0, 1 << 24, size=400, dtype=np.uint64)
        .astype(np.uint32),
        alert_threshold=3,
    )
    kwargs = dict(
        worm=UniformScanWorm(),
        population=HostPopulation(addrs),
        environment=NetworkEnvironment(policy=policy, loss=loss),
        sensors=tuple(ims_standard_deployment()),
        sensor_grids=(grid,),
        scan_rate=10.0,
        max_time=20.0,
        seed_count=300,
        shards=shards,
    )
    kwargs.update(overrides)
    return SimulationSpec(**kwargs)


def hitlist_spec(seed=7, shards=None, **overrides):
    """Hit-list growth across two /16s in different halves of space."""
    rng = np.random.default_rng(seed)
    hitlist = BlockSet(
        [CIDRBlock.parse("10.1.0.0/16"), CIDRBlock.parse("200.7.0.0/16")]
    )
    addrs = np.unique(hitlist.random_addresses(4_000, rng))
    kwargs = dict(
        worm=HitListWorm(hitlist),
        population=HostPopulation(addrs),
        scan_rate=5.0,
        max_time=40.0,
        seed_count=5,
        stop_at_fraction=0.9,
        shards=shards,
    )
    kwargs.update(overrides)
    return SimulationSpec(**kwargs)


def assert_sensor_state_equal(spec_a, spec_b):
    for sensor_a, sensor_b in zip(spec_a.sensors, spec_b.sensors):
        assert np.array_equal(
            sensor_a.probes_by_slash24(), sensor_b.probes_by_slash24()
        )
        assert np.array_equal(
            sensor_a.unique_sources_by_slash24(),
            sensor_b.unique_sources_by_slash24(),
        )
    for grid_a, grid_b in zip(spec_a.sensor_grids, spec_b.sensor_grids):
        assert np.array_equal(
            grid_a.payload_counts(), grid_b.payload_counts()
        )
        assert np.array_equal(
            grid_a.alert_times(), grid_b.alert_times(), equal_nan=True
        )


def checkpoint_restore_roundtrip(
    build, tmp_path, *, shards=None, workers=1, every=7, **overrides
):
    """Clean vs checkpointed vs restored — all three must agree."""
    reference_spec = build(shards=shards, **overrides)
    reference = simulate(reference_spec, 42, shard_workers=workers)

    checkpointed_spec = build(
        shards=shards, checkpoint_every=every, **overrides
    )
    checkpointed = simulate(
        checkpointed_spec,
        42,
        shard_workers=workers,
        checkpoint_dir=tmp_path,
    )
    assert checkpointed == reference, "capture disturbed the run"
    assert_sensor_state_equal(reference_spec, checkpointed_spec)

    restored_spec = build(shards=shards, **overrides)
    restored = simulate(
        restored_spec, 42, shard_workers=workers, restore_from=tmp_path
    )
    assert restored == reference, "restored run diverged"
    assert_sensor_state_equal(reference_spec, restored_spec)
    return reference


class TestSerialRoundtrip:
    def test_serial(self, tmp_path):
        checkpoint_restore_roundtrip(figure_spec, tmp_path)

    def test_serial_fractional_rate_and_patching(self, tmp_path):
        # The accumulator carry and the patch RNG stage both live in
        # the snapshot; a fractional budget exercises the carry.
        checkpoint_restore_roundtrip(
            figure_spec, tmp_path, scan_rate=2.5, patch_rate=0.01
        )

    def test_serial_hitlist(self, tmp_path):
        checkpoint_restore_roundtrip(hitlist_spec, tmp_path)

    def test_serial_containment(self, tmp_path):
        def build(shards=None, **overrides):
            spec = figure_spec(shards=shards, **overrides)
            return spec.with_(
                containment=QuorumTriggeredContainment(
                    spec.sensor_grids[0],
                    quorum_fraction=0.02,
                    reaction_delay=3.0,
                )
            )

        checkpoint_restore_roundtrip(build, tmp_path)

    def test_restore_from_every_checkpoint(self, tmp_path):
        # Not just the latest: any snapshot continues identically.
        reference = simulate(figure_spec(), 42)
        simulate(
            figure_spec(checkpoint_every=5),
            42,
            checkpoint_dir=tmp_path,
        )
        files = sorted(tmp_path.glob("tick-*.ckpt"))
        assert len(files) >= 2
        for file in files:
            assert simulate(figure_spec(), 42, restore_from=file) == (
                reference
            )


class TestShardedRoundtrip:
    @pytest.mark.parametrize("shards", [1, 2, 4, 8])
    def test_sharded(self, tmp_path, shards):
        checkpoint_restore_roundtrip(figure_spec, tmp_path, shards=shards)

    def test_sharded_fractional_rate_and_patching(self, tmp_path):
        checkpoint_restore_roundtrip(
            figure_spec,
            tmp_path,
            shards=4,
            scan_rate=2.5,
            patch_rate=0.01,
        )

    def test_sharded_hitlist(self, tmp_path):
        checkpoint_restore_roundtrip(hitlist_spec, tmp_path, shards=2)

    def test_sharded_containment(self, tmp_path):
        def build(shards=None, **overrides):
            spec = figure_spec(shards=shards, **overrides)
            return spec.with_(
                containment=QuorumTriggeredContainment(
                    spec.sensor_grids[0],
                    quorum_fraction=0.02,
                    reaction_delay=3.0,
                )
            )

        checkpoint_restore_roundtrip(build, tmp_path, shards=4)


class TestPoolRoundtrip:
    def test_pool(self, tmp_path):
        checkpoint_restore_roundtrip(
            figure_spec, tmp_path, shards=4, workers=2
        )

    def test_pool_fractional_rate(self, tmp_path):
        checkpoint_restore_roundtrip(
            figure_spec, tmp_path, shards=4, workers=2, scan_rate=2.5
        )

    def test_pool_checkpoint_restores_in_process(self, tmp_path):
        # Cross-layout restore: the pool's per-worker sensor clones
        # merge back into the shared in-process sensors exactly.
        reference_spec = figure_spec(shards=4)
        reference = simulate(reference_spec, 42)
        simulate(
            figure_spec(shards=4, checkpoint_every=7),
            42,
            shard_workers=2,
            checkpoint_dir=tmp_path,
        )
        restored_spec = figure_spec(shards=4)
        restored = simulate(restored_spec, 42, restore_from=tmp_path)
        assert restored == reference
        assert_sensor_state_equal(reference_spec, restored_spec)

    def test_inproc_checkpoint_refuses_pool_restore(self, tmp_path):
        # The reverse split (shared sensors back into per-worker
        # clones) is impossible; the refusal names the field.
        simulate(
            figure_spec(shards=4, checkpoint_every=7),
            42,
            checkpoint_dir=tmp_path,
        )
        with pytest.raises(CheckpointError, match="checkpoint.layout"):
            simulate(
                figure_spec(shards=4),
                42,
                shard_workers=2,
                restore_from=tmp_path,
            )


class TestRestoreValidation:
    def test_wrong_spec_refuses(self, tmp_path):
        simulate(
            figure_spec(checkpoint_every=7), 42, checkpoint_dir=tmp_path
        )
        with pytest.raises(CheckpointError, match="checkpoint.spec_hash"):
            simulate(figure_spec(scan_rate=9.0), 42, restore_from=tmp_path)

    def test_serial_checkpoint_refuses_shard_restore(self, tmp_path):
        # Same spec both times (the hashes must match for the mode
        # check to be reached): kernel_override(False) routes the
        # sharded spec through the serial reference engine, so its
        # checkpoint is written as mode="serial".
        with kernel_override(False):
            simulate(
                figure_spec(shards=4, checkpoint_every=7),
                42,
                checkpoint_dir=tmp_path,
            )
        with pytest.raises(CheckpointError, match="checkpoint.mode"):
            simulate(figure_spec(shards=4), 42, restore_from=tmp_path)

    def test_different_shard_plan_refuses(self, tmp_path):
        # Shard boundaries shape the payload, so they are part of the
        # spec identity: a different K refuses at the hash check.
        simulate(
            figure_spec(shards=4, checkpoint_every=7),
            42,
            checkpoint_dir=tmp_path,
        )
        with pytest.raises(CheckpointError, match="checkpoint.spec_hash"):
            simulate(figure_spec(shards=2), 42, restore_from=tmp_path)

    def test_truncated_snapshot_refuses(self, tmp_path):
        simulate(
            figure_spec(checkpoint_every=7), 42, checkpoint_dir=tmp_path
        )
        target = latest_checkpoint(tmp_path)
        target.write_bytes(target.read_bytes()[:-10])
        with pytest.raises(
            CheckpointError, match="checkpoint.payload_bytes"
        ):
            simulate(figure_spec(), 42, restore_from=target)

    def test_checkpoint_dir_needs_a_cadence(self, tmp_path):
        with pytest.raises(ValueError, match="checkpoint_every"):
            simulate(figure_spec(), 42, checkpoint_dir=tmp_path)

    def test_cadence_validation(self):
        with pytest.raises(ValueError, match="checkpoint_every"):
            figure_spec(checkpoint_every=0)
        with pytest.raises(TypeError, match="checkpoint_every"):
            figure_spec(checkpoint_every=2.5)


class TestSupervision:
    """A killed shard worker recovers via respawn + replay, never the
    whole-run serial fallback — and the result is still bitwise."""

    def run_with_kill(self, tmp_path, monkeypatch, *, tick=9, shard=0):
        monkeypatch.setenv(
            MIDRUN_FAULT_ENV,
            json.dumps(
                {"kind": "kill-worker", "tick": tick, "shard": shard}
            ),
        )
        with recovery_collection() as log:
            result = simulate(
                figure_spec(shards=4, checkpoint_every=4),
                42,
                shard_workers=2,
                checkpoint_dir=tmp_path,
            )
        return result, log.events

    def test_killed_worker_respawns_from_checkpoint(
        self, tmp_path, monkeypatch
    ):
        reference = simulate(figure_spec(shards=4), 42, shard_workers=2)
        # filterwarnings("error") above: a serial-fallback
        # RuntimeWarning would fail this test outright.
        result, events = self.run_with_kill(tmp_path, monkeypatch)
        kinds = [event["kind"] for event in events]
        assert result == reference
        assert "worker-respawn" in kinds
        assert "serial-rerun" not in kinds
        respawn = next(
            event for event in events if event["kind"] == "worker-respawn"
        )
        assert respawn["shard"] == 0
        assert respawn["tick"] == 9
        # Checkpoint at tick 7, kill at tick 9: tick 8 replays from
        # the buffer, then tick 9 itself is re-issued (not counted).
        assert respawn["replayed_ticks"] == 1

    def test_hung_worker_detected_by_heartbeat(
        self, tmp_path, monkeypatch
    ):
        reference = simulate(figure_spec(shards=2), 42, shard_workers=2)
        monkeypatch.setenv(
            MIDRUN_FAULT_ENV,
            json.dumps(
                {
                    "kind": "hang-worker",
                    "tick": 6,
                    "shard": 0,
                    "seconds": 60.0,
                }
            ),
        )
        with recovery_collection() as log:
            result = simulate(
                figure_spec(shards=2, checkpoint_every=4),
                42,
                shard_workers=2,
                checkpoint_dir=tmp_path,
                shard_heartbeat=2.0,
            )
        kinds = [event["kind"] for event in log.events]
        assert result == reference
        assert "worker-respawn" in kinds
        assert "serial-rerun" not in kinds
        respawn = next(
            event
            for event in log.events
            if event["kind"] == "worker-respawn"
        )
        assert "heartbeat" in respawn["reason"]

    def test_exhausted_respawn_budget_falls_back_serially(
        self, tmp_path, monkeypatch
    ):
        # With the budget zeroed, the same kill must degrade to the
        # documented serial re-run — and still match bitwise.
        reference = simulate(figure_spec(shards=4), 42, shard_workers=2)
        monkeypatch.setattr(shardpool, "MAX_RESPAWNS", 0)
        monkeypatch.setenv(
            MIDRUN_FAULT_ENV,
            json.dumps({"kind": "kill-worker", "tick": 9, "shard": 0}),
        )
        with recovery_collection() as log:
            with pytest.warns(RuntimeWarning, match="re-running"):
                result = simulate(
                    figure_spec(shards=4, checkpoint_every=4),
                    42,
                    shard_workers=2,
                    checkpoint_dir=tmp_path,
                )
        kinds = [event["kind"] for event in log.events]
        assert result == reference
        assert "serial-rerun" in kinds

    def test_unsupervised_pool_still_falls_back_serially(
        self, monkeypatch
    ):
        # Without a checkpointer there is no replay buffer, so the
        # pre-existing serial fallback remains the recovery path.
        reference = simulate(figure_spec(shards=4), 42, shard_workers=2)
        monkeypatch.setenv(
            MIDRUN_FAULT_ENV,
            json.dumps({"kind": "kill-worker", "tick": 9, "shard": 0}),
        )
        with recovery_collection() as log:
            with pytest.warns(RuntimeWarning, match="re-running"):
                result = simulate(
                    figure_spec(shards=4), 42, shard_workers=2
                )
        assert result == reference
        assert "serial-rerun" in [event["kind"] for event in log.events]

    def test_recovery_events_include_checkpoints_and_restores(
        self, tmp_path
    ):
        with recovery_collection() as log:
            simulate(
                figure_spec(checkpoint_every=5),
                42,
                checkpoint_dir=tmp_path,
            )
            simulate(figure_spec(), 42, restore_from=tmp_path)
        kinds = [event["kind"] for event in log.events]
        assert kinds.count("checkpoint") >= 2
        assert "restore" in kinds
        restore = next(
            event for event in log.events if event["kind"] == "restore"
        )
        assert restore["mode"] == "serial"
