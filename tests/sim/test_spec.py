"""Tests for the ``SimulationSpec`` construction-and-run API."""

import pickle

import numpy as np
import pytest

from repro.env.environment import NetworkEnvironment
from repro.net.kernels import kernel_override
from repro.population.model import HostPopulation
from repro.sim.engine import (
    EpidemicSimulator,
    SimulationConfig,
    run_simulation_trial,
)
from repro.sim.shard import ShardPlan
from repro.sim.spec import SimulationSpec, run_spec_trial, simulate
from repro.worms.uniform import UniformScanWorm


def host_addrs(seed=0, size=500):
    rng = np.random.default_rng(seed)
    return np.unique(
        rng.integers(1 << 24, 224 << 24, size=size, dtype=np.uint64).astype(
            np.uint32
        )
    )


def small_spec(**overrides):
    kwargs = dict(
        worm=UniformScanWorm(),
        population=HostPopulation(host_addrs()),
        scan_rate=10.0,
        max_time=5.0,
        seed_count=20,
    )
    kwargs.update(overrides)
    return SimulationSpec(**kwargs)


class TestConstruction:
    def test_defaults(self):
        spec = small_spec()
        assert isinstance(spec.environment, NetworkEnvironment)
        assert spec.sensors == ()
        assert spec.sensor_grids == ()
        assert spec.shards is None
        assert spec.shard_plan is None

    def test_population_coerced_from_array(self):
        spec = small_spec(population=host_addrs())
        assert isinstance(spec.population, HostPopulation)

    def test_seed_addrs_coerced(self):
        spec = small_spec(seed_addrs=[1 << 24, 2 << 24])
        assert spec.seed_addrs.dtype == np.uint32

    def test_num_ticks(self):
        spec = small_spec(max_time=10.0, tick_seconds=3.0)
        assert spec.num_ticks == 4

    def test_with_replaces_fields(self):
        spec = small_spec()
        changed = spec.with_(scan_rate=3.0, shards=2)
        assert changed.scan_rate == 3.0  # bitwise — replace() copies verbatim
        assert changed.shard_plan.num_shards == 2
        assert spec.scan_rate == 10.0  # bitwise — original untouched

    def test_config_round_trip(self):
        config = SimulationConfig(
            scan_rate=7.0,
            tick_seconds=2.0,
            max_time=60.0,
            seed_count=4,
            stop_at_fraction=0.5,
            patch_rate=0.001,
        )
        spec = SimulationSpec.from_config(
            config,
            worm=UniformScanWorm(),
            population=HostPopulation(host_addrs()),
        )
        assert spec.config == config

    def test_from_config_rejects_duplicate_knobs(self):
        with pytest.raises(ValueError, match="SimulationSpec.scan_rate"):
            SimulationSpec.from_config(
                SimulationConfig(),
                worm=UniformScanWorm(),
                population=HostPopulation(host_addrs()),
                scan_rate=3.0,
            )

    def test_shard_plan_normalization(self):
        assert small_spec(shards=4).shard_plan.num_shards == 4
        plan = ShardPlan.even(2)
        assert small_spec(shards=plan).shard_plan is plan

    def test_describe(self):
        summary = small_spec(shards=8).describe()
        assert summary["worm"] == UniformScanWorm().name
        assert summary["num_shards"] == 8

    def test_spec_pickles(self):
        spec = small_spec(shards=4)
        clone = pickle.loads(pickle.dumps(spec))
        assert np.array_equal(
            clone.population.addresses(), spec.population.addresses()
        )
        assert clone.shard_plan == spec.shard_plan


class TestValidationNamesTheField:
    @pytest.mark.parametrize(
        "overrides, match",
        [
            (dict(worm="not a worm"), r"SimulationSpec\.worm"),
            (
                dict(population="not a population"),
                r"SimulationSpec\.population",
            ),
            (
                dict(environment="not an env"),
                r"SimulationSpec\.environment",
            ),
            (dict(topology=17), r"SimulationSpec\.topology"),
            (
                dict(sensors=("not a sensor",)),
                r"SimulationSpec\.sensors\[0\]",
            ),
            (
                dict(sensor_grids=("not a grid",)),
                r"SimulationSpec\.sensor_grids\[0\]",
            ),
            (dict(containment=3.5), r"SimulationSpec\.containment"),
            (
                dict(trace_recorder=3.5),
                r"SimulationSpec\.trace_recorder",
            ),
            (dict(shards="four"), r"SimulationSpec\.shards"),
        ],
    )
    def test_type_errors(self, overrides, match):
        with pytest.raises(TypeError, match=match):
            small_spec(**overrides)

    @pytest.mark.parametrize(
        "overrides, match",
        [
            (dict(scan_rate=0.0), r"SimulationSpec\.scan_rate"),
            (dict(tick_seconds=-1.0), r"SimulationSpec\.tick_seconds"),
            (dict(max_time=0.0), r"SimulationSpec\.max_time"),
            (dict(seed_count=0), r"SimulationSpec\.seed_count"),
            (
                dict(stop_at_fraction=1.5),
                r"SimulationSpec\.stop_at_fraction",
            ),
            (dict(patch_rate=1.0), r"SimulationSpec\.patch_rate"),
            (
                dict(seed_addrs=[[1, 2], [3, 4]]),
                r"SimulationSpec\.seed_addrs",
            ),
        ],
    )
    def test_value_errors(self, overrides, match):
        with pytest.raises(ValueError, match=match):
            small_spec(**overrides)


class TestSimulate:
    def test_matches_legacy_entry_point(self):
        seed = 31
        spec = small_spec()
        spec_result = simulate(spec, seed)
        simulator = EpidemicSimulator(
            UniformScanWorm(), HostPopulation(host_addrs())
        )
        legacy_result = run_simulation_trial(simulator, spec.config, seed)
        assert spec_result == legacy_result

    def test_accepts_live_generator(self):
        spec_a = small_spec()
        spec_b = small_spec()
        result_a = simulate(spec_a, np.random.default_rng(5))
        result_b = simulate(spec_b, 5)
        assert result_a == result_b

    def test_build_simulator_carries_components(self):
        spec = small_spec()
        simulator = spec.build_simulator()
        assert simulator.worm is spec.worm
        assert simulator.population is spec.population

    def test_run_spec_trial_is_picklable(self):
        # TrialRunner pickles (func, spec, seed); the round trip must
        # reproduce the in-process result bitwise.
        spec = small_spec(shards=2)
        func, payload = pickle.loads(
            pickle.dumps((run_spec_trial, (small_spec(shards=2), 37)))
        )
        assert func(*payload) == run_spec_trial(spec, 37)

    def test_sharded_spec_under_kernel_override_uses_reference(self):
        spec = small_spec(shards=4)
        reference = small_spec()
        with kernel_override(False):
            gated = simulate(spec, 41)
        assert gated == simulate(reference, 41)
