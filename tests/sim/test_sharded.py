"""Sharded runs must be bitwise-equal to the serial reference.

The sharded engine only reorganizes *where* the deterministic verdict
and sensor work happens — never what any stage computes and never how
the run RNG is consumed (the exchange contract in
:mod:`repro.sim.shard`).  These tests sweep shard counts, boundary
edge cases (hosts exactly on breakpoints, empty shards, a single /0
shard), cross-shard same-tick infection, containment feedback, and the
process-pool mode with its degrade-to-serial fallback — demanding
``SimulationResult.__eq__`` (bitwise over every field) plus identical
sensor state throughout.
"""

import numpy as np
import pytest

from repro.env.environment import NetworkEnvironment
from repro.env.failures import LossModel, RegionLoss
from repro.env.filtering import FilterRule, FilteringPolicy
from repro.net.cidr import BlockSet, CIDRBlock
from repro.net.kernels import kernel_override
from repro.population.model import HostPopulation
from repro.sensors.darknet import ims_standard_deployment
from repro.sensors.deployment import SensorGrid
from repro.sim.containment import QuorumTriggeredContainment
from repro.sim.shard import (
    ADDRESS_SPACE_END,
    ShardPlan,
    ShardedSimulator,
)
from repro.sim.spec import SimulationSpec, simulate
from repro.worms.hitlist import HitListWorm
from repro.worms.localpref import LocalPreferenceWorm
from repro.worms.uniform import UniformScanWorm


def figure_spec(seed=2006, num_hosts=3000, shards=None, **overrides):
    """A small figure1-shaped outbreak: policy, loss, IMS, a grid."""
    rng = np.random.default_rng(seed)
    addrs = np.unique(
        rng.integers(
            1 << 24, 224 << 24, size=num_hosts, dtype=np.uint64
        ).astype(np.uint32)
    )
    policy = FilteringPolicy(
        [
            FilterRule("egress", CIDRBlock.parse("20.0.0.0/8")),
            FilterRule("ingress", CIDRBlock.parse("60.0.0.0/8")),
        ]
    )
    loss = LossModel(
        base_rate=0.05,
        region_losses=[RegionLoss(CIDRBlock.parse("100.0.0.0/8"), 0.5)],
    )
    grid = SensorGrid(
        np.random.default_rng(seed + 1)
        .integers(0, 1 << 24, size=400, dtype=np.uint64)
        .astype(np.uint32),
        alert_threshold=3,
    )
    kwargs = dict(
        worm=UniformScanWorm(),
        population=HostPopulation(addrs),
        environment=NetworkEnvironment(policy=policy, loss=loss),
        sensors=tuple(ims_standard_deployment()),
        sensor_grids=(grid,),
        scan_rate=10.0,
        max_time=20.0,
        seed_count=300,
        shards=shards,
    )
    kwargs.update(overrides)
    return SimulationSpec(**kwargs)


def hitlist_spec(seed=7, shards=None, **overrides):
    """Hit-list growth across two /16s in different halves of space."""
    rng = np.random.default_rng(seed)
    hitlist = BlockSet(
        [CIDRBlock.parse("10.1.0.0/16"), CIDRBlock.parse("200.7.0.0/16")]
    )
    addrs = np.unique(hitlist.random_addresses(4_000, rng))
    kwargs = dict(
        worm=HitListWorm(hitlist),
        population=HostPopulation(addrs),
        scan_rate=5.0,
        max_time=40.0,
        seed_count=5,
        stop_at_fraction=0.9,
        shards=shards,
    )
    kwargs.update(overrides)
    return SimulationSpec(**kwargs)


def assert_sensor_state_equal(spec_a, spec_b):
    for sensor_a, sensor_b in zip(spec_a.sensors, spec_b.sensors):
        assert np.array_equal(
            sensor_a.probes_by_slash24(), sensor_b.probes_by_slash24()
        )
        assert np.array_equal(
            sensor_a.unique_sources_by_slash24(),
            sensor_b.unique_sources_by_slash24(),
        )
    for grid_a, grid_b in zip(spec_a.sensor_grids, spec_b.sensor_grids):
        assert np.array_equal(
            grid_a.payload_counts(), grid_b.payload_counts()
        )
        assert np.array_equal(
            grid_a.alert_times(), grid_b.alert_times(), equal_nan=True
        )


def run_pair(build, shards, seed=2006, **kwargs):
    """(reference spec+result, sharded spec+result) under one seed."""
    reference = build(seed=seed, shards=None, **kwargs)
    sharded = build(seed=seed, shards=shards, **kwargs)
    reference_result = simulate(reference, seed)
    sharded_result = simulate(sharded, seed)
    return reference, reference_result, sharded, sharded_result


class TestShardPlan:
    def test_even_split(self):
        plan = ShardPlan.even(4)
        assert plan.num_shards == 4
        assert plan.boundaries[0] == 0
        assert all(b % 256 == 0 for b in plan.boundaries)
        assert plan.interval(3)[1] == ADDRESS_SPACE_END

    def test_single_shard_owns_everything(self):
        plan = ShardPlan(boundaries=(0,))
        assert plan.interval(0) == (0, ADDRESS_SPACE_END)
        addrs = np.array([0, 1, 2**31, 2**32 - 1], dtype=np.uint32)
        assert np.array_equal(plan.owner_of(addrs), [0, 0, 0, 0])

    def test_boundary_address_owned_by_upper_shard(self):
        plan = ShardPlan.even(2)
        boundary = plan.boundaries[1]
        addrs = np.array(
            [boundary - 1, boundary, boundary + 1], dtype=np.uint32
        )
        assert np.array_equal(plan.owner_of(addrs), [0, 1, 1])

    def test_first_boundary_must_be_zero(self):
        with pytest.raises(ValueError, match="first shard must start at 0"):
            ShardPlan(boundaries=(256,))

    def test_boundaries_must_be_aligned(self):
        with pytest.raises(ValueError, match=r"boundaries\[1\].*aligned"):
            ShardPlan(boundaries=(0, 100))

    def test_boundaries_must_increase(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            ShardPlan(boundaries=(0, 512, 512))

    def test_boundaries_must_fit_address_space(self):
        with pytest.raises(ValueError, match="outside the address space"):
            ShardPlan(boundaries=(0, ADDRESS_SPACE_END))

    def test_empty_plan_rejected(self):
        with pytest.raises(ValueError, match="at least one shard"):
            ShardPlan(boundaries=())

    def test_even_rejects_non_positive(self):
        with pytest.raises(ValueError, match="at least 1"):
            ShardPlan.even(0)


class TestShardedEquivalence:
    @pytest.mark.parametrize("num_shards", [1, 2, 4, 8])
    def test_figure_shaped_sweep(self, num_shards):
        reference, reference_result, sharded, sharded_result = run_pair(
            figure_spec, num_shards
        )
        assert sharded_result == reference_result
        assert_sensor_state_equal(reference, sharded)

    def test_single_slash0_shard_equals_unsharded(self):
        _, reference_result, _, sharded_result = run_pair(
            figure_spec, ShardPlan(boundaries=(0,))
        )
        assert sharded_result == reference_result

    def test_cross_shard_same_tick_infection(self):
        # Two /16 islands in different halves of the space: every
        # inter-island infection crosses the shard boundary inside a
        # tick, and growth is real (seeds alone don't reach 90%).
        _, reference_result, _, sharded_result = run_pair(
            hitlist_spec, 2, seed=7
        )
        assert sharded_result == reference_result
        assert reference_result.infected_counts[-1] > 100

    def test_hosts_exactly_on_shard_breakpoints(self):
        plan = ShardPlan.even(4)
        near = []
        for boundary in plan.boundaries[1:]:
            near.extend([boundary - 1, boundary, boundary + 1])
        rng = np.random.default_rng(3)
        filler = rng.integers(
            1 << 24, 224 << 24, size=2_000, dtype=np.uint64
        ).astype(np.uint32)
        addrs = np.unique(
            np.concatenate([np.array(near, dtype=np.uint32), filler])
        )
        hitlist = BlockSet([CIDRBlock.parse("0.0.0.0/0")])

        def build(seed, shards):
            return SimulationSpec(
                worm=HitListWorm(hitlist),
                population=HostPopulation(addrs.copy()),
                scan_rate=8.0,
                max_time=15.0,
                seed_count=50,
                shards=shards,
            )

        assert simulate(build(11, 4), 11) == simulate(build(11, None), 11)

    def test_empty_shard(self):
        # All hosts in the first quarter of the space; shards 1-3 of an
        # even 4-way split own nothing and must stay inert.
        rng = np.random.default_rng(5)
        addrs = np.unique(
            rng.integers(1 << 24, 1 << 29, size=2_000, dtype=np.uint64
            ).astype(np.uint32)
        )
        hitlist = BlockSet([CIDRBlock.parse("0.0.0.0/4")])

        def build(seed, shards):
            return SimulationSpec(
                worm=HitListWorm(hitlist),
                population=HostPopulation(addrs.copy()),
                scan_rate=5.0,
                max_time=15.0,
                seed_count=20,
                shards=shards,
            )

        assert simulate(build(5, 4), 5) == simulate(build(5, None), 5)

    def test_local_preference_worm(self):
        def build(seed, shards):
            rng = np.random.default_rng(seed)
            addrs = np.unique(
                rng.integers(
                    1 << 24, 224 << 24, size=3_000, dtype=np.uint64
                ).astype(np.uint32)
            )
            return SimulationSpec(
                worm=LocalPreferenceWorm(0.5, 0.25, name="localpref"),
                population=HostPopulation(addrs),
                scan_rate=10.0,
                max_time=15.0,
                seed_count=200,
                shards=shards,
            )

        assert simulate(build(13, 4), 13) == simulate(build(13, None), 13)

    def test_fractional_rate_and_patching(self):
        # Fractional per-tick budgets take the accumulator path, and
        # patching adds a second RNG-consuming stage per tick.
        _, reference_result, _, sharded_result = run_pair(
            figure_spec, 4, scan_rate=2.5, patch_rate=0.01
        )
        assert sharded_result == reference_result

    def test_containment_feedback(self):
        # Quorum containment is global per-tick feedback: the driver
        # must compose the full-batch mask before shards dispatch.
        def build(seed, shards):
            spec = figure_spec(seed=seed, shards=shards)
            grid = spec.sensor_grids[0]
            return spec.with_(
                containment=QuorumTriggeredContainment(
                    grid, quorum_fraction=0.02, reaction_delay=3.0
                )
            )

        reference = build(2006, None)
        sharded = build(2006, 4)
        assert simulate(sharded, 2006) == simulate(reference, 2006)
        assert_sensor_state_equal(reference, sharded)
        assert (
            sharded.containment.triggered_at
            == reference.containment.triggered_at
        )

    def test_explicit_seed_addrs(self):
        def build(seed, shards):
            spec = figure_spec(seed=seed, shards=shards)
            seeds = spec.population.addresses()[::7][:100]
            return spec.with_(seed_addrs=seeds)

        assert simulate(build(17, 8), 17) == simulate(build(17, None), 17)

    def test_kernel_override_runs_reference_engine(self):
        # Under kernel_override(False) a sharded spec takes the serial
        # reference path — the gating idiom every compiled kernel
        # follows — and still matches bitwise.
        spec = figure_spec(seed=19, shards=4)
        with kernel_override(False):
            gated_result = simulate(spec, 19)
        reference = figure_spec(seed=19, shards=None)
        assert gated_result == simulate(reference, 19)


class TestShardedValidation:
    def test_needs_a_plan(self):
        spec = figure_spec(shards=None)
        with pytest.raises(ValueError, match="SimulationSpec.shards"):
            ShardedSimulator(spec)

    def test_needs_pristine_population(self):
        spec = figure_spec(shards=2)
        spec.population.infect(spec.population.addresses()[:3])
        with pytest.raises(
            ValueError, match="SimulationSpec.population.*pristine"
        ):
            ShardedSimulator(spec)

    def test_pool_mode_rejects_containment(self):
        spec = figure_spec(shards=2)
        spec = spec.with_(
            containment=QuorumTriggeredContainment(
                spec.sensor_grids[0], quorum_fraction=0.05
            )
        )
        with pytest.raises(
            ValueError, match="SimulationSpec.containment"
        ):
            ShardedSimulator(spec, workers=2)

    def test_pool_mode_rejects_dirty_sensors(self):
        spec = figure_spec(shards=2)
        sensor = spec.sensors[0]
        rng = np.random.default_rng(0)
        block_addrs = rng.integers(
            sensor.block.network,
            sensor.block.network + sensor.block.size,
            size=10,
            dtype=np.uint64,
        ).astype(np.uint32)
        sensor.observe(np.arange(10, dtype=np.uint32), block_addrs)
        with pytest.raises(
            ValueError, match=r"SimulationSpec.sensors\[0\]"
        ):
            ShardedSimulator(spec, workers=2)

    def test_pool_mode_rejects_dirty_grids(self):
        spec = figure_spec(shards=2)
        grid = spec.sensor_grids[0]
        hit = (grid.prefixes[0].astype(np.uint64) << 8).astype(np.uint32)
        grid.observe(np.array([hit], dtype=np.uint32), 1.0)
        with pytest.raises(
            ValueError, match=r"SimulationSpec.sensor_grids\[0\]"
        ):
            ShardedSimulator(spec, workers=2)


class TestShardPool:
    @pytest.mark.parametrize("transport", ["ring", "shmem", "pickle"])
    def test_pool_run_equals_unsharded(self, transport):
        reference = figure_spec(seed=23, num_hosts=1500, max_time=10.0)
        pooled = figure_spec(
            seed=23, num_hosts=1500, max_time=10.0, shards=4
        )
        reference_result = simulate(reference, 23)
        pooled_result = simulate(
            pooled, 23, shard_workers=2, shard_transport=transport
        )
        assert pooled_result == reference_result
        assert_sensor_state_equal(reference, pooled)

    def test_shmem_transport_shrinks_pipe_traffic(self):
        stats = {}
        for transport in ("shmem", "pickle"):
            simulator = ShardedSimulator(
                figure_spec(seed=31, num_hosts=1500, max_time=10.0, shards=2),
                workers=2,
                transport=transport,
            )
            simulator.run(np.random.default_rng(31))
            stats[transport] = simulator.transport_stats
        # Both transports move the same array volume...
        assert (
            stats["shmem"]["payload_bytes"]
            == stats["pickle"]["payload_bytes"]
            > 0
        )
        # ...but shmem ships only tiny control tuples down the pipe.
        assert stats["pickle"]["pipe_bytes"] == stats["pickle"]["payload_bytes"]
        assert stats["shmem"]["pipe_bytes"] < stats["shmem"]["payload_bytes"] / 100

    def test_invalid_transport_rejected(self):
        with pytest.raises(ValueError, match="transport"):
            ShardedSimulator(
                figure_spec(shards=2), workers=2, transport="carrier-pigeon"
            )

    def test_pool_failure_degrades_to_serial(self, monkeypatch):
        import repro.runtime.shardpool as shardpool

        def broken_pool(*args, **kwargs):
            raise RuntimeError("worker pool exploded")

        monkeypatch.setattr(shardpool, "ShardPool", broken_pool)
        reference = figure_spec(seed=29, num_hosts=1500, max_time=10.0)
        pooled = figure_spec(
            seed=29, num_hosts=1500, max_time=10.0, shards=2
        )
        with pytest.warns(RuntimeWarning, match="re-running"):
            pooled_result = simulate(pooled, 29, shard_workers=2)
        assert pooled_result == simulate(reference, 29)
        assert_sensor_state_equal(reference, pooled)


class TestShmTransportFaults:
    """Injected shm-transport faults must degrade to the serial re-run.

    Each fault fires via ``REPRO_SHARD_FAULT`` (the env-JSON idiom of
    :mod:`repro.runtime.faults`, so it reaches workers under any start
    method): a worker hard-killed mid-tick, a garbled request header,
    and a stale epoch — the reader's view of a segment-resize race.
    All three must produce the serial result bitwise, and leak no
    ``/dev/shm`` segments.
    """

    @pytest.mark.parametrize(
        "kind", ["kill", "garble-header", "stale-epoch"]
    )
    def test_fault_degrades_to_serial_bitwise(self, kind, monkeypatch):
        import glob
        import json

        from repro.runtime.shardpool import FAULT_ENV

        segments_before = set(glob.glob("/dev/shm/rs*"))
        monkeypatch.setenv(
            FAULT_ENV,
            json.dumps({"kind": kind, "shard": 1, "epoch": 3}),
        )
        reference = figure_spec(seed=37, num_hosts=1500, max_time=10.0)
        pooled = figure_spec(
            seed=37, num_hosts=1500, max_time=10.0, shards=2
        )
        with pytest.warns(RuntimeWarning, match="re-running"):
            pooled_result = simulate(
                pooled, 37, shard_workers=2, shard_transport="shmem"
            )
        monkeypatch.delenv(FAULT_ENV)
        assert pooled_result == simulate(reference, 37)
        assert_sensor_state_equal(reference, pooled)
        assert set(glob.glob("/dev/shm/rs*")) == segments_before


class TestRingTransport:
    """The pipelined ring transport: counters, faults, back-pressure.

    Bitwise equivalence for the happy path rides on
    ``TestShardPool.test_pool_run_equals_unsharded``; this class pins
    the transport-specific contracts — control traffic amortized off
    the executor pipe, the two ring-specific injected faults, and a
    one-slot ring forcing the back-pressure loop.
    """

    def test_tick_path_stays_off_the_executor_pipe(self):
        simulator = ShardedSimulator(
            figure_spec(seed=31, num_hosts=1500, max_time=10.0, shards=4),
            workers=2,
            transport="ring",
        )
        simulator.run(np.random.default_rng(31))
        stats = simulator.transport_stats
        assert stats["transport"] == "ring"
        # Exactly one ring round trip per shard per tick...
        assert stats["ring_round_trips"] == stats["ticks"] * 4
        # ...zero pickled payload bytes on the tick path...
        assert stats["pipe_bytes"] == 0
        assert stats["payload_bytes"] > 0
        # ...and executor submits bounded by setup/teardown, not ticks:
        # far below one round trip per shard per tick.
        assert 0 < stats["submit_round_trips"] < stats["ring_round_trips"]
        assert stats["ring_bytes"] >= 2 * stats["ring_round_trips"]
        assert stats["dispatch_overlap_s"] >= 0.0

    @pytest.mark.parametrize("kind", ["garble-ring"])
    def test_garbled_ring_slot_degrades_to_serial_bitwise(
        self, kind, monkeypatch
    ):
        import glob
        import json

        from repro.runtime.shardpool import FAULT_ENV

        segments_before = set(glob.glob("/dev/shm/rs*"))
        monkeypatch.setenv(
            FAULT_ENV,
            json.dumps({"kind": kind, "shard": 1, "epoch": 3}),
        )
        reference = figure_spec(seed=37, num_hosts=1500, max_time=10.0)
        pooled = figure_spec(
            seed=37, num_hosts=1500, max_time=10.0, shards=2
        )
        with pytest.warns(RuntimeWarning, match="re-running"):
            pooled_result = simulate(
                pooled, 37, shard_workers=2, shard_transport="ring"
            )
        monkeypatch.delenv(FAULT_ENV)
        assert pooled_result == simulate(reference, 37)
        assert_sensor_state_equal(reference, pooled)
        assert set(glob.glob("/dev/shm/rs*")) == segments_before

    def test_stale_doorbell_self_heals_without_degrading(self, monkeypatch):
        # A withheld doorbell is a *lost wake-up*, not corruption: the
        # pump's poll timeout must absorb it with no warning, no
        # fallback, and the identical bitwise result.
        import glob
        import json
        import warnings

        from repro.runtime.shardpool import FAULT_ENV

        segments_before = set(glob.glob("/dev/shm/rs*"))
        monkeypatch.setenv(
            FAULT_ENV,
            json.dumps({"kind": "stale-doorbell", "shard": 1, "epoch": 3}),
        )
        reference = figure_spec(seed=37, num_hosts=1500, max_time=10.0)
        pooled = figure_spec(
            seed=37, num_hosts=1500, max_time=10.0, shards=2
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            pooled_result = simulate(
                pooled, 37, shard_workers=2, shard_transport="ring"
            )
        monkeypatch.delenv(FAULT_ENV)
        assert pooled_result == simulate(reference, 37)
        assert_sensor_state_equal(reference, pooled)
        assert set(glob.glob("/dev/shm/rs*")) == segments_before

    def test_tiny_ring_backpressure_keeps_equivalence(self, monkeypatch):
        # Shrink every ring to the protocol minimum (two slots) while
        # each worker hosts four shards: the driver's per-tick pushes
        # outrun the ring and must wait out the back-pressure loop
        # (re-ringing the doorbell) without losing or reordering work.
        from repro.runtime.ring import MIN_CAPACITY

        import repro.runtime.shardpool as shardpool

        monkeypatch.setattr(shardpool, "_RING_SLOTS", MIN_CAPACITY)
        reference = figure_spec(seed=23, num_hosts=1500, max_time=10.0)
        pooled = figure_spec(
            seed=23, num_hosts=1500, max_time=10.0, shards=8
        )
        reference_result = simulate(reference, 23)
        pooled_result = simulate(
            pooled, 23, shard_workers=2, shard_transport="ring"
        )
        assert pooled_result == reference_result
        assert_sensor_state_equal(reference, pooled)
