"""Tests for repro.sim.events."""

import pytest

from repro.sim.events import EventKernel


class TestScheduling:
    def test_events_fire_in_time_order(self):
        kernel = EventKernel()
        fired = []
        kernel.schedule(3.0, lambda k: fired.append("c"))
        kernel.schedule(1.0, lambda k: fired.append("a"))
        kernel.schedule(2.0, lambda k: fired.append("b"))
        kernel.run()
        assert fired == ["a", "b", "c"]
        assert kernel.now == 3.0  # bitwise

    def test_ties_fire_in_scheduling_order(self):
        kernel = EventKernel()
        fired = []
        kernel.schedule(1.0, lambda k: fired.append(1))
        kernel.schedule(1.0, lambda k: fired.append(2))
        kernel.run()
        assert fired == [1, 2]

    def test_rejects_past_scheduling(self):
        kernel = EventKernel()
        with pytest.raises(ValueError):
            kernel.schedule(-1.0, lambda k: None)
        kernel.schedule(5.0, lambda k: None)
        kernel.run()
        with pytest.raises(ValueError):
            kernel.schedule_at(1.0, lambda k: None)

    def test_events_can_schedule_events(self):
        kernel = EventKernel()
        fired = []

        def chain(k, depth=0):
            fired.append(k.now)
            if depth < 3:
                k.schedule(1.0, lambda k2: chain(k2, depth + 1))

        kernel.schedule(0.0, chain)
        kernel.run()
        assert fired == [0.0, 1.0, 2.0, 3.0]

    def test_cancelled_events_skipped(self):
        kernel = EventKernel()
        fired = []
        event = kernel.schedule(1.0, lambda k: fired.append("cancelled"))
        kernel.schedule(2.0, lambda k: fired.append("kept"))
        event.cancel()
        kernel.run()
        assert fired == ["kept"]
        assert kernel.events_fired == 1


class TestRunBounds:
    def test_until_stops_clock(self):
        kernel = EventKernel()
        fired = []
        kernel.schedule(1.0, lambda k: fired.append("early"))
        kernel.schedule(10.0, lambda k: fired.append("late"))
        kernel.run(until=5.0)
        assert fired == ["early"]
        assert kernel.now == 5.0  # bitwise
        kernel.run()
        assert fired == ["early", "late"]

    def test_until_advances_clock_with_empty_queue(self):
        kernel = EventKernel()
        kernel.run(until=42.0)
        assert kernel.now == 42.0  # bitwise

    def test_max_events_budget(self):
        kernel = EventKernel()
        fired = []
        for i in range(10):
            kernel.schedule(float(i), lambda k, i=i: fired.append(i))
        kernel.run(max_events=3)
        assert fired == [0, 1, 2]
        assert kernel.pending == 7

    def test_step_returns_false_when_empty(self):
        kernel = EventKernel()
        assert kernel.step() is False
        kernel.schedule(1.0, lambda k: None)
        assert kernel.step() is True
        assert kernel.step() is False
