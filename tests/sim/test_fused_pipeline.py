"""The fused tick pipeline must be bitwise-equal to the reference path.

The fused pipeline (arena buffers + uniform-rate fast path + merged
verdict partition) only reorganizes *how* each tick's probe batch is
produced and judged — never which probes exist, never how the RNG is
consumed.  These tests sweep worm families, integral and fractional
scan rates, and an overlapping-sensor deployment, and demand
``SimulationResult.__eq__`` (bitwise over every field) against
``kernel_override(False)`` reference runs; the pipeline's two toggles
(``use_fused_tick``, ``use_uniform_fast_path``) are also exercised
independently.  Alongside the equivalence sweep: the duplicate-hit
infection invariant and the arena's O(1) steady-state allocation
contract.
"""

import tracemalloc

import numpy as np
import pytest

from repro.env.environment import NetworkEnvironment
from repro.env.failures import LossModel, RegionLoss
from repro.env.filtering import FilterRule, FilteringPolicy
from repro.net.cidr import CIDRBlock
from repro.net.kernels import kernel_override
from repro.population.model import HostPopulation
from repro.sensors.darknet import DarknetSensor, ims_standard_deployment
from repro.sim.engine import (
    EpidemicSimulator,
    SimulationConfig,
    run_simulation_trial,
)
from repro.worms.base import WormModel, WormState
from repro.worms.blaster import BlasterWorm
from repro.worms.slammer import SlammerWorm
from repro.worms.uniform import UniformScanWorm

WORMS = {
    "uniform": UniformScanWorm,
    "blaster": BlasterWorm,
    "slammer": SlammerWorm,
}


def overlapping_sensors():
    """IMS deployment plus blocks nested inside D/20 and Z/8.

    Overlap means a probe can land on several sensors at once, which
    exercises every per-layer owner gather of the merged partition.
    """
    sensors = ims_standard_deployment()
    sensors.append(DarknetSensor("D-nested", CIDRBlock.parse("133.101.4.0/24")))
    sensors.append(DarknetSensor("Z-nested", CIDRBlock.parse("41.7.0.0/16")))
    return sensors


def build_simulator(worm_name, seed=2006, num_hosts=3000):
    """A small outbreak exercising policy, regional loss, sensors."""
    rng = np.random.default_rng(seed)
    addrs = np.unique(
        rng.integers(1 << 24, 224 << 24, size=num_hosts, dtype=np.uint64).astype(
            np.uint32
        )
    )
    policy = FilteringPolicy(
        [
            FilterRule("egress", CIDRBlock.parse("20.0.0.0/8")),
            FilterRule("ingress", CIDRBlock.parse("60.0.0.0/8")),
        ]
    )
    loss = LossModel(
        base_rate=0.05,
        region_losses=[RegionLoss(CIDRBlock.parse("100.0.0.0/8"), 0.5)],
    )
    return EpidemicSimulator(
        WORMS[worm_name](),
        HostPopulation(addrs),
        environment=NetworkEnvironment(policy=policy, loss=loss),
        sensors=overlapping_sensors(),
    )


def config_with(scan_rate):
    return SimulationConfig(
        scan_rate=scan_rate,
        max_time=12.0,
        seed_count=300,
        stop_at_fraction=1.0,
    )


def reference_run(worm_name, scan_rate, seed=2006):
    simulator = build_simulator(worm_name, seed)
    with kernel_override(False):
        result = run_simulation_trial(
            simulator, config_with(scan_rate), seed
        )
    return simulator, result


def fused_run(
    worm_name, scan_rate, seed=2006, fused=True, uniform_fast=True
):
    simulator = build_simulator(worm_name, seed)
    simulator.use_fused_tick = fused
    simulator.use_uniform_fast_path = uniform_fast
    result = run_simulation_trial(simulator, config_with(scan_rate), seed)
    return simulator, result


def assert_same_sensors(left_sim, right_sim):
    for left, right in zip(left_sim.sensors, right_sim.sensors):
        assert np.array_equal(
            left.probes_by_slash24(), right.probes_by_slash24()
        )
        assert np.array_equal(
            left.unique_sources_by_slash24(),
            right.unique_sources_by_slash24(),
        )


# scan_rate 10.0 -> integral per-tick budget, uniform fast path live;
# scan_rate 2.5 -> fractional budget, general arena path.
@pytest.mark.parametrize("worm_name", sorted(WORMS))
@pytest.mark.parametrize("scan_rate", [10.0, 2.5])
def test_fused_bitwise_equals_reference(worm_name, scan_rate):
    fused_sim, fused_result = fused_run(worm_name, scan_rate)
    reference_sim, reference_result = reference_run(worm_name, scan_rate)
    assert fused_result == reference_result
    assert_same_sensors(fused_sim, reference_sim)


@pytest.mark.parametrize("worm_name", ["uniform", "slammer"])
def test_general_arena_path_without_fast_path(worm_name):
    """Fast path off, fused on: the general arena path must match the
    reference even for a fast-path-eligible (integral) rate."""
    fused_sim, fused_result = fused_run(
        worm_name, 10.0, uniform_fast=False
    )
    reference_sim, reference_result = reference_run(worm_name, 10.0)
    assert fused_result == reference_result
    assert_same_sensors(fused_sim, reference_sim)
    # The toggle really took: no fast-path source cache was built.
    arena = fused_sim.last_arena
    assert arena is not None
    assert "uniform_sources" not in arena._buffers


def test_fused_tick_off_uses_no_arena():
    """``use_fused_tick = False`` falls back to the kernelized legacy
    path — still reference-equal, and no arena is created."""
    legacy_sim, legacy_result = fused_run("uniform", 10.0, fused=False)
    _, reference_result = reference_run("uniform", 10.0)
    assert legacy_result == reference_result
    assert legacy_sim.last_arena is None


def test_fractional_rate_accumulator_carry():
    """A rate of 0.75 emits probes only on some ticks; the fused
    accumulator must carry the fraction exactly like the reference."""
    _, fused_result = fused_run("uniform", 0.75)
    _, reference_result = reference_run("uniform", 0.75)
    assert fused_result == reference_result


# -- duplicate-hit infection invariant --------------------------------


class _FixedTargetWorm(WormModel):
    """Every probe of every host aims at one fixed address, so any
    tick with >=2 probes produces duplicate hits on that host.  Each
    ``add_hosts`` batch is recorded for the alignment assertions."""

    name = "fixed"

    def __init__(self, target):
        self.target = np.uint32(target)
        self.added_batches = []

    def new_state(self):
        return WormState()

    def add_hosts(self, state, addrs, rng):
        self.added_batches.append(np.array(addrs, dtype=np.uint32))
        state._append_addresses(addrs)

    def generate(self, state, scans, rng):
        return np.full(
            (state.num_hosts, scans), self.target, dtype=np.uint32
        )


@pytest.mark.parametrize("fused", [True, False])
def test_double_hit_infects_once(fused):
    """One host probed three times in one tick: exactly one infection,
    one worm row, one infection-time entry — state stays aligned."""
    base = 12 << 24  # 12.0.0.0/8: plain public space
    addrs = np.array([base + 1, base + 2, base + 3], dtype=np.uint32)
    worm = _FixedTargetWorm(base + 3)
    simulator = EpidemicSimulator(
        worm,
        HostPopulation(addrs),
        environment=NetworkEnvironment(),
    )
    simulator.use_fused_tick = fused
    config = SimulationConfig(
        scan_rate=3.0, max_time=1.0, seed_count=1, stop_at_fraction=1.0
    )
    result = simulator.run(
        config,
        np.random.default_rng(0),
        seed_addrs=addrs[:1],
    )
    assert simulator.population.num_infected == 2  # seed + target
    assert result.infected_counts[-1] == 2
    # One infection_times entry per infection event, aligned with the
    # population count (a duplicated entry would desynchronize them).
    assert len(result.infection_times) == 2
    # add_hosts saw the seed batch plus ONE row for the triple-hit
    # host — never a duplicated row.
    all_added = np.concatenate(worm.added_batches)
    assert len(all_added) == 2
    assert len(np.unique(all_added)) == 2


@pytest.mark.parametrize("enabled", [True, False])
def test_vulnerable_hits_dedups_and_sorts(enabled):
    """Duplicate probe hits collapse to one sorted address on every
    vulnerable_hits path (sort-flip, locator, reference)."""
    addrs = np.arange(100, 160, dtype=np.uint32) * 7919
    population = HostPopulation(addrs)
    hits = np.array([addrs[13], addrs[2], addrs[13], addrs[40]])
    with kernel_override(enabled):
        # Small batch: locator (or searchsorted reference) path.
        small = population.vulnerable_hits(
            np.concatenate([hits, np.zeros(10, dtype=np.uint32)])
        )
        # Batch >= population size: sort-flip path when enabled.
        big = population.vulnerable_hits(
            np.concatenate([hits, np.zeros(200, dtype=np.uint32)])
        )
    expected = np.unique(hits)
    assert np.array_equal(small, expected)
    assert np.array_equal(big, expected)


def test_sort_flip_matches_locator_across_thresholds():
    """The large-batch sort-flip result equals the per-probe locate
    result on both sides of its size threshold."""
    rng = np.random.default_rng(42)
    addrs = np.unique(
        rng.integers(1 << 24, 224 << 24, size=500, dtype=np.uint64).astype(
            np.uint32
        )
    )
    population = HostPopulation(addrs)
    population.infect(addrs[::5])
    for batch_size in (64, len(addrs) - 1, len(addrs), 4 * len(addrs)):
        targets = rng.choice(addrs, size=batch_size).astype(np.uint32)
        with kernel_override(True):
            kernel_hits = population.vulnerable_hits(targets)
        with kernel_override(False):
            reference_hits = population.vulnerable_hits(targets)
        assert np.array_equal(kernel_hits, reference_hits)


# -- arena allocation contract ----------------------------------------


def test_arena_allocations_are_steady_state():
    """Once the outbreak saturates, extra ticks must not allocate:
    a 3x longer run reuses the same arena buffers."""
    def run_for(ticks):
        simulator = build_simulator("uniform", num_hosts=1500)
        config = SimulationConfig(
            scan_rate=10.0,
            max_time=float(ticks),
            seed_count=400,
            stop_at_fraction=1.0,
        )
        run_simulation_trial(simulator, config, 7)
        assert simulator.last_arena is not None
        return simulator.last_arena.allocations

    short = run_for(12)
    long = run_for(36)
    # Growth is geometric per buffer name, so the total is O(log n)
    # per name regardless of tick count...
    assert long <= 64
    # ...and a saturated outbreak stops growing entirely: the extra
    # 24 ticks add zero allocations.
    assert long == short


def test_arena_request_reuse_allocates_nothing():
    """Steady-state arena requests return views of existing buffers."""
    from repro.sim.arena import TickArena

    arena = TickArena()
    arena.request("flat", 10_000, np.uint32)
    arena.accumulator(5_000)
    arena.repeated("rep", np.arange(100, dtype=np.uint32), 8)
    warm = arena.allocations

    tracemalloc.start()
    for _ in range(50):
        view = arena.request("flat", 10_000, np.uint32)
        acc = arena.accumulator(5_000)
        rep = arena.repeated("rep", np.arange(100, dtype=np.uint32), 8)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    assert arena.allocations == warm
    assert view.base is not None and acc.base is not None
    assert rep.base is not None
    # 50 iterations of three requests: only view objects and the
    # throwaway arange; far below one fresh 10k-element buffer.
    assert peak < 20_000


def test_arena_growth_preserves_accumulator():
    from repro.sim.arena import TickArena

    arena = TickArena()
    acc = arena.accumulator(4)
    acc[:] = [0.25, 0.5, 0.75, 1.0]
    grown = arena.accumulator(8)
    assert np.array_equal(grown[:4], [0.25, 0.5, 0.75, 1.0])
    assert np.array_equal(grown[4:], np.zeros(4))


def test_arena_repeated_tracks_token_identity():
    from repro.sim.arena import TickArena

    arena = TickArena()
    rows = np.arange(6, dtype=np.int64)
    first = arena.repeated("policy", rows, 3, token="kernel-a")
    assert np.array_equal(first, np.repeat(rows, 3))
    # Same token: prefix reuse; only appended rows are rewritten.
    more = np.arange(8, dtype=np.int64)
    second = arena.repeated("policy", more, 3, token="kernel-a")
    assert np.array_equal(second, np.repeat(more, 3))
    # New token (rebuilt kernel): full rewrite with the new values.
    flipped = more[::-1].copy()
    third = arena.repeated("policy", flipped, 3, token="kernel-b")
    assert np.array_equal(third, np.repeat(flipped, 3))
