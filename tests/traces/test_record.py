"""Tests for repro.traces.record."""

import numpy as np
import pytest

from repro.net.address import parse_addrs
from repro.net.cidr import BlockSet, CIDRBlock
from repro.traces.record import ProbeTrace, TraceRecorder


@pytest.fixture()
def recorder_with_data():
    recorder = TraceRecorder()
    recorder.record(
        1.0,
        parse_addrs(["1.1.1.1", "2.2.2.2"]),
        parse_addrs(["10.0.0.1", "10.0.1.1"]),
        worm="codered2",
    )
    recorder.record(
        2.0,
        parse_addrs(["3.3.3.3"]),
        parse_addrs(["20.0.0.1"]),
        worm="slammer",
    )
    return recorder


class TestTraceRecorder:
    def test_counts_events(self, recorder_with_data):
        assert len(recorder_with_data) == 3

    def test_empty_batches_ignored(self):
        recorder = TraceRecorder()
        recorder.record(1.0, np.empty(0, dtype=np.uint32), np.empty(0, dtype=np.uint32))
        assert len(recorder) == 0

    def test_misaligned_batch_rejected(self):
        recorder = TraceRecorder()
        with pytest.raises(ValueError):
            recorder.record(
                1.0,
                np.array([1], dtype=np.uint32),
                np.array([1, 2], dtype=np.uint32),
            )

    def test_finish_empty(self):
        trace = TraceRecorder().finish()
        assert len(trace) == 0
        assert trace.duration == 0.0  # bitwise

    def test_finish_assembles_columns(self, recorder_with_data):
        trace = recorder_with_data.finish()
        assert len(trace) == 3
        assert list(trace.times) == [1.0, 1.0, 2.0]
        assert trace.worm_names == ("codered2", "slammer")
        assert list(trace.worm_ids) == [0, 0, 1]

    def test_worm_name_table_deduplicates(self):
        recorder = TraceRecorder()
        for _ in range(3):
            recorder.record(
                0.0,
                np.array([1], dtype=np.uint32),
                np.array([2], dtype=np.uint32),
                worm="blaster",
            )
        assert recorder.finish().worm_names == ("blaster",)


class TestProbeTrace:
    def test_validation(self):
        with pytest.raises(ValueError):
            ProbeTrace(
                times=np.zeros(2),
                sources=np.zeros(1, dtype=np.uint32),
                targets=np.zeros(2, dtype=np.uint32),
                worm_ids=np.zeros(2, dtype=np.int16),
                worm_names=("x",),
            )
        with pytest.raises(ValueError):
            ProbeTrace(
                times=np.zeros(1),
                sources=np.zeros(1, dtype=np.uint32),
                targets=np.zeros(1, dtype=np.uint32),
                worm_ids=np.array([3], dtype=np.int16),
                worm_names=("x",),
            )

    def test_between(self, recorder_with_data):
        trace = recorder_with_data.finish()
        early = trace.between(0.0, 1.5)
        assert len(early) == 2

    def test_to_block(self, recorder_with_data):
        trace = recorder_with_data.finish()
        filtered = trace.to_block(CIDRBlock.parse("10.0.0.0/8"))
        assert len(filtered) == 2
        filtered_set = trace.to_block(BlockSet.parse(["20.0.0.0/8"]))
        assert len(filtered_set) == 1

    def test_from_block(self, recorder_with_data):
        trace = recorder_with_data.finish()
        assert len(trace.from_block(CIDRBlock.parse("3.0.0.0/8"))) == 1

    def test_for_worm(self, recorder_with_data):
        trace = recorder_with_data.finish()
        assert len(trace.for_worm("codered2")) == 2
        with pytest.raises(KeyError):
            trace.for_worm("nimda")

    def test_unique_sources(self, recorder_with_data):
        trace = recorder_with_data.finish()
        assert len(trace.unique_sources()) == 3

    def test_targets_by_slash24(self, recorder_with_data):
        trace = recorder_with_data.finish()
        prefixes, counts = trace.targets_by_slash24()
        assert counts.sum() == 3
        assert len(prefixes) == 3

    def test_duration(self, recorder_with_data):
        assert recorder_with_data.finish().duration == 1.0  # bitwise

    def test_save_load_roundtrip(self, recorder_with_data, tmp_path):
        trace = recorder_with_data.finish()
        path = tmp_path / "trace.npz"
        trace.save(path)
        loaded = ProbeTrace.load(path)
        assert len(loaded) == len(trace)
        assert (loaded.targets == trace.targets).all()
        assert loaded.worm_names == trace.worm_names
        assert (loaded.worm_ids == trace.worm_ids).all()
