"""Tests for repro.traces.replay."""

import numpy as np
import pytest

from repro.net.address import parse_addr, parse_addrs
from repro.net.cidr import CIDRBlock
from repro.sensors.darknet import DarknetSensor
from repro.sensors.deployment import SensorGrid
from repro.traces.record import TraceRecorder
from repro.traces.replay import replay_into_grid, replay_into_sensors


def build_trace():
    recorder = TraceRecorder()
    sensor_target = parse_addr("133.101.0.5")
    for t in range(10):
        recorder.record(
            float(t),
            parse_addrs(["1.1.1.1"]),
            np.array([sensor_target], dtype=np.uint32),
            worm="codered2",
        )
    recorder.record(
        3.0, parse_addrs(["2.2.2.2"]), parse_addrs(["8.8.8.8"]), worm="codered2"
    )
    return recorder.finish()


class TestReplayIntoSensors:
    def test_counts_match_block(self):
        trace = build_trace()
        sensor = DarknetSensor("D", CIDRBlock.parse("133.101.0.0/20"))
        seen = replay_into_sensors(trace, [sensor])
        assert seen["D"] == 10
        assert sensor.unique_sources_total() == 1

    def test_multiple_sensors(self):
        trace = build_trace()
        sensors = [
            DarknetSensor("D", CIDRBlock.parse("133.101.0.0/20")),
            DarknetSensor("X", CIDRBlock.parse("8.8.0.0/16")),
        ]
        seen = replay_into_sensors(trace, sensors)
        assert seen == {"D": 10, "X": 1}


class TestReplayIntoGrid:
    def test_alert_timing_preserved(self):
        trace = build_trace()
        grid = SensorGrid(
            np.array([parse_addr("133.101.0.0") >> 8], dtype=np.uint32),
            alert_threshold=5,
        )
        observed = replay_into_grid(trace, grid)
        assert observed == 10
        # Five payloads arrive at t=0..4; with 1 s batching the alert
        # lands at the close of the window containing the 5th probe.
        assert grid.alert_times()[0] == pytest.approx(5.0)

    def test_empty_trace(self):
        grid = SensorGrid(np.array([1], dtype=np.uint32))
        assert replay_into_grid(TraceRecorder().finish(), grid) == 0

    def test_rejects_bad_batch(self):
        grid = SensorGrid(np.array([1], dtype=np.uint32))
        with pytest.raises(ValueError):
            replay_into_grid(build_trace(), grid, batch_seconds=0)

    def test_unsorted_trace_replays_in_time_order(self):
        recorder = TraceRecorder()
        target = np.array([parse_addr("133.101.0.5")], dtype=np.uint32)
        source = np.array([parse_addr("1.1.1.1")], dtype=np.uint32)
        for t in (9.0, 1.0, 5.0, 2.0, 3.0):
            recorder.record(t, source, target, worm="w")
        grid = SensorGrid(
            np.array([parse_addr("133.101.0.0") >> 8], dtype=np.uint32),
            alert_threshold=5,
        )
        replay_into_grid(recorder.finish(), grid)
        # The 5th probe in time order is at t=9.
        assert grid.alert_times()[0] == pytest.approx(10.0)
