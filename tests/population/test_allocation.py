"""Tests for repro.population.allocation."""

import numpy as np
import pytest

from repro.population.allocation import (
    place_infected_hosts,
    synthesize_broadband_isps,
    synthesize_enterprises,
)


class TestEnterprises:
    def test_count_and_kind(self):
        orgs = synthesize_enterprises(5, np.random.default_rng(0))
        assert len(orgs) == 5
        assert all(org.kind == "enterprise" for org in orgs)

    def test_block_sizes_are_slash16s(self):
        orgs = synthesize_enterprises(3, np.random.default_rng(1))
        for org in orgs:
            for block in org.blocks.blocks:
                assert block.prefix_len == 16

    def test_no_overlap_between_orgs(self):
        orgs = synthesize_enterprises(10, np.random.default_rng(2))
        all_blocks = [block for org in orgs for block in org.blocks.blocks]
        assert len(set(all_blocks)) == len(all_blocks)

    def test_address_counts_in_enterprise_range(self):
        orgs = synthesize_enterprises(5, np.random.default_rng(3))
        for org in orgs:
            # "Large companies typically have hundreds of thousands of
            # hosts": 2-8 /16s = 131k - 524k addresses.
            assert 2 * 65_536 <= org.address_count <= 8 * 65_536


class TestBroadbandISPs:
    def test_blocks_are_slash10s(self):
        orgs = synthesize_broadband_isps(3, np.random.default_rng(0))
        for org in orgs:
            for block in org.blocks.blocks:
                assert block.prefix_len == 10

    def test_isps_dwarf_enterprises(self):
        rng = np.random.default_rng(1)
        isps = synthesize_broadband_isps(3, rng)
        enterprises = synthesize_enterprises(3, rng)
        assert min(isp.address_count for isp in isps) > max(
            ent.address_count for ent in enterprises
        )

    def test_runs_out_of_space_cleanly(self):
        with pytest.raises(ValueError):
            synthesize_broadband_isps(
                50, np.random.default_rng(2), first_octets=(24,)
            )


class TestInfectedPlacement:
    def test_places_requested_counts(self):
        rng = np.random.default_rng(0)
        orgs = synthesize_enterprises(2, rng)
        placements = place_infected_hosts(orgs, [100, 0], rng)
        assert len(placements[orgs[0].name]) <= 100  # unique() may collapse
        assert len(placements[orgs[0].name]) > 90
        assert len(placements[orgs[1].name]) == 0

    def test_hosts_inside_allocation(self):
        rng = np.random.default_rng(1)
        orgs = synthesize_enterprises(1, rng)
        placements = place_infected_hosts(orgs, [500], rng)
        assert orgs[0].blocks.contains_array(placements[orgs[0].name]).all()

    def test_rejects_misaligned_counts(self):
        rng = np.random.default_rng(2)
        orgs = synthesize_enterprises(2, rng)
        with pytest.raises(ValueError):
            place_infected_hosts(orgs, [1], rng)

    def test_rejects_negative_counts(self):
        rng = np.random.default_rng(3)
        orgs = synthesize_enterprises(1, rng)
        with pytest.raises(ValueError):
            place_infected_hosts(orgs, [-5], rng)
