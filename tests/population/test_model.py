"""Tests for repro.population.model."""

import numpy as np
import pytest

from repro.net.kernels import kernel_override
from repro.population.model import HostPopulation, HostStatus


@pytest.fixture()
def population():
    return HostPopulation(np.array([100, 200, 300, 400, 500], dtype=np.uint32))


class TestLifecycle:
    def test_initial_state(self, population):
        assert population.size == 5
        assert population.num_vulnerable == 5
        assert population.num_infected == 0
        assert population.num_immune == 0
        assert population.fraction_infected == 0.0  # bitwise

    def test_infect(self, population):
        fresh = population.infect(np.array([200, 400], dtype=np.uint32))
        assert sorted(fresh) == [200, 400]
        assert population.num_infected == 2
        assert population.num_vulnerable == 3

    def test_reinfection_is_noop(self, population):
        population.infect(np.array([200], dtype=np.uint32))
        fresh = population.infect(np.array([200], dtype=np.uint32))
        assert len(fresh) == 0
        assert population.num_infected == 1

    def test_duplicate_infections_in_batch(self, population):
        fresh = population.infect(np.array([200, 200, 300], dtype=np.uint32))
        assert sorted(fresh) == [200, 300]

    def test_immunize_protects(self, population):
        population.immunize(np.array([300], dtype=np.uint32))
        fresh = population.infect(np.array([300], dtype=np.uint32))
        assert len(fresh) == 0
        assert population.num_immune == 1

    def test_immunize_does_not_cure(self, population):
        population.infect(np.array([300], dtype=np.uint32))
        population.immunize(np.array([300], dtype=np.uint32))
        assert population.num_infected == 1
        assert population.num_immune == 0

    def test_unknown_address_raises(self, population):
        with pytest.raises(KeyError):
            population.infect(np.array([999], dtype=np.uint32))

    def test_rejects_duplicate_population(self):
        with pytest.raises(ValueError):
            HostPopulation(np.array([1, 1, 2], dtype=np.uint32))

    def test_reset(self, population):
        population.infect(np.array([100], dtype=np.uint32))
        population.reset()
        assert population.num_vulnerable == 5

    def test_status_of(self, population):
        population.infect(np.array([100], dtype=np.uint32))
        statuses = population.status_of(np.array([100, 200], dtype=np.uint32))
        assert statuses[0] == HostStatus.INFECTED
        assert statuses[1] == HostStatus.VULNERABLE


class TestVulnerableHits:
    def test_filters_nonmembers(self, population):
        hits = population.vulnerable_hits(np.array([100, 150, 500], dtype=np.uint32))
        assert sorted(hits) == [100, 500]

    def test_excludes_infected(self, population):
        population.infect(np.array([100], dtype=np.uint32))
        hits = population.vulnerable_hits(np.array([100, 200], dtype=np.uint32))
        assert list(hits) == [200]

    def test_collapses_duplicates(self, population):
        hits = population.vulnerable_hits(np.array([200, 200], dtype=np.uint32))
        assert list(hits) == [200]

    def test_empty_batch(self, population):
        assert len(population.vulnerable_hits(np.empty(0, dtype=np.uint32))) == 0

    def test_2d_targets_accepted(self, population):
        targets = np.array([[100, 150], [200, 250]], dtype=np.uint32)
        hits = population.vulnerable_hits(targets)
        assert sorted(hits) == [100, 200]

    def test_address_views(self, population):
        population.infect(np.array([100], dtype=np.uint32))
        assert list(population.infected_addresses()) == [100]
        assert 100 not in population.vulnerable_addresses()


class TestEmptyPopulation:
    """Regression: empty populations must not crash batch lookups."""

    def test_vulnerable_hits_empty_population(self):
        empty = HostPopulation(np.empty(0, dtype=np.uint32))
        hits = empty.vulnerable_hits(np.array([1, 2, 3], dtype=np.uint32))
        assert len(hits) == 0

    def test_status_of_empty_batch_on_empty_population(self):
        empty = HostPopulation(np.empty(0, dtype=np.uint32))
        statuses = empty.status_of(np.empty(0, dtype=np.uint32))
        assert len(statuses) == 0

    def test_status_of_unknown_address_raises(self):
        empty = HostPopulation(np.empty(0, dtype=np.uint32))
        with pytest.raises(KeyError):
            empty.status_of(np.array([7], dtype=np.uint32))

    def test_infect_and_immunize_no_ops(self):
        empty = HostPopulation(np.empty(0, dtype=np.uint32))
        assert len(empty.infect(np.empty(0, dtype=np.uint32))) == 0
        empty.immunize(np.empty(0, dtype=np.uint32))
        assert empty.size == 0
        assert empty.num_infected == 0
        assert empty.fraction_infected == 0.0  # bitwise


class TestVulnerableHitsKernel:
    """Locator fast path must match the searchsorted reference."""

    def test_kernel_matches_reference(self):
        rng = np.random.default_rng(99)
        for _ in range(10):
            addrs = np.unique(
                rng.integers(0, 1 << 32, size=5000, dtype=np.uint64).astype(
                    np.uint32
                )
            )
            population = HostPopulation(addrs)
            population.infect(addrs[:: 7])
            targets = np.concatenate(
                [
                    rng.integers(0, 1 << 32, size=8000, dtype=np.uint64).astype(
                        np.uint32
                    ),
                    addrs[:: 3],
                ]
            )
            expected = None
            with kernel_override(False):
                expected = population.vulnerable_hits(targets)
            assert np.array_equal(population.vulnerable_hits(targets), expected)

    def test_clustered_population_matches(self):
        # Hotspot-shaped population: everything inside one /16, which
        # drives the locator's searchsorted fallback regime.
        rng = np.random.default_rng(100)
        base = 0x0A0A0000
        addrs = np.unique(
            base + rng.integers(0, 1 << 16, size=3000, dtype=np.uint64)
        ).astype(np.uint32)
        population = HostPopulation(addrs)
        targets = np.concatenate(
            [addrs[:: 2], rng.integers(0, 1 << 32, size=4000,
                                       dtype=np.uint64).astype(np.uint32)]
        )
        with kernel_override(False):
            expected = population.vulnerable_hits(targets)
        assert np.array_equal(population.vulnerable_hits(targets), expected)
