"""Tests for repro.population.model."""

import numpy as np
import pytest

from repro.population.model import HostPopulation, HostStatus


@pytest.fixture()
def population():
    return HostPopulation(np.array([100, 200, 300, 400, 500], dtype=np.uint32))


class TestLifecycle:
    def test_initial_state(self, population):
        assert population.size == 5
        assert population.num_vulnerable == 5
        assert population.num_infected == 0
        assert population.num_immune == 0
        assert population.fraction_infected == 0.0  # bitwise

    def test_infect(self, population):
        fresh = population.infect(np.array([200, 400], dtype=np.uint32))
        assert sorted(fresh) == [200, 400]
        assert population.num_infected == 2
        assert population.num_vulnerable == 3

    def test_reinfection_is_noop(self, population):
        population.infect(np.array([200], dtype=np.uint32))
        fresh = population.infect(np.array([200], dtype=np.uint32))
        assert len(fresh) == 0
        assert population.num_infected == 1

    def test_duplicate_infections_in_batch(self, population):
        fresh = population.infect(np.array([200, 200, 300], dtype=np.uint32))
        assert sorted(fresh) == [200, 300]

    def test_immunize_protects(self, population):
        population.immunize(np.array([300], dtype=np.uint32))
        fresh = population.infect(np.array([300], dtype=np.uint32))
        assert len(fresh) == 0
        assert population.num_immune == 1

    def test_immunize_does_not_cure(self, population):
        population.infect(np.array([300], dtype=np.uint32))
        population.immunize(np.array([300], dtype=np.uint32))
        assert population.num_infected == 1
        assert population.num_immune == 0

    def test_unknown_address_raises(self, population):
        with pytest.raises(KeyError):
            population.infect(np.array([999], dtype=np.uint32))

    def test_rejects_duplicate_population(self):
        with pytest.raises(ValueError):
            HostPopulation(np.array([1, 1, 2], dtype=np.uint32))

    def test_reset(self, population):
        population.infect(np.array([100], dtype=np.uint32))
        population.reset()
        assert population.num_vulnerable == 5

    def test_status_of(self, population):
        population.infect(np.array([100], dtype=np.uint32))
        statuses = population.status_of(np.array([100, 200], dtype=np.uint32))
        assert statuses[0] == HostStatus.INFECTED
        assert statuses[1] == HostStatus.VULNERABLE


class TestVulnerableHits:
    def test_filters_nonmembers(self, population):
        hits = population.vulnerable_hits(np.array([100, 150, 500], dtype=np.uint32))
        assert sorted(hits) == [100, 500]

    def test_excludes_infected(self, population):
        population.infect(np.array([100], dtype=np.uint32))
        hits = population.vulnerable_hits(np.array([100, 200], dtype=np.uint32))
        assert list(hits) == [200]

    def test_collapses_duplicates(self, population):
        hits = population.vulnerable_hits(np.array([200, 200], dtype=np.uint32))
        assert list(hits) == [200]

    def test_empty_batch(self, population):
        assert len(population.vulnerable_hits(np.empty(0, dtype=np.uint32))) == 0

    def test_2d_targets_accepted(self, population):
        targets = np.array([[100, 150], [200, 250]], dtype=np.uint32)
        hits = population.vulnerable_hits(targets)
        assert sorted(hits) == [100, 200]

    def test_address_views(self, population):
        population.infect(np.array([100], dtype=np.uint32))
        assert list(population.infected_addresses()) == [100]
        assert 100 not in population.vulnerable_addresses()
