"""Tests for repro.population.synthesis."""

import numpy as np
import pytest

from repro.net.special import is_private
from repro.population.synthesis import (
    CODERED2_ANCHORS,
    PopulationSpec,
    _weight_curve,
    nat_population,
    synthesize_clustered_population,
)
from repro.worms.hitlist import build_greedy_hitlist


@pytest.fixture(scope="module")
def paper_population():
    spec = PopulationSpec()
    return synthesize_clustered_population(spec, np.random.default_rng(42))


class TestWeightCurve:
    def test_normalized(self):
        weights = _weight_curve(PopulationSpec())
        assert weights.sum() == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        weights = _weight_curve(PopulationSpec())
        assert (np.diff(weights) <= 1e-15).all()

    def test_hits_anchor_fractions(self):
        weights = _weight_curve(PopulationSpec())
        for rank, fraction in CODERED2_ANCHORS[1:]:
            assert weights[:rank].sum() == pytest.approx(fraction, abs=1e-9)


class TestSpecValidation:
    def test_rejects_nonpositive_hosts(self):
        with pytest.raises(ValueError):
            PopulationSpec(total_hosts=0)

    def test_rejects_fewer_16s_than_8s(self):
        with pytest.raises(ValueError):
            PopulationSpec(num_slash8=50, num_slash16=40)

    def test_rejects_unsorted_anchors(self):
        with pytest.raises(ValueError):
            PopulationSpec(anchors=((0, 0.0), (100, 0.5), (10, 0.1), (4481, 1.0)))

    def test_rejects_anchor_rank_mismatch(self):
        with pytest.raises(ValueError):
            PopulationSpec(anchors=((0, 0.0), (10, 0.5), (100, 1.0)))


class TestSynthesizedPopulation:
    def test_exact_host_count_unique(self, paper_population):
        assert len(paper_population) == 134_586
        assert len(np.unique(paper_population)) == 134_586

    def test_clustered_in_47_slash8s(self, paper_population):
        assert len(np.unique(paper_population >> 24)) == 47

    def test_4481_populated_slash16s(self, paper_population):
        assert len(np.unique(paper_population >> 16)) == 4_481

    def test_avoids_private_and_special_space(self, paper_population):
        assert not is_private(paper_population).any()
        first_octets = np.unique(paper_population >> 24)
        assert 192 not in first_octets
        assert 127 not in first_octets
        assert (first_octets < 224).all()

    def test_greedy_coverage_matches_paper(self, paper_population):
        # The paper's hit-list coverage: 10 /16s -> 10.60%, 100 ->
        # 50.49%, 1000 -> 91.33%, 4481 -> 100%.
        expectations = {10: 0.1060, 100: 0.5049, 1000: 0.9133, 4481: 1.0}
        for num_prefixes, expected in expectations.items():
            _, coverage = build_greedy_hitlist(paper_population, num_prefixes)
            assert coverage == pytest.approx(expected, abs=0.02)

    def test_sorted_output(self, paper_population):
        assert (np.diff(paper_population.astype(np.int64)) > 0).all()

    def test_small_population(self):
        spec = PopulationSpec(
            total_hosts=500,
            num_slash8=3,
            num_slash16=10,
            anchors=((0, 0.0), (2, 0.5), (10, 1.0)),
        )
        addrs = synthesize_clustered_population(spec, np.random.default_rng(0))
        assert len(addrs) == 500
        assert len(np.unique(addrs >> 16)) == 10


class TestNATPopulation:
    def test_moves_requested_fraction(self, paper_population):
        rewritten, deployment = nat_population(
            paper_population, 0.15, np.random.default_rng(1)
        )
        assert deployment.num_hosts == round(0.15 * len(paper_population))
        private = is_private(rewritten)
        assert private.sum() == deployment.num_hosts
        # All private hosts are in 192.168/16.
        assert ((rewritten[private] >> 16) == (192 << 8 | 168)).all()

    def test_population_size_preserved(self, paper_population):
        rewritten, _ = nat_population(paper_population, 0.15, np.random.default_rng(1))
        assert len(rewritten) == len(paper_population)
        assert len(np.unique(rewritten)) == len(rewritten)

    def test_zero_fraction(self, paper_population):
        rewritten, deployment = nat_population(
            paper_population, 0.0, np.random.default_rng(2)
        )
        assert deployment.num_hosts == 0
        assert (rewritten == paper_population).all()

    def test_rejects_bad_fraction(self, paper_population):
        with pytest.raises(ValueError):
            nat_population(paper_population, 1.5, np.random.default_rng(0))

    def test_statistical_model_default(self, paper_population):
        _, deployment = nat_population(paper_population, 0.1, np.random.default_rng(3))
        assert deployment.intra_private_model == "statistical"
