"""Tests for the Table 1 experiment."""

from repro.experiments import table1


class TestTable1:
    def test_reproduces_paper_shape(self):
        result = table1.run()
        # ~11 bots, at least one command each, nearly all restricted.
        assert result.num_bots == 11
        assert len(result.rows) >= 11
        assert result.restricted_fraction > 0.6

    def test_rows_are_anonymized(self):
        result = table1.run()
        for row in result.rows:
            command = row.command
            assert command.startswith(("ipscan", "advscan"))
            # No fully numeric first octet below 128 survives.
            first_token = command.split()[1]
            if "." in first_token:
                head = first_token.split(".")[0]
                assert head == "s" or (head.isdigit() and int(head) >= 128)

    def test_deterministic_given_seed(self):
        assert table1.run(seed=5).rows == table1.run(seed=5).rows

    def test_format_contains_commands(self):
        result = table1.run()
        text = table1.format_result(result)
        assert "scan" in text
        assert f"{len(result.rows)} commands" in text
