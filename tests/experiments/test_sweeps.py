"""Tests for the sensitivity sweeps."""

import pytest

from repro.experiments import sweeps


@pytest.fixture(scope="module")
def nat_sweep(small_spec):
    return sweeps.sweep_nat_fraction(
        fractions=(0.05, 0.15, 0.30),
        population_spec=small_spec,
        num_random_sensors=2_000,
        max_time=1_500.0,
    )


@pytest.fixture(scope="module")
def share_sweep(small_spec):
    return sweeps.sweep_hitlist_share(
        sizes=(5, 50, 300),
        population_spec=small_spec,
        max_time=600.0,
    )


class TestNatFractionSweep:
    def test_targeted_always_wins(self, nat_sweep):
        # The paper calls 15% a crude estimate; the 192/8 placement
        # beats random placement at every swept fraction, so the
        # conclusion does not hinge on the estimate.
        assert nat_sweep.targeted_always_wins

    def test_targeted_saturates_at_every_fraction(self, nat_sweep):
        assert all(final > 0.9 for final in nat_sweep.targeted_final_alerts)

    def test_format(self, nat_sweep):
        text = sweeps.format_nat_sweep(nat_sweep)
        assert "always wins? True" in text


class TestHitlistShareSweep:
    def test_share_law_along_axis(self, share_sweep):
        assert share_sweep.share_law_holds

    def test_shares_computed_against_population(self, share_sweep):
        # The scaled population has 1000 /16s.
        assert share_sweep.shares == tuple(
            size / 1000 for size in share_sweep.num_prefixes
        )

    def test_format(self, share_sweep):
        text = sweeps.format_share_sweep(share_sweep)
        assert "share law holds? True" in text
