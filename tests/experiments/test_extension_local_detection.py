"""Tests for the local-detection extension experiment."""

import pytest

from repro.experiments import extension_local_detection as ext


@pytest.fixture(scope="module")
def result():
    return ext.run(
        num_target_slash16s=6,
        hosts_per_slash16=400,
        num_global_sensors=2_000,
        max_time=600.0,
    )


class TestLocalDetection:
    def test_local_detector_fires(self, result):
        assert result.local_detection_time is not None
        assert result.local_detection_time > 0

    def test_global_quorum_starves(self, result):
        # The hit-list hotspot covers a sliver of the space, so a
        # random global deployment almost never reaches quorum.
        assert result.global_alert_fraction < 0.05
        assert result.global_quorum_time is None

    def test_local_wins(self, result):
        assert result.local_wins

    def test_local_fires_before_org_saturates(self, result):
        assert result.local_fires_before_org_saturates

    def test_outbreak_actually_happened(self, result):
        assert result.final_infected_fraction > 0.5

    def test_format(self, result):
        text = ext.format_result(result)
        assert "local wins? True" in text

    def test_registered(self):
        from repro.experiments.registry import REGISTRY

        assert "local-detection" in REGISTRY
