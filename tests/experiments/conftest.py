"""Shared small-scale fixtures for the experiment tests.

Experiments default to paper scale; tests run them at a reduced scale
that preserves the qualitative shape while staying fast.
"""

import pytest

from repro.population.synthesis import PopulationSpec

SMALL_ANCHORS = ((0, 0.0), (10, 0.106), (100, 0.5049), (1000, 1.0))


@pytest.fixture(scope="session")
def small_spec():
    return PopulationSpec(
        total_hosts=20_000,
        num_slash8=20,
        num_slash16=1_000,
        anchors=SMALL_ANCHORS,
        major_slash8s=10,
        major_share=0.94,
    )
