"""Tests for the containment extension experiment."""

import pytest

from repro.experiments import extension_containment as ext


@pytest.fixture(scope="module")
def result():
    return ext.run(max_time=1_200.0)


class TestContainmentExtension:
    def test_uniform_worm_contained(self, result):
        assert result.uniform.containment_triggered_at is not None
        assert result.uniform.final_infected_fraction < 0.2

    def test_quorum_fires_early_for_uniform(self, result):
        # Detection happens while the outbreak is still small.
        assert result.uniform.infected_when_triggered < 0.2

    def test_hotspot_worm_escapes(self, result):
        assert result.hotspot.final_infected_fraction > 0.8

    def test_hotspot_quorum_starved(self, result):
        assert result.hotspot.containment_triggered_at is None

    def test_headline_property(self, result):
        assert result.hotspots_defeat_containment

    def test_format(self, result):
        text = ext.format_result(result)
        assert "hotspots defeat containment? True" in text

    def test_registered(self):
        from repro.experiments.registry import REGISTRY

        assert "containment" in REGISTRY
