"""Tests for the Figure 5 experiments (hit-lists, NATs, detection)."""

import pytest

from repro.experiments import figure5


@pytest.fixture(scope="module")
def ab_result(small_spec):
    return figure5.run_infection(
        population_spec=small_spec,
        hitlist_sizes=(10, 100, 1000),
        max_time=900.0,
        seed=2005,
    )


@pytest.fixture(scope="module")
def c_result(small_spec):
    return figure5.run_nat_detection(
        population_spec=small_spec,
        num_random_sensors=3_000,
        max_time=900.0,
        stop_at_fraction=0.35,
        seed=2006,
    )


class TestFigure5A:
    def test_coverage_matches_anchors(self, ab_result):
        coverages = {run.num_prefixes: run.coverage for run in ab_result.runs}
        assert coverages[10] == pytest.approx(0.106, abs=0.02)
        assert coverages[100] == pytest.approx(0.5049, abs=0.02)
        assert coverages[1000] == pytest.approx(1.0, abs=0.01)

    def test_small_list_fastest(self, ab_result):
        assert ab_result.small_list_fastest

    def test_infection_confined_to_hitlist(self, ab_result):
        for run in ab_result.runs:
            assert run.result.final_fraction_infected <= run.coverage + 0.01

    def test_format(self, ab_result):
        text = figure5.format_infection(ab_result)
        assert "Hit-list infection rate" in text


class TestFigure5B:
    def test_alert_fraction_tracks_hitlist_share(self, ab_result):
        # Sensors outside the hit-list never alert, so the final
        # alert fraction is about num_prefixes / total /16s.
        total_16s = 1000
        for run in ab_result.runs:
            share = run.num_prefixes / total_16s
            assert run.alert_timeline.final_fraction() <= share * 1.5 + 0.01

    def test_detection_starved(self, ab_result):
        assert ab_result.detection_starved

    def test_small_hitlist_blinds_quorum(self, ab_result):
        small = ab_result.runs[0]
        assert small.alert_timeline.final_fraction() < 0.05

    def test_format(self, ab_result):
        text = figure5.format_detection(ab_result)
        assert "detection starved? True" in text


class TestFigure5C:
    def test_three_placements(self, c_result):
        assert {run.name for run in c_result.placements} == {
            "random",
            "top-20 /8s",
            "192/8 per-/16",
        }

    def test_targeted_placement_wins(self, c_result):
        assert c_result.targeted_placement_wins
        targeted = c_result.placement("192/8 per-/16")
        assert targeted.alerted_at_20pct_infected > 0.95

    def test_random_placement_starved(self, c_result):
        random_run = c_result.placement("random")
        assert random_run.alerted_at_20pct_infected < 0.2

    def test_population_aware_beats_random(self, c_result):
        assert (
            c_result.placement("top-20 /8s").alerted_at_20pct_infected
            >= c_result.placement("random").alerted_at_20pct_infected
        )

    def test_192_placement_has_255_sensors(self, c_result):
        assert c_result.placement("192/8 per-/16").num_sensors == 255

    def test_unknown_placement_raises(self, c_result):
        with pytest.raises(KeyError):
            c_result.placement("bogus")

    def test_format(self, c_result):
        text = figure5.format_nat_detection(c_result)
        assert "targeted placement wins? True" in text
