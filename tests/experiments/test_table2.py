"""Tests for the Table 2 experiment (filtering study)."""

import pytest

from repro.experiments import table2


@pytest.fixture(scope="module")
def result():
    return table2.run(probes_per_host=1_500, blaster_reach=50_000_000)


class TestTable2:
    def test_enterprises_hidden(self, result):
        assert result.enterprises_hidden
        for row in result.filtered.enterprises():
            assert all(count <= 5 for count in row.observed.values())

    def test_broadband_leaks(self, result):
        assert result.broadband_leaks
        for row in result.filtered.broadband():
            assert sum(row.observed.values()) > 1_000

    def test_filtering_is_the_cause(self, result):
        # Without egress rules, enterprise infections become visible.
        assert result.filtering_is_the_cause

    def test_every_row_has_all_three_worms(self, result):
        for row in result.filtered.rows:
            assert set(row.observed) == {"codered2", "slammer", "blaster"}

    def test_row_counts(self, result):
        assert len(result.filtered.enterprises()) == 3
        assert len(result.filtered.broadband()) == 3

    def test_format(self, result):
        text = table2.format_result(result)
        assert "Total IPs" in text
        assert "enterprises hidden? True" in text
