"""Tests for the Figure 3 experiment (per-host Slammer bias)."""

import numpy as np
import pytest

from repro.experiments import figure3


@pytest.fixture(scope="module")
def result():
    return figure3.run(probes_per_host=5_000_000)


class TestFigure3:
    def test_host_a_block_bias(self, result):
        # "block D observed no infection attempts from this particular
        # source while ... block I received the most."
        assert result.host_a_block_bias
        assert result.host_a.total("I") > 0

    def test_host_b_differs_from_host_a(self, result):
        a = result.host_a.counts_by_block["I"]
        b = result.host_b.counts_by_block["I"]
        assert not np.array_equal(a, b)

    def test_spectrum_has_64_cycles(self, result):
        assert len(result.cycle_lengths) == 64

    def test_spectrum_spans_orders_of_magnitude(self, result):
        assert result.spectrum_spans_orders_of_magnitude
        assert result.cycle_lengths[-1] == 2**30

    def test_short_cycles_exist(self, result):
        # "many small cycles" — the targeted-DoS behaviour.
        assert sum(1 for length in result.cycle_lengths if length <= 1000) >= 10

    def test_replay_is_bit_exact(self, result):
        # Replaying the same host twice gives identical footprints.
        again = figure3.run(probes_per_host=5_000_000)
        assert (
            result.host_a.counts_by_block["I"]
            == again.host_a.counts_by_block["I"]
        ).all()

    def test_format(self, result):
        text = figure3.format_result(result)
        assert "Host A" in text and "Host B" in text
        assert "64 cycles" in text
