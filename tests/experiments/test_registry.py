"""Tests for the experiment registry."""

import pytest

from repro.experiments.registry import EXPERIMENTS, get_runner, run_experiment


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        assert set(EXPERIMENTS) >= {
            "table1",
            "figure1",
            "figure2",
            "figure3",
            "figure4",
            "table2",
            "figure5a",
            "figure5b",
            "figure5c",
        }
        assert "local-detection" in EXPERIMENTS

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            get_runner("figure99")

    def test_runners_resolve(self):
        for experiment_id in EXPERIMENTS:
            run, formatter = get_runner(experiment_id)
            assert callable(run)
            assert callable(formatter)

    def test_run_experiment_returns_text(self):
        result, text = run_experiment("table1", seed=3)
        assert result.rows
        assert isinstance(text, str) and text
