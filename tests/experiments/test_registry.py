"""Tests for the declarative experiment registry."""

import pytest

from repro.experiments import registry
from repro.experiments.registry import REGISTRY, Experiment

PAPER_IDS = {
    "table1",
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "table2",
    "figure5a",
    "figure5b",
    "figure5c",
}


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        assert set(REGISTRY) >= PAPER_IDS
        assert "local-detection" in REGISTRY

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            registry.get("figure99")

    def test_round_trip_every_id(self):
        for experiment_id in registry.experiment_ids():
            experiment = registry.get(experiment_id)
            assert isinstance(experiment, Experiment)
            assert experiment.id == experiment_id
            assert experiment.title
            run, formatter = experiment.resolve()
            assert callable(run)
            assert callable(formatter)
            # Every runner is seedable — the contract the trial
            # runner's per-trial seed injection relies on.
            assert experiment.seed_param in experiment.display_params()

    def test_experiment_ids_sorted(self):
        ids = registry.experiment_ids()
        assert ids == sorted(ids)

    def test_default_trial_knob(self):
        assert all(
            experiment.default_trials >= 1
            for experiment in REGISTRY.values()
        )

    def test_display_params_include_signature_defaults(self):
        params = registry.get("table1").display_params()
        assert params["num_bots"] == 11
        assert params["seed"] == 2004


class TestCampaigns:
    def test_single_trial_returns_result_and_text(self):
        campaign = registry.get("table1").run(seed=3)
        assert campaign.result.rows
        assert isinstance(campaign.formatted(), str)
        assert len(campaign.results) == 1

    def test_rejects_zero_trials(self):
        with pytest.raises(ValueError):
            registry.get("table1").run(trials=0)

    def test_multi_trial_campaign(self):
        campaign = registry.get("table1").run(trials=3, seed=11)
        assert len(campaign.results) == 3
        assert len(campaign.trial_seeds) == 3
        text = campaign.formatted()
        assert "table1 trial 1/3" in text and "table1 trial 3/3" in text
        with pytest.raises(ValueError):
            campaign.result  # ambiguous for multi-trial campaigns

    def test_multi_trial_needs_integer_seed(self):
        with pytest.raises(TypeError):
            registry.get("table1").run(trials=2, seed="not-an-int")


class TestLegacyShimRemoved:
    """The PR 1 string-dispatch shims completed their one-release life."""

    def test_legacy_names_are_gone(self):
        for name in ("EXPERIMENTS", "get_runner", "run_experiment"):
            assert not hasattr(registry, name)

    def test_modern_path_covers_every_id(self):
        # What get_runner() used to do, via the supported API.
        for experiment_id in registry.experiment_ids():
            run, formatter = registry.get(experiment_id).resolve()
            assert callable(run)
            assert callable(formatter)
