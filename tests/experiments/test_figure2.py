"""Tests for the Figure 2 experiment (Slammer aggregate bias)."""

import numpy as np
import pytest

from repro.experiments import figure2


@pytest.fixture(scope="module")
def result():
    return figure2.run(num_hosts=10_000, probes_per_host=4_000_000)


class TestBlockPositions:
    def test_blocks_have_paper_sizes(self):
        blocks = figure2.paper_block_positions()
        assert blocks["D"].prefix_len == 20
        assert blocks["H"].prefix_len == 18
        assert blocks["I"].prefix_len == 17

    def test_blocks_disjoint(self):
        blocks = list(figure2.paper_block_positions().values())
        for i, a in enumerate(blocks):
            for b in blocks[i + 1 :]:
                assert not a.overlaps(b)

    def test_blocks_avoid_special_octets(self):
        for block in figure2.paper_block_positions().values():
            octet = block.first >> 24
            assert octet not in (0, 10, 127, 172, 192)
            assert octet < 224


class TestFigure2:
    def test_m_block_sees_nothing(self, result):
        assert result.m_block_observed == 0

    def test_h_deficit(self, result):
        assert result.h_deficit_reproduced
        assert result.observed_per_slash24_mean("H") < result.observed_per_slash24_mean("D")
        assert result.observed_per_slash24_mean("H") < result.observed_per_slash24_mean("I")

    def test_monte_carlo_matches_theory(self, result):
        for name in ("D", "H", "I"):
            observed = result.observed_total(name)
            predicted = float(result.predicted_by_slash24[name].sum())
            assert observed == pytest.approx(predicted, rel=0.1)

    def test_analytic_only_mode(self):
        result = figure2.run(num_hosts=5_000, monte_carlo=False)
        for name in ("D", "H", "I"):
            assert (
                result.observed_by_slash24[name]
                == np.round(result.predicted_by_slash24[name])
            ).all()

    def test_format(self, result):
        text = figure2.format_result(result)
        assert "H deficit reproduced? True" in text
