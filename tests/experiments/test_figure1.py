"""Tests for the Figure 1 experiment (Blaster seed forensics)."""

import pytest

from repro.experiments import figure1


@pytest.fixture(scope="module")
def result():
    # Reduced host count keeps this test fast; the spike mechanism is
    # scale-free because hosts share quantized seeds.
    return figure1.run(num_hosts=300_000, seed=2003)


class TestFigure1:
    def test_block_is_a_slash17(self, result):
        assert result.block.prefix_len == 17
        assert len(result.unique_sources) == 128

    def test_hotspots_present(self, result):
        counts = result.unique_sources
        assert counts.max() > 3 * max(counts.min(), 1)
        assert not result.hotspots.is_uniform

    def test_spikes_invert_to_plausible_start_times(self, result):
        assert result.spikes_have_plausible_start_times
        low, high = result.plausible_window_minutes
        for minutes in result.spike_boot_minutes:
            assert low * 0.5 <= minutes <= high * 1.5

    def test_cold_bins_invert_to_implausible_times(self, result):
        _, high = result.plausible_window_minutes
        # Cold bins either map to nothing or to long uptimes.
        assert all(m > high or m < 0 for m in result.cold_boot_minutes) or (
            result.cold_bins_look_implausible
        )

    def test_format_mentions_key_numbers(self, result):
        text = figure1.format_result(result)
        assert "Blaster" in text
        assert "spike /24s" in text

    def test_explicit_block_override(self):
        small = figure1.run(
            num_hosts=50_000, block_spec="99.0.0.0/17", seed=1
        )
        assert str(small.block) == "99.0.0.0/17"
