"""Tests for the Figure 4 experiment (CodeRedII and NATs)."""

import pytest

from repro.experiments import figure4


@pytest.fixture(scope="module")
def result():
    return figure4.run(
        num_hosts=1_500, probes_per_host=15_000, quarantine_probes=2_000_000
    )


class TestFigure4:
    def test_m_block_hotspot(self, result):
        assert result.m_block_hotspot
        m_mean = result.per_slash24_mean("M")
        for name in result.unique_sources_by_block:
            if name != "M":
                assert m_mean > result.per_slash24_mean(name)

    def test_quarantine_probe_budget(self, result):
        assert result.public_quarantine.probes == 2_000_000
        assert result.private_quarantine.probes == 2_000_000

    def test_private_quarantine_spikes_at_m(self, result):
        assert result.quarantine_contrast
        assert result.private_quarantine.total("M") > 20

    def test_public_quarantine_barely_reaches_m(self, result):
        assert result.public_quarantine.total("M") <= 2

    def test_z_block_sees_both(self, result):
        # The /8 darknet catches the random 12.5% from either source.
        assert result.public_quarantine.total("Z") > 100
        assert result.private_quarantine.total("Z") > 100

    def test_format(self, result):
        text = figure4.format_result(result)
        assert "M-block hotspot? True" in text
