"""Tests for repro.botnet.corpus."""

import numpy as np
import pytest

from repro.botnet.corpus import (
    extract_commands,
    synthesize_capture,
    synthesize_scan_command,
)
from repro.botnet.commands import parse_command


class TestSynthesizedCommands:
    def test_commands_are_parseable(self):
        rng = np.random.default_rng(0)
        for _ in range(200):
            command = synthesize_scan_command(rng)
            assert parse_command(command.render()) == command

    def test_both_dialects_produced(self):
        rng = np.random.default_rng(1)
        dialects = {synthesize_scan_command(rng).dialect for _ in range(100)}
        assert dialects == {"ipscan", "advscan"}

    def test_most_hitlists_are_restrictive(self):
        rng = np.random.default_rng(2)
        commands = [synthesize_scan_command(rng) for _ in range(200)]
        restricted = sum(1 for c in commands if c.hitlist_block().prefix_len >= 8)
        assert restricted > 150


class TestCapture:
    def test_capture_has_noise_and_commands(self):
        rng = np.random.default_rng(0)
        capture = synthesize_capture(11, (1, 3), rng, chatter_ratio=10.0)
        command_lines = [
            line for line in capture if "scan" in line.payload and "PRIVMSG #" in line.payload
        ]
        assert len(command_lines) >= 11
        assert len(capture) > 5 * len(command_lines)

    def test_sorted_by_time(self):
        rng = np.random.default_rng(1)
        capture = synthesize_capture(5, (1, 2), rng)
        times = [line.timestamp for line in capture]
        assert times == sorted(times)

    def test_rejects_zero_bots(self):
        with pytest.raises(ValueError):
            synthesize_capture(0, (1, 2), np.random.default_rng(0))


class TestExtraction:
    def test_extracts_all_planted_commands(self):
        rng = np.random.default_rng(3)
        capture = synthesize_capture(11, (1, 3), rng, chatter_ratio=20.0)
        extracted = extract_commands(capture)
        planted = sum(
            1 for line in capture if "ipscan" in line.payload or "advscan" in line.payload
        )
        assert len(extracted) == planted
        assert len(extracted) >= 11

    def test_ignores_chatter(self):
        rng = np.random.default_rng(4)
        capture = synthesize_capture(3, (1, 1), rng, chatter_ratio=30.0)
        chatter_only = [
            line
            for line in capture
            if "ipscan" not in line.payload and "advscan" not in line.payload
        ]
        assert extract_commands(chatter_only) == []

    def test_commands_carry_hitlists(self):
        rng = np.random.default_rng(5)
        capture = synthesize_capture(11, (1, 3), rng)
        extracted = extract_commands(capture)
        blocks = [command.hitlist_block() for _, command in extracted]
        # "The bot commands show that hit-lists are used by malware
        # today to restrict propagation to certain subnets."
        assert any(block.prefix_len >= 8 for block in blocks)
