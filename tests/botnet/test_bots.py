"""Tests for repro.botnet.bots."""

import numpy as np
import pytest

from repro.botnet.bots import BotController, worm_for_command
from repro.botnet.commands import parse_command
from repro.net.address import parse_addrs
from repro.net.cidr import CIDRBlock


class TestWormForCommand:
    def test_targets_respect_hitlist(self):
        command = parse_command("ipscan 194.27.x.x dcom2 -s")
        worm = worm_for_command(command)
        targets = worm.single_host_targets(0, 5_000, np.random.default_rng(0))
        block = CIDRBlock.parse("194.27.0.0/16")
        assert block.contains_array(targets).all()


class TestBotController:
    def test_requires_bots(self):
        with pytest.raises(ValueError):
            BotController(np.empty(0, dtype=np.uint32))

    def test_issue_records_commands(self):
        controller = BotController(parse_addrs(["141.212.1.1", "141.212.1.2"]))
        controller.issue("ipscan 194.27.x.x dcom2 -s")
        controller.issue("advscan lsass 200 5 128.x.x.x -r")
        assert controller.size == 2
        assert len(controller.issued) == 2

    def test_issue_rejects_garbage(self):
        controller = BotController(parse_addrs(["141.212.1.1"]))
        with pytest.raises(ValueError):
            controller.issue("hello world")

    def test_scan_targets_shape_and_range(self):
        controller = BotController(parse_addrs(["141.212.1.1", "141.212.1.2"]))
        command = controller.issue("ipscan 128.32.x.x dcom2 -s")
        targets = controller.scan_targets(command, 100, np.random.default_rng(1))
        assert targets.shape == (2, 100)
        assert CIDRBlock.parse("128.32.0.0/16").contains_array(targets).all()

    def test_aggregate_hitlist(self):
        controller = BotController(parse_addrs(["141.212.1.1"]))
        controller.issue("ipscan 194.27.x.x dcom2 -s")
        controller.issue("ipscan 128.x.x.x lsass -s")
        aggregate = controller.aggregate_hitlist()
        assert parse_addrs(["194.27.5.5"])[0] in aggregate
        assert parse_addrs(["128.9.9.9"])[0] in aggregate
        assert parse_addrs(["8.8.8.8"])[0] not in aggregate
