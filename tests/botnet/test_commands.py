"""Tests for repro.botnet.commands."""

import pytest

from repro.botnet.commands import (
    OctetPattern,
    anonymize_command,
    parse_command,
)
from repro.net.cidr import CIDRBlock


class TestOctetPattern:
    def test_parse_full_wildcard_forms(self):
        pattern = OctetPattern.parse("194.27.x.x")
        assert pattern.octets == (194, 27, None, None)
        assert pattern.prefix_len == 16

    def test_short_forms_pad_with_wildcards(self):
        assert OctetPattern.parse("194").prefix_len == 8
        assert OctetPattern.parse("194.27").prefix_len == 16
        assert OctetPattern.parse("194.27.3").prefix_len == 24

    def test_full_ip_is_slash32(self):
        pattern = OctetPattern.parse("194.27.3.9")
        assert pattern.prefix_len == 32
        assert pattern.to_block() == CIDRBlock(
            (194 << 24) | (27 << 16) | (3 << 8) | 9, 32
        )

    def test_to_block(self):
        block = OctetPattern.parse("128.32.x.x").to_block()
        assert block == CIDRBlock.parse("128.32.0.0/16")

    def test_letter_wildcards_accepted(self):
        # The paper's anonymized forms use s/i/r letters.
        assert OctetPattern.parse("s.s").prefix_len == 0
        assert OctetPattern.parse("194.s.s.s").prefix_len == 8

    def test_rejects_literal_after_wildcard(self):
        with pytest.raises(ValueError):
            OctetPattern.parse("194.x.3.x")

    def test_rejects_bad_octets(self):
        with pytest.raises(ValueError):
            OctetPattern.parse("300.1.x.x")
        with pytest.raises(ValueError):
            OctetPattern.parse("foo.x")
        with pytest.raises(ValueError):
            OctetPattern.parse("1.2.3.4.5")

    def test_str_roundtrip(self):
        assert str(OctetPattern.parse("194.27.x.x")) == "194.27.x.x"


class TestParseIpscan:
    def test_basic(self):
        command = parse_command("ipscan 194.27.x.x dcom2 -s")
        assert command.dialect == "ipscan"
        assert command.exploit == "dcom2"
        assert command.flags == ("-s",)
        assert command.hitlist_block() == CIDRBlock.parse("194.27.0.0/16")

    def test_no_flags(self):
        command = parse_command("ipscan 128.x.x.x dcom2")
        assert command.flags == ()
        assert command.hitlist_block() == CIDRBlock.parse("128.0.0.0/8")

    def test_leading_dot_stripped(self):
        command = parse_command(".ipscan 141.212.x.x lsass -s")
        assert command.exploit == "lsass"

    def test_rejects_unknown_exploit(self):
        with pytest.raises(ValueError):
            parse_command("ipscan 1.2.x.x sendmail -s")

    def test_rejects_missing_args(self):
        with pytest.raises(ValueError):
            parse_command("ipscan 1.2.x.x")


class TestParseAdvscan:
    def test_full_form(self):
        command = parse_command("advscan dcom2 150 3 128.32.x.x -r -b -s")
        assert command.dialect == "advscan"
        assert command.threads == 150
        assert command.delay == 3
        assert command.flags == ("-r", "-b", "-s")
        assert command.hitlist_block() == CIDRBlock.parse("128.32.0.0/16")

    def test_zero_pattern_means_unrestricted(self):
        command = parse_command("advscan lsass 200 5 0 -r -s")
        assert command.hitlist_block().prefix_len == 0

    def test_defaults(self):
        command = parse_command("advscan wkssvceng")
        assert command.threads == 100
        assert command.delay == 5
        assert command.hitlist_block().prefix_len == 0

    def test_rejects_unknown_exploit(self):
        with pytest.raises(ValueError):
            parse_command("advscan notanexploit 100 5 0")


class TestParseGeneral:
    def test_rejects_non_scan_commands(self):
        for text in ["", "PRIVMSG #chat :hello", "login password", "ddos 1.2.3.4"]:
            with pytest.raises(ValueError):
                parse_command(text)

    def test_render_roundtrip(self):
        texts = [
            "ipscan 194.27.x.x dcom2 -s",
            "advscan lsass 200 5 0 -r -s",
            "advscan dcom2 150 3 128.32.x.x -b",
        ]
        for text in texts:
            command = parse_command(text)
            assert parse_command(command.render()) == command


class TestAnonymize:
    def test_high_first_octet_kept(self):
        command = parse_command("ipscan 194.27.3.x dcom2 -s")
        assert anonymize_command(command) == "ipscan 194.s.s dcom2 -s"

    def test_low_first_octet_masked(self):
        command = parse_command("ipscan 66.27.x.x dcom2 -s")
        assert anonymize_command(command) == "ipscan s.s dcom2 -s"

    def test_unrestricted_advscan(self):
        command = parse_command("advscan lsass 200 5 0 -r")
        assert anonymize_command(command) == "advscan lsass 200 5 0 -r"
