"""Tests for repro.analysis.visibility."""

import numpy as np
import pytest

from repro.analysis.visibility import placement_variability, size_visibility
from repro.net.address import parse_addr
from repro.worms.codered2 import CodeRedIIWorm
from repro.worms.uniform import UniformScanWorm


@pytest.fixture(scope="module")
def uniform_hosts():
    rng = np.random.default_rng(0)
    return rng.integers(1 << 24, 200 << 24, size=400, dtype=np.uint64).astype(
        np.uint32
    )


class TestSizeVisibility:
    def test_uniform_scales_linearly(self, uniform_hosts):
        rng = np.random.default_rng(1)
        result = size_visibility(
            UniformScanWorm(),
            uniform_hosts,
            probes_per_host=2_000,
            base_network=parse_addr("50.0.0.0"),
            prefix_lens=(12, 14, 16),
            rng=rng,
        )
        # Unsaturated regime: observed sources ∝ block size.
        assert result.scaling_exponent() == pytest.approx(1.0, abs=0.3)

    def test_bigger_blocks_see_more(self, uniform_hosts):
        rng = np.random.default_rng(2)
        result = size_visibility(
            UniformScanWorm(),
            uniform_hosts,
            probes_per_host=20_000,
            base_network=parse_addr("50.0.0.0"),
            prefix_lens=(8, 12, 16),
            rng=rng,
        )
        counts = result.unique_sources
        assert counts[0] >= counts[1] >= counts[2]

    def test_saturation_flattens_slope(self, uniform_hosts):
        # With enough probes every size sees every host: slope → 0.
        rng = np.random.default_rng(3)
        result = size_visibility(
            UniformScanWorm(),
            uniform_hosts,
            probes_per_host=400_000,
            base_network=parse_addr("50.0.0.0"),
            prefix_lens=(8, 9, 10),
            rng=rng,
        )
        assert result.scaling_exponent() < 0.5


class TestPlacementVariability:
    def test_uniform_worm_is_position_blind(self, uniform_hosts):
        rng = np.random.default_rng(4)
        positions = [parse_addr(f"{octet}.0.0.0") for octet in (50, 80, 120, 180)]
        result = placement_variability(
            UniformScanWorm(),
            uniform_hosts,
            probes_per_host=50_000,
            positions=positions,
            prefix_len=10,
            rng=rng,
        )
        assert result.coefficient_of_variation < 0.2

    def test_local_preference_creates_position_spread(self):
        # All CRII hosts share one /8, so a darknet inside that /8
        # sees orders of magnitude more sources than distant ones —
        # the Cooke et al. blackhole-placement observation.
        rng = np.random.default_rng(5)
        hosts = (np.uint32(50 << 24) + rng.choice(2**24, 300, replace=False)).astype(
            np.uint32
        )
        positions = [parse_addr("50.200.0.0"), parse_addr("120.0.0.0")]
        result = placement_variability(
            CodeRedIIWorm(),
            hosts,
            probes_per_host=5_000,
            positions=positions,
            prefix_len=12,
            rng=rng,
        )
        assert result.unique_sources[0] > 5 * max(result.unique_sources[1], 1)
        assert result.max_to_min_ratio > 5 or result.max_to_min_ratio == float(  # bitwise
            "inf"
        )

    def test_empty_observation_edge_cases(self):
        rng = np.random.default_rng(6)
        hosts = np.array([parse_addr("50.0.0.1")], dtype=np.uint32)
        result = placement_variability(
            UniformScanWorm(),
            hosts,
            probes_per_host=10,
            positions=[parse_addr("200.0.0.0")],
            prefix_len=24,
            rng=rng,
        )
        assert result.coefficient_of_variation == 0.0  # bitwise
        assert result.max_to_min_ratio == 1.0  # bitwise
