"""Fixture-backed tests for every ``hotspots lint`` checker.

Each RP code gets three assertions against its fixture module: the
flagged pattern fires, the clean pattern stays silent, and the
suppression path (inline ``# noqa`` / ``# bitwise`` marker / TOML
baseline) silences a real violation.
"""

from pathlib import Path

import pytest

from repro.analysis.lint.checkers import (
    CHECKER_CLASSES,
    FloatEqualityChecker,
    GlobalRandomChecker,
    NondeterminismChecker,
    PicklableDispatchChecker,
    RegistryConsistencyChecker,
    SilentExceptChecker,
    UnseededRngChecker,
    all_checkers,
    checkers_for_codes,
)
from repro.analysis.lint.config import LintConfig, Suppression
from repro.analysis.lint.framework import run_lint

ROOT = Path(__file__).resolve().parents[2]
FIXTURES = ROOT / "tests" / "analysis" / "lint_fixtures"


def lint_fixture(checker, fixture_name, config=None):
    """Diagnostics of one checker over one fixture file."""
    report = run_lint(
        ROOT,
        paths=[FIXTURES / f"{fixture_name}.py"],
        config=config or LintConfig(),
        checkers=[checker],
        run_project_checks=False,
    )
    return report.diagnostics


class TestGlobalRandomChecker:
    def test_flags_every_global_state_pattern(self):
        diagnostics = lint_fixture(GlobalRandomChecker(), "rp001")
        assert len(diagnostics) == 3
        assert {d.code for d in diagnostics} == {"RP001"}
        messages = " ".join(d.message for d in diagnostics)
        assert "stdlib `random`" in messages
        assert "numpy.random.seed" in messages
        assert "numpy.random.RandomState" in messages

    def test_clean_patterns_do_not_fire(self):
        diagnostics = lint_fixture(GlobalRandomChecker(), "rp001")
        flagged_lines = {d.line for d in diagnostics}
        source = (FIXTURES / "rp001.py").read_text().splitlines()
        for line_number in flagged_lines:
            assert "violation" in source[line_number - 1]

    def test_inline_noqa_suppresses(self):
        source = (FIXTURES / "rp001.py").read_text()
        assert "# noqa: RP001" in source and "# noqa  " in source
        diagnostics = lint_fixture(GlobalRandomChecker(), "rp001")
        # 5 global-state patterns in the file, 2 carry noqa markers.
        assert len(diagnostics) == 3

    def test_baseline_suppression_silences_the_file(self):
        config = LintConfig(
            suppressions=(
                Suppression(
                    path="tests/analysis/lint_fixtures/*",
                    codes=("RP001",),
                ),
            )
        )
        assert lint_fixture(GlobalRandomChecker(), "rp001", config) == ()


class TestUnseededRngChecker:
    def test_flags_unseeded_default_rng(self):
        diagnostics = lint_fixture(UnseededRngChecker(), "rp002")
        assert len(diagnostics) == 2
        assert {d.code for d in diagnostics} == {"RP002"}

    def test_seeded_calls_are_clean(self):
        source = (FIXTURES / "rp002.py").read_text().splitlines()
        for diagnostic in lint_fixture(UnseededRngChecker(), "rp002"):
            assert "violation" in source[diagnostic.line - 1]

    def test_noqa_suppresses(self):
        diagnostics = lint_fixture(UnseededRngChecker(), "rp002")
        suppressed_line = next(
            index
            for index, line in enumerate(
                (FIXTURES / "rp002.py").read_text().splitlines(), start=1
            )
            if "# noqa: RP002" in line
        )
        assert suppressed_line not in {d.line for d in diagnostics}

    def test_entrypoint_files_are_exempt(self):
        config = LintConfig(
            entrypoints=("tests/analysis/lint_fixtures/rp002.py",)
        )
        assert lint_fixture(UnseededRngChecker(), "rp002", config) == ()


class TestNondeterminismChecker:
    def test_flags_clock_entropy_and_set_order(self):
        diagnostics = lint_fixture(NondeterminismChecker(), "rp003")
        assert len(diagnostics) == 5
        messages = " ".join(d.message for d in diagnostics)
        assert "time.time" in messages
        assert "datetime.datetime.now" in messages
        assert "os.urandom" in messages
        assert "hash-dependent ordering" in messages

    def test_clean_patterns_do_not_fire(self):
        source = (FIXTURES / "rp003.py").read_text().splitlines()
        for diagnostic in lint_fixture(NondeterminismChecker(), "rp003"):
            assert "violation" in source[diagnostic.line - 1]

    def test_noqa_suppresses(self):
        source = (FIXTURES / "rp003.py").read_text()
        assert source.count("time.time()") == 2  # one flagged, one noqa'd
        diagnostics = lint_fixture(NondeterminismChecker(), "rp003")
        wall_clock = [d for d in diagnostics if "time.time" in d.message]
        assert len(wall_clock) == 1


class TestPicklableDispatchChecker:
    def test_flags_lambda_and_closure_payloads(self):
        diagnostics = lint_fixture(PicklableDispatchChecker(), "rp004")
        assert len(diagnostics) == 3
        messages = " ".join(d.message for d in diagnostics)
        assert "lambda" in messages
        assert "closure_payload" in messages

    def test_module_level_payloads_are_clean(self):
        source = (FIXTURES / "rp004.py").read_text().splitlines()
        for diagnostic in lint_fixture(PicklableDispatchChecker(), "rp004"):
            assert "violation" in source[diagnostic.line - 1]

    def test_noqa_suppresses(self):
        diagnostics = lint_fixture(PicklableDispatchChecker(), "rp004")
        suppressed_line = next(
            index
            for index, line in enumerate(
                (FIXTURES / "rp004.py").read_text().splitlines(), start=1
            )
            if "# noqa: RP004" in line
        )
        assert suppressed_line not in {d.line for d in diagnostics}


class TestFloatEqualityChecker:
    def test_flags_bare_float_comparisons(self):
        diagnostics = lint_fixture(FloatEqualityChecker(), "rp005")
        assert len(diagnostics) == 3
        assert {d.code for d in diagnostics} == {"RP005"}

    def test_isclose_and_non_floats_are_clean(self):
        source = (FIXTURES / "rp005.py").read_text().splitlines()
        for diagnostic in lint_fixture(FloatEqualityChecker(), "rp005"):
            assert "violation" in source[diagnostic.line - 1]

    def test_bitwise_marker_and_noqa_suppress(self):
        source_lines = (FIXTURES / "rp005.py").read_text().splitlines()
        marked = {
            index
            for index, line in enumerate(source_lines, start=1)
            if "# bitwise" in line or "# noqa: RP005" in line
        }
        assert len(marked) == 2
        diagnostics = lint_fixture(FloatEqualityChecker(), "rp005")
        assert marked.isdisjoint({d.line for d in diagnostics})


class TestRegistryConsistencyChecker:
    BROKEN = dict(
        registry_module="tests.analysis.lint_fixtures.rp006_registry",
        tests_path="tests/net",  # references no fixture experiment id
    )

    def run_project(self, **overrides):
        config = LintConfig(**{**self.BROKEN, **overrides})
        report = run_lint(
            ROOT,
            paths=[],
            config=config,
            checkers=[RegistryConsistencyChecker()],
            run_project_checks=True,
        )
        return report.diagnostics

    def test_flags_every_inconsistency(self):
        diagnostics = self.run_project()
        assert {d.code for d in diagnostics} == {"RP006"}
        messages = " ".join(d.message for d in diagnostics)
        assert "names no parameter" in messages
        assert "does not resolve" in messages
        assert "seed parameter" in messages
        assert "referenced by no test" in messages

    def test_diagnostics_anchor_to_registry_lines(self):
        source = (FIXTURES / "rp006_registry.py").read_text().splitlines()
        for diagnostic in self.run_project():
            assert diagnostic.path.endswith("rp006_registry.py")
            assert "id=" in source[diagnostic.line - 1]

    def test_clean_registry_with_referencing_test_passes(self, tmp_path):
        tests_dir = tmp_path / "referencing_tests"
        tests_dir.mkdir()
        (tests_dir / "test_fixture.py").write_text(
            "def test_clean():\n    assert 'fixture-clean'\n"
        )
        config = LintConfig(
            registry_module="tests.analysis.lint_fixtures.rp006_registry",
            registry_attr="CLEAN_REGISTRY",
            tests_path=str(tests_dir.relative_to(tmp_path)),
        )
        report = run_lint(
            tmp_path,
            paths=[],
            config=config,
            checkers=[RegistryConsistencyChecker()],
            run_project_checks=True,
        )
        assert report.diagnostics == ()

    def test_baseline_suppression_applies(self):
        diagnostics = self.run_project()
        assert diagnostics
        suppressed = self.run_project()
        config = LintConfig(
            **self.BROKEN,
            suppressions=(
                Suppression(path="src/repro/experiments/*", codes=("RP006",)),
                Suppression(
                    path="tests/analysis/lint_fixtures/*", codes=("RP006",)
                ),
            ),
        )
        report = run_lint(
            ROOT,
            paths=[],
            config=config,
            checkers=[RegistryConsistencyChecker()],
            run_project_checks=True,
        )
        assert report.diagnostics == () and suppressed


class TestSilentExceptChecker:
    def test_flags_bare_broad_and_silent_handlers(self):
        diagnostics = lint_fixture(SilentExceptChecker(), "rp007")
        assert len(diagnostics) == 4
        assert {d.code for d in diagnostics} == {"RP007"}
        messages = " ".join(d.message for d in diagnostics)
        assert "bare `except:`" in messages
        assert "BaseException" in messages
        assert "silently `pass`es" in messages

    def test_clean_patterns_do_not_fire(self):
        source = (FIXTURES / "rp007.py").read_text().splitlines()
        for diagnostic in lint_fixture(SilentExceptChecker(), "rp007"):
            assert "violation" in source[diagnostic.line - 1]

    def test_noqa_on_except_line_suppresses(self):
        source_lines = (FIXTURES / "rp007.py").read_text().splitlines()
        allowlisted = {
            index
            for index, line in enumerate(source_lines, start=1)
            if "# noqa: RP007" in line
        }
        assert len(allowlisted) == 2
        diagnostics = lint_fixture(SilentExceptChecker(), "rp007")
        assert allowlisted.isdisjoint({d.line for d in diagnostics})

    def test_diagnostics_anchor_to_the_except_line(self):
        # A noqa in the handler *body* must not blanket-suppress; the
        # allowlist convention is a marker on the except line itself.
        for diagnostic in lint_fixture(SilentExceptChecker(), "rp007"):
            assert diagnostic.end_line == diagnostic.line

    def test_baseline_suppression_applies(self):
        config = LintConfig(
            suppressions=(
                Suppression(
                    path="tests/analysis/lint_fixtures/*",
                    codes=("RP007",),
                ),
            )
        )
        assert lint_fixture(SilentExceptChecker(), "rp007", config) == ()

    def test_repo_source_is_clean_under_rp007(self):
        report = run_lint(
            ROOT,
            paths=[ROOT / "src" / "repro"],
            checkers=[SilentExceptChecker()],
            run_project_checks=False,
        )
        assert report.diagnostics == ()


class TestCheckerRegistry:
    def test_codes_are_unique_and_ordered(self):
        codes = [checker_class.code for checker_class in CHECKER_CLASSES]
        assert codes == sorted(codes)
        assert len(set(codes)) == len(codes)
        assert codes == [f"RP00{n}" for n in range(1, 8)] + [
            f"RP10{n}" for n in range(1, 6)
        ]

    def test_every_checker_has_a_rationale(self):
        for checker_class in CHECKER_CLASSES:
            assert checker_class.rationale, checker_class.code
            assert checker_class.name != "base"

    def test_selection_by_code(self):
        selected = checkers_for_codes(["rp005", "RP001"])
        assert [checker.code for checker in selected] == ["RP005", "RP001"]
        with pytest.raises(ValueError, match="unknown checker code"):
            checkers_for_codes(["RP999"])

    def test_all_checkers_returns_fresh_instances(self):
        first, second = all_checkers(), all_checkers()
        assert all(a is not b for a, b in zip(first, second))
