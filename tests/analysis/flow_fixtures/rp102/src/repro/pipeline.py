"""RP102 fixture: RNG consumption under data-dependent order.

Violations: a draw inside a set-literal loop, inside an
``os.listdir`` loop, inside a ``finally`` block, a recovery-path
call into a consumer, and a bare-noqa suppression.  The sorted-
listdir loop, dict iteration, and normal-path draws stay clean.
"""

import os

import numpy as np


def draw_under_set(rng: np.random.Generator) -> list:
    out = []
    for _block in {8, 16, 24}:
        out.append(rng.random())  # violation: set iteration order
    return out


def draw_under_listdir(rng: np.random.Generator, root: str) -> list:
    sizes = []
    for _name in os.listdir(root):
        sizes.append(rng.random())  # violation: directory order
    return sizes


def draw_sorted_listdir(rng: np.random.Generator, root: str) -> list:
    sizes = []
    for _name in sorted(os.listdir(root)):
        sizes.append(rng.random())  # clean: order is pinned
    return sizes


def draw_over_dict(rng: np.random.Generator, table: dict) -> list:
    out = []
    for _key in table:
        out.append(rng.random())  # clean: dicts are insertion-ordered
    return out


def _replay(rng: np.random.Generator) -> float:
    return float(rng.random())


def recover(rng: np.random.Generator) -> float:
    try:
        return float(rng.random())  # clean: the serial path
    except ValueError:
        return _replay(rng)  # violation: recovery-path consumption


def finally_draw(rng: np.random.Generator) -> float:
    try:
        return float(rng.random())  # clean: the serial path
    finally:
        rng.random()  # violation: finally always re-draws


def blessed_recover(rng: np.random.Generator) -> float:
    try:
        return float(rng.random())
    except ValueError:
        return float(rng.random())  # noqa: RP102 -- fixture: pre-consumption copy; re-run is bitwise-identical


def unexplained_recover(rng: np.random.Generator) -> float:
    try:
        return float(rng.random())
    except ValueError:
        return float(rng.random())  # noqa: RP102
