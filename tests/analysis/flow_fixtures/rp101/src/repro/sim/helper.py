"""Cross-module helper the fixture ShardEngine drags into shard scope."""

import numpy as np


def jitter(targets: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Draws — fine in the driver, a violation once shard-reachable."""
    return targets + rng.integers(0, 2, size=targets.shape)
