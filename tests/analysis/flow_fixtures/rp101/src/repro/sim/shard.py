"""RP101 fixture: a ShardEngine that violates shard purity.

Violations: a draw on a stored generator (``self.rng``), a draw
inside a shard-reachable helper (cross-module), and a bare-noqa
suppression that must name a reason.  ``deterministic`` is the clean
per-target pattern; ``blessed`` shows a reasoned suppression.
"""

import numpy as np

from repro.sim.helper import jitter


class ShardEngine:
    def __init__(self, spec: object, shard_id: int, rng: np.random.Generator):
        self.spec = spec
        self.shard_id = shard_id
        self.rng = rng

    def tick(self, targets: np.ndarray) -> np.ndarray:
        noise = self.rng.random(len(targets))  # violation: shard draw
        return targets[noise > 0.5]

    def helped(self, targets: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return jitter(targets, rng)  # violation anchors inside jitter

    def deterministic(self, targets: np.ndarray) -> np.ndarray:
        return targets[targets % 2 == 0]  # clean: pure function of inputs

    def blessed(self, rng: np.random.Generator) -> int:
        return int(rng.integers(0, 4))  # noqa: RP101 -- fixture: driver-owned rng, consumed pre-exchange

    def unexplained(self, rng: np.random.Generator) -> int:
        return int(rng.integers(0, 4))  # noqa: RP101
