"""RP101 fixture driver: hands a live generator into shard code."""

import numpy as np

from repro.sim.shard import ShardEngine


def run_outbreak(spec: object, rng: np.random.Generator) -> np.ndarray:
    engine = ShardEngine(spec, 0, rng)  # violation: generator crosses in
    seeds = rng.choice(1024, size=4)  # clean: driver-owned draw
    return engine.tick(np.asarray(seeds, dtype=np.uint32))
