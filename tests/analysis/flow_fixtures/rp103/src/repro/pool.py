"""RP103 fixture: unpicklable objects crossing a pool boundary.

Violations: a lambda payload, a nested-function payload, a lambda
submit argument, a lambda field default in the shipped spec class,
and a bare-noqa suppression.  ``run_jobs`` is the clean pattern:
module-level worker, plain dataclass argument.
"""

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field


@dataclass(frozen=True)
class JobSpec:
    size: int
    transform: object = field(default_factory=lambda: abs)  # violation


def work(spec: JobSpec) -> int:
    return spec.size


def work_with_hook(value: int, hook: object) -> int:
    return value


def run_jobs(specs: list) -> list:
    with ProcessPoolExecutor(max_workers=1) as pool:
        futures = [pool.submit(work, spec) for spec in specs]  # clean
        return [future.result() for future in futures]


def run_lambda(values: int) -> int:
    with ProcessPoolExecutor(max_workers=1) as pool:
        return pool.submit(lambda v: v * 2, values).result()  # violation


def run_nested(value: int) -> int:
    def inner(v: int) -> int:
        return v + 1

    with ProcessPoolExecutor(max_workers=1) as pool:
        return pool.submit(inner, value).result()  # violation: closure


def run_lambda_arg(value: int) -> int:
    with ProcessPoolExecutor(max_workers=1) as pool:
        return pool.submit(work_with_hook, value, lambda v: v).result()  # violation


def blessed(value: int) -> int:
    with ProcessPoolExecutor(max_workers=1) as pool:
        return pool.submit(work_with_hook, value, lambda v: v).result()  # noqa: RP103 -- fixture: test-only path, always runs in-process


def unexplained(value: int) -> int:
    with ProcessPoolExecutor(max_workers=1) as pool:
        return pool.submit(work_with_hook, value, lambda v: v).result()  # noqa: RP103
