"""RP104 fixture: gated fast paths with and without test coverage.

``covered_sum`` is reached from a ``kernel_override`` test;
``uncovered_scale`` is only reached from a test that never forces
the reference path; ``blessed_shift``/``unexplained_shift`` exercise
the reasoned-noqa policy.
"""

import numpy as np

from repro.net.kernels import kernels_enabled


def covered_sum(values: np.ndarray) -> float:
    if kernels_enabled():
        return float(np.sum(values))
    return float(sum(float(v) for v in values))


def uncovered_scale(values: np.ndarray) -> np.ndarray:  # violation
    if kernels_enabled():
        return values * 2
    return np.array([v * 2 for v in values])


def blessed_shift(values: np.ndarray) -> np.ndarray:  # noqa: RP104 -- fixture: equivalence enforced by an external harness
    if kernels_enabled():
        return values + 1
    return np.array([v + 1 for v in values])


def unexplained_shift(values: np.ndarray) -> np.ndarray:  # noqa: RP104
    if kernels_enabled():
        return values - 1
    return np.array([v - 1 for v in values])
