"""Gate stub mirroring ``repro.net.kernels`` for the RP104 fixture."""

from contextlib import contextmanager
from typing import Iterator

_ENABLED = True


def kernels_enabled() -> bool:
    return _ENABLED


@contextmanager
def kernel_override(enabled: bool) -> Iterator[None]:
    global _ENABLED
    prior = _ENABLED
    _ENABLED = enabled
    try:
        yield
    finally:
        _ENABLED = prior
