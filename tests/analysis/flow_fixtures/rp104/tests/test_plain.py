"""Fixture test that never forces the reference path: not coverage."""

import numpy as np

from repro.fast import uncovered_scale


def test_scale_runs():
    assert uncovered_scale(np.arange(2)).shape == (2,)
