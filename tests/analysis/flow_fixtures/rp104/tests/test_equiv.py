"""Fixture equivalence test: covers ``covered_sum`` via kernel_override."""

import numpy as np

from repro.fast import covered_sum
from repro.net.kernels import kernel_override


def test_covered_sum_matches_reference():
    values = np.arange(4)
    with kernel_override(False):
        reference = covered_sum(values)
    assert covered_sum(values) == reference
