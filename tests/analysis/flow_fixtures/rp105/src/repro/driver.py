"""RP105 fixture: RNG consumption inside the dispatch window.

Violations: a direct draw between ``dispatch_shard`` and ``collect``,
and a generator handed to a consuming helper inside the window.
Clean: draws before the first dispatch, draws after the last collect,
a window-free function, and a reasoned suppression.  A bare ``noqa``
inside the window is reported as missing its reason.
"""

import numpy as np


def _jitter(rng: np.random.Generator) -> float:
    return float(rng.random())


def dirty_tick(pool, shards, rng: np.random.Generator) -> list:
    loss = rng.random(64)  # clean: pre-window draw, serial order
    pool.begin_tick()
    for shard_id in range(shards):
        pool.dispatch_shard(shard_id, loss[shard_id])
        rng.random()  # violation: draw inside the overlap window
    return pool.collect()


def leaky_tick(pool, shards, rng: np.random.Generator) -> list:
    pool.begin_tick()
    for shard_id in range(shards):
        pool.dispatch_shard(shard_id, None)
        _jitter(rng)  # violation: generator flows to a consumer
    return pool.collect()


def clean_tick(pool, shards, rng: np.random.Generator) -> list:
    draws = rng.random(shards)  # clean: all draws precede dispatch
    pool.begin_tick()
    for shard_id in range(shards):
        pool.dispatch_shard(shard_id, draws[shard_id])
    replies = pool.collect()
    rng.random()  # clean: the window closed at collect above
    return replies


def windowless(rng: np.random.Generator) -> float:
    # clean: no dispatch_shard/collect pair, no window at all.
    return float(rng.random())


def blessed_tick(pool, shards, rng: np.random.Generator) -> list:
    pool.begin_tick()
    for shard_id in range(shards):
        pool.dispatch_shard(shard_id, None)
        rng.random()  # noqa: RP105 -- fixture: draw provably replayed outside the window
    return pool.collect()


def unexplained_tick(pool, shards, rng: np.random.Generator) -> list:
    pool.begin_tick()
    for shard_id in range(shards):
        pool.dispatch_shard(shard_id, None)
        rng.random()  # noqa: RP105
    return pool.collect()
