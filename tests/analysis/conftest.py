"""Keep pytest out of the fixture corpora.

``flow_fixtures/rp104`` contains ``test_*.py`` files on purpose — the
RP104 checker needs real-looking equivalence tests to analyze — but
they import fixture-only modules (``repro.fast``) that do not exist on
the installed path, so collecting them would fail.
"""

collect_ignore_glob = ["flow_fixtures/*", "lint_fixtures/*"]
