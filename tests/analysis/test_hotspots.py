"""Tests for repro.analysis.hotspots."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.hotspots import (
    gini_coefficient,
    hotspot_report,
    normalized_entropy,
)


class TestGini:
    def test_uniform_counts_are_zero(self):
        assert gini_coefficient(np.full(100, 7)) == pytest.approx(0.0)

    def test_single_spike_near_one(self):
        counts = np.zeros(1000)
        counts[0] = 1_000_000
        assert gini_coefficient(counts) > 0.99

    def test_empty_total(self):
        assert gini_coefficient(np.zeros(10)) == 0.0  # bitwise

    def test_moderate_skew_between(self):
        counts = np.array([1, 1, 1, 1, 16])
        assert 0.3 < gini_coefficient(counts) < 0.8


class TestEntropy:
    def test_uniform_is_one(self):
        assert normalized_entropy(np.full(64, 3)) == pytest.approx(1.0)

    def test_spike_is_zero(self):
        counts = np.zeros(64)
        counts[5] = 100
        assert normalized_entropy(counts) == pytest.approx(0.0)

    def test_empty_counts(self):
        assert normalized_entropy(np.zeros(10)) == 1.0  # bitwise


class TestReport:
    def test_uniform_data_passes_uniformity(self):
        rng = np.random.default_rng(0)
        counts = rng.poisson(1000, size=256)
        report = hotspot_report(counts)
        assert report.is_uniform
        assert report.gini < 0.05
        assert report.normalized_entropy > 0.99

    def test_hotspot_data_fails_uniformity(self):
        rng = np.random.default_rng(1)
        counts = rng.poisson(10, size=256)
        counts[17] = 10_000
        report = hotspot_report(counts)
        assert not report.is_uniform
        assert report.peak_to_mean > 50

    def test_zero_fraction(self):
        counts = np.array([0, 0, 5, 5])
        assert hotspot_report(counts).zero_fraction == 0.5  # bitwise

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            hotspot_report(np.array([]))
        with pytest.raises(ValueError):
            hotspot_report(np.array([1, -1]))
        with pytest.raises(ValueError):
            hotspot_report(np.zeros((2, 2)))

    def test_all_zero_counts(self):
        report = hotspot_report(np.zeros(16, dtype=np.int64))
        assert report.total == 0
        assert report.is_uniform


@given(st.lists(st.integers(0, 10_000), min_size=2, max_size=200))
def test_metrics_bounded(counts):
    counts = np.array(counts)
    gini = gini_coefficient(counts)
    entropy = normalized_entropy(counts)
    assert -1e-9 <= gini <= 1.0
    assert -1e-9 <= entropy <= 1.0 + 1e-9


@given(st.integers(2, 100), st.integers(1, 1000))
def test_uniform_always_zero_gini(bins, value):
    assert gini_coefficient(np.full(bins, value)) == pytest.approx(0.0, abs=1e-9)
