"""Tests for repro.analysis.blaster_seeds."""

import numpy as np
import pytest

from repro.analysis.blaster_seeds import BlasterSweepModel, SeedTargetMap
from repro.net.cidr import CIDRBlock
from repro.worms.blaster import blaster_start_for_seed


@pytest.fixture(scope="module")
def small_map():
    return SeedTargetMap(tick_low=1_000, tick_high=200_000)


class TestSeedTargetMap:
    def test_rejects_bad_range(self):
        with pytest.raises(ValueError):
            SeedTargetMap(tick_low=10, tick_high=10)

    def test_excludes_local_starts(self, small_map):
        # Every mapped seed must take the random branch.
        for seed in small_map.seeds[:50]:
            _, is_local = blaster_start_for_seed(int(seed))
            assert not is_local

    def test_window_query_matches_forward_map(self, small_map):
        # Pick a known seed, find its start, and confirm the inverse
        # query returns it.
        seed = int(small_map.seeds[123])
        start, _ = blaster_start_for_seed(seed)
        found = small_map.seeds_for_window(start, start)
        assert seed in found

    def test_window_query_range_semantics(self, small_map):
        seeds = small_map.seeds_for_window(0, 2**32 - 1)
        assert len(seeds) == len(small_map.seeds)

    def test_reach_query_includes_upstream_starts(self, small_map):
        seed = int(small_map.seeds[7])
        start, _ = blaster_start_for_seed(seed)
        prefix = (start >> 8) + 10  # a /24 10 blocks above the start
        found = small_map.seeds_reaching_slash24(int(prefix), reach=any_reach(11))
        assert seed in found

    def test_boot_times_are_seconds(self, small_map):
        seed = int(small_map.seeds[9])
        start, _ = blaster_start_for_seed(seed)
        times = small_map.boot_times_for_slash24(start >> 8, reach=1)
        assert (times * 1000 >= 1_000).all()
        assert (times * 1000 < 200_000).all()


def any_reach(blocks: int) -> int:
    return blocks * 256


class TestBlasterSweepModel:
    def test_rejects_bad_reach(self):
        with pytest.raises(ValueError):
            BlasterSweepModel(np.array([0], dtype=np.uint32), reach=0)

    def test_counts_hosts_in_window(self):
        starts = np.array([1000, 2000, 3000], dtype=np.uint32)
        model = BlasterSweepModel(starts, reach=500)
        assert model.sources_observing(1100) == 1  # only start 1000
        assert model.sources_observing(2400) == 1  # only start 2000
        assert model.sources_observing(999) == 0
        assert model.sources_observing(3500) == 1

    def test_window_is_inclusive(self):
        starts = np.array([1000], dtype=np.uint32)
        model = BlasterSweepModel(starts, reach=500)
        assert model.sources_observing(1000) == 1
        assert model.sources_observing(1500) == 1
        assert model.sources_observing(1501) == 0

    def test_sweep_block_matches_pointwise(self):
        rng = np.random.default_rng(0)
        starts = rng.integers(0, 2**32, size=10_000, dtype=np.uint64).astype(
            np.uint32
        )
        model = BlasterSweepModel(starts, reach=100_000)
        block = CIDRBlock.parse("100.50.0.0/20")
        result = model.sweep_block(block)
        for index, prefix in enumerate(block.slash24_prefixes()):
            last_addr = (int(prefix) << 8) | 0xFF
            assert result.unique_sources[index] == model.sources_observing(
                last_addr
            )

    def test_shared_start_creates_spike(self):
        # 500 hosts share one start; 100 are scattered.
        rng = np.random.default_rng(1)
        shared = np.full(500, 100 << 24, dtype=np.uint32)
        scattered = rng.integers(0, 2**32, size=100, dtype=np.uint64).astype(
            np.uint32
        )
        model = BlasterSweepModel(
            np.concatenate([shared, scattered]), reach=10_000
        )
        spike = model.sources_observing((100 << 24) + 100)
        background = model.sources_observing((200 << 24) + 100)
        assert spike >= 500
        assert background < 10

    def test_num_hosts(self):
        model = BlasterSweepModel(np.arange(5, dtype=np.uint32), reach=1)
        assert model.num_hosts == 5
