"""Tests for the RP101–RP105 cross-module flow checkers.

Each checker runs against a miniature project under
``tests/analysis/flow_fixtures/<code>/`` — its own ``src/repro``
tree, because the analysis is cross-module by design.  Per checker
the corpus covers: the violations fire, the clean patterns stay
silent, a *reasoned* ``# noqa`` suppression is honored, and a bare
``# noqa`` is reported as missing its reason.

The final class is the self-check: the five checkers produce zero
findings on the repository itself (the acceptance gate for
``hotspots lint`` exiting 0 at HEAD).
"""

from pathlib import Path

import pytest

from repro.analysis.flow import (
    DispatchWindowChecker,
    KernelGateCoverageChecker,
    PoolBoundaryPicklabilityChecker,
    RngOrderingChecker,
    ShardPurityChecker,
    build_context,
)
from repro.analysis.flow.context import clear_cache
from repro.analysis.lint.config import LintConfig, load_config

ROOT = Path(__file__).resolve().parents[2]
FIXTURES = ROOT / "tests" / "analysis" / "flow_fixtures"

#: Fixture projects analyze everything under their own src/ + tests/.
FIXTURE_CONFIG = LintConfig(paths=("src", "tests"), exclude=())


def flow_findings(checker_class, fixture_name):
    """All diagnostics from one checker on one fixture project."""
    clear_cache()
    root = FIXTURES / fixture_name
    context = build_context(root, FIXTURE_CONFIG)
    checker = checker_class()
    return list(checker.check_project(root, FIXTURE_CONFIG, context))


def marker_lines(relpath, fixture_name, marker="# violation"):
    """1-indexed lines of ``relpath`` carrying a marker comment."""
    source = (FIXTURES / fixture_name / relpath).read_text(encoding="utf-8")
    return {
        lineno
        for lineno, line in enumerate(source.splitlines(), start=1)
        if marker in line
    }


class TestShardPurityRP101:
    def findings(self):
        return flow_findings(ShardPurityChecker, "rp101")

    def test_rng_draw_moved_into_shard_engine_is_caught(self):
        # The ISSUE acceptance criterion: a draw on a stored generator
        # inside a ShardEngine method must fire RP101.
        draws = [
            d
            for d in self.findings()
            if d.path == "src/repro/sim/shard.py"
            and "shard-side code consumes rng" in d.message
        ]
        assert draws, "the ShardEngine.tick draw must be flagged"
        assert draws[0].line in marker_lines("src/repro/sim/shard.py", "rp101")

    def test_cross_module_helper_draw_is_caught(self):
        helper = [
            d for d in self.findings() if d.path == "src/repro/sim/helper.py"
        ]
        assert len(helper) == 1
        assert "shard-side code consumes rng" in helper[0].message
        # The witness chain names how the helper became shard-reachable.
        assert "jitter" in helper[0].message
        assert "<-" in helper[0].message

    def test_driver_handing_generator_into_shard_is_caught(self):
        crossings = [
            d for d in self.findings() if d.path == "src/repro/driver.py"
        ]
        assert len(crossings) == 1
        assert "crosses into shard-side code" in crossings[0].message
        assert crossings[0].line in marker_lines(
            "src/repro/driver.py", "rp101"
        )

    def test_driver_owned_draw_is_clean(self):
        clean = marker_lines("src/repro/driver.py", "rp101", marker="# clean")
        flagged = {
            d.line for d in self.findings() if d.path == "src/repro/driver.py"
        }
        assert not clean & flagged

    def test_reasoned_noqa_is_honored_and_bare_noqa_reports(self):
        findings = self.findings()
        reasons = [d for d in findings if "must name a reason" in d.message]
        assert len(reasons) == 1
        # blessed (reasoned) is silent; unexplained (bare) reports.
        assert "RP101" in reasons[0].message
        assert all("blessed" not in d.message for d in findings)

    def test_exact_finding_count(self):
        assert len(self.findings()) == 4


class TestRngOrderingRP102:
    def findings(self):
        return flow_findings(RngOrderingChecker, "rp102")

    def test_fires_on_every_marked_violation(self):
        expected = marker_lines("src/repro/pipeline.py", "rp102")
        flagged = {d.line for d in self.findings()}
        assert expected <= flagged

    def test_set_iteration_draw_names_the_region(self):
        messages = [d.message for d in self.findings()]
        assert any("iteration over a set" in m for m in messages)
        assert any("os.listdir()" in m for m in messages)
        assert any("finally block" in m for m in messages)

    def test_recovery_path_call_into_consumer_is_caught(self):
        crossing = [
            d
            for d in self.findings()
            if "a generator flows into _replay" in d.message
        ]
        assert len(crossing) == 1
        assert "except block" in crossing[0].message

    def test_clean_patterns_stay_silent(self):
        clean = marker_lines("src/repro/pipeline.py", "rp102", marker="# clean")
        flagged = {d.line for d in self.findings()}
        assert not clean & flagged

    def test_reasoned_noqa_is_honored_and_bare_noqa_reports(self):
        findings = self.findings()
        reasons = [d for d in findings if "must name a reason" in d.message]
        assert len(reasons) == 1
        assert len(findings) == 5  # 4 violations + 1 missing-reason


class TestPoolPicklabilityRP103:
    def findings(self):
        return flow_findings(PoolBoundaryPicklabilityChecker, "rp103")

    def test_lambda_payload_is_caught(self):
        assert any(
            "a lambda is submitted as a pool payload" in d.message
            for d in self.findings()
        )

    def test_nested_function_payload_is_caught(self):
        assert any(
            "nested function (closure)" in d.message
            and "pool payload" in d.message
            for d in self.findings()
        )

    def test_lambda_argument_is_caught(self):
        assert any(
            "shipped as a pool-submit argument" in d.message
            for d in self.findings()
        )

    def test_lambda_field_default_in_shipped_class_is_caught(self):
        defaults = [
            d
            for d in self.findings()
            if "field default of pool-shipped class JobSpec" in d.message
        ]
        assert len(defaults) == 1
        assert defaults[0].line in marker_lines(
            "src/repro/pool.py", "rp103"
        )

    def test_module_level_payload_with_plain_spec_is_clean(self):
        clean = marker_lines("src/repro/pool.py", "rp103", marker="# clean")
        flagged = {d.line for d in self.findings()}
        assert not clean & flagged

    def test_reasoned_noqa_is_honored_and_bare_noqa_reports(self):
        findings = self.findings()
        reasons = [d for d in findings if "must name a reason" in d.message]
        assert len(reasons) == 1
        assert len(findings) == 5  # 4 violations + 1 missing-reason


class TestKernelGateCoverageRP104:
    def findings(self):
        return flow_findings(KernelGateCoverageChecker, "rp104")

    def test_uncovered_gated_function_is_caught(self):
        uncovered = [
            d for d in self.findings() if "uncovered_scale" in d.message
        ]
        assert len(uncovered) == 1
        assert "kernel_override" in uncovered[0].message
        assert uncovered[0].line in marker_lines(
            "src/repro/fast.py", "rp104"
        )

    def test_covered_gated_function_is_clean(self):
        assert all(
            "covered_sum" not in d.message for d in self.findings()
        )

    def test_plain_test_without_override_does_not_count(self):
        # test_plain.py calls uncovered_scale but never kernel_override,
        # so the function stays uncovered.
        assert any(
            "uncovered_scale" in d.message for d in self.findings()
        )

    def test_reasoned_noqa_is_honored_and_bare_noqa_reports(self):
        findings = self.findings()
        reasons = [d for d in findings if "must name a reason" in d.message]
        assert len(reasons) == 1
        assert "unexplained_shift" in reasons[0].message
        assert all("blessed_shift" not in d.message for d in findings)

    def test_exact_finding_count(self):
        assert len(self.findings()) == 2


class TestDispatchWindowRP105:
    def findings(self):
        return flow_findings(DispatchWindowChecker, "rp105")

    def test_draw_inside_window_is_caught(self):
        draws = [
            d
            for d in self.findings()
            if "RNG consumed inside the dispatch window" in d.message
            and "dirty_tick" in d.message
        ]
        assert len(draws) == 1
        assert draws[0].line in marker_lines("src/repro/driver.py", "rp105")

    def test_generator_into_consumer_inside_window_is_caught(self):
        crossing = [
            d
            for d in self.findings()
            if "a generator flows into _jitter" in d.message
        ]
        assert len(crossing) == 1
        assert "leaky_tick" in crossing[0].message
        assert crossing[0].line in marker_lines(
            "src/repro/driver.py", "rp105"
        )

    def test_window_boundaries_are_reported(self):
        # The message names the syntactic window so the fix target
        # (move the draw above the first dispatch) is obvious.
        assert all(
            "dispatch window (lines" in d.message
            for d in self.findings()
            if "must name a reason" not in d.message
        )

    def test_clean_patterns_stay_silent(self):
        clean = marker_lines("src/repro/driver.py", "rp105", marker="# clean")
        flagged = {d.line for d in self.findings()}
        assert not clean & flagged

    def test_pre_window_and_post_window_draws_are_clean(self):
        assert all(
            "clean_tick" not in d.message and "windowless" not in d.message
            for d in self.findings()
        )

    def test_reasoned_noqa_is_honored_and_bare_noqa_reports(self):
        findings = self.findings()
        reasons = [d for d in findings if "must name a reason" in d.message]
        assert len(reasons) == 1
        assert "unexplained_tick" in reasons[0].message
        assert all("blessed_tick" not in d.message for d in findings)

    def test_exact_finding_count(self):
        assert len(self.findings()) == 3  # 2 violations + 1 missing-reason


class TestRepoSelfCheck:
    """The five checkers are clean on the repository at HEAD."""

    @pytest.mark.parametrize(
        "checker_class",
        [
            ShardPurityChecker,
            RngOrderingChecker,
            PoolBoundaryPicklabilityChecker,
            KernelGateCoverageChecker,
            DispatchWindowChecker,
        ],
    )
    def test_flow_checker_is_clean_on_repo(self, checker_class):
        config = load_config(ROOT)
        context = build_context(ROOT, config)
        checker = checker_class()
        findings = list(checker.check_project(ROOT, config, context))
        assert findings == [], "\n".join(str(d) for d in findings)

    def test_repo_context_sees_the_real_project(self):
        config = load_config(ROOT)
        context = build_context(ROOT, config)
        assert "repro.sim.shard.ShardEngine" in context.table.classes
        assert context.graph.gated_functions
        assert context.taint.uses_rng
