"""Tests for repro.analysis.filtering_study."""

import numpy as np
import pytest

from repro.analysis.filtering_study import (
    blaster_leak_counts,
    run_filtering_study,
)
from repro.env.filtering import FilteringPolicy, FilterRule
from repro.net.cidr import CIDRBlock
from repro.population.allocation import OrganizationAllocation
from repro.net.cidr import BlockSet
from repro.sensors.darknet import DarknetSensor
from repro.worms.uniform import UniformScanWorm


@pytest.fixture()
def setup():
    rng = np.random.default_rng(0)
    org_a = OrganizationAllocation(
        "corp", "enterprise", BlockSet.parse(["150.1.0.0/16"])
    )
    org_b = OrganizationAllocation(
        "isp", "broadband", BlockSet.parse(["24.0.0.0/10"])
    )
    sensors = [DarknetSensor("Z", CIDRBlock.parse("41.0.0.0/8"))]
    infected = {
        "uniform": {
            "corp": org_a.blocks.random_addresses(50, rng),
            "isp": org_b.blocks.random_addresses(200, rng),
        }
    }
    return org_a, org_b, sensors, infected, rng


class TestRunFilteringStudy:
    def test_egress_filter_hides_enterprise(self, setup):
        org_a, org_b, sensors, infected, rng = setup
        policy = FilteringPolicy([FilterRule("egress", org_a.blocks.blocks[0])])
        result = run_filtering_study(
            [org_a, org_b],
            infected,
            {"uniform": UniformScanWorm()},
            sensors,
            policy,
            probes_per_host=3_000,
            rng=rng,
        )
        rows = {row.name: row for row in result.rows}
        assert rows["corp"].observed["uniform"] == 0
        # Uniform probes hit the /8 sensor w.h.p. within 3000 probes.
        assert rows["isp"].observed["uniform"] > 150

    def test_no_filter_everyone_visible(self, setup):
        org_a, org_b, sensors, infected, rng = setup
        result = run_filtering_study(
            [org_a, org_b],
            infected,
            {"uniform": UniformScanWorm()},
            sensors,
            FilteringPolicy(),
            probes_per_host=3_000,
            rng=rng,
        )
        rows = {row.name: row for row in result.rows}
        assert rows["corp"].observed["uniform"] > 40

    def test_kind_partitions(self, setup):
        org_a, org_b, sensors, infected, rng = setup
        result = run_filtering_study(
            [org_a, org_b],
            infected,
            {"uniform": UniformScanWorm()},
            sensors,
            FilteringPolicy(),
            probes_per_host=100,
            rng=rng,
        )
        assert [row.name for row in result.enterprises()] == ["corp"]
        assert [row.name for row in result.broadband()] == ["isp"]

    def test_missing_placement_counts_zero(self, setup):
        org_a, org_b, sensors, _, rng = setup
        result = run_filtering_study(
            [org_a, org_b],
            {"uniform": {}},
            {"uniform": UniformScanWorm()},
            sensors,
            FilteringPolicy(),
            probes_per_host=10,
            rng=rng,
        )
        assert all(row.observed["uniform"] == 0 for row in result.rows)


class TestBlasterLeaks:
    def test_rejects_bad_reach(self):
        with pytest.raises(ValueError):
            blaster_leak_counts({}, [], FilteringPolicy(), 0, np.random.default_rng(0))

    def test_egress_filter_blocks_leaks(self):
        rng = np.random.default_rng(1)
        region = CIDRBlock.parse("150.0.0.0/8")
        hosts = region.random_addresses(2_000, rng)
        sensors = [DarknetSensor("Z", CIDRBlock.parse("41.0.0.0/8"))]
        open_policy = FilteringPolicy()
        closed_policy = FilteringPolicy([FilterRule("egress", region)])
        open_counts = blaster_leak_counts(
            {"corp": hosts}, sensors, open_policy, reach=50_000_000, rng=rng
        )
        closed_counts = blaster_leak_counts(
            {"corp": hosts}, sensors, closed_policy, reach=50_000_000, rng=rng
        )
        assert open_counts["corp"] > 0
        assert closed_counts["corp"] == 0

    def test_reach_monotone(self):
        rng = np.random.default_rng(2)
        hosts = CIDRBlock.parse("150.0.0.0/8").random_addresses(2_000, rng)
        sensors = [DarknetSensor("Z", CIDRBlock.parse("41.0.0.0/8"))]
        policy = FilteringPolicy()
        small = blaster_leak_counts(
            {"corp": hosts}, sensors, policy, reach=1_000_000,
            rng=np.random.default_rng(3),
        )
        large = blaster_leak_counts(
            {"corp": hosts}, sensors, policy, reach=500_000_000,
            rng=np.random.default_rng(3),
        )
        assert large["corp"] >= small["corp"]

    def test_empty_placement(self):
        counts = blaster_leak_counts(
            {"corp": np.empty(0, dtype=np.uint32)},
            [],
            FilteringPolicy(),
            reach=1_000,
            rng=np.random.default_rng(0),
        )
        assert counts["corp"] == 0
