"""RP004 fixture: unpicklable dispatch (3 violations, 1 suppressed)."""

from repro.runtime.runner import Trial, TrialRunner


def module_level_trial(seed: object = None) -> int:
    """A picklable payload: module-level, importable by workers."""
    return 1


bad_lambda = Trial(func=lambda seed=None: 0)  # violation: lambda payload


def build_batch() -> list:
    def closure_payload(seed: object = None) -> int:  # not picklable
        return 2

    return [
        Trial(func=closure_payload),  # violation: nested function
        Trial(func=module_level_trial),  # clean: module-level callable
    ]


def run_with_lambda() -> list:
    runner = TrialRunner(workers=2)
    return runner.run_repeated(
        lambda seed=None: 3, trials=2, base_seed=0  # violation: lambda
    )


def run_suppressed() -> list:
    runner = TrialRunner(workers=2)
    return runner.run_repeated(
        lambda seed=None: 4, trials=2, base_seed=0  # noqa: RP004
    )


def run_clean() -> list:
    runner = TrialRunner(workers=1)
    return runner.run_repeated(module_level_trial, trials=2, base_seed=0)
