"""RP001 fixture: global-state RNG use (3 violations, 2 suppressed)."""

import random  # violation: stdlib random import

import numpy as np
from numpy.random import RandomState  # violation: global-state class

np.random.seed(7)  # violation: mutates numpy's global RNG

import random as stdlib_random  # noqa: RP001  (inline suppression)

np.random.seed(11)  # noqa  (bare noqa also suppresses)

# Clean patterns the checker must NOT flag:
rng = np.random.default_rng(0)
value = rng.integers(0, 10)
randomish_name = "random"  # a string, not the module
