"""RP006 fixture: the runner module the fixture registries point at."""

from __future__ import annotations


def run(seed: int = 0, scale: float = 1.0) -> dict:
    """A trivially deterministic 'experiment'."""
    return {"seed": seed, "scale": scale}


def format_result(result: dict) -> str:
    return f"seed={result['seed']} scale={result['scale']}"


def run_seedless(scale: float = 1.0) -> dict:
    """A runner with no seed parameter (RP006 must flag this)."""
    return {"scale": scale}
