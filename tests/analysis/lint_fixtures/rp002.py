"""RP002 fixture: unseeded default_rng (2 violations, 1 suppressed)."""

import numpy as np
from numpy.random import default_rng

unseeded = np.random.default_rng()  # violation: no seed
also_unseeded = default_rng()  # violation: aliased import, no seed

suppressed = np.random.default_rng()  # noqa: RP002

# Clean patterns the checker must NOT flag:
seeded = np.random.default_rng(0)
keyword_seeded = np.random.default_rng(seed=42)
spawned = np.random.default_rng(np.random.SeedSequence(1).spawn(1)[0])
