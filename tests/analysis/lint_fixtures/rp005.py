"""RP005 fixture: bare float equality (3 violations, 2 sanctioned)."""

import math

observed = 0.1 + 0.2

is_exact = observed == 0.3  # violation: bare float ==
is_different = observed != 1.5  # violation: bare float !=
from_cast = float("0.25") == observed  # violation: float(...) compared

marked = observed == 0.30000000000000004  # bitwise  (sanctioned marker)
suppressed = observed == 0.5  # noqa: RP005

# Clean patterns the checker must NOT flag:
close_enough = math.isclose(observed, 0.3)
integer_compare = 3 == len("abc")
string_compare = "0.3" == str(observed)
