"""RP006 fixture: broken and clean experiment registries.

``REGISTRY`` (the default attribute) is deliberately inconsistent;
``CLEAN_REGISTRY`` passes every RP006 invariant provided the
configured tests path references the id ``"fixture-clean"``.
"""

from __future__ import annotations

from repro.experiments.registry import Experiment

_MODULE = "tests.analysis.lint_fixtures.rp006_runner"

REGISTRY: dict[str, Experiment] = {
    experiment.id: experiment
    for experiment in (
        # Violation: default names no parameter of run().
        Experiment(
            id="fixture-bogus-default",
            title="RP006 fixture: typo'd default",
            module=_MODULE,
            defaults={"nonexistent_param": 3},
        ),
        # Violation: runner attribute does not exist in the module.
        Experiment(
            id="fixture-missing-runner",
            title="RP006 fixture: unresolvable runner",
            module=_MODULE,
            runner="no_such_function",
        ),
        # Violation: runner has no seed parameter to inject through.
        Experiment(
            id="fixture-seedless",
            title="RP006 fixture: runner without a seed parameter",
            module=_MODULE,
            runner="run_seedless",
        ),
    )
}

CLEAN_REGISTRY: dict[str, Experiment] = {
    "fixture-clean": Experiment(
        id="fixture-clean",
        title="RP006 fixture: fully consistent experiment",
        module=_MODULE,
        defaults={"scale": 2.0},
    ),
}
