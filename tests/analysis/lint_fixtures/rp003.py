"""RP003 fixture: ambient nondeterminism (5 violations, 1 suppressed)."""

import os
import time
from datetime import datetime


def wall_clock_stamp() -> float:
    return time.time()  # violation: wall-clock read


def timestamped_label() -> str:
    return datetime.now().isoformat()  # violation: wall-clock read


def entropy_bytes() -> bytes:
    return os.urandom(8)  # violation: OS entropy


def hash_order_leak(values: list) -> list:
    results = []
    for item in set(values):  # violation: unsorted-set iteration
        results.append(item)
    return results + list({1, 2, 3})  # violation: list over set literal


def suppressed_stamp() -> float:
    return time.time()  # noqa: RP003


def clean_order(values: list) -> list:
    # Clean patterns the checker must NOT flag:
    ordered = [item for item in sorted(set(values))]
    membership = 3 in set(values)  # membership test, not iteration
    return ordered if membership else []
