"""Fixture corpus for the ``hotspots lint`` checkers.

Each ``rpNNN`` module deliberately contains the pattern its checker
flags, the clean alternative, and a suppressed occurrence.  The
directory is excluded from real lint runs (``DEFAULT_EXCLUDE`` and
``[tool.hotspots-lint] exclude``) and from ruff via per-file ignores:
these files are *supposed* to be wrong.
"""
