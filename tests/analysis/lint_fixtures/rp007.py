"""RP007 fixture: silent/broad exception handlers (4 violations, 2 suppressed)."""


def bare_handler() -> int:
    try:
        return 1
    except:  # violation: bare except
        return 0


def base_exception_handler() -> int:
    try:
        return 1
    except BaseException:  # violation: catches interpreter exit
        raise


def base_exception_in_tuple() -> int:
    try:
        return 1
    except (ValueError, BaseException):  # violation: tuple hides BaseException
        return 0


def silent_pass() -> None:
    try:
        print("work")
    except OSError:  # violation: silently swallows the failure
        pass


def allowlisted_cleanup() -> None:
    try:
        print("work")
    except BaseException:  # noqa: RP007 — fixture allowlist
        raise


def allowlisted_best_effort() -> None:
    try:
        print("work")
    except OSError:  # noqa: RP007 — fixture allowlist
        pass


def clean_handlers(counts: dict) -> int:
    # Clean patterns the checker must NOT flag:
    try:
        return counts["key"]
    except KeyError:
        counts["misses"] = counts.get("misses", 0) + 1
        return 0
    finally:
        pass  # a bare pass outside a handler is fine
