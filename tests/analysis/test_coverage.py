"""Tests for repro.analysis.coverage."""

import numpy as np
import pytest

from repro.analysis.coverage import (
    scan_coverage_curve,
    uniform_coverage_expectation,
)
from repro.net.cidr import BlockSet, CIDRBlock
from repro.worms.hitlist import HitListWorm
from repro.worms.localpref import LocalPreferenceWorm
from repro.worms.permutation import PermutationScanWorm

REGION = CIDRBlock.parse("60.0.0.0/16")


def sources(count, rng):
    return REGION.random_addresses(count, rng)


class TestAnalyticExpectation:
    def test_coupon_collector_shape(self):
        probes = np.array([0, 65_536, 2 * 65_536])
        curve = uniform_coverage_expectation(probes, 65_536)
        assert curve[0] == 0.0  # bitwise
        assert curve[1] == pytest.approx(1 - np.exp(-1))
        assert curve[2] == pytest.approx(1 - np.exp(-2))

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            uniform_coverage_expectation(np.array([1.0]), 0)


class TestMeasuredCoverage:
    def test_uniform_matches_coupon_collector(self):
        rng = np.random.default_rng(0)
        worm = HitListWorm(BlockSet([REGION]))  # uniform within region
        curve = scan_coverage_curve(
            worm, sources(10, rng), REGION, steps=10, probes_per_step=1_000, rng=rng
        )
        expected = uniform_coverage_expectation(curve.probes, REGION.size)
        assert np.allclose(curve.covered_fraction, expected, atol=0.02)

    def test_uniform_duplicates_grow(self):
        rng = np.random.default_rng(1)
        worm = HitListWorm(BlockSet([REGION]))
        curve = scan_coverage_curve(
            worm, sources(10, rng), REGION, steps=20, probes_per_step=2_000, rng=rng
        )
        # Duplicate rate increases as coverage saturates.
        assert curve.final_duplicate_rate() > curve.duplicate_fraction[0]

    def test_permutation_is_duplicate_free_early(self):
        rng = np.random.default_rng(2)
        worm = PermutationScanWorm()
        curve = scan_coverage_curve(
            worm, sources(5, rng), REGION, steps=5, probes_per_step=10_000, rng=rng
        )
        assert curve.final_duplicate_rate() < 0.001

    def test_monotone_coverage(self):
        rng = np.random.default_rng(3)
        worm = HitListWorm(BlockSet([REGION]))
        curve = scan_coverage_curve(
            worm, sources(5, rng), REGION, steps=8, probes_per_step=500, rng=rng
        )
        assert (np.diff(curve.covered_fraction) >= 0).all()

    def test_local_preference_burns_budget_elsewhere(self):
        # Hosts outside the region with /16 preference almost never
        # probe it: the same budget covers far less of the region than
        # region-confined uniform scanning.
        rng = np.random.default_rng(4)
        outside_sources = CIDRBlock.parse("120.5.0.0/16").random_addresses(10, rng)
        localpref = LocalPreferenceWorm(0.0, 0.95)
        curve_lp = scan_coverage_curve(
            localpref, outside_sources, REGION, steps=5, probes_per_step=2_000,
            rng=rng,
        )
        uniform = HitListWorm(BlockSet([REGION]))
        curve_u = scan_coverage_curve(
            uniform, sources(10, rng), REGION, steps=5, probes_per_step=2_000,
            rng=rng,
        )
        assert curve_lp.final_coverage() < 0.01
        assert curve_u.final_coverage() > 0.1

    def test_region_size_guard(self):
        rng = np.random.default_rng(5)
        with pytest.raises(ValueError):
            scan_coverage_curve(
                HitListWorm(BlockSet([REGION])),
                sources(1, rng),
                CIDRBlock.parse("60.0.0.0/8"),
                steps=1,
                probes_per_step=1,
                rng=rng,
            )
