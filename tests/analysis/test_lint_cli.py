"""End-to-end tests for ``hotspots lint`` — the acceptance gate.

The two load-bearing properties: the CLI exits non-zero on a seeded
fixture violation for *every* RP code, and exits zero on the repo at
HEAD (the CI gate).
"""

import json
from pathlib import Path

import pytest

from repro.analysis.lint.cli import main as lint_main
from repro.cli import main as hotspots_main

ROOT = Path(__file__).resolve().parents[2]
FIXTURES = ROOT / "tests" / "analysis" / "lint_fixtures"


def run_lint_cli(argv, capsys):
    exit_code = lint_main([str(arg) for arg in argv])
    return exit_code, capsys.readouterr().out


class TestFixtureViolationsFail:
    @pytest.mark.parametrize("code", ["RP001", "RP002", "RP003", "RP004", "RP005"])
    def test_each_file_checker_fails_its_fixture(self, code, capsys):
        fixture = FIXTURES / f"{code.lower()}.py"
        exit_code, output = run_lint_cli(
            ["--root", ROOT, "--select", code, fixture], capsys
        )
        assert exit_code == 1
        assert code in output

    def test_rp006_fails_on_the_broken_fixture_registry(self, capsys):
        exit_code, output = run_lint_cli(
            [
                "--root",
                ROOT,
                "--select",
                "RP006",
                "--registry-module",
                "tests.analysis.lint_fixtures.rp006_registry",
                "--tests-path",
                "tests/net",
            ],
            capsys,
        )
        assert exit_code == 1
        assert "RP006" in output

    def test_main_cli_dispatches_lint_subcommand(self, capsys):
        fixture = FIXTURES / "rp001.py"
        exit_code = hotspots_main(
            ["lint", "--root", str(ROOT), "--select", "RP001", str(fixture)]
        )
        assert exit_code == 1
        assert "RP001" in capsys.readouterr().out


class TestRepoAtHeadIsClean:
    def test_full_lint_run_exits_zero(self, capsys):
        exit_code, output = run_lint_cli(["--root", ROOT], capsys)
        assert exit_code == 0, f"repo must lint clean:\n{output}"
        assert output.startswith("clean:")

    def test_json_format_reports_summary(self, capsys):
        exit_code, output = run_lint_cli(
            ["--root", ROOT, "--format", "json"], capsys
        )
        assert exit_code == 0
        payload = json.loads(output)
        assert payload["diagnostics"] == []
        assert payload["summary"]["issues"] == 0
        assert payload["summary"]["files_checked"] > 100


class TestCliSurface:
    def test_list_checks_names_every_code(self, capsys):
        exit_code, output = run_lint_cli(["--list-checks"], capsys)
        assert exit_code == 0
        for number in range(1, 8):
            assert f"RP00{number}" in output
        for number in range(1, 5):
            assert f"RP10{number}" in output

    def test_unknown_select_code_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            lint_main(["--select", "RP999"])
        assert excinfo.value.code == 2

    def test_excluded_fixture_dir_is_skipped_in_tree_mode(self, capsys):
        exit_code, output = run_lint_cli(
            ["--root", ROOT, "--select", "RP001", ROOT / "tests" / "analysis"],
            capsys,
        )
        assert exit_code == 0  # fixtures excluded when walking a tree

    def test_named_fixture_file_bypasses_exclusion(self, capsys):
        exit_code, _ = run_lint_cli(
            ["--root", ROOT, "--select", "RP001", FIXTURES / "rp001.py"],
            capsys,
        )
        assert exit_code == 1

    def test_diagnostics_are_sorted_and_anchored(self, capsys):
        exit_code, output = run_lint_cli(
            ["--root", ROOT, FIXTURES / "rp001.py", FIXTURES / "rp002.py"],
            capsys,
        )
        assert exit_code == 1
        lines = [line for line in output.splitlines() if ":" in line]
        locations = [
            (line.split(":")[0], int(line.split(":")[1]))
            for line in lines
            if line.count(":") >= 3
        ]
        assert locations == sorted(locations)

    def test_only_is_an_alias_for_select(self, capsys):
        exit_code, output = run_lint_cli(
            ["--root", ROOT, "--only", "RP001", FIXTURES / "rp001.py"],
            capsys,
        )
        assert exit_code == 1
        assert "RP001" in output

    def test_explain_prints_checker_documentation(self, capsys):
        exit_code, output = run_lint_cli(["--explain", "RP101"], capsys)
        assert exit_code == 0
        assert "RP101" in output
        assert "shard" in output.lower()
        assert "rationale" in output

    def test_explain_unknown_code_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            lint_main(["--explain", "RP999"])
        assert excinfo.value.code == 2

    def test_list_checks_markdown_emits_the_reference_table(self, capsys):
        exit_code, output = run_lint_cli(
            ["--list-checks", "--markdown"], capsys
        )
        assert exit_code == 0
        assert output.splitlines()[0].startswith("| Code | Name |")
        assert "| RP104 |" in output

    def test_markdown_without_list_checks_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            lint_main(["--markdown"])
        assert excinfo.value.code == 2


class TestSarifOutput:
    def test_sarif_log_is_written_alongside_text_output(self, capsys, tmp_path):
        sarif_path = tmp_path / "out" / "lint.sarif"
        exit_code, output = run_lint_cli(
            [
                "--root",
                ROOT,
                "--select",
                "RP001",
                "--sarif",
                sarif_path,
                FIXTURES / "rp001.py",
            ],
            capsys,
        )
        # The stdout format and exit code are unchanged by --sarif.
        assert exit_code == 1
        assert "RP001" in output
        log = json.loads(sarif_path.read_text(encoding="utf-8"))
        assert log["version"] == "2.1.0"
        run = log["runs"][0]
        assert run["tool"]["driver"]["name"] == "hotspots-lint"
        assert any(rule["id"] == "RP001" for rule in run["tool"]["driver"]["rules"])
        assert run["results"], "fixture violations must appear as results"
        assert all(r["ruleId"] == "RP001" for r in run["results"])

    def test_clean_run_writes_an_empty_sarif_log(self, capsys, tmp_path):
        sarif_path = tmp_path / "lint.sarif"
        exit_code, _ = run_lint_cli(
            ["--root", ROOT, "--sarif", sarif_path], capsys
        )
        assert exit_code == 0
        log = json.loads(sarif_path.read_text(encoding="utf-8"))
        assert log["runs"][0]["results"] == []


class TestChangedScope:
    def test_changed_scope_lints_clean_at_head(self, capsys):
        # The repo is a git checkout, so --changed scopes to the
        # files modified relative to HEAD (possibly none) and must be
        # as clean as the full run.
        exit_code, output = run_lint_cli(
            ["--root", ROOT, "--changed", "HEAD"], capsys
        )
        assert exit_code == 0
        assert output.startswith("clean:")

    def test_changed_conflicts_with_explicit_paths(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            lint_main(
                ["--root", str(ROOT), "--changed", "HEAD", str(FIXTURES / "rp001.py")]
            )
        assert excinfo.value.code == 2
