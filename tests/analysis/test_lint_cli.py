"""End-to-end tests for ``hotspots lint`` — the acceptance gate.

The two load-bearing properties: the CLI exits non-zero on a seeded
fixture violation for *every* RP code, and exits zero on the repo at
HEAD (the CI gate).
"""

import json
from pathlib import Path

import pytest

from repro.analysis.lint.cli import main as lint_main
from repro.cli import main as hotspots_main

ROOT = Path(__file__).resolve().parents[2]
FIXTURES = ROOT / "tests" / "analysis" / "lint_fixtures"


def run_lint_cli(argv, capsys):
    exit_code = lint_main([str(arg) for arg in argv])
    return exit_code, capsys.readouterr().out


class TestFixtureViolationsFail:
    @pytest.mark.parametrize("code", ["RP001", "RP002", "RP003", "RP004", "RP005"])
    def test_each_file_checker_fails_its_fixture(self, code, capsys):
        fixture = FIXTURES / f"{code.lower()}.py"
        exit_code, output = run_lint_cli(
            ["--root", ROOT, "--select", code, fixture], capsys
        )
        assert exit_code == 1
        assert code in output

    def test_rp006_fails_on_the_broken_fixture_registry(self, capsys):
        exit_code, output = run_lint_cli(
            [
                "--root",
                ROOT,
                "--select",
                "RP006",
                "--registry-module",
                "tests.analysis.lint_fixtures.rp006_registry",
                "--tests-path",
                "tests/net",
            ],
            capsys,
        )
        assert exit_code == 1
        assert "RP006" in output

    def test_main_cli_dispatches_lint_subcommand(self, capsys):
        fixture = FIXTURES / "rp001.py"
        exit_code = hotspots_main(
            ["lint", "--root", str(ROOT), "--select", "RP001", str(fixture)]
        )
        assert exit_code == 1
        assert "RP001" in capsys.readouterr().out


class TestRepoAtHeadIsClean:
    def test_full_lint_run_exits_zero(self, capsys):
        exit_code, output = run_lint_cli(["--root", ROOT], capsys)
        assert exit_code == 0, f"repo must lint clean:\n{output}"
        assert output.startswith("clean:")

    def test_json_format_reports_summary(self, capsys):
        exit_code, output = run_lint_cli(
            ["--root", ROOT, "--format", "json"], capsys
        )
        assert exit_code == 0
        payload = json.loads(output)
        assert payload["diagnostics"] == []
        assert payload["summary"]["issues"] == 0
        assert payload["summary"]["files_checked"] > 100


class TestCliSurface:
    def test_list_checks_names_every_code(self, capsys):
        exit_code, output = run_lint_cli(["--list-checks"], capsys)
        assert exit_code == 0
        for number in range(1, 7):
            assert f"RP00{number}" in output

    def test_unknown_select_code_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            lint_main(["--select", "RP999"])
        assert excinfo.value.code == 2

    def test_excluded_fixture_dir_is_skipped_in_tree_mode(self, capsys):
        exit_code, output = run_lint_cli(
            ["--root", ROOT, "--select", "RP001", ROOT / "tests" / "analysis"],
            capsys,
        )
        assert exit_code == 0  # fixtures excluded when walking a tree

    def test_named_fixture_file_bypasses_exclusion(self, capsys):
        exit_code, _ = run_lint_cli(
            ["--root", ROOT, "--select", "RP001", FIXTURES / "rp001.py"],
            capsys,
        )
        assert exit_code == 1

    def test_diagnostics_are_sorted_and_anchored(self, capsys):
        exit_code, output = run_lint_cli(
            ["--root", ROOT, FIXTURES / "rp001.py", FIXTURES / "rp002.py"],
            capsys,
        )
        assert exit_code == 1
        lines = [line for line in output.splitlines() if ":" in line]
        locations = [
            (line.split(":")[0], int(line.split(":")[1]))
            for line in lines
            if line.count(":") >= 3
        ]
        assert locations == sorted(locations)
