"""Tests for repro.analysis.slammer_cycles."""

import numpy as np
import pytest

from repro.analysis.slammer_cycles import (
    block_distinct_cycle_sum,
    expected_unique_sources_per_slash24,
    find_block_with_cycle_valuation,
    slash16_observation_scores,
    slash24_cycle_lengths,
)
from repro.net.cidr import CIDRBlock
from repro.prng.cycles import cycle_structure
from repro.worms.slammer import SLAMMER_A, address_to_state


B = 0x8831FA24


class TestSlash24CycleLengths:
    def test_matches_structure_per_address(self):
        structure = cycle_structure(SLAMMER_A, B, bits=32)
        prefixes = np.array([0x8D0A05, 0x0A0B0C, 0x417FFF], dtype=np.uint32)
        lengths = slash24_cycle_lengths(prefixes, B)
        for prefix, length in zip(prefixes, lengths):
            addr = np.array([int(prefix) << 8], dtype=np.uint32)
            state = int(address_to_state(addr)[0])
            assert structure.cycle_length_of_state(state) == length

    def test_whole_slash24_shares_length(self):
        structure = cycle_structure(SLAMMER_A, B, bits=32)
        prefix = 0x8D0A05
        addrs = ((prefix << 8) + np.arange(256, dtype=np.uint32)).astype(np.uint32)
        lengths = structure.cycle_lengths_of_states(address_to_state(addrs))
        assert len(np.unique(lengths)) == 1


class TestExpectedUniqueSources:
    def test_scales_with_hosts(self):
        prefixes = np.array([0x8D0A05], dtype=np.uint32)
        one = expected_unique_sources_per_slash24(prefixes, 1_000, 10_000)
        two = expected_unique_sources_per_slash24(prefixes, 2_000, 10_000)
        assert two[0] == pytest.approx(2 * one[0])

    def test_capped_by_cycle_length(self):
        # With a huge probe budget the expectation is N * L / 2^32.
        prefixes = np.array([0x8D0A05], dtype=np.uint32)
        expected = expected_unique_sources_per_slash24(
            prefixes, 3_000, probes_per_host=2**40, b_values=[B]
        )
        length = slash24_cycle_lengths(prefixes, B)[0]
        assert expected[0] == pytest.approx(3_000 * length / 2**32)

    def test_rejects_bad_inputs(self):
        prefixes = np.array([1], dtype=np.uint32)
        with pytest.raises(ValueError):
            expected_unique_sources_per_slash24(prefixes, 0, 10)
        with pytest.raises(ValueError):
            expected_unique_sources_per_slash24(prefixes, 10, 0)


class TestBlockCycleSum:
    def test_larger_blocks_collect_more_cycles(self):
        small = block_distinct_cycle_sum(CIDRBlock.parse("100.50.0.0/24"), B)
        large = block_distinct_cycle_sum(CIDRBlock.parse("100.50.0.0/20"), B)
        assert large >= small

    def test_single_slash24_sum_is_its_cycle(self):
        block = CIDRBlock.parse("100.50.7.0/24")
        prefixes = np.array([block.network >> 8], dtype=np.uint32)
        length = slash24_cycle_lengths(prefixes, B)[0]
        assert block_distinct_cycle_sum(block, B) == pytest.approx(
            length / 2**32
        )


class TestObservationScores:
    def test_shape_and_positivity(self):
        scores = slash16_observation_scores(4_000_000)
        assert scores.shape == (65_536,)
        assert (scores > 0).all()

    def test_contrast_exists(self):
        scores = slash16_observation_scores(4_000_000)
        assert scores.max() > 1.8 * scores.min()

    def test_score_predicts_expected_sources(self):
        # The hottest /16's expected count must beat the coldest's.
        scores = slash16_observation_scores(4_000_000)
        hot, cold = int(np.argmax(scores)), int(np.argmin(scores))

        def prefix_of(low16):
            return ((low16 & 0xFF) << 16) | ((low16 >> 8) << 8)

        hot_expected = expected_unique_sources_per_slash24(
            np.array([prefix_of(hot)], dtype=np.uint32), 10_000, 4_000_000
        )
        cold_expected = expected_unique_sources_per_slash24(
            np.array([prefix_of(cold)], dtype=np.uint32), 10_000, 4_000_000
        )
        assert hot_expected[0] > 1.8 * cold_expected[0]


class TestFindBlockWithValuation:
    def test_found_block_has_requested_valuation(self):
        block = find_block_with_cycle_valuation(3, 18, b_values=[B])
        structure = cycle_structure(SLAMMER_A, B, bits=32)
        state = int(address_to_state(np.array([block.first], dtype=np.uint32))[0])
        c_low = structure.fixed_point & 0xFFFF
        diff = ((state & 0xFFFF) - c_low) % 65_536
        assert (diff & -diff).bit_length() - 1 == 3

    def test_rejects_bad_prefix_len(self):
        with pytest.raises(ValueError):
            find_block_with_cycle_valuation(0, 8)
