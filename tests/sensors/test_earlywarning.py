"""Tests for repro.sensors.earlywarning."""

import numpy as np
import pytest

from repro.sensors.earlywarning import ExponentialTrendDetector


def feed_series(detector, counts, start=0.0):
    alarm = None
    for index, count in enumerate(counts):
        alarm = detector.observe_interval(start + index, count)
    return alarm


class TestValidation:
    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            ExponentialTrendDetector(window=2)
        with pytest.raises(ValueError):
            ExponentialTrendDetector(min_growth_rate=0.0)
        with pytest.raises(ValueError):
            ExponentialTrendDetector(min_rising_intervals=0)

    def test_rejects_negative_counts(self):
        detector = ExponentialTrendDetector()
        with pytest.raises(ValueError):
            detector.observe_interval(0.0, -1)


class TestAlarmLogic:
    def test_exponential_growth_alarms(self):
        detector = ExponentialTrendDetector(window=8, min_count=10)
        counts = [int(3 * 1.4**i) for i in range(20)]
        alarm = feed_series(detector, counts)
        assert alarm is not None
        assert alarm.growth_rate > 0.05

    def test_flat_series_never_alarms(self):
        detector = ExponentialTrendDetector()
        feed_series(detector, [50] * 40)
        assert not detector.alarmed

    def test_noise_without_trend_never_alarms(self):
        detector = ExponentialTrendDetector(min_rising_intervals=4)
        rng = np.random.default_rng(0)
        feed_series(detector, rng.poisson(30, size=100).tolist())
        assert not detector.alarmed

    def test_empty_series_never_alarms(self):
        # The hotspot failure mode: a monitor outside the hotspot
        # sees nothing, so the detector has nothing to trend on.
        detector = ExponentialTrendDetector()
        feed_series(detector, [0] * 50)
        assert not detector.alarmed

    def test_min_count_noise_guard(self):
        # Perfect exponential growth at tiny absolute counts stays
        # below the noise floor.
        detector = ExponentialTrendDetector(window=5, min_count=1_000)
        feed_series(detector, [1, 2, 4, 8, 16, 32])
        assert not detector.alarmed

    def test_alarm_latches(self):
        detector = ExponentialTrendDetector(window=5, min_count=5)
        counts = [int(2 * 1.5**i) for i in range(15)] + [0] * 10
        feed_series(detector, counts)
        first = detector.alarm
        detector.observe_interval(99.0, 0)
        assert detector.alarm is first

    def test_alarm_time_is_interval_time(self):
        detector = ExponentialTrendDetector(window=5, min_count=5)
        counts = [int(2 * 1.5**i) for i in range(15)]
        alarm = feed_series(detector, counts, start=100.0)
        assert alarm.time >= 100.0

    def test_reset(self):
        detector = ExponentialTrendDetector(window=5, min_count=5)
        feed_series(detector, [int(2 * 1.5**i) for i in range(15)])
        assert detector.alarmed
        detector.reset()
        assert not detector.alarmed
        feed_series(detector, [10] * 20)
        assert not detector.alarmed


class TestHotspotBlindness:
    def test_outbreak_visible_only_inside_hotspot(self):
        # Simulate two monitors during a hit-list outbreak: inside the
        # hit-list the series grows exponentially; outside it is all
        # zeros.  Same worm, same growth — only one monitor warns.
        growth = [int(2 * 1.35**i) for i in range(25)]
        inside = ExponentialTrendDetector(window=8, min_count=10)
        outside = ExponentialTrendDetector(window=8, min_count=10)
        feed_series(inside, growth)
        feed_series(outside, [0] * len(growth))
        assert inside.alarmed
        assert not outside.alarmed
