"""Tests for repro.sensors.identification."""

import numpy as np
import pytest

from repro.sensors.identification import (
    KNOWN_SIGNATURES,
    IdentificationOutcome,
    PayloadIdentifier,
    Transport,
    WormSignature,
)


class TestSignatures:
    def test_paper_threats_registered(self):
        assert set(KNOWN_SIGNATURES) == {"codered2", "slammer", "blaster"}

    def test_transports_match_reality(self):
        assert KNOWN_SIGNATURES["slammer"].transport is Transport.UDP
        assert KNOWN_SIGNATURES["codered2"].transport is Transport.TCP
        assert KNOWN_SIGNATURES["blaster"].transport is Transport.TCP

    def test_ports(self):
        assert KNOWN_SIGNATURES["slammer"].port == 1434
        assert KNOWN_SIGNATURES["codered2"].port == 80
        assert KNOWN_SIGNATURES["blaster"].port == 135


class TestActiveResponder:
    def test_identifies_all_known_threats(self):
        identifier = PayloadIdentifier(active_responder=True)
        for name in KNOWN_SIGNATURES:
            assert identifier.identify(name) is IdentificationOutcome.IDENTIFIED

    def test_unknown_threat(self):
        identifier = PayloadIdentifier()
        assert (
            identifier.identify("nimda")
            is IdentificationOutcome.UNKNOWN_PAYLOAD
        )


class TestPassiveSensor:
    def test_udp_worm_still_identified(self):
        # Slammer's payload is in the first packet; passive works.
        identifier = PayloadIdentifier(active_responder=False)
        assert identifier.identify("slammer") is IdentificationOutcome.IDENTIFIED

    def test_tcp_worms_are_anonymous_syns(self):
        # "actively responded to TCP SYN packets ... to elicit the
        # first data payload" — without that, TCP worms stay unknown.
        identifier = PayloadIdentifier(active_responder=False)
        assert (
            identifier.identify("codered2")
            is IdentificationOutcome.UNIDENTIFIED_SYN
        )
        assert (
            identifier.identify("blaster")
            is IdentificationOutcome.UNIDENTIFIED_SYN
        )


class TestBatchIdentification:
    def test_mask_matches_scalar(self):
        identifier = PayloadIdentifier(active_responder=False)
        names = np.array(["slammer", "codered2", "slammer", "other"])
        mask = identifier.identify_batch(names)
        assert list(mask) == [True, False, True, False]

    def test_identification_rate(self):
        active = PayloadIdentifier(active_responder=True)
        passive = PayloadIdentifier(active_responder=False)
        assert active.identification_rate("codered2", 100) == 100
        assert passive.identification_rate("codered2", 100) == 0
        with pytest.raises(ValueError):
            active.identification_rate("codered2", -1)

    def test_custom_signatures(self):
        custom = {
            "mytcp": WormSignature("mytcp", Transport.TCP, 445, "x"),
        }
        identifier = PayloadIdentifier(active_responder=False, signatures=custom)
        assert (
            identifier.identify("mytcp")
            is IdentificationOutcome.UNIDENTIFIED_SYN
        )
        assert (
            identifier.identify("slammer")
            is IdentificationOutcome.UNKNOWN_PAYLOAD
        )
