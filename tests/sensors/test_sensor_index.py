"""SensorIndex dispatch vs the per-sensor observe loop."""

import numpy as np
import pytest

from repro.net.cidr import CIDRBlock
from repro.sensors.darknet import DarknetSensor, ims_standard_deployment
from repro.sensors.deployment import SensorGrid
from repro.sensors.index import SensorIndex


def random_fixture(rng, overlap=False):
    sensors = []
    for _ in range(int(rng.integers(1, 8))):
        prefix_len = int(rng.integers(8, 25))
        block = CIDRBlock.containing(int(rng.integers(0, 1 << 32)), prefix_len)
        sensors.append(DarknetSensor(f"dn-{len(sensors)}", block))
    if overlap and sensors:
        # A sensor nested inside another forces a second layer.
        outer = sensors[0].block
        inner_len = min(outer.prefix_len + 4, 28)
        sensors.append(
            DarknetSensor(
                "dn-nested", CIDRBlock.containing(outer.first, inner_len)
            )
        )
    grids = []
    for _ in range(int(rng.integers(0, 3))):
        prefixes = np.unique(
            rng.integers(0, 1 << 24, size=int(rng.integers(1, 400)),
                         dtype=np.uint64).astype(np.uint32)
        )
        grids.append(SensorGrid(prefixes, alert_threshold=3))
    return sensors, grids


def run_reference(sensors, grids, batches):
    for tick, (sources, targets) in enumerate(batches):
        for sensor in sensors:
            sensor.observe(sources, targets)
        for grid in grids:
            grid.observe(targets, float(tick))


def run_indexed(sensors, grids, batches):
    index = SensorIndex(sensors, grids)
    for tick, (sources, targets) in enumerate(batches):
        index.dispatch(sources, targets, float(tick))
    return index


def assert_same_state(ref_sensors, ref_grids, idx_sensors, idx_grids):
    for ref, idx in zip(ref_sensors, idx_sensors):
        assert np.array_equal(
            ref.probes_by_slash24(), idx.probes_by_slash24()
        )
        assert np.array_equal(
            ref.unique_sources_by_slash24(), idx.unique_sources_by_slash24()
        )
    for ref, idx in zip(ref_grids, idx_grids):
        assert np.array_equal(ref.payload_counts(), idx.payload_counts())
        assert np.array_equal(
            ref.alert_times(), idx.alert_times(), equal_nan=True
        )


@pytest.mark.parametrize("overlap", [False, True])
def test_dispatch_matches_observe_loop(overlap):
    rng = np.random.default_rng(42 + overlap)
    for _ in range(12):
        ref_sensors, ref_grids = random_fixture(rng, overlap)
        idx_sensors = [
            DarknetSensor(sensor.name, sensor.block)
            for sensor in ref_sensors
        ]
        idx_grids = [
            SensorGrid(grid.prefixes, alert_threshold=grid.alert_threshold)
            for grid in ref_grids
        ]
        batches = [
            (
                rng.integers(0, 1 << 32, size=3000, dtype=np.uint64).astype(
                    np.uint32
                ),
                rng.integers(0, 1 << 32, size=3000, dtype=np.uint64).astype(
                    np.uint32
                ),
            )
            for _ in range(3)
        ]
        # Aim a slice of traffic at the monitored space so hits exist.
        for sensor in ref_sensors:
            block = sensor.block
            aimed = block.first + rng.integers(
                0, block.last - block.first + 1, size=50, dtype=np.uint64
            )
            batches[0][1][:50] = aimed.astype(np.uint32)
        run_reference(ref_sensors, ref_grids, batches)
        index = run_indexed(idx_sensors, idx_grids, batches)
        assert_same_state(ref_sensors, ref_grids, idx_sensors, idx_grids)
        if overlap:
            assert index.num_layers >= 2


def test_ims_deployment_single_layer():
    index = SensorIndex(ims_standard_deployment(), [])
    assert index.num_layers == 1
    assert index.num_owners == len(ims_standard_deployment())


def test_dispatch_counts_observations():
    sensor = DarknetSensor("dn", CIDRBlock.parse("10.0.0.0/8"))
    index = SensorIndex([sensor], [])
    sources = np.array([1, 2, 3], dtype=np.uint32)
    targets = np.array([0x0A000001, 0x0B000001, 0x0A000002], dtype=np.uint32)
    assert index.dispatch(sources, targets, 0.0) == 2


def test_empty_batch_and_empty_index():
    sensor = DarknetSensor("dn", CIDRBlock.parse("10.0.0.0/8"))
    index = SensorIndex([sensor], [])
    empty = np.empty(0, dtype=np.uint32)
    assert index.dispatch(empty, empty, 0.0) == 0
    assert SensorIndex([], []).dispatch(empty, empty, 0.0) == 0
