"""Tests for repro.sensors.darknet."""

import numpy as np
import pytest

from repro.net.address import parse_addr, parse_addrs
from repro.net.cidr import CIDRBlock
from repro.sensors.darknet import (
    IMS_BLOCK_SPECS,
    DarknetSensor,
    ims_standard_deployment,
)


@pytest.fixture()
def sensor():
    return DarknetSensor("D", CIDRBlock.parse("133.101.0.0/20"))


class TestObservation:
    def test_counts_probes_inside_block(self, sensor):
        sources = parse_addrs(["1.1.1.1", "2.2.2.2", "3.3.3.3"])
        targets = parse_addrs(["133.101.0.5", "133.101.15.255", "8.8.8.8"])
        seen = sensor.observe(sources, targets)
        assert seen == 2
        assert sensor.total_probes == 2

    def test_ignores_outside_probes(self, sensor):
        seen = sensor.observe(parse_addrs(["1.1.1.1"]), parse_addrs(["8.8.8.8"]))
        assert seen == 0
        assert sensor.total_probes == 0

    def test_slash24_binning(self, sensor):
        assert sensor.num_slash24 == 16  # /20 has 16 /24s
        sources = parse_addrs(["1.1.1.1", "1.1.1.1", "2.2.2.2"])
        targets = parse_addrs(["133.101.0.1", "133.101.0.200", "133.101.3.7"])
        sensor.observe(sources, targets)
        counts = sensor.probes_by_slash24()
        assert counts[0] == 2
        assert counts[3] == 1
        assert counts.sum() == 3

    def test_unique_sources_by_slash24(self, sensor):
        # Same source probing bin 0 twice counts once; two sources in
        # bin 3 count twice.
        sources = parse_addrs(["1.1.1.1", "1.1.1.1", "2.2.2.2", "3.3.3.3"])
        targets = parse_addrs(
            ["133.101.0.1", "133.101.0.2", "133.101.3.1", "133.101.3.2"]
        )
        sensor.observe(sources, targets)
        unique = sensor.unique_sources_by_slash24()
        assert unique[0] == 1
        assert unique[3] == 2

    def test_unique_sources_deduplicate_across_batches(self, sensor):
        for _ in range(3):
            sensor.observe(parse_addrs(["1.1.1.1"]), parse_addrs(["133.101.0.1"]))
        assert sensor.unique_sources_by_slash24()[0] == 1
        assert sensor.unique_sources_total() == 1

    def test_same_source_different_bins_counted_per_bin(self, sensor):
        sensor.observe(
            parse_addrs(["1.1.1.1", "1.1.1.1"]),
            parse_addrs(["133.101.0.1", "133.101.5.1"]),
        )
        unique = sensor.unique_sources_by_slash24()
        assert unique[0] == 1 and unique[5] == 1
        assert sensor.unique_sources_total() == 1

    def test_2d_batches(self, sensor):
        sources = np.full((2, 3), parse_addr("1.1.1.1"), dtype=np.uint32)
        targets = np.full((2, 3), parse_addr("133.101.0.1"), dtype=np.uint32)
        assert sensor.observe(sources, targets) == 6

    def test_reset(self, sensor):
        sensor.observe(parse_addrs(["1.1.1.1"]), parse_addrs(["133.101.0.1"]))
        sensor.reset()
        assert sensor.total_probes == 0
        assert sensor.unique_sources_total() == 0

    def test_sub_slash24_block_has_one_bin(self):
        small = DarknetSensor("G", CIDRBlock.parse("176.99.2.0/25"))
        assert small.num_slash24 == 1
        small.observe(parse_addrs(["1.1.1.1"]), parse_addrs(["176.99.2.5"]))
        assert small.probes_by_slash24()[0] == 1


class TestIMSDeployment:
    def test_eleven_blocks(self):
        sensors = ims_standard_deployment()
        assert len(sensors) == 11
        assert {sensor.name for sensor in sensors} == set(IMS_BLOCK_SPECS)

    def test_block_sizes_match_paper_labels(self):
        # Label suffix encodes the prefix length: D/20, H/18, I/17, Z/8...
        expected = {
            "A": 23, "B": 24, "C": 24, "D": 20, "E": 21, "F": 22,
            "G": 25, "H": 18, "I": 17, "M": 22, "Z": 8,
        }
        for sensor in ims_standard_deployment():
            assert sensor.block.prefix_len == expected[sensor.name]

    def test_m_block_inside_192_8(self):
        sensors = {s.name: s for s in ims_standard_deployment()}
        assert sensors["M"].block.first >> 24 == 192

    def test_blocks_disjoint(self):
        sensors = ims_standard_deployment()
        for i, a in enumerate(sensors):
            for b in sensors[i + 1 :]:
                assert not a.block.overlaps(b.block), (a.name, b.name)

    def test_overrides(self):
        sensors = ims_standard_deployment(overrides={"D": "10.0.0.0/20"})
        block_d = next(s for s in sensors if s.name == "D")
        assert block_d.block == CIDRBlock.parse("10.0.0.0/20")
