"""Tests for repro.sensors.detection."""

import numpy as np
import pytest

from repro.sensors.detection import (
    AlertTimeline,
    detection_lag,
    quorum_detection_time,
)


class TestAlertTimeline:
    def test_cumulative_curve(self):
        alert_times = np.array([1.0, 3.0, np.nan, 5.0])
        timeline = AlertTimeline.from_alert_times(alert_times, horizon=6.0)
        assert timeline.fraction_at(0.0) == 0.0  # bitwise
        assert timeline.fraction_at(1.0) == 0.25  # bitwise
        assert timeline.fraction_at(4.0) == 0.5  # bitwise
        assert timeline.final_fraction() == 0.75  # bitwise

    def test_never_alerting_sensors(self):
        alert_times = np.full(10, np.nan)
        timeline = AlertTimeline.from_alert_times(alert_times, horizon=10.0)
        assert timeline.final_fraction() == 0.0  # bitwise

    def test_fraction_before_start(self):
        timeline = AlertTimeline.from_alert_times(np.array([5.0]), horizon=10.0)
        assert timeline.fraction_at(-1.0) == 0.0  # bitwise


class TestQuorum:
    def test_reaches_quorum(self):
        alert_times = np.array([1.0, 2.0, 3.0, 4.0])
        assert quorum_detection_time(alert_times, 0.5) == 2.0  # bitwise
        assert quorum_detection_time(alert_times, 1.0) == 4.0  # bitwise

    def test_quorum_never_reached(self):
        alert_times = np.array([1.0, np.nan, np.nan, np.nan])
        assert quorum_detection_time(alert_times, 0.5) is None

    def test_hotspot_starved_quorum(self):
        # The paper's scenario: 20% of sensors alert, so any quorum
        # above 20% never fires regardless of the threshold's quality.
        alert_times = np.concatenate([np.arange(20.0), np.full(80, np.nan)])
        assert quorum_detection_time(alert_times, 0.2) is not None
        assert quorum_detection_time(alert_times, 0.25) is None

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            quorum_detection_time(np.array([1.0]), 0.0)
        with pytest.raises(ValueError):
            quorum_detection_time(np.array([1.0]), 1.5)


class TestDetectionLag:
    def test_lag_after_milestone(self):
        alert_times = np.array([10.0, 12.0])
        infection_times = [1.0, 2.0, 3.0, 4.0]
        # Quorum 1.0 fires at 12.0; 50% infected at t=2.0.
        assert detection_lag(alert_times, infection_times, 0.5, 1.0) == 10.0  # bitwise

    def test_negative_lag_means_early_detection(self):
        alert_times = np.array([1.0])
        infection_times = [5.0, 6.0]
        lag = detection_lag(alert_times, infection_times, 1.0, 1.0)
        assert lag == 1.0 - 6.0

    def test_none_when_no_quorum(self):
        alert_times = np.array([np.nan, np.nan])
        assert detection_lag(alert_times, [1.0], 0.5, 0.5) is None
