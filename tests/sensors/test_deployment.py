"""Tests for repro.sensors.deployment."""

import numpy as np
import pytest

from repro.net.address import parse_addr
from repro.net.cidr import BlockSet, CIDRBlock
from repro.sensors.deployment import (
    SensorGrid,
    place_one_per_block,
    place_random,
    place_within_blocks,
)


def prefixes_of(*texts):
    return np.array([parse_addr(t) >> 8 for t in texts], dtype=np.uint32)


class TestSensorGrid:
    def test_requires_sensors(self):
        with pytest.raises(ValueError):
            SensorGrid(np.empty(0, dtype=np.uint32))

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            SensorGrid(prefixes_of("10.0.0.0"), alert_threshold=0)

    def test_rejects_full_addresses(self):
        with pytest.raises(ValueError):
            SensorGrid(np.array([parse_addr("10.0.0.0")], dtype=np.uint32))

    def test_deduplicates_sensors(self):
        grid = SensorGrid(prefixes_of("10.0.0.0", "10.0.0.0", "10.0.1.0"))
        assert grid.num_sensors == 2
        assert grid.monitored_addresses() == 512

    def test_observe_counts_hits(self):
        grid = SensorGrid(prefixes_of("10.0.0.0"), alert_threshold=5)
        targets = np.array(
            [parse_addr("10.0.0.7"), parse_addr("10.0.1.7")], dtype=np.uint32
        )
        assert grid.observe(targets, time=1.0) == 1
        assert grid.payload_counts()[0] == 1

    def test_alert_at_threshold(self):
        grid = SensorGrid(prefixes_of("10.0.0.0"), alert_threshold=3)
        target = np.array([parse_addr("10.0.0.7")], dtype=np.uint32)
        grid.observe(target, time=1.0)
        grid.observe(target, time=2.0)
        assert np.isnan(grid.alert_times()[0])
        grid.observe(target, time=3.0)
        assert grid.alert_times()[0] == 3.0  # bitwise
        assert grid.fraction_alerted() == 1.0  # bitwise

    def test_alert_time_not_overwritten(self):
        grid = SensorGrid(prefixes_of("10.0.0.0"), alert_threshold=1)
        target = np.array([parse_addr("10.0.0.7")], dtype=np.uint32)
        grid.observe(target, time=1.0)
        grid.observe(target, time=9.0)
        assert grid.alert_times()[0] == 1.0  # bitwise

    def test_batch_crossing_threshold_in_one_call(self):
        grid = SensorGrid(prefixes_of("10.0.0.0"), alert_threshold=5)
        targets = np.full(10, parse_addr("10.0.0.7"), dtype=np.uint32)
        grid.observe(targets, time=4.0)
        assert grid.alert_times()[0] == 4.0  # bitwise

    def test_fraction_alerted_at_time(self):
        grid = SensorGrid(prefixes_of("10.0.0.0", "10.0.1.0"), alert_threshold=1)
        grid.observe(np.array([parse_addr("10.0.0.7")], dtype=np.uint32), time=1.0)
        grid.observe(np.array([parse_addr("10.0.1.7")], dtype=np.uint32), time=5.0)
        assert grid.fraction_alerted(at_time=2.0) == 0.5  # bitwise
        assert grid.fraction_alerted() == 1.0  # bitwise

    def test_empty_batch(self):
        grid = SensorGrid(prefixes_of("10.0.0.0"))
        assert grid.observe(np.empty(0, dtype=np.uint32), time=0.0) == 0

    def test_reset(self):
        grid = SensorGrid(prefixes_of("10.0.0.0"), alert_threshold=1)
        grid.observe(np.array([parse_addr("10.0.0.7")], dtype=np.uint32), time=1.0)
        grid.reset()
        assert grid.fraction_alerted() == 0.0  # bitwise
        assert grid.payload_counts()[0] == 0


class TestPlacements:
    def test_one_per_block(self):
        blocks = [CIDRBlock.parse("10.0.0.0/16"), CIDRBlock.parse("20.0.0.0/16")]
        prefixes = place_one_per_block(blocks, np.random.default_rng(0))
        assert len(prefixes) == 2
        assert prefixes[0] >> 8 == 10 << 8 or prefixes[0] >> 16 == 10
        # Each sensor lies inside its block.
        for block, prefix in zip(blocks, prefixes):
            assert int(prefix) << 8 in block

    def test_one_per_block_rejects_small_blocks(self):
        with pytest.raises(ValueError):
            place_one_per_block(
                [CIDRBlock.parse("10.0.0.0/25")], np.random.default_rng(0)
            )

    def test_one_per_block_rejects_empty(self):
        with pytest.raises(ValueError):
            place_one_per_block([], np.random.default_rng(0))

    def test_place_random_anywhere(self):
        prefixes = place_random(1_000, np.random.default_rng(1))
        assert len(prefixes) == 1_000
        assert (prefixes < (1 << 24)).all()

    def test_place_random_within_region(self):
        region = BlockSet.parse(["10.0.0.0/8"])
        prefixes = place_random(500, np.random.default_rng(2), within=region)
        assert ((prefixes >> 16) == 10).all()

    def test_place_random_rejects_zero(self):
        with pytest.raises(ValueError):
            place_random(0, np.random.default_rng(0))

    def test_place_within_blocks_excludes(self):
        blocks = list(CIDRBlock.parse("192.0.0.0/8").subblocks(16))
        exclude = BlockSet.parse(["192.168.0.0/16"])
        prefixes = place_within_blocks(blocks, np.random.default_rng(3), exclude)
        assert len(prefixes) == 255  # 256 /16s minus 192.168/16
        assert not ((prefixes >> 8) == ((192 << 8) | 168)).any()

    def test_place_within_blocks_all_excluded(self):
        blocks = [CIDRBlock.parse("192.168.0.0/16")]
        exclude = BlockSet.parse(["192.168.0.0/16"])
        with pytest.raises(ValueError):
            place_within_blocks(blocks, np.random.default_rng(0), exclude)
