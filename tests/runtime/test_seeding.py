"""Tests for the seed-spawning discipline."""

import numpy as np
import pytest

from repro.runtime.seeding import (
    as_seed_sequence,
    seed_fingerprint,
    spawn_trial_sequences,
)


class TestSpawn:
    def test_same_base_same_children(self):
        first = spawn_trial_sequences(42, 5)
        second = spawn_trial_sequences(42, 5)
        assert [seed_fingerprint(s) for s in first] == [
            seed_fingerprint(s) for s in second
        ]

    def test_children_yield_identical_generators(self):
        first = spawn_trial_sequences(42, 3)
        second = spawn_trial_sequences(42, 3)
        for a, b in zip(first, second):
            assert np.array_equal(
                np.random.default_rng(a).random(100),
                np.random.default_rng(b).random(100),
            )

    def test_children_are_distinct_streams(self):
        children = spawn_trial_sequences(42, 3)
        draws = [np.random.default_rng(c).random(50) for c in children]
        assert not np.array_equal(draws[0], draws[1])
        assert not np.array_equal(draws[1], draws[2])

    def test_different_base_different_children(self):
        assert seed_fingerprint(
            spawn_trial_sequences(1, 1)[0]
        ) != seed_fingerprint(spawn_trial_sequences(2, 1)[0])

    def test_rejects_zero_trials(self):
        with pytest.raises(ValueError):
            spawn_trial_sequences(42, 0)


class TestAsSeedSequence:
    def test_wraps_int(self):
        sequence = as_seed_sequence(7)
        assert isinstance(sequence, np.random.SeedSequence)
        assert sequence.entropy == 7

    def test_idempotent(self):
        sequence = np.random.SeedSequence(7)
        assert as_seed_sequence(sequence) is sequence


class TestFingerprint:
    def test_int_passthrough(self):
        assert seed_fingerprint(5) == 5
        assert seed_fingerprint(np.int64(5)) == 5

    def test_none_passthrough(self):
        assert seed_fingerprint(None) is None

    def test_sequence_captures_spawn_key(self):
        parent = np.random.SeedSequence(9)
        child_a, child_b = parent.spawn(2)
        assert seed_fingerprint(child_a) != seed_fingerprint(child_b)
        assert seed_fingerprint(child_a)["entropy"] == 9

    def test_rejects_unknown_types(self):
        with pytest.raises(TypeError):
            seed_fingerprint("not-a-seed")
