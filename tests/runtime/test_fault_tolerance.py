"""Every recovery path yields results bitwise-identical to a clean run.

The fault-injection harness (:mod:`repro.runtime.faults`) makes
trials raise, hang, kill their worker, or return corrupt payloads on
designated attempts; these tests assert the runner isolates the
blast radius (siblings keep their results), recovers per policy
(retry, timeout, pool replacement, resume), and — the load-bearing
property — that the recovered campaign equals a clean serial one
bit for bit.
"""

import numpy as np
import pytest

from repro.runtime import (
    FaultPlan,
    ResultCache,
    RetryPolicy,
    RunReport,
    Trial,
    TrialJournal,
    TrialOutcome,
    TrialRunner,
    results_equal,
)
from repro.runtime.faults import FaultSpec, InjectedFault, plan_from_env
from repro.runtime.runner import TrialTimeoutError


def seeded_trial(seed=None):
    """Deterministic array from the seed; module-level for pickling."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, 2**32, size=8, dtype=np.uint64)


def run_campaign(runner, trials=4, base_seed=7, **kwargs):
    return runner.run_repeated(
        seeded_trial, trials=trials, base_seed=base_seed, report=True, **kwargs
    )


@pytest.fixture(scope="module")
def clean_serial():
    """Ground truth: the undisturbed serial campaign."""
    report = run_campaign(TrialRunner(workers=1))
    assert report.ok and report.uneventful
    return report.results


class TestRaiseIsolation:
    def test_failing_trial_keeps_siblings(self, clean_serial):
        plan = FaultPlan.from_mapping({1: ["raise", "raise", "raise"]})
        runner = TrialRunner(workers=2, retry=1, fault_plan=plan)
        report = run_campaign(runner)
        assert not report.ok
        assert report.results[1] is None
        assert isinstance(report.outcomes[1].error, InjectedFault)
        assert report.outcomes[1].attempts == 2
        for index in (0, 2, 3):
            assert results_equal(report.results[index], clean_serial[index])

    def test_retry_recovers_bitwise(self, clean_serial):
        plan = FaultPlan.from_mapping({1: ["raise"], 3: ["raise", "raise"]})
        runner = TrialRunner(workers=2, retry=2, fault_plan=plan)
        report = run_campaign(runner)
        assert report.ok
        assert results_equal(list(report.results), list(clean_serial))
        assert report.outcomes[1].status == "retried"
        assert report.outcomes[3].attempts == 3

    def test_serial_path_recovers_identically(self, clean_serial):
        plan = FaultPlan.from_mapping({2: ["raise"]})
        runner = TrialRunner(workers=1, retry=1, fault_plan=plan)
        report = run_campaign(runner)
        assert report.ok
        assert results_equal(list(report.results), list(clean_serial))

    def test_run_raises_original_error_when_exhausted(self):
        plan = FaultPlan.from_mapping({0: ["raise"]})
        runner = TrialRunner(workers=1, fault_plan=plan)
        with pytest.raises(InjectedFault, match="injected failure"):
            runner.run([Trial(func=seeded_trial, seed=1)])


class TestTimeouts:
    def test_hung_trial_is_timed_out_and_retried(self, clean_serial):
        plan = FaultPlan.from_mapping({1: ["hang:30"]})
        runner = TrialRunner(
            workers=2, retry=1, timeout=0.75, fault_plan=plan
        )
        report = run_campaign(runner)
        assert report.ok
        assert results_equal(list(report.results), list(clean_serial))
        assert report.outcomes[1].status == "retried"
        assert report.outcomes[1].timed_out_attempts == 1
        assert any("timeout" in event for event in report.fallback_events)

    def test_timeout_exhaustion_is_final(self):
        plan = FaultPlan.from_mapping({0: ["hang:30", "hang:30"]})
        runner = TrialRunner(
            workers=2, retry=1, timeout=0.5, fault_plan=plan
        )
        report = run_campaign(runner, trials=2)
        assert not report.ok
        outcome = report.outcomes[0]
        assert outcome.status == "timed-out"
        assert outcome.timed_out_attempts == 2
        assert isinstance(outcome.error, TrialTimeoutError)

    def test_retry_timeouts_false_makes_first_timeout_final(self):
        plan = FaultPlan.from_mapping({0: ["hang:30"]})
        runner = TrialRunner(
            workers=2,
            retry=RetryPolicy(max_attempts=3, retry_timeouts=False),
            timeout=0.5,
            fault_plan=plan,
        )
        report = run_campaign(runner, trials=2)
        assert report.outcomes[0].status == "timed-out"
        assert report.outcomes[0].attempts == 1

    def test_serial_execution_records_unenforceable_timeout(self):
        runner = TrialRunner(workers=1, timeout=5.0)
        report = run_campaign(runner, trials=2)
        assert report.ok
        assert any(
            "not enforced under serial" in event
            for event in report.fallback_events
        )


class TestWorkerDeath:
    def test_killed_worker_keeps_completed_trials(self, clean_serial):
        plan = FaultPlan.from_mapping({0: ["kill"]})
        runner = TrialRunner(workers=2, retry=1, fault_plan=plan)
        report = run_campaign(runner)
        assert report.ok
        assert results_equal(list(report.results), list(clean_serial))
        assert any("pool broke" in event for event in report.fallback_events)

    def test_corrupt_result_payload_recovers(self, clean_serial):
        plan = FaultPlan.from_mapping({1: ["corrupt"]})
        runner = TrialRunner(workers=2, retry=2, fault_plan=plan)
        report = run_campaign(runner)
        assert report.ok
        assert results_equal(list(report.results), list(clean_serial))

    def test_kill_without_retry_fails_only_in_flight_trials(self):
        plan = FaultPlan.from_mapping({0: ["kill"]})
        runner = TrialRunner(workers=2, fault_plan=plan)
        report = run_campaign(runner)
        assert not report.ok
        # Trials in flight when the pool broke (the killer and its
        # co-flight neighbour) are charged; trials still queued in the
        # runner finish on the replacement pool free of charge.
        assert report.outcomes[0].status == "failed"
        assert sum(1 for o in report.outcomes if o.succeeded) >= 1


class TestCheckpointResume:
    def test_resume_runs_only_unfinished_trials(self, tmp_path, clean_serial):
        cache = ResultCache(tmp_path / "cache")
        journal_path = tmp_path / "campaign.jsonl"

        # First run: trial 2 exhausts its attempts and fails; the
        # journal checkpoints the three successes.
        crash_plan = FaultPlan.from_mapping({2: ["raise", "raise"]})
        first = run_campaign(
            TrialRunner(
                workers=2,
                cache=cache,
                retry=1,
                journal=TrialJournal(journal_path),
                fault_plan=crash_plan,
            ),
            cache_namespace="resume-demo",
        )
        assert not first.ok
        assert first.counts().get("failed") == 1

        # Resume: same campaign, fault gone (the "crash" was fixed).
        second = run_campaign(
            TrialRunner(
                workers=2,
                cache=cache,
                journal=TrialJournal(journal_path, resume=True),
            ),
            cache_namespace="resume-demo",
        )
        assert second.ok
        counts = second.counts()
        assert counts.get("resumed") == 3  # skipped, served from cache
        assert counts.get("ok") == 1  # only the failed trial re-ran
        assert results_equal(list(second.results), list(clean_serial))

    def test_journal_without_cache_entry_reruns(self, tmp_path, clean_serial):
        cache = ResultCache(tmp_path / "cache")
        journal_path = tmp_path / "campaign.jsonl"
        first = run_campaign(
            TrialRunner(
                workers=1, cache=cache, journal=TrialJournal(journal_path)
            ),
            cache_namespace="evicted",
        )
        assert first.ok
        cache.clear()  # journal says done, but the results are gone
        second = run_campaign(
            TrialRunner(
                workers=1,
                cache=cache,
                journal=TrialJournal(journal_path, resume=True),
            ),
            cache_namespace="evicted",
        )
        assert second.ok
        assert any("re-running" in event for event in second.fallback_events)
        assert results_equal(list(second.results), list(clean_serial))


class TestFaultPlanSemantics:
    def test_plan_round_trips_through_json(self):
        plan = FaultPlan.from_json('{"1": ["kill"], "3": ["raise", "hang:5"]}')
        assert plan.spec_for(1, 1) == FaultSpec(kind="kill")
        assert plan.spec_for(3, 2) == FaultSpec(kind="hang", seconds=5.0)
        assert plan.spec_for(3, 3) is None  # past the end: clean
        assert plan.spec_for(0, 1) is None

    def test_seeded_plans_replay(self):
        first = FaultPlan.seeded(11, trials=20, rate=0.4, kinds=("raise", "kill"))
        second = FaultPlan.seeded(11, trials=20, rate=0.4, kinds=("raise", "kill"))
        assert first == second and bool(first)

    def test_env_plan_reaches_the_runner(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PLAN", '{"0": ["raise"]}')
        assert plan_from_env() == FaultPlan.from_mapping({0: ["raise"]})
        runner = TrialRunner(workers=1, retry=1)
        report = run_campaign(runner, trials=2)
        assert report.ok
        assert report.outcomes[0].status == "retried"

    def test_env_plan_survives_a_campaign(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PLAN", '{"0": ["raise"]}')
        report = run_campaign(TrialRunner(workers=1, retry=1), trials=2)
        assert report.ok
        # The runner scrubs the plan only while a trial body runs;
        # the variable must be intact afterwards.
        assert plan_from_env() == FaultPlan.from_mapping({0: ["raise"]})


def nested_campaign_trial(seed=None):
    """A trial that itself runs a nested campaign (module-level)."""
    report = TrialRunner(workers=1).run_repeated(
        seeded_trial, trials=2, base_seed=123, report=True
    )
    if not report.ok:
        raise AssertionError("nested campaign was faulted")
    return report.results


class TestNestedRunners:
    def test_env_plan_applies_only_to_outermost_trials(self, monkeypatch):
        clean = TrialRunner(workers=1).run(
            [Trial(func=nested_campaign_trial, seed=5)]
        )
        monkeypatch.setenv("REPRO_FAULT_PLAN", '{"0": ["raise"]}')
        runner = TrialRunner(workers=1, retry=1)
        report = runner.run_report([Trial(func=nested_campaign_trial, seed=5)])
        assert report.ok
        assert report.outcomes[0].status == "retried"
        assert results_equal(list(report.results), list(clean))


def ok_report(**overrides):
    """A one-trial all-ok RunReport to hang recovery events off."""
    kwargs = dict(
        outcomes=(
            TrialOutcome(index=0, label="t0", status="ok", attempts=1),
        ),
        results=(1,),
    )
    kwargs.update(overrides)
    return RunReport(**kwargs)


class TestRecoveryReporting:
    """RunReport surfaces checkpoint/supervision events to the CLI."""

    EVENTS = (
        {"kind": "checkpoint", "tick": 4},
        {"kind": "checkpoint", "tick": 9},
        {"kind": "worker-respawn", "shard": 2, "reason": "exit code 86"},
    )

    def test_checkpoints_are_not_recoveries(self):
        report = ok_report(recovery_events=self.EVENTS)
        assert len(report.recovery_events) == 3
        assert [e["kind"] for e in report.recoveries] == ["worker-respawn"]

    def test_uneventful_tolerates_routine_checkpoints(self):
        assert ok_report(recovery_events=self.EVENTS[:2]).uneventful
        assert not ok_report(recovery_events=self.EVENTS).uneventful

    def test_summary_counts_both_kinds(self):
        summary = ok_report(recovery_events=self.EVENTS).summary()
        assert "2 checkpoint(s)" in summary
        assert "1 recovery event(s)" in summary

    def test_describe_details_each_recovery(self):
        described = ok_report(recovery_events=self.EVENTS).describe()
        assert "recovery: worker-respawn" in described
        assert "shard=2" in described and "exit code 86" in described
        # Routine checkpoints stay out of the detail lines.
        assert "recovery: checkpoint" not in described
