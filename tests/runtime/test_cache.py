"""Tests for the on-disk result cache and its stable keying."""

import warnings

import numpy as np
import pytest

from repro.population.synthesis import PopulationSpec
from repro.runtime.cache import MISS, ResultCache, stable_key


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


class TestStableKey:
    def test_deterministic(self):
        assert stable_key("figure5b", {"max_time": 600}, 2005) == stable_key(
            "figure5b", {"max_time": 600}, 2005
        )

    def test_param_order_irrelevant(self):
        assert stable_key(
            "x", {"a": 1, "b": 2}, 0
        ) == stable_key("x", {"b": 2, "a": 1}, 0)

    def test_experiment_id_matters(self):
        assert stable_key("figure5a", {}, 0) != stable_key("figure5b", {}, 0)

    def test_params_matter(self):
        assert stable_key("x", {"max_time": 600}, 0) != stable_key(
            "x", {"max_time": 601}, 0
        )

    def test_seed_matters(self):
        assert stable_key("x", {}, 1) != stable_key("x", {}, 2)

    def test_numpy_scalars_normalize(self):
        assert stable_key("x", {"n": np.int64(5)}, 0) == stable_key(
            "x", {"n": 5}, 0
        )

    def test_spawned_children_get_distinct_keys(self):
        child_a, child_b = np.random.SeedSequence(3).spawn(2)
        assert stable_key("x", {}, child_a) != stable_key("x", {}, child_b)

    def test_respawned_children_get_equal_keys(self):
        first = np.random.SeedSequence(3).spawn(2)[1]
        second = np.random.SeedSequence(3).spawn(2)[1]
        assert stable_key("x", {}, first) == stable_key("x", {}, second)

    def test_dataclass_params_are_stable(self):
        spec = PopulationSpec(total_hosts=1000)
        assert stable_key("x", {"spec": spec}, 0) == stable_key(
            "x", {"spec": PopulationSpec(total_hosts=1000)}, 0
        )
        assert stable_key("x", {"spec": spec}, 0) != stable_key(
            "x", {"spec": PopulationSpec(total_hosts=2000)}, 0
        )

    def test_array_params_hash_contents(self):
        a = np.arange(10, dtype=np.uint32)
        assert stable_key("x", {"hosts": a}, 0) == stable_key(
            "x", {"hosts": a.copy()}, 0
        )
        assert stable_key("x", {"hosts": a}, 0) != stable_key(
            "x", {"hosts": a + 1}, 0
        )


class TestResultCache:
    def test_miss_on_empty(self, cache):
        assert cache.get("deadbeef") is MISS
        assert cache.misses == 1

    def test_roundtrip(self, cache):
        cache.put("k", {"value": np.arange(4)})
        hit = cache.get("k")
        assert hit is not MISS
        assert np.array_equal(hit["value"], np.arange(4))
        assert cache.hits == 1

    def test_cached_none_is_a_hit(self, cache):
        cache.put("k", None)
        assert cache.get("k") is None
        assert cache.hits == 1

    def test_corrupt_entry_is_a_miss_with_a_warning(self, cache):
        cache.put("k", 123)
        cache.path_for("k").write_bytes(b"not a pickle")
        with pytest.warns(RuntimeWarning, match="cannot be read"):
            assert cache.get("k") is MISS
        assert cache.corrupt == 1 and cache.misses == 1

    def test_corrupt_entry_warns_once_per_key(self, cache):
        cache.put("k", 123)
        cache.path_for("k").write_bytes(b"not a pickle")
        with pytest.warns(RuntimeWarning):
            cache.get("k")
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # a second warning would raise
            assert cache.get("k") is MISS
        assert cache.corrupt == 2

    def test_write_failure_raises_oserror(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("a regular file where the cache dir should be")
        cache = ResultCache(blocker)
        with pytest.raises(OSError):
            cache.put("k", 123)

    def test_contains_and_keys(self, cache):
        assert "k" not in cache
        cache.put("k", 1)
        assert "k" in cache
        assert list(cache.keys()) == ["k"]

    def test_clear(self, cache):
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.clear() == 2
        assert cache.get("a") is MISS

    def test_env_var_default_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
        cache = ResultCache()
        assert cache.directory == tmp_path / "envcache"
