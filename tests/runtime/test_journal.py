"""Tests for the append-only trial journal behind ``--resume``."""

import json

import pytest

from repro.runtime.journal import (
    DEFAULT_JOURNAL_DIR,
    TrialJournal,
    default_journal_dir,
)


@pytest.fixture
def journal_path(tmp_path):
    return tmp_path / "campaign.jsonl"


class TestRecordAndLoad:
    def test_roundtrip(self, journal_path):
        journal = TrialJournal(journal_path)
        journal.record("abc", status="ok", attempts=1)
        journal.record("def", status="failed", attempts=3)

        reloaded = TrialJournal(journal_path, resume=True)
        assert len(reloaded) == 2
        assert reloaded.entries["abc"] == {
            "key": "abc", "status": "ok", "attempts": 1
        }
        assert reloaded.entries["def"]["attempts"] == 3

    def test_only_ok_counts_as_completed(self, journal_path):
        journal = TrialJournal(journal_path)
        journal.record("good", status="ok", attempts=2)
        journal.record("bad", status="failed", attempts=3)
        journal.record("slow", status="timed-out", attempts=1)
        assert journal.completed("good")
        assert not journal.completed("bad")
        assert not journal.completed("slow")
        assert not journal.completed("never-recorded")

    def test_rerecording_a_key_keeps_the_latest(self, journal_path):
        journal = TrialJournal(journal_path)
        journal.record("k", status="failed", attempts=2)
        journal.record("k", status="ok", attempts=3)
        reloaded = TrialJournal(journal_path, resume=True)
        assert reloaded.completed("k")
        assert reloaded.entries["k"]["attempts"] == 3

    def test_records_are_durable_one_line_each(self, journal_path):
        journal = TrialJournal(journal_path)
        journal.record("a", status="ok", attempts=1)
        journal.record("b", status="ok", attempts=1)
        lines = journal_path.read_text().splitlines()
        assert len(lines) == 2
        assert all(json.loads(line)["status"] == "ok" for line in lines)


class TestCrashTolerance:
    def test_garbled_trailing_line_is_dropped(self, journal_path):
        journal = TrialJournal(journal_path)
        journal.record("a", status="ok", attempts=1)
        with open(journal_path, "a", encoding="utf-8") as handle:
            handle.write('{"key": "b", "status": "o')  # crash mid-append

        reloaded = TrialJournal(journal_path, resume=True)
        assert reloaded.completed("a")
        assert not reloaded.completed("b")
        assert reloaded.dropped_lines == 1

    def test_records_without_a_key_are_dropped(self, journal_path):
        journal_path.write_text('{"status": "ok"}\n[1, 2, 3]\n')
        reloaded = TrialJournal(journal_path, resume=True)
        assert len(reloaded) == 0
        assert reloaded.dropped_lines == 2

    def test_missing_file_resumes_empty(self, journal_path):
        journal = TrialJournal(journal_path, resume=True)
        assert len(journal) == 0 and journal.dropped_lines == 0

    def test_garbled_midfile_line_skips_but_keeps_the_rest(
        self, journal_path
    ):
        # A disk hiccup (not just a trailing torn append) garbles a
        # line *between* two good records; both good lines must load.
        journal = TrialJournal(journal_path)
        journal.record("a", status="ok", attempts=1)
        with open(journal_path, "a", encoding="utf-8") as handle:
            handle.write('{"key": "torn", "sta\x00\x7f garbage\n')
        journal.record("c", status="ok", attempts=2)

        reloaded = TrialJournal(journal_path, resume=True)
        assert reloaded.completed("a")
        assert reloaded.completed("c")
        assert not reloaded.completed("torn")
        assert len(reloaded) == 2
        assert reloaded.dropped_lines == 1

    def test_keyless_midfile_record_skips_but_keeps_the_rest(
        self, journal_path
    ):
        # Parsable JSON without a string "key" is equally garbage.
        journal = TrialJournal(journal_path)
        journal.record("a", status="ok", attempts=1)
        with open(journal_path, "a", encoding="utf-8") as handle:
            handle.write('{"status": "ok", "attempts": 1}\n')
            handle.write('{"key": 17, "status": "ok"}\n')
        journal.record("c", status="ok", attempts=1)

        reloaded = TrialJournal(journal_path, resume=True)
        assert reloaded.completed("a") and reloaded.completed("c")
        assert len(reloaded) == 2
        assert reloaded.dropped_lines == 2


class TestExtraFields:
    def test_extra_fields_round_trip(self, journal_path):
        # The checkpoint index rides tick/file/spec_hash through the
        # journal this way; they must survive a reload verbatim.
        journal = TrialJournal(journal_path)
        journal.record(
            "tick:7",
            status="ok",
            attempts=1,
            tick=7,
            file="tick-00000007.ckpt",
            spec_hash="abc123",
        )
        reloaded = TrialJournal(journal_path, resume=True)
        entry = reloaded.entries["tick:7"]
        assert entry["tick"] == 7
        assert entry["file"] == "tick-00000007.ckpt"
        assert entry["spec_hash"] == "abc123"


class TestFreshStart:
    def test_without_resume_a_stale_file_is_truncated(self, journal_path):
        TrialJournal(journal_path).record("stale", status="ok", attempts=1)
        fresh = TrialJournal(journal_path)  # resume defaults to False
        assert not journal_path.exists()
        assert not fresh.completed("stale")

    def test_entries_property_is_a_copy(self, journal_path):
        journal = TrialJournal(journal_path)
        journal.record("a", status="ok", attempts=1)
        snapshot = journal.entries
        journal.record("b", status="ok", attempts=1)
        assert "b" not in snapshot and len(journal) == 2


class TestCampaignNaming:
    def test_for_campaign_names_the_file_by_key(self, tmp_path):
        journal = TrialJournal.for_campaign("cafe01", tmp_path)
        assert journal.path == tmp_path / "cafe01.jsonl"

    def test_same_campaign_finds_its_checkpoint(self, tmp_path):
        TrialJournal.for_campaign("cafe01", tmp_path).record(
            "t0", status="ok", attempts=1
        )
        resumed = TrialJournal.for_campaign("cafe01", tmp_path, resume=True)
        assert resumed.completed("t0")

    def test_env_var_overrides_default_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_JOURNAL_DIR", str(tmp_path / "envdir"))
        assert default_journal_dir() == tmp_path / "envdir"
        journal = TrialJournal.for_campaign("cafe01")
        assert journal.path == tmp_path / "envdir" / "cafe01.jsonl"

    def test_default_dir_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOURNAL_DIR", raising=False)
        assert default_journal_dir() == DEFAULT_JOURNAL_DIR
