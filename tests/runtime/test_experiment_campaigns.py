"""End-to-end: registry campaigns through the trial runner.

Scaled-down version of the acceptance check for the parallel runner —
``figure5b`` under ``workers=N`` must reproduce the serial run
bitwise, and cached re-runs must return the same objects.
"""

import pytest

from repro.experiments import registry
from repro.population.synthesis import PopulationSpec
from repro.runtime import ResultCache, results_equal

SMALL_ANCHORS = ((0, 0.0), (10, 0.106), (100, 0.5049), (1000, 1.0))
TINY_SPEC = PopulationSpec(
    total_hosts=6_000,
    num_slash8=20,
    num_slash16=1_000,
    anchors=SMALL_ANCHORS,
    major_slash8s=10,
    major_share=0.94,
)
FIGURE5B_PARAMS = dict(
    population_spec=TINY_SPEC,
    hitlist_sizes=(10, 100),
    max_time=300.0,
    seed=2005,
)


@pytest.fixture(scope="module")
def serial_campaign():
    return registry.get("figure5b").run(
        trials=2, workers=1, **FIGURE5B_PARAMS
    )


class TestFigure5BCampaign:
    def test_parallel_matches_serial_bitwise(self, serial_campaign):
        parallel = registry.get("figure5b").run(
            trials=2, workers=2, **FIGURE5B_PARAMS
        )
        assert results_equal(serial_campaign.results, parallel.results)

    def test_intra_experiment_workers_match_serial(self, serial_campaign):
        # With trials=1 the registry forwards workers into the
        # experiment's own fan-out (per hit-list size here); worker
        # count still cannot change results.
        single_serial = registry.get("figure5b").run(
            trials=1, workers=1, **FIGURE5B_PARAMS
        )
        single_fanned = registry.get("figure5b").run(
            trials=1, workers=2, **FIGURE5B_PARAMS
        )
        assert results_equal(single_serial.results, single_fanned.results)

    def test_trials_differ(self, serial_campaign):
        assert not results_equal(
            serial_campaign.results[0], serial_campaign.results[1]
        )

    def test_cached_rerun_matches(self, serial_campaign, tmp_path):
        cache = ResultCache(tmp_path)
        experiment = registry.get("figure5b")
        first = experiment.run(
            trials=2, workers=1, cache=cache, **FIGURE5B_PARAMS
        )
        assert cache.misses == 2
        second = experiment.run(
            trials=2, workers=1, cache=cache, **FIGURE5B_PARAMS
        )
        assert cache.hits == 2
        assert results_equal(first.results, second.results)
        assert results_equal(first.results, serial_campaign.results)

    def test_formatted_has_one_section_per_trial(self, serial_campaign):
        text = serial_campaign.formatted()
        assert "figure5b trial 1/2" in text
        assert "figure5b trial 2/2" in text
