"""Tests for the parallel trial runner.

The load-bearing property: a campaign's results depend only on its
trials' seed material — not on worker count, execution order, or
process placement.
"""

import numpy as np
import pytest

from repro.net.cidr import BlockSet, CIDRBlock
from repro.population.model import HostPopulation
from repro.runtime import ResultCache, Trial, TrialRunner, results_equal
from repro.runtime.runner import resolve_workers
from repro.sim.engine import (
    EpidemicSimulator,
    SimulationConfig,
    run_simulation_trial,
)
from repro.worms.hitlist import HitListWorm

SPACE = CIDRBlock.parse("60.0.0.0/18")


def outbreak_trial(count=400, seed=None):
    """One small closed-space outbreak; module-level for pickling.

    The population layout is fixed; the trial seed drives only seed
    choice and scan randomness, so two trials with the same seed
    material are bitwise identical wherever they execute.
    """
    layout_rng = np.random.default_rng(0)
    low = layout_rng.choice(SPACE.size, size=count, replace=False)
    population = HostPopulation(
        (np.uint32(SPACE.network) + low).astype(np.uint32)
    )
    simulator = EpidemicSimulator(HitListWorm(BlockSet([SPACE])), population)
    config = SimulationConfig(
        scan_rate=30.0, max_time=400.0, seed_count=3, stop_at_fraction=0.9
    )
    return run_simulation_trial(simulator, config, seed)


def echo_trial(value, seed=None):
    return value


def failing_trial(seed=None):
    raise ValueError("trial exploded")


class TestDeterminism:
    def test_serial_and_parallel_runs_are_bitwise_identical(self):
        serial = TrialRunner(workers=1).run_repeated(
            outbreak_trial, {"count": 400}, trials=4, base_seed=42
        )
        parallel = TrialRunner(workers=2).run_repeated(
            outbreak_trial, {"count": 400}, trials=4, base_seed=42
        )
        assert len(serial) == len(parallel) == 4
        for a, b in zip(serial, parallel):
            # SimulationResult equality is bitwise across every array.
            assert a == b
        assert results_equal(serial, parallel)

    def test_trials_are_independent(self):
        results = TrialRunner(workers=1).run_repeated(
            outbreak_trial, {"count": 400}, trials=2, base_seed=42
        )
        assert not results_equal(results[0], results[1])

    def test_base_seed_changes_results(self):
        first = TrialRunner(workers=1).run_repeated(
            outbreak_trial, {"count": 400}, trials=1, base_seed=1
        )
        second = TrialRunner(workers=1).run_repeated(
            outbreak_trial, {"count": 400}, trials=1, base_seed=2
        )
        assert not results_equal(first, second)


class TestExecution:
    def test_order_preserved_under_parallelism(self):
        trials = [
            Trial(func=echo_trial, kwargs={"value": index})
            for index in range(20)
        ]
        assert TrialRunner(workers=4).run(trials) == list(range(20))

    def test_unpicklable_trial_falls_back_to_serial(self):
        trials = [
            # The unpicklable payload is the point of this test.
            Trial(func=lambda seed=None, v=v: v, kwargs={})  # noqa: RP004
            for v in range(3)
        ]
        with pytest.warns(RuntimeWarning, match="falling back to serial"):
            results = TrialRunner(workers=2).run(trials)
        assert results == [0, 1, 2]

    def test_trial_errors_propagate(self):
        with pytest.raises(ValueError, match="trial exploded"):
            TrialRunner(workers=1).run([Trial(func=failing_trial)])

    def test_resolve_workers(self):
        assert resolve_workers(3) == 3
        assert resolve_workers(None) >= 1
        assert resolve_workers(0) >= 1

    def test_resolve_workers_uses_cpu_count(self, monkeypatch):
        monkeypatch.setattr("repro.runtime.runner.os.cpu_count", lambda: 6)
        assert resolve_workers(None) == 6
        assert resolve_workers(0) == 6

    def test_resolve_workers_survives_unknown_cpu_count(self, monkeypatch):
        # ``os.cpu_count`` may return None on exotic platforms.
        monkeypatch.setattr("repro.runtime.runner.os.cpu_count", lambda: None)
        assert resolve_workers(None) == 1
        assert resolve_workers(0) == 1
        with pytest.raises(ValueError):
            resolve_workers(-2)

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(ValueError):
            TrialRunner(workers=2, chunk_size=0)


class TestCaching:
    def test_second_campaign_is_all_hits(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = TrialRunner(workers=1, cache=cache)
        first = runner.run_repeated(
            outbreak_trial,
            {"count": 400},
            trials=3,
            base_seed=42,
            cache_namespace="outbreak",
        )
        assert cache.misses == 3 and cache.hits == 0
        second = runner.run_repeated(
            outbreak_trial,
            {"count": 400},
            trials=3,
            base_seed=42,
            cache_namespace="outbreak",
        )
        assert cache.hits == 3
        assert results_equal(first, second)

    def test_param_change_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = TrialRunner(workers=1, cache=cache)
        for count in (300, 350):
            runner.run_repeated(
                outbreak_trial,
                {"count": count},
                trials=1,
                base_seed=42,
                cache_namespace="outbreak",
            )
        assert cache.misses == 2 and cache.hits == 0

    def test_cache_write_failure_warns_but_run_succeeds(self, tmp_path):
        # A regular file where the cache directory should be makes
        # every ``put`` raise; the campaign must still complete, with
        # the failure surfaced as a warning and a fallback event.
        blocker = tmp_path / "blocker"
        blocker.write_text("a regular file blocking the cache directory")
        runner = TrialRunner(workers=1, cache=ResultCache(blocker))
        with pytest.warns(RuntimeWarning, match="result cache write failed"):
            report = runner.run_repeated(
                echo_trial,
                {"value": 7},
                trials=2,
                base_seed=1,
                cache_namespace="blocked",
                report=True,
            )
        assert report.ok
        assert list(report.results) == [7, 7]
        assert any(
            "cache write failed" in event for event in report.fallback_events
        )

    def test_uncached_without_namespace(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = TrialRunner(workers=1, cache=cache)
        runner.run_repeated(echo_trial, {"value": 1}, trials=2, base_seed=0)
        assert cache.hits == cache.misses == 0
        assert list(cache.keys()) == []
