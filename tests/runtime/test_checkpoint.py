"""The mid-run checkpoint format: writes, validation, recovery events.

Restore must either reconstruct exactly or refuse with an error
naming the offending field — silent divergence is the one failure
mode this format exists to rule out.  The engine-level
checkpoint→restore→continue bitwise guarantees live in
``tests/sim/test_checkpoint_restore.py``; this file covers the format
itself.
"""

import json

import numpy as np
import pytest

from repro.population.model import HostPopulation
from repro.runtime.checkpoint import (
    FORMAT_NAME,
    FORMAT_VERSION,
    CheckpointError,
    Checkpointer,
    JOURNAL_NAME,
    checkpoint_filename,
    latest_checkpoint,
    load_checkpoint,
    record_recovery,
    recovery_collection,
    spec_hash,
)
from repro.runtime.faults import MIDRUN_FAULT_ENV
from repro.sim.spec import SimulationSpec
from repro.worms.uniform import UniformScanWorm

SPEC_HASH = "a" * 64


@pytest.fixture
def checkpointer(tmp_path):
    return Checkpointer(
        tmp_path, every=5, spec_hash=SPEC_HASH, mode="serial"
    )


def small_spec(**overrides):
    rng = np.random.default_rng(3)
    addrs = np.unique(
        rng.integers(1 << 24, 200 << 24, size=500, dtype=np.uint64).astype(
            np.uint32
        )
    )
    kwargs = dict(
        worm=UniformScanWorm(),
        population=HostPopulation(addrs),
        scan_rate=5.0,
        max_time=10.0,
        seed_count=3,
    )
    kwargs.update(overrides)
    return SimulationSpec(**kwargs)


class TestCadence:
    def test_due_fires_every_n_ticks(self, checkpointer):
        due = [tick for tick in range(20) if checkpointer.due(tick)]
        assert due == [4, 9, 14, 19]

    def test_every_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="at least 1"):
            Checkpointer(
                tmp_path, every=0, spec_hash=SPEC_HASH, mode="serial"
            )

    def test_mode_is_validated(self, tmp_path):
        with pytest.raises(ValueError, match="serial.*shard"):
            Checkpointer(
                tmp_path, every=1, spec_hash=SPEC_HASH, mode="turbo"
            )


class TestWriteAndLoad:
    def test_round_trip(self, checkpointer, tmp_path):
        payload = {"rng_state": {"state": 7}, "times": [0.0, 1.0]}
        path = checkpointer.write(9, payload)
        assert path.name == checkpoint_filename(9)

        loaded = load_checkpoint(
            path, expected_spec_hash=SPEC_HASH, expected_mode="serial"
        )
        assert loaded["rng_state"] == {"state": 7}
        assert loaded["times"] == [0.0, 1.0]
        # Header facts ride into the payload for the restore path.
        assert loaded["tick"] == 9
        assert loaded["mode"] == "serial"

    def test_write_is_indexed_in_the_journal(self, checkpointer, tmp_path):
        checkpointer.write(4, {"x": 1})
        checkpointer.write(9, {"x": 2})
        lines = (tmp_path / JOURNAL_NAME).read_text().splitlines()
        records = [json.loads(line) for line in lines]
        assert [record["tick"] for record in records] == [4, 9]
        assert all(record["spec_hash"] == SPEC_HASH for record in records)

    def test_latest_checkpoint_picks_the_highest_tick(
        self, checkpointer, tmp_path
    ):
        for tick in (4, 19, 9):
            checkpointer.write(tick, {"tick_was": tick})
        assert latest_checkpoint(tmp_path).name == checkpoint_filename(19)
        # load_checkpoint accepts the directory directly.
        loaded = load_checkpoint(tmp_path)
        assert loaded["tick_was"] == 19

    def test_empty_directory_names_the_path(self, tmp_path):
        with pytest.raises(CheckpointError, match="checkpoint.path"):
            latest_checkpoint(tmp_path)

    def test_no_stale_temp_files_after_write(self, checkpointer, tmp_path):
        checkpointer.write(4, {"x": 1})
        assert not list(tmp_path.glob("*.tmp"))


class TestValidationNamesTheField:
    """Satellite contract: every refusal names what failed."""

    def write_one(self, tmp_path, tick=4, payload=None):
        checkpointer = Checkpointer(
            tmp_path, every=5, spec_hash=SPEC_HASH, mode="serial"
        )
        return checkpointer.write(tick, payload or {"x": 1})

    def test_wrong_spec_hash(self, tmp_path):
        path = self.write_one(tmp_path)
        with pytest.raises(CheckpointError, match="checkpoint.spec_hash"):
            load_checkpoint(path, expected_spec_hash="b" * 64)

    def test_wrong_mode(self, tmp_path):
        path = self.write_one(tmp_path)
        with pytest.raises(CheckpointError, match="checkpoint.mode"):
            load_checkpoint(path, expected_mode="shard")

    def test_truncated_payload(self, tmp_path):
        path = self.write_one(tmp_path)
        raw = path.read_bytes()
        path.write_bytes(raw[:-3])
        with pytest.raises(
            CheckpointError, match="checkpoint.payload_bytes"
        ):
            load_checkpoint(path)

    def test_corrupted_payload_byte(self, tmp_path):
        path = self.write_one(tmp_path)
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(
            CheckpointError, match="checkpoint.payload_sha256"
        ):
            load_checkpoint(path)

    def test_future_format_version(self, tmp_path):
        path = self.write_one(tmp_path)
        raw = path.read_bytes()
        newline = raw.find(b"\n")
        header = json.loads(raw[:newline])
        header["version"] = FORMAT_VERSION + 1
        path.write_bytes(
            json.dumps(header).encode() + b"\n" + raw[newline + 1 :]
        )
        with pytest.raises(CheckpointError, match="checkpoint.version"):
            load_checkpoint(path)

    def test_foreign_format(self, tmp_path):
        path = self.write_one(tmp_path)
        raw = path.read_bytes()
        newline = raw.find(b"\n")
        header = json.loads(raw[:newline])
        header["format"] = "other-tool"
        path.write_bytes(
            json.dumps(header).encode() + b"\n" + raw[newline + 1 :]
        )
        with pytest.raises(CheckpointError, match="checkpoint.format"):
            load_checkpoint(path)

    def test_garbage_header(self, tmp_path):
        path = tmp_path / checkpoint_filename(0)
        path.write_bytes(b"\x80\x04not json\nwhatever")
        with pytest.raises(CheckpointError, match="checkpoint.header"):
            load_checkpoint(path)

    def test_headerless_file(self, tmp_path):
        path = tmp_path / checkpoint_filename(0)
        path.write_bytes(b"no newline at all")
        with pytest.raises(CheckpointError, match="checkpoint.header"):
            load_checkpoint(path)

    def test_unreadable_path(self, tmp_path):
        with pytest.raises(CheckpointError, match="checkpoint.path"):
            load_checkpoint(tmp_path / "missing.ckpt")


class TestInjectedWriterFaults:
    """The env-injected chaos hooks corrupt real writes, and the
    loader's validation catches both end to end."""

    def test_corrupt_checkpoint_fault(self, tmp_path, monkeypatch):
        monkeypatch.setenv(
            MIDRUN_FAULT_ENV,
            json.dumps({"kind": "corrupt-checkpoint", "tick": 4}),
        )
        checkpointer = Checkpointer(
            tmp_path, every=5, spec_hash=SPEC_HASH, mode="serial"
        )
        path = checkpointer.write(4, {"x": 1})
        with pytest.raises(
            CheckpointError, match="checkpoint.payload_sha256"
        ):
            load_checkpoint(path)

    def test_stale_version_fault(self, tmp_path, monkeypatch):
        monkeypatch.setenv(
            MIDRUN_FAULT_ENV,
            json.dumps({"kind": "stale-checkpoint-version", "tick": 4}),
        )
        checkpointer = Checkpointer(
            tmp_path, every=5, spec_hash=SPEC_HASH, mode="serial"
        )
        path = checkpointer.write(4, {"x": 1})
        with pytest.raises(CheckpointError, match="checkpoint.version"):
            load_checkpoint(path)

    def test_fault_only_fires_on_its_tick(self, tmp_path, monkeypatch):
        monkeypatch.setenv(
            MIDRUN_FAULT_ENV,
            json.dumps({"kind": "corrupt-checkpoint", "tick": 4}),
        )
        checkpointer = Checkpointer(
            tmp_path, every=5, spec_hash=SPEC_HASH, mode="serial"
        )
        clean = checkpointer.write(9, {"x": 1})
        assert load_checkpoint(clean)["x"] == 1


class TestSpecHash:
    def test_cadence_is_excluded(self):
        # The cadence is an execution knob: a run may be restored
        # under a different one, so it must not change the identity.
        assert spec_hash(small_spec(checkpoint_every=5)) == spec_hash(
            small_spec(checkpoint_every=50)
        )

    def test_result_knobs_change_the_hash(self):
        assert spec_hash(small_spec()) != spec_hash(
            small_spec(scan_rate=6.0)
        )
        assert spec_hash(small_spec()) != spec_hash(small_spec(shards=4))


class TestRecoveryCollection:
    def test_events_reach_every_active_log(self):
        with recovery_collection() as outer:
            record_recovery("checkpoint", tick=4)
            with recovery_collection() as inner:
                record_recovery("worker-respawn", shard=1)
            record_recovery("restore", tick=4)
        assert [event["kind"] for event in outer.events] == [
            "checkpoint",
            "worker-respawn",
            "restore",
        ]
        assert inner.events == [{"kind": "worker-respawn", "shard": 1}]

    def test_recording_without_a_collection_is_a_no_op(self):
        record_recovery("checkpoint", tick=0)  # must not raise
