"""Tests for the persistent SPSC command rings (ring transport layer).

Covers the slot protocol in isolation: wraparound past the ring
capacity, back-pressure when full, ticket resume through the header's
head/tail hints, garbled-slot detection, text truncation, and the
doorbell missed-wake self-heal (a consumer polling with a timeout
drains pushes whose wake-up was lost).  The end-to-end pool behavior
rides on :mod:`tests.sim.test_sharded`.
"""

import glob
import threading

import pytest

from repro.runtime.ring import (
    DEFAULT_CAPACITY,
    MIN_CAPACITY,
    KIND_DONE,
    KIND_ERROR,
    KIND_STOP,
    KIND_TICK,
    MAGIC,
    RingError,
    RingMessage,
    SLOT_BYTES,
    SpscRing,
)
from repro.runtime.shmem import shared_memory_available

needs_shm = pytest.mark.skipif(
    not shared_memory_available(),
    reason="multiprocessing.shared_memory unavailable",
)

pytestmark = needs_shm


def message(ticket, **overrides):
    fields = {
        "kind": KIND_TICK,
        "shard": ticket % 7,
        "epoch": ticket + 1,
        "now": float(ticket) * 0.5,
        "value": ticket * 11,
        "aux": -ticket,
        "text": f"q{ticket}",
        "text2": f"r{ticket}",
    }
    fields.update(overrides)
    return RingMessage(**fields)


def shm_segments():
    return set(glob.glob("/dev/shm/rs*"))


class TestSlotProtocol:
    def test_round_trip_preserves_every_field(self):
        with SpscRing.create("rt", capacity=2) as ring:
            sent = RingMessage(
                kind=KIND_ERROR,
                shard=3,
                epoch=41,
                now=12.25,
                value=-9,
                aux=1 << 40,
                text="ValueError: boom",
                text2="q3-name",
            )
            assert ring.try_push(sent)
            assert ring.try_pop() == sent

    def test_empty_ring_pops_none(self):
        with SpscRing.create("empty", capacity=2) as ring:
            assert ring.try_pop() is None

    def test_all_kinds_accepted(self):
        with SpscRing.create("kinds", capacity=4) as ring:
            for kind in (KIND_TICK, KIND_STOP, KIND_DONE, KIND_ERROR):
                assert ring.try_push(message(0, kind=kind))
            for kind in (KIND_TICK, KIND_STOP, KIND_DONE, KIND_ERROR):
                popped = ring.try_pop()
                assert popped is not None and popped.kind == kind

    def test_wraparound_past_capacity(self):
        # Three full revolutions: slot reuse must keep messages intact
        # and ordered.
        capacity = 4
        with SpscRing.create("wrap", capacity=capacity) as ring:
            for ticket in range(3 * capacity):
                assert ring.try_push(message(ticket))
                popped = ring.try_pop()
                assert popped == message(ticket)

    def test_full_ring_is_backpressure_not_error(self):
        capacity = 3
        with SpscRing.create("full", capacity=capacity) as ring:
            for ticket in range(capacity):
                assert ring.try_push(message(ticket))
            # Full: push returns False (no exception, nothing lost).
            assert not ring.try_push(message(capacity))
            # Draining one slot frees exactly one push.
            assert ring.try_pop() == message(0)
            assert ring.try_push(message(capacity))
            assert not ring.try_push(message(capacity + 1))
            for ticket in range(1, capacity + 1):
                assert ring.try_pop() == message(ticket)
            assert ring.try_pop() is None

    def test_long_error_text_is_truncated_not_rejected(self):
        with SpscRing.create("trunc", capacity=2) as ring:
            sent = message(0, text="x" * (2 * SLOT_BYTES), text2="keep")
            assert ring.try_push(sent)
            popped = ring.try_pop()
            assert popped is not None
            # text2 (the segment name side) survives whole; text keeps
            # its head and fits the slot alongside it.
            assert popped.text2 == "keep"
            assert popped.text == "x" * (len(popped.text))
            assert 0 < len(popped.text) < 2 * SLOT_BYTES

    def test_garbled_slot_raises_on_pop(self):
        with SpscRing.create("garble", capacity=2) as ring:
            assert ring.try_push(message(0))
            ring.garble_last_push()
            with pytest.raises(RingError, match="garbled"):
                ring.try_pop()

    def test_garble_requires_a_prior_push(self):
        with SpscRing.create("nopush", capacity=2) as ring:
            with pytest.raises(RingError, match="nothing pushed"):
                ring.garble_last_push()

    def test_closed_ring_rejects_traffic(self):
        ring = SpscRing.create("closed", capacity=2)
        ring.close()
        with pytest.raises(RingError, match="closed"):
            ring.try_push(message(0))
        with pytest.raises(RingError, match="closed"):
            ring.try_pop()


class TestTicketResume:
    def test_successor_objects_resume_from_header_hints(self):
        # A pump pause/restart builds *new* SpscRing objects on the
        # same segment; head/tail in the header must hand the tickets
        # over so the protocol continues where it stopped.
        owner = SpscRing.create("resume", capacity=4)
        try:
            consumer = SpscRing.attach(owner.name)
            for ticket in range(3):
                assert owner.try_push(message(ticket))
            assert consumer.try_pop() == message(0)
            consumer.close()

            # Fresh consumer: must resume at ticket 1, not replay 0.
            successor = SpscRing.attach(owner.name)
            assert successor.try_pop() == message(1)
            assert successor.try_pop() == message(2)
            assert successor.try_pop() is None

            # Fresh producer on the same segment: resumes at ticket 3.
            producer = SpscRing.attach(owner.name)
            assert producer.try_push(message(3))
            assert successor.try_pop() == message(3)
            producer.close()
            successor.close()
        finally:
            owner.close()

    def test_resume_across_wraparound(self):
        owner = SpscRing.create("rewrap", capacity=2)
        try:
            consumer = SpscRing.attach(owner.name)
            for ticket in range(5):
                assert owner.try_push(message(ticket))
                assert consumer.try_pop() == message(ticket)
            consumer.close()
            successor = SpscRing.attach(owner.name)
            assert owner.try_push(message(5))
            assert successor.try_pop() == message(5)
            successor.close()
        finally:
            owner.close()


class TestSegmentValidation:
    @pytest.mark.parametrize("capacity", [0, 1])
    def test_create_rejects_degenerate_capacity(self, capacity):
        # One slot cannot tell "published" (ticket+1) from "freed"
        # (ticket+capacity): the producer would overwrite unconsumed
        # messages.  MIN_CAPACITY pins the protocol's floor.
        assert MIN_CAPACITY == 2
        with pytest.raises(ValueError, match="capacity"):
            SpscRing.create("badcap", capacity=capacity)

    def test_attach_rejects_foreign_magic(self):
        with SpscRing.create("magic", capacity=2) as ring:
            import struct

            struct.pack_into("<I", ring._segment.buf, 0, MAGIC ^ 0xFF)
            with pytest.raises(RingError, match="bad ring magic"):
                SpscRing.attach(ring.name)

    def test_attach_rejects_version_skew(self):
        with SpscRing.create("ver", capacity=2) as ring:
            import struct

            struct.pack_into("<I", ring._segment.buf, 4, 99)
            with pytest.raises(RingError, match="version 99"):
                SpscRing.attach(ring.name)

    def test_default_capacity_is_small(self):
        # The ring is a control channel, not a data plane; a handful of
        # slots bounds the segment to a few KiB.
        with SpscRing.create("defaults") as ring:
            assert ring.capacity == DEFAULT_CAPACITY


class TestDoorbellSelfHeal:
    def test_missed_wake_is_absorbed_by_the_poll_timeout(self):
        # The pump waits on its doorbell with a timeout precisely so a
        # lost Event.set() stalls one poll interval, not forever.  Model
        # the pump as a thread that never receives a wake-up: every
        # message must still drain via the timeout path.
        doorbell = threading.Event()
        drained = []
        stop = object()

        with SpscRing.create("bell", capacity=4) as ring:
            consumer = SpscRing.attach(ring.name)

            def pump():
                while True:
                    msg = consumer.try_pop()
                    if msg is None:
                        # Missed wake: wait() times out, loop re-polls.
                        doorbell.wait(timeout=0.01)
                        doorbell.clear()
                        continue
                    if msg.kind == KIND_STOP:
                        drained.append(stop)
                        return
                    drained.append(msg)

            thread = threading.Thread(target=pump)
            thread.start()
            try:
                for ticket in range(6):
                    while not ring.try_push(message(ticket)):
                        pass  # pragma: no cover - tiny ring backpressure
                    # Deliberately never ring the doorbell.
                assert ring.try_push(message(6, kind=KIND_STOP))
            finally:
                thread.join(timeout=10.0)
            assert not thread.is_alive()
            consumer.close()

        assert drained[-1] is stop
        assert [m for m in drained[:-1]] == [message(t) for t in range(6)]


class TestLifecycle:
    def test_owner_close_unlinks_and_is_idempotent(self):
        before = shm_segments()
        ring = SpscRing.create("life", capacity=2)
        name = ring.name
        assert f"/dev/shm/{name}" in shm_segments() - before
        ring.close()
        ring.close()
        assert shm_segments() == before

    def test_attacher_close_does_not_unlink(self):
        with SpscRing.create("keep", capacity=2) as ring:
            attached = SpscRing.attach(ring.name)
            attached.close()
            # The owner's segment survives the attacher's close.
            successor = SpscRing.attach(ring.name)
            successor.close()
