"""Tests for the shared-memory frame protocol and arena layer."""

import glob
import os
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.runtime import shmem
from repro.runtime.shmem import (
    MIN_CAPACITY,
    ShmArena,
    ShmDoubleBuffer,
    ShmProtocolError,
    attach,
    capacity_for,
    frames_capacity,
    read_frames,
    shared_memory_available,
    write_frames,
)

needs_shm = pytest.mark.skipif(
    not shared_memory_available(),
    reason="multiprocessing.shared_memory unavailable",
)


def make_frames():
    return [
        np.arange(7, dtype=np.uint32),
        None,
        np.array([True, False, True]),
        np.arange(4, dtype=np.int64) * -3,
    ]


def assert_frames_equal(actual, expected):
    assert len(actual) == len(expected)
    for got, want in zip(actual, expected):
        if want is None:
            assert got is None
        else:
            assert got.dtype == want.dtype
            np.testing.assert_array_equal(got, want)


class TestFrameProtocol:
    def test_round_trip(self):
        frames = make_frames()
        buf = memoryview(bytearray(frames_capacity(frames)))
        write_frames(buf, epoch=5, frames=frames)
        assert_frames_equal(read_frames(buf, expected_epoch=5), frames)

    def test_empty_arrays_round_trip(self):
        frames = [np.empty(0, dtype=np.uint32), None]
        buf = memoryview(bytearray(frames_capacity(frames)))
        write_frames(buf, epoch=1, frames=frames)
        assert_frames_equal(read_frames(buf, expected_epoch=1), frames)

    def test_every_wire_dtype_round_trips(self):
        frames = [np.ones(3, dtype=dtype) for dtype in shmem._DTYPES]
        buf = memoryview(bytearray(frames_capacity(frames)))
        write_frames(buf, epoch=2, frames=frames)
        assert_frames_equal(read_frames(buf, expected_epoch=2), frames)

    def test_unregistered_dtype_rejected(self):
        frames = [np.zeros(2, dtype=np.complex128)]
        buf = memoryview(bytearray(frames_capacity(frames)))
        with pytest.raises(ValueError, match="wire format"):
            write_frames(buf, epoch=1, frames=frames)

    def test_write_rejects_undersized_buffer(self):
        frames = make_frames()
        buf = memoryview(bytearray(frames_capacity(frames) - 1))
        with pytest.raises(ShmProtocolError, match="grow before writing"):
            write_frames(buf, epoch=1, frames=frames)

    def test_epoch_mismatch_rejected(self):
        frames = make_frames()
        buf = memoryview(bytearray(frames_capacity(frames)))
        write_frames(buf, epoch=4, frames=frames)
        with pytest.raises(ShmProtocolError, match="epoch 4"):
            read_frames(buf, expected_epoch=5)

    def test_garbled_magic_rejected(self):
        frames = make_frames()
        buf = memoryview(bytearray(frames_capacity(frames)))
        write_frames(buf, epoch=1, frames=frames)
        buf[0] = 0xFF
        with pytest.raises(ShmProtocolError, match="bad magic"):
            read_frames(buf, expected_epoch=1)

    def test_version_mismatch_rejected(self):
        frames = make_frames()
        buf = memoryview(bytearray(frames_capacity(frames)))
        write_frames(buf, epoch=1, frames=frames)
        buf[4] = 99
        with pytest.raises(ShmProtocolError, match="version"):
            read_frames(buf, expected_epoch=1)

    def test_truncated_payload_rejected(self):
        frames = [np.arange(1000, dtype=np.int64)]
        whole = memoryview(bytearray(frames_capacity(frames)))
        write_frames(whole, epoch=1, frames=frames)
        truncated = whole[: len(whole) // 2]
        with pytest.raises(ShmProtocolError, match="truncated"):
            read_frames(truncated, expected_epoch=1)

    def test_headerless_buffer_rejected(self):
        with pytest.raises(ShmProtocolError, match="header"):
            read_frames(memoryview(bytearray(4)), expected_epoch=0)

    def test_absurd_frame_count_rejected(self):
        buf = memoryview(bytearray(1024))
        shmem._HEADER.pack_into(
            buf, 0, shmem.MAGIC, shmem.VERSION, 0, 4096
        )
        with pytest.raises(ShmProtocolError, match="frame count"):
            read_frames(buf, expected_epoch=0)

    def test_unknown_dtype_code_rejected(self):
        frames = [np.arange(3, dtype=np.uint32)]
        buf = memoryview(bytearray(frames_capacity(frames)))
        write_frames(buf, epoch=1, frames=frames)
        shmem._FRAME.pack_into(buf, shmem._HEADER.size, 77, 3)
        with pytest.raises(ShmProtocolError, match="dtype code"):
            read_frames(buf, expected_epoch=1)

    def test_capacity_for_matches_frames_capacity(self):
        frames = make_frames()
        shapes = [
            (0 if f is None else len(f), np.uint8 if f is None else f.dtype)
            for f in frames
        ]
        # capacity_for can't model absent frames (it sizes the worst
        # case), so it must never be *smaller* than the real message.
        assert capacity_for(shapes) >= frames_capacity(frames)


@needs_shm
class TestShmArena:
    def test_round_trip_and_copy_semantics(self):
        frames = make_frames()
        with ShmArena("t0") as arena:
            arena.write(3, frames)
            copied = arena.read(3)
            assert_frames_equal(copied, frames)
            # Default read copies: mutating the copy must not change
            # what a second read sees.
            copied[0][:] = 0
            assert_frames_equal(arena.read(3), frames)

    def test_growth_renames_and_preserves_message(self):
        with ShmArena("t1") as arena:
            first_name = arena.name
            big = [np.arange(MIN_CAPACITY, dtype=np.int64)]
            arena.write(1, big)
            assert arena.name != first_name
            assert arena.capacity >= big[0].nbytes
            assert_frames_equal(arena.read(1), big)
            assert not glob.glob(f"/dev/shm/{first_name}")

    def test_ensure_is_geometric(self):
        with ShmArena("t2") as arena:
            assert not arena.ensure(10)
            before = arena.capacity
            assert arena.ensure(before + 1)
            assert arena.capacity >= 2 * before

    def test_attach_sees_owner_writes(self):
        frames = [np.arange(9, dtype=np.uint32)]
        with ShmArena("t3") as arena:
            arena.write(7, frames)
            segment = attach(arena.name)
            try:
                assert_frames_equal(
                    read_frames(segment.buf, expected_epoch=7), frames
                )
            finally:
                segment.close()

    def test_close_unlinks_and_is_idempotent(self):
        arena = ShmArena("t4")
        name = arena.name
        assert glob.glob(f"/dev/shm/{name}")
        arena.close()
        arena.close()
        assert not glob.glob(f"/dev/shm/{name}")
        with pytest.raises(ShmProtocolError, match="closed"):
            arena.read(0)
        with pytest.raises(ShmProtocolError, match="closed"):
            arena.ensure(1)

    def test_no_segments_leaked_by_lifecycle(self):
        before = set(glob.glob("/dev/shm/rs*"))
        arena = ShmArena("t5")
        arena.write(1, [np.arange(MIN_CAPACITY, dtype=np.uint32)])
        arena.close()
        assert set(glob.glob("/dev/shm/rs*")) == before


@needs_shm
class TestShmDoubleBuffer:
    """The epoch-parity buffer pair behind the pipelined pool."""

    def test_parity_selects_the_buffer(self):
        with ShmDoubleBuffer("d0") as dbuf:
            even = dbuf.arena(0)
            odd = dbuf.arena(1)
            assert even is not odd
            assert dbuf.arena(2) is even
            assert dbuf.arena(41) is odd

    def test_consecutive_epochs_coexist(self):
        # Tick N's reply stays pinned while tick N+1 stages: both
        # messages must be readable at once.
        with ShmDoubleBuffer("d1") as dbuf:
            old = [np.arange(5, dtype=np.uint32)]
            new = [np.arange(9, dtype=np.int64) * 2]
            dbuf.write(4, old)
            dbuf.write(5, new)
            assert_frames_equal(dbuf.read(4), old)
            assert_frames_equal(dbuf.read(5), new)

    def test_stale_epoch_read_sees_old_epoch_never_a_torn_frame(self):
        # The acceptance shape for the double buffer: a reader still
        # expecting tick N's epoch after tick N+1 staged must either
        # get N's *intact* message (other parity, untouched) or fail
        # loudly as stale — never a half-overwritten frame.
        with ShmDoubleBuffer("d2") as dbuf:
            old = [np.arange(64, dtype=np.uint32)]
            dbuf.write(6, old)
            loan = dbuf.read(6, copy=False)  # worker racing a doorbell
            dbuf.write(7, [np.zeros(64, dtype=np.uint32)])
            # Staging epoch 7 went to the other parity: the pinned
            # epoch-6 view is byte-identical to what was staged.
            assert_frames_equal(loan, old)
            assert_frames_equal(dbuf.read(6), old)
            # Two ticks later the same-parity buffer is overwritten;
            # an epoch-6 reader now fails the epoch check loudly.
            dbuf.write(8, [np.ones(3, dtype=np.uint32)])
            del loan
            with pytest.raises(ShmProtocolError, match="epoch"):
                dbuf.read(6)

    def test_wrong_parity_read_is_a_loud_stale_epoch_error(self):
        with ShmDoubleBuffer("d3") as dbuf:
            dbuf.write(2, [np.arange(4, dtype=np.uint32)])
            # Epoch 3 routes to the untouched (or stale) odd buffer.
            with pytest.raises(ShmProtocolError):
                dbuf.read(3)

    def test_growth_is_per_buffer_and_retirement_covers_standby(self):
        with ShmDoubleBuffer("d4") as dbuf:
            small = [np.arange(8, dtype=np.uint32)]
            dbuf.write(2, small)
            loan = dbuf.read(2, copy=False)
            even_name = dbuf.arena(2).name
            odd_capacity = dbuf.arena(3).capacity
            # Growing the even buffer under a live loan exercises the
            # BufferError-safe retirement path on that side only.
            big = [np.arange(MIN_CAPACITY, dtype=np.int64)]
            assert dbuf.ensure(2, frames_capacity(big))
            assert dbuf.arena(2).name != even_name
            assert dbuf.arena(3).capacity == odd_capacity
            assert_frames_equal(loan, small)  # old mapping still intact
            dbuf.write(4, big)
            assert_frames_equal(dbuf.read(4), big)
            del loan

    def test_close_is_idempotent_and_leaks_nothing(self):
        before = set(glob.glob("/dev/shm/rs*"))
        dbuf = ShmDoubleBuffer("d5")
        dbuf.write(1, [np.arange(4, dtype=np.uint32)])
        dbuf.write(2, [np.arange(4, dtype=np.uint32)])
        dbuf.close()
        dbuf.close()
        assert set(glob.glob("/dev/shm/rs*")) == before
        with pytest.raises(ShmProtocolError, match="closed"):
            dbuf.arena(0)


@needs_shm
class TestInterpreterTeardown:
    """Regressions for ``close()`` running during interpreter exit.

    At shutdown ``__del__`` can fire after the module's globals were
    cleared to ``None``; the retire-list append must degrade to a
    no-op so the unlink below it still runs.
    """

    def test_close_survives_a_cleared_retire_list(self, monkeypatch):
        arena = ShmArena("t6")
        name = arena.name
        arena.write(1, [np.arange(4, dtype=np.uint32)])
        # A live loan forces the BufferError branch inside close().
        loan = arena.read(1, copy=False)
        monkeypatch.setattr(shmem, "_RETIRED_SEGMENTS", None)
        arena.close()  # must not raise
        assert not glob.glob(f"/dev/shm/{name}")
        assert loan[0][0] == 0  # the mapping outlived the close
        # Release the loan so the un-retired segment's destructor can
        # unmap cleanly (nothing tracked it while the list was None).
        del loan

    def test_gc_at_exit_leaves_no_segment_or_noise(self):
        script = textwrap.dedent(
            """
            import numpy as np
            from repro.runtime.shmem import ShmArena

            arena = ShmArena("exit")
            arena.write(1, [np.arange(4, dtype=np.uint32)])
            # Keep a loaned view alive in a global so teardown order
            # decides whether the retire list still exists.
            loan = arena.read(1, copy=False)
            print(arena.name)
            """
        )
        env = dict(os.environ, PYTHONPATH="src")
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
            env=env,
        )
        assert result.returncode == 0, result.stderr
        name = result.stdout.strip()
        assert name and not glob.glob(f"/dev/shm/{name}")
        assert "Traceback" not in result.stderr
        assert "Exception ignored" not in result.stderr
