"""Compiled LPM and IntervalLocator vs their reference semantics."""

import numpy as np
import pytest

from repro.net.cidr import CIDRBlock
from repro.net.kernels import (
    NO_VALUE,
    IntervalLocator,
    MergedPartition,
    kernel_override,
    kernels_enabled,
)
from repro.net.prefixtree import PrefixTree


def random_tree(rng, num_prefixes):
    tree = PrefixTree()
    for index in range(num_prefixes):
        prefix_len = int(rng.integers(0, 33))
        block = CIDRBlock.containing(int(rng.integers(0, 1 << 32)), prefix_len)
        tree.insert(block, f"value-{index}")
    return tree


def probe_addresses(rng, tree, count=2000):
    """Random addresses plus every compiled boundary and its neighbour."""
    addrs = [rng.integers(0, 1 << 32, size=count, dtype=np.uint64)]
    for block, _ in tree.items():
        addrs.append(np.array([block.first, block.last], dtype=np.uint64))
        if block.first > 0:
            addrs.append(np.array([block.first - 1], dtype=np.uint64))
        if block.last + 1 < 1 << 32:
            addrs.append(np.array([block.last + 1], dtype=np.uint64))
    return np.concatenate(addrs).astype(np.uint32)


class TestIntervalLocator:
    """locate() must equal searchsorted(side='right') - 1 in every regime."""

    @pytest.mark.parametrize("regime", ["small", "bucketed", "clustered"])
    def test_matches_searchsorted(self, regime):
        rng = np.random.default_rng(hash(regime) % (1 << 32))
        for _ in range(20):
            if regime == "small":
                size = int(rng.integers(1, 33))
                raw = rng.integers(0, 1 << 32, size=size, dtype=np.uint64)
            elif regime == "bucketed":
                size = int(rng.integers(40, 3000))
                raw = rng.integers(0, 1 << 32, size=size, dtype=np.uint64)
            else:
                # Everything inside one /16: forces the searchsorted
                # fallback (densest bucket above the advance-step cap).
                base = int(rng.integers(0, (1 << 32) - (1 << 16)))
                raw = base + rng.integers(0, 1 << 16, size=400, dtype=np.uint64)
            starts = np.unique(raw)
            locator = IntervalLocator(starts)
            addrs = np.concatenate(
                [
                    rng.integers(0, 1 << 32, size=3000, dtype=np.uint64),
                    starts,
                    np.maximum(starts, 1) - 1,
                ]
            ).astype(np.uint32)
            expected = (
                np.searchsorted(
                    starts, addrs.astype(np.uint64), side="right"
                ).astype(np.int64)
                - 1
            )
            assert np.array_equal(
                locator.locate(addrs).astype(np.int64), expected
            )

    def test_empty_table(self):
        locator = IntervalLocator(np.empty(0, dtype=np.uint64))
        addrs = np.array([0, 1, 1 << 31], dtype=np.uint32)
        assert (locator.locate(addrs) == -1).all()

    def test_extreme_addresses(self):
        starts = np.array([0, 1 << 31, (1 << 32) - 1], dtype=np.uint64)
        locator = IntervalLocator(starts)
        addrs = np.array([0, (1 << 31) - 1, 1 << 31, (1 << 32) - 1],
                         dtype=np.uint32)
        assert locator.locate(addrs).tolist() == [0, 0, 1, 2]


class TestCompiledLPM:
    def test_matches_tree_walk(self):
        rng = np.random.default_rng(2006)
        for _ in range(25):
            tree = random_tree(rng, int(rng.integers(1, 48)))
            compiled = tree.compile()
            addrs = probe_addresses(rng, tree)
            assert compiled.lookup_array(addrs, default="miss") == (
                tree.lookup_array(addrs, default="miss")
            )

    def test_lookup_indices_shape_and_miss(self):
        tree = PrefixTree()
        tree.insert(CIDRBlock.parse("10.0.0.0/8"), "ten")
        compiled = tree.compile()
        addrs = np.array(
            [[0x0A000001, 0x0B000001], [0x0AFFFFFF, 0x00000000]],
            dtype=np.uint32,
        )
        indices = compiled.lookup_indices(addrs)
        assert indices.shape == addrs.shape
        looked = [
            compiled.values[i] if i != NO_VALUE else None
            for i in indices.ravel()
        ]
        assert looked == ["ten", None, "ten", None]

    def test_lookup_int_array(self):
        tree = PrefixTree()
        tree.insert(CIDRBlock.parse("10.0.0.0/8"), 7)
        tree.insert(CIDRBlock.parse("10.1.0.0/16"), 9)
        compiled = tree.compile()
        addrs = np.array([0x0A000001, 0x0A010001, 0xC0000001], dtype=np.uint32)
        assert compiled.lookup_int_array(addrs, default=-5).tolist() == [
            7,
            9,
            -5,
        ]

    def test_compile_cache_invalidated_by_insert(self):
        tree = PrefixTree()
        tree.insert(CIDRBlock.parse("10.0.0.0/8"), "ten")
        first = tree.compiled()
        assert tree.compiled() is first
        tree.insert(CIDRBlock.parse("20.0.0.0/8"), "twenty")
        second = tree.compiled()
        assert second is not first
        addr = np.array([0x14000001], dtype=np.uint32)
        assert second.lookup_array(addr) == ["twenty"]
        assert first.lookup_array(addr) == [None]


def test_kernel_override_restores_state():
    assert kernels_enabled()
    with kernel_override(False):
        assert not kernels_enabled()
        with kernel_override(True):
            assert kernels_enabled()
        assert not kernels_enabled()
    assert kernels_enabled()


class TestMergedPartition:
    """Merged locate+resample must equal each component's own lookup."""

    @staticmethod
    def random_partition(rng, num_intervals):
        starts = np.unique(
            np.concatenate(
                [
                    np.zeros(1, dtype=np.uint64),
                    rng.integers(
                        0, 1 << 32, size=num_intervals - 1, dtype=np.uint64
                    ),
                ]
            )
        )
        values = rng.integers(-3, 100, size=len(starts), dtype=np.int64)
        return starts, values

    def test_matches_per_component_searchsorted(self):
        rng = np.random.default_rng(13)
        components = [
            self.random_partition(rng, n) for n in (2, 17, 400, 1)
        ]
        merged = MergedPartition(components)
        assert merged.num_components == len(components)
        addrs = np.concatenate(
            [
                rng.integers(0, 1 << 32, size=5000, dtype=np.uint64),
                np.array([0, (1 << 32) - 1], dtype=np.uint64),
                # Every merged breakpoint and its neighbours.
                *(starts for starts, _ in components),
                *(
                    np.clip(starts.astype(np.int64) - 1, 0, (1 << 32) - 1)
                    .astype(np.uint64)
                    for starts, _ in components
                ),
            ]
        ).astype(np.uint32)
        slots = merged.locate(addrs)
        for index, (starts, values) in enumerate(components):
            expected = values[
                np.searchsorted(starts, addrs.astype(np.uint64), side="right")
                - 1
            ]
            assert np.array_equal(merged.values(index)[slots], expected)

    def test_interval_count_is_union_of_breakpoints(self):
        a = (np.array([0, 100, 200], dtype=np.uint64), np.arange(3))
        b = (np.array([0, 150, 200], dtype=np.uint64), np.arange(3) + 10)
        merged = MergedPartition([a, b])
        assert merged.num_intervals == 4  # {0, 100, 150, 200}
        assert merged.values(0).tolist() == [0, 1, 1, 2]
        assert merged.values(1).tolist() == [10, 10, 11, 12]

    def test_rejects_bad_components(self):
        good = (np.array([0], dtype=np.uint64), np.array([1]))
        with pytest.raises(ValueError):
            MergedPartition([])
        with pytest.raises(ValueError):
            MergedPartition(
                [good, (np.array([5], dtype=np.uint64), np.array([1]))]
            )
        with pytest.raises(ValueError):
            MergedPartition(
                [(np.array([0, 9], dtype=np.uint64), np.array([1]))]
            )
