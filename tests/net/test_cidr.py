"""Tests for repro.net.cidr."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.address import parse_addr
from repro.net.cidr import BlockSet, CIDRBlock


class TestCIDRBlock:
    def test_parse_and_str_roundtrip(self):
        block = CIDRBlock.parse("192.168.0.0/16")
        assert str(block) == "192.168.0.0/16"
        assert block.size == 65536

    def test_rejects_misaligned_network(self):
        with pytest.raises(ValueError):
            CIDRBlock(parse_addr("192.168.0.1"), 16)

    def test_rejects_bad_prefix_len(self):
        with pytest.raises(ValueError):
            CIDRBlock(0, 33)

    def test_parse_requires_prefix(self):
        with pytest.raises(ValueError):
            CIDRBlock.parse("10.0.0.0")

    def test_containing_masks_host_bits(self):
        block = CIDRBlock.containing(parse_addr("10.1.2.3"), 8)
        assert block == CIDRBlock.parse("10.0.0.0/8")

    def test_containing_zero_prefix_is_whole_space(self):
        block = CIDRBlock.containing(parse_addr("200.1.2.3"), 0)
        assert block.size == 2**32

    def test_first_last(self):
        block = CIDRBlock.parse("10.0.0.0/24")
        assert block.first == parse_addr("10.0.0.0")
        assert block.last == parse_addr("10.0.0.255")

    def test_contains_scalar(self):
        block = CIDRBlock.parse("10.0.0.0/8")
        assert parse_addr("10.255.0.1") in block
        assert parse_addr("11.0.0.0") not in block

    def test_contains_array(self):
        block = CIDRBlock.parse("10.0.0.0/8")
        addrs = np.array(
            [parse_addr("9.255.255.255"), parse_addr("10.0.0.0"), parse_addr("10.255.255.255")],
            dtype=np.uint32,
        )
        assert list(block.contains_array(addrs)) == [False, True, True]

    def test_subblocks(self):
        block = CIDRBlock.parse("10.0.0.0/22")
        subs = list(block.subblocks(24))
        assert len(subs) == 4
        assert subs[0] == CIDRBlock.parse("10.0.0.0/24")
        assert subs[-1] == CIDRBlock.parse("10.0.3.0/24")

    def test_subblocks_rejects_larger(self):
        with pytest.raises(ValueError):
            list(CIDRBlock.parse("10.0.0.0/24").subblocks(16))

    def test_slash24_prefixes(self):
        block = CIDRBlock.parse("10.0.0.0/22")
        prefixes = block.slash24_prefixes()
        assert len(prefixes) == 4
        assert prefixes[0] == parse_addr("10.0.0.0") >> 8

    def test_slash24_prefixes_small_block(self):
        block = CIDRBlock.parse("10.0.0.128/25")
        prefixes = block.slash24_prefixes()
        assert len(prefixes) == 1

    def test_overlaps(self):
        a = CIDRBlock.parse("10.0.0.0/8")
        b = CIDRBlock.parse("10.5.0.0/16")
        c = CIDRBlock.parse("11.0.0.0/8")
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)

    def test_random_addresses_inside(self):
        block = CIDRBlock.parse("172.16.0.0/12")
        rng = np.random.default_rng(7)
        addrs = block.random_addresses(1000, rng)
        assert addrs.dtype == np.uint32
        assert block.contains_array(addrs).all()

    def test_addresses_materializes_small_block(self):
        block = CIDRBlock.parse("10.0.0.0/24")
        addrs = block.addresses()
        assert len(addrs) == 256
        assert addrs[0] == block.first and addrs[-1] == block.last

    def test_addresses_refuses_huge_block(self):
        with pytest.raises(ValueError):
            CIDRBlock.parse("10.0.0.0/8").addresses()

    def test_ordering_is_by_network(self):
        blocks = [CIDRBlock.parse("11.0.0.0/8"), CIDRBlock.parse("10.0.0.0/24")]
        assert sorted(blocks)[0].network == parse_addr("10.0.0.0")


class TestBlockSet:
    def test_membership_across_blocks(self):
        bs = BlockSet.parse(["10.0.0.0/8", "192.168.0.0/16"])
        assert parse_addr("10.1.2.3") in bs
        assert parse_addr("192.168.255.1") in bs
        assert parse_addr("11.0.0.1") not in bs

    def test_contains_array(self):
        bs = BlockSet.parse(["10.0.0.0/8"])
        addrs = np.array([parse_addr("10.0.0.1"), parse_addr("1.2.3.4")], dtype=np.uint32)
        assert list(bs.contains_array(addrs)) == [True, False]

    def test_empty_set(self):
        bs = BlockSet()
        assert len(bs) == 0
        assert bs.address_count == 0
        assert parse_addr("1.2.3.4") not in bs
        assert not bs.contains_array(np.array([1, 2], dtype=np.uint32)).any()

    def test_merges_adjacent_blocks(self):
        bs = BlockSet.parse(["10.0.0.0/24", "10.0.1.0/24"])
        assert bs.address_count == 512

    def test_overlapping_blocks_count_once(self):
        bs = BlockSet.parse(["10.0.0.0/8", "10.1.0.0/16"])
        assert bs.address_count == CIDRBlock.parse("10.0.0.0/8").size

    def test_deduplicates(self):
        bs = BlockSet.parse(["10.0.0.0/8", "10.0.0.0/8"])
        assert len(bs) == 1

    def test_union(self):
        a = BlockSet.parse(["10.0.0.0/8"])
        b = BlockSet.parse(["192.168.0.0/16"])
        u = a.union(b)
        assert parse_addr("10.0.0.1") in u and parse_addr("192.168.0.1") in u

    def test_repr_is_informative(self):
        bs = BlockSet.parse(["10.0.0.0/8"])
        assert "10.0.0.0/8" in repr(bs)


@given(st.integers(0, 2**32 - 1), st.integers(0, 32))
def test_containing_block_contains_address(addr, prefix_len):
    block = CIDRBlock.containing(addr, prefix_len)
    assert addr in block
    assert block.size == 2 ** (32 - prefix_len)


@given(st.lists(st.tuples(st.integers(0, 2**32 - 1), st.integers(8, 32)), max_size=8))
def test_blockset_membership_matches_individual_blocks(specs):
    blocks = [CIDRBlock.containing(addr, plen) for addr, plen in specs]
    bs = BlockSet(blocks)
    rng = np.random.default_rng(0)
    probes = rng.integers(0, 2**32, size=256, dtype=np.uint64).astype(np.uint32)
    expected = np.zeros(len(probes), dtype=bool)
    for block in blocks:
        expected |= block.contains_array(probes)
    assert (bs.contains_array(probes) == expected).all()
