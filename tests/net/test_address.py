"""Tests for repro.net.address."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.address import (
    MAX_ADDRESS,
    format_addr,
    format_addrs,
    from_octets,
    octets,
    parse_addr,
    parse_addrs,
)


class TestParseAddr:
    def test_parses_simple_address(self):
        assert parse_addr("1.2.3.4") == (1 << 24) | (2 << 16) | (3 << 8) | 4

    def test_parses_zero(self):
        assert parse_addr("0.0.0.0") == 0

    def test_parses_max(self):
        assert parse_addr("255.255.255.255") == MAX_ADDRESS

    def test_strips_whitespace(self):
        assert parse_addr("  10.0.0.1\n") == parse_addr("10.0.0.1")

    @pytest.mark.parametrize(
        "bad", ["1.2.3", "1.2.3.4.5", "256.0.0.0", "-1.0.0.0", "a.b.c.d", ""]
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_addr(bad)


class TestFormatAddr:
    def test_formats_known_value(self):
        assert format_addr(3232235521) == "192.168.0.1"

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            format_addr(-1)

    def test_rejects_too_large(self):
        with pytest.raises(ValueError):
            format_addr(2**32)

    def test_accepts_numpy_scalar(self):
        assert format_addr(np.uint32(257)) == "0.0.1.1"


class TestOctets:
    def test_octets_roundtrip(self):
        addr = parse_addr("10.20.30.40")
        assert octets(addr) == (10, 20, 30, 40)
        assert from_octets(*octets(addr)) == addr

    def test_from_octets_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            from_octets(0, 0, 0, 256)


class TestArrayConversions:
    def test_parse_addrs_returns_uint32(self):
        arr = parse_addrs(["0.0.0.1", "255.255.255.255"])
        assert arr.dtype == np.uint32
        assert list(arr) == [1, MAX_ADDRESS]

    def test_format_addrs_roundtrip(self):
        texts = ["1.2.3.4", "200.100.50.25"]
        assert format_addrs(parse_addrs(texts)) == texts


@given(st.integers(min_value=0, max_value=MAX_ADDRESS))
def test_format_parse_roundtrip(addr):
    assert parse_addr(format_addr(addr)) == addr


@given(
    st.integers(0, 255), st.integers(0, 255), st.integers(0, 255), st.integers(0, 255)
)
def test_octet_roundtrip_property(a, b, c, d):
    assert octets(from_octets(a, b, c, d)) == (a, b, c, d)
