"""Tests for repro.net.prefixtree."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.net.address import parse_addr
from repro.net.cidr import CIDRBlock
from repro.net.prefixtree import PrefixTree


class TestPrefixTree:
    def test_empty_lookup_is_none(self):
        tree = PrefixTree()
        assert tree.lookup(parse_addr("1.2.3.4")) is None
        assert len(tree) == 0

    def test_single_prefix(self):
        tree = PrefixTree()
        tree.insert(CIDRBlock.parse("10.0.0.0/8"), "ten")
        assert tree.lookup(parse_addr("10.1.2.3")) == "ten"
        assert tree.lookup(parse_addr("11.0.0.0")) is None

    def test_longest_prefix_wins(self):
        tree = PrefixTree()
        tree.insert(CIDRBlock.parse("10.0.0.0/8"), "short")
        tree.insert(CIDRBlock.parse("10.1.0.0/16"), "long")
        assert tree.lookup(parse_addr("10.1.2.3")) == "long"
        assert tree.lookup(parse_addr("10.2.0.1")) == "short"

    def test_default_route(self):
        tree = PrefixTree()
        tree.insert(CIDRBlock.parse("0.0.0.0/0"), "default")
        tree.insert(CIDRBlock.parse("192.168.0.0/16"), "private")
        assert tree.lookup(parse_addr("8.8.8.8")) == "default"
        assert tree.lookup(parse_addr("192.168.1.1")) == "private"

    def test_replace_value(self):
        tree = PrefixTree()
        block = CIDRBlock.parse("10.0.0.0/8")
        tree.insert(block, 1)
        tree.insert(block, 2)
        assert tree.lookup(parse_addr("10.0.0.1")) == 2
        assert len(tree) == 1

    def test_host_route(self):
        tree = PrefixTree()
        tree.insert(CIDRBlock(parse_addr("10.0.0.5"), 32), "host")
        assert tree.lookup(parse_addr("10.0.0.5")) == "host"
        assert tree.lookup(parse_addr("10.0.0.6")) is None

    def test_lookup_array_with_default(self):
        tree = PrefixTree()
        tree.insert(CIDRBlock.parse("10.0.0.0/8"), "ten")
        addrs = np.array(
            [parse_addr("10.0.0.1"), parse_addr("11.0.0.1")], dtype=np.uint32
        )
        assert tree.lookup_array(addrs, default="none") == ["ten", "none"]

    def test_items_returns_all_prefixes(self):
        tree = PrefixTree()
        blocks = ["10.0.0.0/8", "10.1.0.0/16", "192.168.0.0/16"]
        for i, text in enumerate(blocks):
            tree.insert(CIDRBlock.parse(text), i)
        found = {str(block): value for block, value in tree.items()}
        assert found == {"10.0.0.0/8": 0, "10.1.0.0/16": 1, "192.168.0.0/16": 2}


@given(
    st.lists(
        st.tuples(st.integers(0, 2**32 - 1), st.integers(0, 32)),
        min_size=1,
        max_size=10,
    ),
    st.integers(0, 2**32 - 1),
)
def test_lookup_matches_linear_scan(specs, probe):
    """Longest-prefix match agrees with a brute-force scan of all rules."""
    tree = PrefixTree()
    blocks = []
    for i, (addr, plen) in enumerate(specs):
        block = CIDRBlock.containing(addr, plen)
        blocks.append((block, i))
        tree.insert(block, i)
    # Brute force: among matching blocks, the longest prefix inserted
    # last wins (insert replaces, so keep the final value per block).
    final = {}
    for block, value in blocks:
        final[block] = value
    matching = [(block.prefix_len, value) for block, value in final.items() if probe in block]
    expected = None
    if matching:
        best_len = max(plen for plen, _ in matching)
        expected = next(v for plen, v in matching if plen == best_len)
    assert tree.lookup(probe) == expected
