"""Tests for repro.net.special."""

import numpy as np

from repro.net.address import parse_addr, parse_addrs
from repro.net.special import (
    LOOPBACK,
    MULTICAST,
    PRIVATE_192,
    PRIVATE_BLOCKS,
    RESERVED_CLASS_E,
    is_private,
    is_routable,
)


class TestPrivateRanges:
    def test_rfc1918_blocks_present(self):
        assert parse_addr("10.0.0.1") in PRIVATE_BLOCKS
        assert parse_addr("172.16.0.1") in PRIVATE_BLOCKS
        assert parse_addr("172.31.255.255") in PRIVATE_BLOCKS
        assert parse_addr("192.168.1.1") in PRIVATE_BLOCKS

    def test_non_private_excluded(self):
        assert parse_addr("11.0.0.1") not in PRIVATE_BLOCKS
        assert parse_addr("172.32.0.1") not in PRIVATE_BLOCKS
        assert parse_addr("192.169.0.1") not in PRIVATE_BLOCKS

    def test_192_168_is_only_private_16_in_192_8(self):
        # The paper's CodeRedII hotspot hinges on this fact: 192.168/16
        # is the only private /16 inside 192/8.
        assert PRIVATE_192.prefix_len == 16
        assert parse_addr("192.167.0.1") not in PRIVATE_BLOCKS
        assert parse_addr("192.169.0.1") not in PRIVATE_BLOCKS

    def test_is_private_vectorized(self):
        addrs = parse_addrs(["10.0.0.1", "8.8.8.8", "192.168.0.100"])
        assert list(is_private(addrs)) == [True, False, True]


class TestRoutability:
    def test_public_unicast_is_routable(self):
        addrs = parse_addrs(["8.8.8.8", "130.126.0.1"])
        assert is_routable(addrs).all()

    def test_special_ranges_not_routable(self):
        addrs = parse_addrs(["127.0.0.1", "224.0.0.1", "240.0.0.1", "0.0.0.1"])
        assert not is_routable(addrs).any()

    def test_private_not_publicly_routable(self):
        addrs = parse_addrs(["10.1.1.1", "192.168.0.1"])
        assert not is_routable(addrs).any()

    def test_block_constants(self):
        assert parse_addr("127.1.2.3") in LOOPBACK
        assert parse_addr("239.255.255.255") in MULTICAST
        assert parse_addr("255.0.0.0") in RESERVED_CLASS_E

    def test_is_routable_returns_bool_array(self):
        out = is_routable(np.array([0], dtype=np.uint32))
        assert out.dtype == bool
