"""Tests for repro.worms.nimda."""

import numpy as np
import pytest

from repro.net.address import parse_addr
from repro.worms.nimda import P_RANDOM, P_SAME_8, P_SAME_16, NimdaWorm


class TestNimdaWorm:
    def test_documented_mix(self):
        assert P_SAME_16 == 0.5  # bitwise
        assert P_SAME_8 == 0.25  # bitwise
        assert P_RANDOM == 0.25  # bitwise
        assert P_SAME_16 + P_SAME_8 + P_RANDOM == 1.0  # bitwise

    def test_measured_fractions(self):
        worm = NimdaWorm()
        source = parse_addr("141.212.7.7")
        targets = worm.single_host_targets(source, 100_000, np.random.default_rng(0))
        frac_16 = ((targets >> 16) == (source >> 16)).mean()
        frac_8 = ((targets >> 24) == (source >> 24)).mean()
        assert frac_16 == pytest.approx(0.5, abs=0.01)
        assert frac_8 == pytest.approx(0.75, abs=0.01)

    def test_tighter_than_codered2(self):
        # Nimda concentrates on the /16 where CRII concentrates on the
        # /8 — its hotspots form closer to the infected host.
        from repro.worms.codered2 import CodeRedIIWorm

        source = parse_addr("141.212.7.7")
        rng = np.random.default_rng(1)
        nimda = NimdaWorm().single_host_targets(source, 50_000, rng)
        crii = CodeRedIIWorm().single_host_targets(source, 50_000, rng)
        nimda_16 = ((nimda >> 16) == (source >> 16)).mean()
        crii_16 = ((crii >> 16) == (source >> 16)).mean()
        assert nimda_16 > crii_16

    def test_name(self):
        assert NimdaWorm().name == "nimda"
