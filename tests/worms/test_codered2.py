"""Tests for repro.worms.codered2."""

import numpy as np
import pytest

from repro.net.address import parse_addr
from repro.worms.codered2 import P_RANDOM, P_SAME_8, P_SAME_16, CodeRedIIWorm


@pytest.fixture(scope="module")
def big_trace():
    worm = CodeRedIIWorm()
    source = parse_addr("141.212.5.5")
    targets = worm.single_host_targets(source, 300_000, np.random.default_rng(0))
    return source, targets


class TestCodeRedIIProbabilities:
    def test_constants_match_disassembly(self):
        assert P_SAME_8 == 0.5  # bitwise
        assert P_SAME_16 == 0.375  # bitwise
        assert P_RANDOM == 0.125  # bitwise
        assert P_SAME_8 + P_SAME_16 + P_RANDOM == 1.0  # bitwise

    def test_same_16_fraction(self, big_trace):
        source, targets = big_trace
        frac = ((targets >> 16) == (source >> 16)).mean()
        assert frac == pytest.approx(P_SAME_16, abs=0.01)

    def test_same_8_fraction(self, big_trace):
        # /8 matches come from both the /8 and /16 branches.  The
        # random branch loses ~13% of its draws to the loopback /
        # multicast redraw, so conditioned on an emitted probe the
        # local fraction is slightly above 0.875:
        # (0.875) / (0.875 + 0.125 * 222/256) ≈ 0.8898.
        source, targets = big_trace
        frac = ((targets >> 24) == (source >> 24)).mean()
        expected = 0.875 / (0.875 + 0.125 * 222 / 256)
        assert frac == pytest.approx(expected, abs=0.01)

    def test_random_fraction_only_12_5_percent(self, big_trace):
        # "a completely random target address is chosen only 12.5% of
        # the time" — the branch probability.  Measured on emitted
        # probes (after redraws of excluded targets) the fraction that
        # leave the source /8 is 0.125 * (222/256) / normalizer.
        source, targets = big_trace
        outside = ((targets >> 24) != (source >> 24)).mean()
        expected = (0.125 * 222 / 256) / (0.875 + 0.125 * 222 / 256)
        assert outside == pytest.approx(expected, abs=0.01)


class TestCodeRedIIExclusions:
    def test_never_targets_loopback(self, big_trace):
        _, targets = big_trace
        assert not ((targets >> 24) == 127).any()

    def test_never_targets_multicast_or_class_e(self, big_trace):
        _, targets = big_trace
        assert not ((targets >> 24) >= 224).any()

    def test_never_targets_own_address(self, big_trace):
        source, targets = big_trace
        assert not (targets == source).any()

    def test_loopback_source_excludes_own_space_safely(self):
        # A source inside an excluded /8 would redraw its local-pref
        # probes; ensure generation still terminates and emits no
        # loopback targets.
        worm = CodeRedIIWorm()
        targets = worm.single_host_targets(
            parse_addr("127.0.0.1"), 5_000, np.random.default_rng(1)
        )
        assert not ((targets >> 24) == 127).any()


class TestNATLeak:
    def test_private_source_leaks_to_192_8(self):
        # The Figure 4 mechanism: a host NATed at 192.168.0.100
        # prefers 192/8 and its probes leak all over the real 192/8.
        worm = CodeRedIIWorm()
        targets = worm.single_host_targets(
            parse_addr("192.168.0.100"), 100_000, np.random.default_rng(2)
        )
        in_192 = (targets >> 24) == 192
        in_192_168 = (targets >> 16) == ((192 << 8) | 168)
        leaked = in_192 & ~in_192_168
        # Half the probes stay in 192/8 via the /8 branch, and almost
        # all of those land outside 192.168/16 (255/256 of the /16s).
        assert leaked.mean() > 0.45

    def test_public_source_rarely_hits_192_8(self):
        worm = CodeRedIIWorm()
        targets = worm.single_host_targets(
            parse_addr("8.8.8.8"), 100_000, np.random.default_rng(3)
        )
        assert ((targets >> 24) == 192).mean() < 0.005


class TestBatchGeneration:
    def test_shape(self):
        worm = CodeRedIIWorm()
        state = worm.new_state()
        rng = np.random.default_rng(0)
        worm.add_hosts(state, np.array([1, 2, 3, 4], dtype=np.uint32), rng)
        assert worm.generate(state, 9, rng).shape == (4, 9)

    def test_rows_track_sources(self):
        worm = CodeRedIIWorm()
        state = worm.new_state()
        rng = np.random.default_rng(1)
        sources = np.array(
            [parse_addr("10.0.0.1"), parse_addr("20.0.0.1")], dtype=np.uint32
        )
        worm.add_hosts(state, sources, rng)
        targets = worm.generate(state, 2_000, rng)
        assert ((targets[0] >> 24) == 10).mean() > 0.8
        assert ((targets[1] >> 24) == 20).mean() > 0.8
