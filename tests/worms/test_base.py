"""Tests for repro.worms.base."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.worms.base import WormState, uniform_random_addresses
from repro.worms.uniform import UniformScanWorm


class TestWormState:
    def test_starts_empty(self):
        state = WormState()
        assert state.num_hosts == 0
        assert len(state.addresses()) == 0

    def test_append_preserves_order(self):
        state = WormState()
        state._append_addresses(np.array([5, 1], dtype=np.uint32))
        state._append_addresses(np.array([9], dtype=np.uint32))
        assert list(state.addresses()) == [5, 1, 9]

    def test_addresses_dtype(self):
        state = WormState()
        state._append_addresses(np.array([2**32 - 1], dtype=np.uint32))
        assert state.addresses().dtype == np.uint32


class TestUniformRandomAddresses:
    def test_dtype_and_shape(self):
        out = uniform_random_addresses(1000, np.random.default_rng(0))
        assert out.dtype == np.uint32
        assert out.shape == (1000,)

    def test_covers_full_range(self):
        out = uniform_random_addresses(100_000, np.random.default_rng(1))
        assert out.min() < 2**28
        assert out.max() > 2**32 - 2**28

    def test_zero_count(self):
        assert len(uniform_random_addresses(0, np.random.default_rng(0))) == 0


class TestSingleHostHarness:
    def test_matches_batch_row(self):
        worm = UniformScanWorm()
        rng_a = np.random.default_rng(3)
        rng_b = np.random.default_rng(3)
        single = worm.single_host_targets(7, 50, rng_a)
        state = worm.new_state()
        worm.add_hosts(state, np.array([7], dtype=np.uint32), rng_b)
        batch = worm.generate(state, 50, rng_b)[0]
        assert (single == batch).all()


@settings(max_examples=20)
@given(st.integers(1, 64), st.integers(1, 32))
def test_generate_shape_property(num_hosts, scans):
    worm = UniformScanWorm()
    state = worm.new_state()
    rng = np.random.default_rng(0)
    worm.add_hosts(state, np.arange(num_hosts, dtype=np.uint32), rng)
    targets = worm.generate(state, scans, rng)
    assert targets.shape == (num_hosts, scans)
    assert targets.dtype == np.uint32
