"""Tests for repro.worms.witty."""

import numpy as np
import pytest

from repro.prng.msrand import MSRand
from repro.worms.witty import (
    WittyWorm,
    reachable_low_halves,
    unreachable_fraction,
    unreachable_fraction_estimate,
    witty_addresses_from_states,
)


class TestAddressConstruction:
    def test_matches_scalar_reference(self):
        seed = 123456
        reference = MSRand(seed=seed)
        # Two raw state advances per address.
        reference.rand()
        s1 = reference.state
        reference.rand()
        s2 = reference.state
        expected = (s1 & 0xFFFF0000) | (s2 >> 16)
        addrs, _ = witty_addresses_from_states(np.array([seed], dtype=np.uint64))
        assert int(addrs[0]) == expected

    def test_state_advances_two_steps(self):
        seed = 42
        _, new_state = witty_addresses_from_states(np.array([seed], dtype=np.uint64))
        reference = MSRand(seed=seed)
        reference.rand()
        reference.rand()
        assert int(new_state[0]) == reference.state


class TestWittyWorm:
    def test_shape_and_dtype(self):
        worm = WittyWorm()
        state = worm.new_state()
        rng = np.random.default_rng(0)
        worm.add_hosts(state, np.arange(3, dtype=np.uint32), rng)
        targets = worm.generate(state, 10, rng)
        assert targets.shape == (3, 10)
        assert targets.dtype == np.uint32

    def test_stream_continuity(self):
        worm = WittyWorm()
        state = worm.new_state()
        rng = np.random.default_rng(1)
        worm.add_hosts(state, np.array([0], dtype=np.uint32), rng)
        seed = int(state.lcg_states[0])
        first = worm.generate(state, 5, rng)[0]
        second = worm.generate(state, 5, rng)[0]
        # Replaying 10 probes from the recorded seed reproduces both.
        replay_state = np.array([seed], dtype=np.uint64)
        replay = []
        for _ in range(10):
            addrs, replay_state = witty_addresses_from_states(replay_state)
            replay.append(int(addrs[0]))
        assert replay == list(first) + list(second)


class TestStructuralBlindSpots:
    def test_about_one_over_e_unreachable(self):
        # The Kumar et al. structure: the state→address map behaves
        # like a random function, leaving ≈ 1/e of the space never
        # generated.
        fraction = unreachable_fraction_estimate(sample_bits=20)
        assert fraction == pytest.approx(np.exp(-1), abs=0.03)

    def test_exact_per_slash16_blind_spots(self):
        # For a fixed high half, the reachable low halves are a fixed
        # lattice covering ~89.95% of the /16: the remaining ~10.05%
        # is *never* probed by any Witty instance — a permanent
        # structural blind spot, identical in size (the deficit is a
        # property of the multiplier alone) for every /16.
        fractions = [unreachable_fraction(h) for h in (0, 0x8D0A, 0xFFFF)]
        for fraction in fractions:
            assert fraction == pytest.approx(0.1005, abs=0.001)
        assert len(set(fractions)) == 1

    def test_reachable_set_is_deterministic(self):
        assert (
            reachable_low_halves(0x1234) == reachable_low_halves(0x1234)
        ).all()

    def test_blind_spots_differ_across_slash16s(self):
        # Different /16s have different (but equally sized) blind
        # spot sets — the non-uniformity is structured, not global.
        set_a = set(reachable_low_halves(1).tolist())
        set_b = set(reachable_low_halves(2).tolist())
        assert set_a != set_b

    def test_rejects_bad_high_half(self):
        with pytest.raises(ValueError):
            reachable_low_halves(70_000)
