"""Tests for repro.worms.uniform."""

import numpy as np

from repro.worms.uniform import UniformScanWorm


class TestUniformScanWorm:
    def test_target_shape_and_dtype(self):
        worm = UniformScanWorm()
        state = worm.new_state()
        rng = np.random.default_rng(0)
        worm.add_hosts(state, np.array([1, 2, 3], dtype=np.uint32), rng)
        targets = worm.generate(state, 7, rng)
        assert targets.shape == (3, 7)
        assert targets.dtype == np.uint32

    def test_empty_state_generates_empty(self):
        worm = UniformScanWorm()
        state = worm.new_state()
        targets = worm.generate(state, 5, np.random.default_rng(0))
        assert targets.shape == (0, 5)

    def test_add_hosts_accumulates(self):
        worm = UniformScanWorm()
        state = worm.new_state()
        rng = np.random.default_rng(0)
        worm.add_hosts(state, np.array([1], dtype=np.uint32), rng)
        worm.add_hosts(state, np.array([2, 3], dtype=np.uint32), rng)
        assert state.num_hosts == 3
        assert list(state.addresses()) == [1, 2, 3]

    def test_targets_roughly_uniform_over_octets(self):
        worm = UniformScanWorm()
        targets = worm.single_host_targets(0, 100_000, np.random.default_rng(1))
        first_octets = targets >> 24
        counts = np.bincount(first_octets, minlength=256)
        # Each first octet should get ~390 hits; allow generous slack.
        assert counts.min() > 200
        assert counts.max() < 700

    def test_single_host_targets_default_rng(self):
        worm = UniformScanWorm()
        assert worm.single_host_targets(0, 10).shape == (10,)
