"""Tests for repro.worms.slammer."""

import numpy as np
import pytest

from repro.prng.cycles import cycle_structure
from repro.worms.slammer import (
    SLAMMER_A,
    SLAMMER_B_VALUES,
    SLAMMER_INTENDED_B,
    SQLSORT_IAT_VALUES,
    SlammerWorm,
    address_to_state,
    state_to_address,
)


class TestBValues:
    def test_three_dll_versions(self):
        assert len(SLAMMER_B_VALUES) == 3

    def test_paper_reported_value_present(self):
        # The paper explicitly lists 0x8831fa24 among the possible b's.
        assert 0x8831FA24 in SLAMMER_B_VALUES

    def test_derived_from_iat_entries(self):
        for b, iat in zip(SLAMMER_B_VALUES, SQLSORT_IAT_VALUES):
            assert b == (SLAMMER_INTENDED_B ^ iat) & 0xFFFFFFFF

    def test_each_b_yields_64_cycles(self):
        # "We find that there are 64 cycles for each b value".
        for b in SLAMMER_B_VALUES:
            assert cycle_structure(SLAMMER_A, b, bits=32).total_cycles == 64


class TestByteOrder:
    def test_byteswap_involution(self):
        addrs = np.array([0x01020304, 0, 0xFFFFFFFF, 0xDEADBEEF], dtype=np.uint32)
        assert (address_to_state(state_to_address(addrs)) == addrs).all()

    def test_state_low_byte_becomes_first_octet(self):
        state = np.array([0x04030201], dtype=np.uint32)
        addr = int(state_to_address(state)[0])
        assert addr >> 24 == 0x01

    def test_destination_slash24_pins_cycle_length(self):
        # The block-level hotspot mechanism: all addresses in a
        # destination /24 map to states sharing their low 24 bits, so
        # (almost) the whole /24 lies on cycles of one length.
        structure = cycle_structure(SLAMMER_A, 0x8831FA24, bits=32)
        base = 0x8D0A0500  # 141.10.5.0/24
        addrs = (np.uint32(base) + np.arange(256, dtype=np.uint32)).astype(np.uint32)
        states = address_to_state(addrs)
        lengths = structure.cycle_lengths_of_states(states)
        values, counts = np.unique(lengths, return_counts=True)
        assert counts.max() >= 255  # at most one exceptional address


class TestSlammerWorm:
    def test_targets_follow_lcg_recurrence(self):
        worm = SlammerWorm(b_values=[0x8831FA24], seed_mode="address")
        seed = 123456
        targets = worm.single_host_targets(seed, 10, np.random.default_rng(0))
        state = seed
        for target in targets:
            state = (SLAMMER_A * state + 0x8831FA24) % 2**32
            expected = int(state_to_address(np.array([state], dtype=np.uint32))[0])
            assert target == expected

    def test_state_persists_across_generate_calls(self):
        worm = SlammerWorm(b_values=[0x8831FA24], seed_mode="address")
        state = worm.new_state()
        rng = np.random.default_rng(0)
        worm.add_hosts(state, np.array([7], dtype=np.uint32), rng)
        first = worm.generate(state, 5, rng)[0]
        second = worm.generate(state, 5, rng)[0]
        reference = worm.single_host_targets(7, 10, np.random.default_rng(0))
        assert list(np.concatenate([first, second])) == list(reference)

    def test_host_stuck_in_short_cycle_repeats_targets(self):
        # Find a short-cycle member and confirm the scan stream loops
        # over a handful of addresses — the "targeted DoS" behaviour.
        structure = cycle_structure(SLAMMER_A, 0x8831FA24, bits=32)
        short = next(
            info for info in structure.cycles if 1 < info.length <= 64
        )
        worm = SlammerWorm(b_values=[0x8831FA24], seed_mode="address")
        targets = worm.single_host_targets(
            short.representative, short.length * 3, np.random.default_rng(0)
        )
        assert len(np.unique(targets)) == short.length

    def test_random_seed_mode_differs_across_hosts(self):
        worm = SlammerWorm()
        state = worm.new_state()
        rng = np.random.default_rng(1)
        worm.add_hosts(state, np.zeros(50, dtype=np.uint32), rng)
        targets = worm.generate(state, 1, rng)[:, 0]
        assert len(np.unique(targets)) > 40

    def test_b_choice_spread_over_versions(self):
        worm = SlammerWorm()
        state = worm.new_state()
        rng = np.random.default_rng(2)
        worm.add_hosts(state, np.zeros(3_000, dtype=np.uint32), rng)
        values, counts = np.unique(state.b_values, return_counts=True)
        assert len(values) == 3
        assert counts.min() > 800

    def test_rejects_empty_b_values(self):
        with pytest.raises(ValueError):
            SlammerWorm(b_values=[])

    def test_rejects_unknown_seed_mode(self):
        with pytest.raises(ValueError):
            SlammerWorm(seed_mode="bogus")

    def test_aggregate_bias_toward_long_cycles(self):
        # Random seeds land in cycles proportionally to cycle length,
        # so almost all hosts end up on the two 2^30 cycles.
        structure = cycle_structure(SLAMMER_A, 0x8831FA24, bits=32)
        worm = SlammerWorm(b_values=[0x8831FA24])
        state = worm.new_state()
        rng = np.random.default_rng(3)
        worm.add_hosts(state, np.zeros(2_000, dtype=np.uint32), rng)
        lengths = structure.cycle_lengths_of_states(state.lcg_states)
        assert (lengths >= 2**29).mean() > 0.7
