"""Tests for repro.worms.blaster."""

import numpy as np
import pytest

from repro.net.address import parse_addr
from repro.prng.entropy import BootTimeModel
from repro.prng.msrand import MSRand
from repro.worms.blaster import (
    BlasterWorm,
    blaster_start_for_seed,
    blaster_starts_for_seeds,
)


class TestSeedToStartMapping:
    def test_matches_scalar_msrand(self):
        # Reimplement the mapping with the scalar CRT rand() and check
        # the vectorized version agrees.
        seed = 30_000
        rng = MSRand(seed=seed)
        decision_local = (rng.rand() % 10) < 4
        a = rng.rand() % 254 + 1
        b = rng.rand() % 254
        c = rng.rand() % 254
        start, is_local = blaster_start_for_seed(seed, source=0)
        assert is_local == decision_local
        if not is_local:
            assert start == (a << 24) | (b << 16) | (c << 8)

    def test_deterministic(self):
        assert blaster_start_for_seed(1234) == blaster_start_for_seed(1234)

    def test_random_start_has_zero_d_octet(self):
        seeds = np.arange(1_000, 2_000, dtype=np.uint64)
        starts, is_local = blaster_starts_for_seeds(seeds)
        assert (starts[~is_local] & 0xFF == 0).all()

    def test_random_start_first_octet_in_range(self):
        seeds = np.arange(0, 50_000, 17, dtype=np.uint64)
        starts, is_local = blaster_starts_for_seeds(seeds)
        first = starts[~is_local] >> 24
        assert first.min() >= 1
        assert first.max() <= 254

    def test_local_fraction_about_40_percent(self):
        seeds = np.arange(0, 200_000, dtype=np.uint64)
        _, is_local = blaster_starts_for_seeds(seeds)
        assert is_local.mean() == pytest.approx(0.4, abs=0.02)

    def test_local_start_keeps_own_slash16(self):
        source = parse_addr("141.212.55.99")
        seeds = np.arange(0, 10_000, dtype=np.uint64)
        sources = np.full(len(seeds), source, dtype=np.uint32)
        starts, is_local = blaster_starts_for_seeds(seeds, sources)
        local_starts = starts[is_local]
        assert ((local_starts >> 16) == (source >> 16)).all()

    def test_local_start_backs_off_c_octet(self):
        source = parse_addr("141.212.55.99")  # own C octet 55 > 20
        seeds = np.arange(0, 20_000, dtype=np.uint64)
        sources = np.full(len(seeds), source, dtype=np.uint32)
        starts, is_local = blaster_starts_for_seeds(seeds, sources)
        c_octets = (starts[is_local] >> 8) & 0xFF
        assert (c_octets <= 55).all()
        assert (c_octets > 55 - 20).all()

    def test_small_c_octet_not_reduced(self):
        source = parse_addr("141.212.5.99")  # own C octet 5 <= 20
        starts, is_local = blaster_starts_for_seeds(
            np.arange(0, 10_000, dtype=np.uint64),
            np.full(10_000, source, dtype=np.uint32),
        )
        c_octets = (starts[is_local] >> 8) & 0xFF
        assert (c_octets == 5).all()

    def test_narrow_seed_window_gives_clustered_starts(self):
        # The Figure 1 mechanism: millions of hosts share the few
        # thousand seeds in the boot window, so the population's start
        # /24s collapse onto a small repeated set, while uniformly
        # seeded hosts get fresh start /24s each.
        rng = np.random.default_rng(0)
        model = BootTimeModel()
        boot_seeds = model.sample_seeds(50_000, rng).astype(np.uint64)
        starts_b, local_b = blaster_starts_for_seeds(boot_seeds)
        clustered = len(np.unique(starts_b[~local_b] >> 8))
        uniform_seeds = rng.integers(0, 2**32, size=50_000, dtype=np.uint64)
        starts_u, local_u = blaster_starts_for_seeds(uniform_seeds)
        spread = len(np.unique(starts_u[~local_u] >> 8))
        assert clustered < spread / 3


class TestBlasterWorm:
    def test_sequential_scanning(self):
        worm = BlasterWorm()
        targets = worm.single_host_targets(
            parse_addr("10.0.0.1"), 100, np.random.default_rng(0)
        )
        diffs = np.diff(targets.astype(np.int64)) % 2**32
        assert (diffs == 1).all()

    def test_cursor_persists_across_calls(self):
        worm = BlasterWorm()
        state = worm.new_state()
        rng = np.random.default_rng(0)
        worm.add_hosts(state, np.array([parse_addr("10.0.0.1")], dtype=np.uint32), rng)
        first = worm.generate(state, 10, rng)[0]
        second = worm.generate(state, 10, rng)[0]
        assert second[0] == (int(first[-1]) + 1) % 2**32

    def test_start_recorded_per_host(self):
        worm = BlasterWorm()
        state = worm.new_state()
        rng = np.random.default_rng(1)
        worm.add_hosts(state, np.full(100, parse_addr("10.0.0.1"), dtype=np.uint32), rng)
        assert len(state.seeds) == 100
        assert len(state.started_local) == 100
        assert 0.2 < state.started_local.mean() < 0.6

    def test_boot_model_restricts_seed_range(self):
        model = BootTimeModel()
        worm = BlasterWorm(boot_model=model)
        state = worm.new_state()
        worm.add_hosts(
            state,
            np.zeros(1_000, dtype=np.uint32),
            np.random.default_rng(2),
        )
        low, high = model.seed_probability_window()
        assert ((state.seeds >= low) & (state.seeds <= high)).mean() > 0.99

    def test_wraps_around_address_space(self):
        worm = BlasterWorm()
        state = worm.new_state()
        rng = np.random.default_rng(3)
        worm.add_hosts(state, np.array([1], dtype=np.uint32), rng)
        state.cursors[0] = 2**32 - 2
        targets = worm.generate(state, 4, rng)[0]
        assert list(targets) == [2**32 - 2, 2**32 - 1, 0, 1]
