"""Tests for the hit-list-confined CodeRedII worm (Figure 5 threat)."""

import numpy as np
import pytest

from repro.net.address import parse_addr
from repro.net.cidr import BlockSet
from repro.worms.hitlist import HitListCodeRedIIWorm


@pytest.fixture()
def worm():
    return HitListCodeRedIIWorm(
        BlockSet.parse(["60.5.0.0/16", "60.9.0.0/16", "70.1.0.0/16"])
    )


class TestHitListCodeRedIIWorm:
    def test_rejects_empty_hitlist(self):
        with pytest.raises(ValueError):
            HitListCodeRedIIWorm(BlockSet())

    def test_never_leaves_hitlist(self, worm):
        source = parse_addr("60.5.7.7")
        targets = worm.single_host_targets(source, 50_000, np.random.default_rng(0))
        assert worm.hitlist.contains_array(targets).all()

    def test_keeps_local_preference_within_list(self, worm):
        # The /16 branch survives the confinement: the host's own /16
        # is in the list, so ~3/8 of probes stay there.
        source = parse_addr("60.5.7.7")
        targets = worm.single_host_targets(source, 100_000, np.random.default_rng(1))
        same_16 = ((targets >> 16) == (source >> 16)).mean()
        assert same_16 > 0.3

    def test_redirected_probes_spread_over_list(self, worm):
        # Probes that would have left the list (e.g. /8 branch into
        # 60.x outside the two listed /16s) come back uniformly, so
        # the third /16 still receives traffic from a 60.x source.
        source = parse_addr("60.5.7.7")
        targets = worm.single_host_targets(source, 100_000, np.random.default_rng(2))
        assert ((targets >> 16) == (70 << 8 | 1)).any()

    def test_name_mentions_prefix_count(self, worm):
        assert "3 prefixes" in worm.name

    def test_batch_rows_confined(self, worm):
        state = worm.new_state()
        rng = np.random.default_rng(3)
        sources = np.array(
            [parse_addr("60.5.0.1"), parse_addr("70.1.0.1")], dtype=np.uint32
        )
        worm.add_hosts(state, sources, rng)
        targets = worm.generate(state, 2_000, rng)
        assert worm.hitlist.contains_array(targets).all()
