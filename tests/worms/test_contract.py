"""Contract tests: every worm model obeys the WormModel interface.

One parametrized matrix instead of per-class copies: shape, dtype,
row-source alignment, state growth, and determinism under a fixed rng
for every registered model.
"""

import numpy as np
import pytest

from repro.net.cidr import BlockSet
from repro.worms import (
    BlasterWorm,
    CodeRedIIWorm,
    HitListCodeRedIIWorm,
    HitListWorm,
    LocalPreferenceWorm,
    PermutationScanWorm,
    SlammerWorm,
    UniformScanWorm,
    WittyWorm,
)
from repro.worms.flash import FlashWorm
from repro.worms.nimda import NimdaWorm

HITLIST = BlockSet.parse(["60.0.0.0/16", "70.0.0.0/16"])
FLASH_TARGETS = (np.uint32(60 << 24) + np.arange(500, dtype=np.uint32)).astype(
    np.uint32
)

WORM_FACTORIES = {
    "uniform": UniformScanWorm,
    "codered2": CodeRedIIWorm,
    "nimda": NimdaWorm,
    "slammer": SlammerWorm,
    "blaster": BlasterWorm,
    "witty": WittyWorm,
    "permutation": PermutationScanWorm,
    "localpref": lambda: LocalPreferenceWorm(0.3, 0.3),
    "hitlist": lambda: HitListWorm(HITLIST),
    "hitlist-crii": lambda: HitListCodeRedIIWorm(HITLIST),
    "flash": lambda: FlashWorm(FLASH_TARGETS, fanout=5),
}

SOURCES = np.array(
    [0x3C000001, 0x3C000002, 0x8DD40707], dtype=np.uint32
)  # 60.0.0.1, 60.0.0.2, 141.212.7.7


@pytest.fixture(params=sorted(WORM_FACTORIES))
def worm(request):
    return WORM_FACTORIES[request.param]()


class TestWormContract:
    def test_shape_dtype_and_growth(self, worm):
        state = worm.new_state()
        rng = np.random.default_rng(0)
        worm.add_hosts(state, SOURCES[:2], rng)
        assert state.num_hosts == 2
        targets = worm.generate(state, 17, rng)
        assert targets.shape == (2, 17)
        assert targets.dtype == np.uint32

        worm.add_hosts(state, SOURCES[2:], rng)
        assert state.num_hosts == 3
        targets = worm.generate(state, 3, rng)
        assert targets.shape == (3, 3)

    def test_rows_align_with_addresses(self, worm):
        state = worm.new_state()
        rng = np.random.default_rng(1)
        worm.add_hosts(state, SOURCES, rng)
        assert (state.addresses() == SOURCES).all()

    def test_empty_state_generates_empty(self, worm):
        state = worm.new_state()
        targets = worm.generate(state, 4, np.random.default_rng(2))
        assert targets.shape == (0, 4)

    def test_deterministic_under_fixed_rng(self, worm, request):
        # Rebuild the worm each run: some models (flash) keep shared
        # per-run state outside WormState.
        factory = WORM_FACTORIES[request.node.callspec.params["worm"]]

        def run_fresh():
            model = factory()
            state = model.new_state()
            rng = np.random.default_rng(3)
            model.add_hosts(state, SOURCES[:1], rng)
            return model.generate(state, 20, rng)

        assert (run_fresh() == run_fresh()).all()
