"""Tests for repro.worms.permutation."""

import numpy as np
import pytest

from repro.worms.permutation import (
    PERMUTATION_A,
    PERMUTATION_B,
    PermutationScanWorm,
)


class TestPermutationScanWorm:
    def test_rejects_non_full_period_params(self):
        with pytest.raises(ValueError):
            PermutationScanWorm(a=3, b=1)  # a not ≡ 1 (mod 4)
        with pytest.raises(ValueError):
            PermutationScanWorm(a=5, b=2)  # even b

    def test_default_params_full_period(self):
        assert PERMUTATION_A % 4 == 1
        assert PERMUTATION_B % 2 == 1

    def test_follows_shared_permutation(self):
        worm = PermutationScanWorm()
        state = worm.new_state()
        rng = np.random.default_rng(0)
        worm.add_hosts(state, np.array([1], dtype=np.uint32), rng)
        start = int(state.positions[0])
        targets = worm.single_targets = worm.generate(state, 5, rng)[0]
        expected = []
        position = start
        for _ in range(5):
            position = (PERMUTATION_A * position + PERMUTATION_B) % 2**32
            expected.append(position)
        assert list(targets) == expected

    def test_no_duplicates_within_long_walk(self):
        # Full-period permutation: a single host never repeats a
        # target within 2^32 steps — check a long prefix.
        worm = PermutationScanWorm()
        targets = worm.single_host_targets(0, 100_000, np.random.default_rng(1))
        assert len(np.unique(targets)) == len(targets)

    def test_hosts_start_at_distinct_points(self):
        worm = PermutationScanWorm()
        state = worm.new_state()
        rng = np.random.default_rng(2)
        worm.add_hosts(state, np.zeros(100, dtype=np.uint32), rng)
        assert len(np.unique(state.positions)) > 95

    def test_population_coverage_beats_uniform_duplicates(self):
        # With k hosts scanning n targets each, permutation scanning
        # has (near) zero cross-host duplicate probability only when
        # walks don't overlap; at small scale just assert coverage is
        # at least as good as uniform's expectation.
        worm = PermutationScanWorm()
        state = worm.new_state()
        rng = np.random.default_rng(3)
        worm.add_hosts(state, np.zeros(50, dtype=np.uint32), rng)
        targets = worm.generate(state, 1_000, rng)
        unique_fraction = len(np.unique(targets)) / targets.size
        assert unique_fraction > 0.999
