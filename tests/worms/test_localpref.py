"""Tests for repro.worms.localpref."""

import numpy as np
import pytest

from repro.net.address import parse_addr
from repro.worms.localpref import LocalPreferenceWorm


class TestLocalPreferenceWorm:
    def test_rejects_bad_probabilities(self):
        with pytest.raises(ValueError):
            LocalPreferenceWorm(0.8, 0.3)
        with pytest.raises(ValueError):
            LocalPreferenceWorm(-0.1, 0.5)

    def test_pure_random_when_zero_preference(self):
        worm = LocalPreferenceWorm(0.0, 0.0)
        source = parse_addr("10.0.0.1")
        targets = worm.single_host_targets(source, 50_000, np.random.default_rng(0))
        same_8 = ((targets >> 24) == 10).mean()
        assert same_8 < 0.02

    def test_full_same_16_preference(self):
        worm = LocalPreferenceWorm(0.0, 1.0)
        source = parse_addr("141.212.0.1")
        targets = worm.single_host_targets(source, 1000, np.random.default_rng(0))
        assert ((targets >> 16) == (source >> 16)).all()

    def test_full_same_8_preference(self):
        worm = LocalPreferenceWorm(1.0, 0.0)
        source = parse_addr("141.212.0.1")
        targets = worm.single_host_targets(source, 1000, np.random.default_rng(0))
        assert ((targets >> 24) == 141).all()

    def test_mixed_preference_fractions(self):
        worm = LocalPreferenceWorm(0.5, 0.25)
        source = parse_addr("141.212.0.1")
        targets = worm.single_host_targets(source, 100_000, np.random.default_rng(2))
        frac_16 = ((targets >> 16) == (source >> 16)).mean()
        frac_8 = ((targets >> 24) == 141).mean()
        # /16 hits come from the 25% same-16 branch (plus negligible
        # random collisions); /8 hits from same-8 + same-16 branches.
        assert frac_16 == pytest.approx(0.25, abs=0.02)
        assert frac_8 == pytest.approx(0.75, abs=0.02)

    def test_low_octets_randomized(self):
        worm = LocalPreferenceWorm(0.0, 1.0)
        source = parse_addr("141.212.7.7")
        targets = worm.single_host_targets(source, 10_000, np.random.default_rng(3))
        low = targets & 0xFFFF
        assert len(np.unique(low)) > 5_000

    def test_per_host_rows_use_own_source(self):
        worm = LocalPreferenceWorm(0.0, 1.0)
        state = worm.new_state()
        rng = np.random.default_rng(4)
        sources = np.array(
            [parse_addr("10.1.0.0"), parse_addr("20.2.0.0")], dtype=np.uint32
        )
        worm.add_hosts(state, sources, rng)
        targets = worm.generate(state, 100, rng)
        assert ((targets[0] >> 16) == (sources[0] >> 16)).all()
        assert ((targets[1] >> 16) == (sources[1] >> 16)).all()

    def test_name_describes_parameters(self):
        assert "0.5" in LocalPreferenceWorm(0.5, 0.25).name
