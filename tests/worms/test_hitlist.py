"""Tests for repro.worms.hitlist."""

import numpy as np
import pytest

from repro.net.cidr import BlockSet, CIDRBlock
from repro.worms.hitlist import (
    HitListWorm,
    build_greedy_hitlist,
    hitlist_from_prefix_specs,
)


class TestHitListWorm:
    def test_targets_stay_inside_hitlist(self):
        hitlist = BlockSet.parse(["10.0.0.0/8", "141.212.0.0/16"])
        worm = HitListWorm(hitlist)
        targets = worm.single_host_targets(0, 10_000, np.random.default_rng(0))
        assert hitlist.contains_array(targets).all()

    def test_accepts_block_iterable(self):
        worm = HitListWorm([CIDRBlock.parse("10.0.0.0/8")])
        assert len(worm.hitlist) == 1

    def test_rejects_empty_hitlist(self):
        with pytest.raises(ValueError):
            HitListWorm(BlockSet())

    def test_covers_all_prefixes(self):
        hitlist = BlockSet.parse(["10.0.0.0/16", "20.0.0.0/16", "30.0.0.0/16"])
        worm = HitListWorm(hitlist)
        targets = worm.single_host_targets(0, 30_000, np.random.default_rng(1))
        octets = np.unique(targets >> 24)
        assert set(octets) == {10, 20, 30}

    def test_uniform_within_hitlist(self):
        hitlist = BlockSet.parse(["10.0.0.0/16", "20.0.0.0/16"])
        worm = HitListWorm(hitlist)
        targets = worm.single_host_targets(0, 100_000, np.random.default_rng(2))
        frac_10 = ((targets >> 24) == 10).mean()
        assert frac_10 == pytest.approx(0.5, abs=0.02)

    def test_name_reports_prefix_count(self):
        worm = HitListWorm(BlockSet.parse(["10.0.0.0/8", "11.0.0.0/8"]))
        assert "2" in worm.name


class TestGreedyHitlist:
    @pytest.fixture()
    def clustered_population(self):
        rng = np.random.default_rng(0)
        return np.concatenate(
            [
                CIDRBlock.parse("10.1.0.0/16").random_addresses(700, rng),
                CIDRBlock.parse("20.2.0.0/16").random_addresses(200, rng),
                CIDRBlock.parse("30.3.0.0/16").random_addresses(100, rng),
            ]
        )

    def test_top_prefix_is_densest(self, clustered_population):
        hitlist, coverage = build_greedy_hitlist(clustered_population, 1)
        assert coverage == pytest.approx(0.7)
        block = hitlist.blocks[0]
        assert block == CIDRBlock.parse("10.1.0.0/16")

    def test_coverage_monotone_in_size(self, clustered_population):
        coverages = [
            build_greedy_hitlist(clustered_population, n)[1] for n in (1, 2, 3)
        ]
        assert coverages == sorted(coverages)
        assert coverages[-1] == pytest.approx(1.0)

    def test_more_prefixes_than_populated_blocks(self, clustered_population):
        hitlist, coverage = build_greedy_hitlist(clustered_population, 50)
        assert len(hitlist) == 3
        assert coverage == pytest.approx(1.0)

    def test_other_prefix_lengths(self, clustered_population):
        hitlist, coverage = build_greedy_hitlist(
            clustered_population, 1, prefix_len=8
        )
        assert hitlist.blocks[0] == CIDRBlock.parse("10.0.0.0/8")
        assert coverage == pytest.approx(0.7)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            build_greedy_hitlist(np.array([], dtype=np.uint32), 1)
        with pytest.raises(ValueError):
            build_greedy_hitlist(np.array([1], dtype=np.uint32), 0)


class TestPrefixSpecs:
    def test_parse_specs(self):
        bs = hitlist_from_prefix_specs(["192.168.0.0/16", "10.0.0.0/8"])
        assert len(bs) == 2
