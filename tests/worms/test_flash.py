"""Tests for repro.worms.flash."""

import numpy as np
import pytest

from repro.net.cidr import BlockSet, CIDRBlock
from repro.population.model import HostPopulation
from repro.sim.engine import EpidemicSimulator, SimulationConfig
from repro.worms.flash import (
    FlashWorm,
    flash_infection_times,
    flash_time_to_full_infection,
)


SPACE = CIDRBlock.parse("60.0.0.0/16")


def target_list(count, seed=0):
    rng = np.random.default_rng(seed)
    return np.unique(SPACE.random_addresses(count * 2, rng))[:count]


class TestConstruction:
    def test_rejects_empty_list(self):
        with pytest.raises(ValueError):
            FlashWorm(np.empty(0, dtype=np.uint32))

    def test_rejects_bad_fanout(self):
        with pytest.raises(ValueError):
            FlashWorm(np.array([1], dtype=np.uint32), fanout=0)


class TestSpreadTree:
    def test_seed_probes_its_first_children(self):
        targets = target_list(100)
        worm = FlashWorm(targets, fanout=5)
        state = worm.new_state()
        rng = np.random.default_rng(0)
        worm.add_hosts(state, targets[:1], rng)
        probes = worm.generate(state, 5, rng)[0]
        # The seed skips its own address and probes the next five.
        assert list(probes) == list(targets[1:6])

    def test_children_receive_disjoint_slices(self):
        targets = target_list(101)
        worm = FlashWorm(targets, fanout=4)
        state = worm.new_state()
        rng = np.random.default_rng(1)
        worm.add_hosts(state, targets[:1], rng)
        children = worm.generate(state, 4, rng)[0]
        # Infect the children and collect their onward probes.
        worm.add_hosts(state, children, rng)
        onward = worm.generate(state, 4, rng)[1:]
        flat = onward[onward != 0]
        assert len(np.unique(flat)) == len(flat)  # no duplicated work

    def test_every_host_infected_via_engine(self):
        targets = target_list(300)
        worm = FlashWorm(targets, fanout=10)
        population = HostPopulation(targets)
        simulator = EpidemicSimulator(worm, population)
        config = SimulationConfig(
            scan_rate=10.0, max_time=60.0, seed_count=1
        )
        result = simulator.run(
            config, np.random.default_rng(2), seed_addrs=targets[:1]
        )
        assert result.final_fraction_infected == 1.0  # bitwise

    def test_flash_beats_scanning_dramatically(self):
        from repro.worms.hitlist import HitListWorm

        targets = target_list(300, seed=3)
        population_flash = HostPopulation(targets)
        flash = EpidemicSimulator(FlashWorm(targets, fanout=10), population_flash)
        config = SimulationConfig(scan_rate=10.0, max_time=400.0, seed_count=1)
        flash_result = flash.run(
            config, np.random.default_rng(4), seed_addrs=targets[:1]
        )
        population_scan = HostPopulation(targets)
        scanner = EpidemicSimulator(
            HitListWorm(BlockSet([SPACE])), population_scan
        )
        scan_result = scanner.run(
            config, np.random.default_rng(4), seed_addrs=targets[:1]
        )
        flash_t90 = flash_result.time_to_fraction(0.9)
        scan_t90 = scan_result.time_to_fraction(0.9)
        assert flash_t90 is not None
        assert scan_t90 is None or flash_t90 < scan_t90 / 5


class TestClosedForm:
    def test_generation_schedule(self):
        times = flash_infection_times(population=111, fanout=10, hop_latency=0.5)
        assert len(times) == 111
        assert times[0] == 0.0  # bitwise
        # 1 + 10 + 100 covers 111: max generation 2.
        assert times.max() == 1.0  # bitwise

    def test_full_infection_time(self):
        assert flash_time_to_full_infection(1_000_000, 10, 0.5) == pytest.approx(
            3.0
        )
        assert flash_time_to_full_infection(1, 10, 0.5) == 0.0  # bitwise

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            flash_infection_times(0, 10, 0.5)
        with pytest.raises(ValueError):
            flash_infection_times(10, 10, 0.0)

    def test_schedule_matches_closed_form_total(self):
        times = flash_infection_times(10_000, 10, 1.0)
        assert times.max() == flash_time_to_full_infection(10_000, 10, 1.0)
