"""Tests for the blocked fast LCG stream and jump edge cases."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.prng.cycles import cycle_members, multiplicative_order_mod_pow2
from repro.prng.lcg import LCG


class TestStreamFast:
    def test_matches_slow_stream(self):
        a, b = 214013, 0x8831FA24
        slow = LCG(a, b, seed=99)
        fast = LCG(a, b, seed=99)
        assert (slow.stream(5_000) == fast.stream_fast(5_000)).all()
        assert slow.state == fast.state

    def test_zero_count(self):
        lcg = LCG(214013, 1, seed=5)
        assert len(lcg.stream_fast(0)) == 0
        assert lcg.state == 5

    def test_count_smaller_than_block(self):
        a, b = 214013, 2531011
        slow = LCG(a, b, seed=1)
        fast = LCG(a, b, seed=1)
        assert (slow.stream(3) == fast.stream_fast(3, block=4096)).all()

    def test_count_not_multiple_of_block(self):
        a, b = 214013, 2531011
        slow = LCG(a, b, seed=2)
        fast = LCG(a, b, seed=2)
        assert (slow.stream(1000) == fast.stream_fast(1000, block=64)).all()

    def test_rejects_large_word_size(self):
        with pytest.raises(ValueError):
            LCG(5, 1, bits=64).stream_fast(10)

    def test_small_word_size(self):
        slow = LCG(5, 3, bits=8, seed=7)
        fast = LCG(5, 3, bits=8, seed=7)
        assert (slow.stream(600) == fast.stream_fast(600, block=32)).all()

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(1, 2**16 - 1).filter(lambda a: a % 2 == 1),
        st.integers(0, 2**16 - 1),
        st.integers(1, 300),
        st.integers(1, 64),
    )
    def test_fast_equals_slow_property(self, a, b, count, block):
        slow = LCG(a, b, bits=16, seed=11)
        fast = LCG(a, b, bits=16, seed=11)
        assert (slow.stream(count) == fast.stream_fast(count, block=block)).all()


class TestCycleMembers:
    def test_closes_small_cycle(self):
        # x -> x + 4 mod 16 has cycles of length 4.
        members = cycle_members(1, 4, 4, start=1, limit=100)
        assert list(members) == [1, 5, 9, 13]

    def test_limit_truncates(self):
        members = cycle_members(214013, 1, 32, start=0, limit=10)
        assert len(members) == 11  # start + 10 steps, cycle not closed

    def test_fixed_point(self):
        # x -> x is all fixed points.
        members = cycle_members(1, 0, 8, start=42, limit=100)
        assert list(members) == [42]


class TestMultiplicativeOrder:
    @pytest.mark.parametrize("bits", [3, 5, 8, 12])
    def test_matches_brute_force(self, bits):
        for a in (1, 5, 9, 13, 17):
            order = multiplicative_order_mod_pow2(a, bits)
            # Brute force.
            power, count = a % 2**bits, 1
            while power != 1:
                power = (power * a) % 2**bits
                count += 1
            assert order == count

    def test_order_divides_group_exponent(self):
        for bits in (4, 8, 16):
            for a in (5, 214013 % 2**bits | 1):
                order = multiplicative_order_mod_pow2(a, bits)
                assert (2 ** max(bits - 2, 0)) % order == 0
