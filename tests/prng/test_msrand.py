"""Tests for repro.prng.msrand."""

import numpy as np

from repro.prng.msrand import (
    MS_RAND_A,
    MS_RAND_B,
    RAND_MAX,
    MSRand,
    msrand_outputs_for_seeds,
)


class TestMSRand:
    def test_known_sequence_from_seed_1(self):
        # First outputs of MSVC rand() with srand(1) — a well-known
        # reference sequence for the CRT LCG.
        rng = MSRand(seed=1)
        assert [rng.rand() for _ in range(5)] == [41, 18467, 6334, 26500, 19169]

    def test_outputs_in_range(self):
        rng = MSRand(seed=12345)
        for _ in range(1000):
            assert 0 <= rng.rand() <= RAND_MAX

    def test_srand_resets(self):
        rng = MSRand(seed=7)
        first = [rng.rand() for _ in range(3)]
        rng.srand(7)
        assert [rng.rand() for _ in range(3)] == first

    def test_randint_is_modulo(self):
        a = MSRand(seed=99)
        b = MSRand(seed=99)
        assert a.randint(254) == b.rand() % 254

    def test_stream_matches_scalar(self):
        a = MSRand(seed=5)
        b = MSRand(seed=5)
        assert list(a.stream(50)) == [b.rand() for _ in range(50)]

    def test_state_recurrence_constants(self):
        rng = MSRand(seed=0)
        rng.rand()
        assert rng.state == MS_RAND_B
        rng.rand()
        assert rng.state == (MS_RAND_A * MS_RAND_B + MS_RAND_B) % 2**32


class TestVectorizedSeeds:
    def test_matches_scalar_implementation(self):
        seeds = np.array([0, 1, 12345, 2**32 - 1], dtype=np.uint64)
        outputs = msrand_outputs_for_seeds(seeds, count=10)
        for row, seed in enumerate(seeds):
            rng = MSRand(seed=int(seed))
            assert list(outputs[row]) == [rng.rand() for _ in range(10)]

    def test_shape(self):
        outputs = msrand_outputs_for_seeds(np.arange(7), count=3)
        assert outputs.shape == (7, 3)

    def test_nearby_seeds_give_correlated_first_outputs(self):
        # The heart of the Blaster hotspot: seeds from a narrow boot
        # window produce first outputs confined to a narrow band.
        seeds = np.arange(29_000, 31_000)  # ~30 s boot window, in ticks
        outputs = msrand_outputs_for_seeds(seeds, count=1)[:, 0]
        # The first output is a near-linear function of the seed: one
        # extra tick moves it by only a few units (mod RAND_MAX+1), so
        # a narrow boot window maps to a narrow (wrapped) output band.
        steps = np.diff(outputs) % (RAND_MAX + 1)
        assert steps.max() <= 4
