"""Tests for repro.prng.lcg."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.prng.lcg import LCG


class TestLCG:
    def test_next_matches_recurrence(self):
        lcg = LCG(a=214013, b=2531011, seed=1)
        assert lcg.next() == (214013 * 1 + 2531011) % 2**32

    def test_stream_matches_repeated_next(self):
        lcg_a = LCG(a=214013, b=2531011, seed=42)
        lcg_b = LCG(a=214013, b=2531011, seed=42)
        stream = lcg_a.stream(100)
        singles = [lcg_b.next() for _ in range(100)]
        assert list(stream) == singles

    def test_stream_advances_state(self):
        lcg = LCG(a=5, b=3, bits=16, seed=0)
        lcg.stream(10)
        state_after = lcg.state
        lcg2 = LCG(a=5, b=3, bits=16, seed=0)
        for _ in range(10):
            lcg2.next()
        assert state_after == lcg2.state

    def test_seed_resets(self):
        lcg = LCG(a=214013, b=2531011, seed=1)
        first = lcg.next()
        lcg.seed(1)
        assert lcg.next() == first

    def test_custom_word_size(self):
        lcg = LCG(a=5, b=1, bits=8, seed=200)
        for _ in range(300):
            assert 0 <= lcg.next() < 256

    def test_rejects_bad_word_size(self):
        with pytest.raises(ValueError):
            LCG(a=5, b=1, bits=0)
        with pytest.raises(ValueError):
            LCG(a=5, b=1, bits=65)

    def test_jump_matches_iteration(self):
        lcg = LCG(a=214013, b=0x8831FA24, seed=7)
        reference = LCG(a=214013, b=0x8831FA24, seed=7)
        for _ in range(1234):
            reference.next()
        lcg.jump(1234)
        assert lcg.state == reference.state

    def test_jump_zero_is_identity(self):
        lcg = LCG(a=214013, b=1, seed=99)
        lcg.jump(0)
        assert lcg.state == 99

    def test_jump_large(self):
        # Jumping 2^32 steps must return to the start iff the seed's
        # cycle length divides 2^32 (it always does for a mod-2^32 LCG).
        lcg = LCG(a=214013, b=0x8831FA24, seed=12345)
        lcg.jump(2**32)
        assert lcg.state == 12345


@given(
    st.integers(1, 2**16 - 1).filter(lambda a: a % 2 == 1),
    st.integers(0, 2**16 - 1),
    st.integers(0, 2**16 - 1),
    st.integers(0, 500),
)
def test_jump_equals_iteration_property(a, b, seed, steps):
    lcg = LCG(a=a, b=b, bits=16, seed=seed)
    reference = LCG(a=a, b=b, bits=16, seed=seed)
    lcg.jump(steps)
    for _ in range(steps):
        reference.next()
    assert lcg.state == reference.state
