"""Tests for repro.prng.cycles — the affine-map cycle theory.

The analytic decomposition drives the Slammer analysis (Figures 2/3),
so it is verified exhaustively against brute force on small moduli.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.prng.cycles import (
    INFINITE_VALUATION,
    brute_force_cycles,
    cycle_members,
    cycle_structure,
    modinv_pow2,
    multiplicative_order_mod_pow2,
    v2,
    v2_array,
)

SLAMMER_A = 214013
SLAMMER_B = 0x8831FA24


class TestV2:
    def test_basic_values(self):
        assert v2(1) == 0
        assert v2(2) == 1
        assert v2(12) == 2
        assert v2(1 << 31) == 31

    def test_zero_is_infinite(self):
        assert v2(0) == INFINITE_VALUATION

    def test_array_matches_scalar(self):
        values = np.array([0, 1, 2, 12, 96, 2**31], dtype=np.uint64)
        assert list(v2_array(values)) == [v2(int(x)) for x in values]


class TestModularHelpers:
    def test_modinv(self):
        for x in [1, 3, 5, 214013, 0xFFFFFFFF]:
            inv = modinv_pow2(x, 32)
            assert (x * inv) % 2**32 == 1

    def test_modinv_rejects_even(self):
        with pytest.raises(ValueError):
            modinv_pow2(4, 32)

    def test_multiplicative_order(self):
        # ord(a mod 2^m) = 2^(m - v2(a-1)) for a ≡ 1 (mod 4).
        assert multiplicative_order_mod_pow2(5, 5) == 2**3
        assert multiplicative_order_mod_pow2(SLAMMER_A, 10) == 2**8

    def test_order_of_one(self):
        assert multiplicative_order_mod_pow2(1, 8) == 1


class TestCycleStructureSmallModuli:
    @pytest.mark.parametrize("bits", [4, 8, 12])
    @pytest.mark.parametrize("b", [0, 1, 2, 4, 8, 12, 100, 0x24])
    def test_matches_brute_force(self, bits, b):
        structure = cycle_structure(SLAMMER_A, b, bits=bits)
        assert structure.cycle_lengths == brute_force_cycles(SLAMMER_A, b % 2**bits, bits)

    @pytest.mark.parametrize("a", [5, 9, 13, 17, 214013, 2531013])
    def test_various_multipliers(self, a):
        for b in [0, 3, 4, 20]:
            structure = cycle_structure(a, b, bits=10)
            assert structure.cycle_lengths == brute_force_cycles(a, b, bits=10)

    def test_translation(self):
        structure = cycle_structure(1, 4, bits=8)
        assert structure.cycle_lengths == brute_force_cycles(1, 4, bits=8)

    def test_identity_map(self):
        structure = cycle_structure(1, 0, bits=6)
        assert structure.total_cycles == 64
        assert all(length == 1 for length in structure.cycle_lengths)

    def test_rejects_even_multiplier(self):
        with pytest.raises(ValueError):
            cycle_structure(2, 1, bits=8)

    def test_rejects_a_3_mod_4(self):
        with pytest.raises(NotImplementedError):
            cycle_structure(3, 1, bits=8)

    def test_brute_force_guard(self):
        with pytest.raises(ValueError):
            brute_force_cycles(5, 1, bits=30)


class TestSlammerStructure:
    @pytest.fixture(scope="class")
    def structure(self):
        return cycle_structure(SLAMMER_A, SLAMMER_B, bits=32)

    def test_total_64_cycles(self, structure):
        # The paper: "We find that there are 64 cycles for each b value".
        assert structure.total_cycles == 64

    def test_states_partition_address_space(self, structure):
        assert structure.total_states() == 2**32

    def test_has_fixed_points(self, structure):
        fp = structure.fixed_point
        assert fp is not None
        assert (SLAMMER_A * fp + SLAMMER_B) % 2**32 == fp

    def test_longest_cycle_is_2_to_30(self, structure):
        assert max(structure.cycle_lengths) == 2**30

    def test_short_cycles_exist(self, structure):
        # The paper: "the log plot shows many small cycles" — cycles of
        # period 1 and 2 exist, behaving like targeted DoS.
        lengths = structure.cycle_lengths
        assert lengths[0] == 1
        assert 2 in lengths

    def test_representatives_have_claimed_lengths(self, structure):
        for info in structure.cycles:
            assert structure.cycle_length_of_state(info.representative) == info.length

    def test_short_cycle_closes_by_iteration(self, structure):
        for info in structure.cycles:
            if info.length <= 4096 and info.length > 1:
                members = cycle_members(
                    SLAMMER_A, SLAMMER_B, 32, info.representative, info.length + 10
                )
                assert len(members) == info.length

    def test_vectorized_lengths_match_scalar(self, structure):
        rng = np.random.default_rng(3)
        states = rng.integers(0, 2**32, size=200, dtype=np.uint64)
        vec = structure.cycle_lengths_of_states(states)
        for state, length in zip(states, vec):
            assert structure.cycle_length_of_state(int(state)) == length


class TestCycleIds:
    def test_same_cycle_same_id(self):
        structure = cycle_structure(SLAMMER_A, SLAMMER_B, bits=16)
        # Walk a cycle and check every member gets the same id.
        start = 123
        members = cycle_members(SLAMMER_A, SLAMMER_B & 0xFFFF, 16, start, 1 << 16)
        ids = {structure.cycle_id_of_state(int(state)) for state in members}
        assert len(ids) == 1

    def test_id_count_matches_cycle_count(self):
        bits = 12
        structure = cycle_structure(SLAMMER_A, SLAMMER_B, bits=bits)
        ids = {structure.cycle_id_of_state(state) for state in range(1 << bits)}
        assert len(ids) == structure.total_cycles

    def test_ids_partition_matches_brute_force(self):
        bits = 10
        b = SLAMMER_B % (1 << bits)
        structure = cycle_structure(SLAMMER_A, b, bits=bits)
        # Group states by id; each group must be exactly one brute-force cycle.
        successor = [(SLAMMER_A * x + b) % (1 << bits) for x in range(1 << bits)]
        for state in range(1 << bits):
            assert structure.cycle_id_of_state(state) == structure.cycle_id_of_state(
                successor[state]
            )


@settings(max_examples=30, deadline=None)
@given(
    st.integers(0, 2**10 - 1).map(lambda k: 4 * k + 1),  # a ≡ 1 (mod 4)
    st.integers(0, 2**12 - 1),
)
def test_structure_matches_brute_force_property(a, b):
    structure = cycle_structure(a, b, bits=12)
    assert structure.cycle_lengths == brute_force_cycles(a % 2**12, b, bits=12)
    assert structure.total_states() == 2**12
