"""Tests for repro.prng.entropy — the boot-time seed model."""

import numpy as np
import pytest

from repro.prng.entropy import (
    HARDWARE_GENERATIONS,
    MILLISECONDS_PER_SECOND,
    BootTimeModel,
)


class TestHardwareGenerations:
    def test_three_generations(self):
        assert set(HARDWARE_GENERATIONS) == {"pentium2", "pentium3", "pentium4"}

    def test_means_cluster_around_30s(self):
        means = [g.mean_boot_seconds for g in HARDWARE_GENERATIONS.values()]
        assert abs(np.mean(means) - 30.0) < 1e-9

    def test_std_is_one_second(self):
        for gen in HARDWARE_GENERATIONS.values():
            assert gen.std_boot_seconds == pytest.approx(1.0)


class TestBootTimeModel:
    def test_seeds_cluster_in_boot_window(self):
        model = BootTimeModel()
        rng = np.random.default_rng(1)
        seeds = model.sample_seeds(10_000, rng)
        low, high = model.seed_probability_window()
        inside = ((seeds >= low) & (seeds <= high)).mean()
        assert inside > 0.99

    def test_seed_dtype(self):
        model = BootTimeModel()
        seeds = model.sample_seeds(10, np.random.default_rng(0))
        assert seeds.dtype == np.uint32

    def test_rejects_negative_count(self):
        with pytest.raises(ValueError):
            BootTimeModel().sample_seeds(-1, np.random.default_rng(0))

    def test_zero_count(self):
        assert len(BootTimeModel().sample_seeds(0, np.random.default_rng(0))) == 0

    def test_uptime_fraction_spreads_seeds(self):
        model = BootTimeModel(uptime_fraction=0.5, max_uptime_ticks=10_000_000)
        rng = np.random.default_rng(2)
        seeds = model.sample_seeds(10_000, rng)
        _, high = model.seed_probability_window()
        outside = (seeds > high).mean()
        # Roughly half the hosts have long uptimes (minus the sliver of
        # long-uptime draws landing back inside the boot window).
        assert 0.4 < outside < 0.6

    def test_generation_weights_select_generation(self):
        model = BootTimeModel(generation_weights={"pentium4": 1.0})
        rng = np.random.default_rng(3)
        seeds = model.sample_seeds(5_000, rng)
        mean_seconds = seeds.mean() / MILLISECONDS_PER_SECOND
        assert abs(mean_seconds - 26.0) < 0.5

    def test_window_covers_all_generations(self):
        low, high = BootTimeModel().seed_probability_window()
        assert low < 26 * MILLISECONDS_PER_SECOND
        assert high > 34 * MILLISECONDS_PER_SECOND

    def test_seeds_are_deterministic_given_rng(self):
        model = BootTimeModel()
        a = model.sample_seeds(100, np.random.default_rng(42))
        b = model.sample_seeds(100, np.random.default_rng(42))
        assert (a == b).all()
