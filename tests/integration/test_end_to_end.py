"""End-to-end pipelines: outbreak → trace → replay → analysis.

These tests exercise the whole stack the way a downstream user would:
run an outbreak once while recording its probe trace, archive the
trace, then re-derive sensor observations and hotspot statistics from
the archive without re-simulating.
"""

import numpy as np
import pytest

from repro.net.cidr import BlockSet, CIDRBlock
from repro.population.model import HostPopulation
from repro.sensors.darknet import DarknetSensor
from repro.sensors.deployment import SensorGrid
from repro.sim.engine import EpidemicSimulator, SimulationConfig
from repro.traces.record import ProbeTrace, TraceRecorder
from repro.traces.replay import replay_into_grid, replay_into_sensors
from repro.worms.hitlist import HitListCodeRedIIWorm, HitListWorm

SPACE = CIDRBlock.parse("60.0.0.0/16")


@pytest.fixture(scope="module")
def recorded_outbreak():
    rng = np.random.default_rng(0)
    hosts = np.unique(SPACE.random_addresses(800, rng))
    population = HostPopulation(hosts)
    recorder = TraceRecorder()
    darknet = DarknetSensor("live", CIDRBlock.parse("60.0.200.0/22"))
    simulator = EpidemicSimulator(
        HitListWorm(BlockSet([SPACE])),
        population,
        sensors=[darknet],
        trace_recorder=recorder,
    )
    config = SimulationConfig(
        scan_rate=20.0, max_time=300.0, seed_count=5, stop_at_fraction=0.8
    )
    result = simulator.run(config, rng)
    return result, recorder.finish(), darknet


class TestTraceMatchesLiveRun:
    def test_trace_size_matches_delivered(self, recorded_outbreak):
        result, trace, _ = recorded_outbreak
        assert len(trace) == result.delivered_probes

    def test_replay_reproduces_live_sensor(self, recorded_outbreak):
        _, trace, live_sensor = recorded_outbreak
        replayed = DarknetSensor("replay", live_sensor.block)
        replay_into_sensors(trace, [replayed])
        assert replayed.total_probes == live_sensor.total_probes
        assert (
            replayed.unique_sources_by_slash24()
            == live_sensor.unique_sources_by_slash24()
        ).all()

    def test_trace_survives_archival(self, recorded_outbreak, tmp_path):
        _, trace, live_sensor = recorded_outbreak
        path = tmp_path / "outbreak.npz"
        trace.save(path)
        loaded = ProbeTrace.load(path)
        replayed = DarknetSensor("replay", live_sensor.block)
        replay_into_sensors(loaded, [replayed])
        assert replayed.total_probes == live_sensor.total_probes

    def test_offline_grid_alerts_like_online(self, recorded_outbreak):
        _, trace, _ = recorded_outbreak
        grid = SensorGrid(
            CIDRBlock.parse("60.0.200.0/22").slash24_prefixes(),
            alert_threshold=5,
        )
        replay_into_grid(trace, grid)
        assert grid.fraction_alerted() == 1.0  # bitwise

    def test_worm_attribution_preserved(self, recorded_outbreak):
        _, trace, _ = recorded_outbreak
        assert trace.worm_names == ("hitlist(1 prefixes)",)
        assert len(trace.for_worm("hitlist(1 prefixes)")) == len(trace)


class TestHotspotPipeline:
    def test_hotspot_statistics_from_archived_trace(self, tmp_path):
        # Local-preference outbreak → archive → per-/24 histogram →
        # hotspot metrics, fully offline.
        rng = np.random.default_rng(1)
        hitlist = BlockSet.parse(["60.0.0.0/16", "70.0.0.0/16"])
        hosts = np.unique(hitlist.random_addresses(600, rng))
        population = HostPopulation(hosts)
        recorder = TraceRecorder()
        simulator = EpidemicSimulator(
            HitListCodeRedIIWorm(hitlist),
            population,
            trace_recorder=recorder,
        )
        config = SimulationConfig(
            scan_rate=20.0, max_time=200.0, seed_count=5, stop_at_fraction=0.7
        )
        simulator.run(config, rng)

        path = tmp_path / "crii.npz"
        recorder.finish().save(path)
        trace = ProbeTrace.load(path)

        # Local preference is /16-granular: probes from hosts inside
        # 60.0/16 overwhelmingly stay there rather than crossing to
        # the other hit-list /16 — visible offline from the archive.
        block_60 = CIDRBlock.parse("60.0.0.0/16")
        block_70 = CIDRBlock.parse("70.0.0.0/16")
        from_60 = trace.from_block(block_60)
        stay = len(from_60.to_block(block_60))
        cross = len(from_60.to_block(block_70))
        assert stay > 2 * cross

        # And the aggregate per-/16 histogram over the whole hit-list
        # splits into exactly the two scanned /16s (hotspot vs the
        # rest of the Internet: everything else got nothing).
        all_16s = np.unique(trace.targets >> np.uint32(16))
        assert set(all_16s.tolist()) == {60 << 8, 70 << 8}
