"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_flag(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "figure5c" in out

    def test_list_shows_titles_and_defaults(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "Table 1 — botnet propagation commands" in out
        assert "defaults:" in out
        assert "seed=2004" in out

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "figure2" in capsys.readouterr().out

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["figure99"])

    def test_override_parsing(self):
        parser = build_parser()
        args = parser.parse_args(["table1", "--set", "seed=7"])
        assert dict(args.overrides) == {"seed": 7}

    def test_override_requires_equals(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["table1", "--set", "seed"])

    def test_string_override_falls_back(self):
        parser = build_parser()
        args = parser.parse_args(["figure1", "--set", "block_spec=99.0.0.0/17"])
        assert dict(args.overrides)["block_spec"] == "99.0.0.0/17"

    @pytest.mark.parametrize(
        "argv",
        [
            ["table1", "--trials", "0"],
            ["table1", "--trials", "-3"],
            ["table1", "--trials", "many"],
            ["table1", "--workers", "-1"],
            ["table1", "--workers", "two"],
        ],
    )
    def test_rejects_bad_counts(self, argv):
        with pytest.raises(SystemExit):
            build_parser().parse_args(argv)

    def test_workers_zero_means_all_cores(self):
        args = build_parser().parse_args(["table1", "--workers", "0"])
        assert args.workers == 0

    def test_cache_flag_round_trip(self):
        parser = build_parser()
        assert parser.parse_args(["table1", "--cache"]).cache is True
        assert parser.parse_args(["table1", "--no-cache"]).cache is False
        assert parser.parse_args(["table1"]).cache is False

    @pytest.mark.parametrize(
        "argv",
        [
            ["table1", "--retries", "-1"],
            ["table1", "--retries", "two"],
            ["table1", "--retries", "1.5"],
            ["table1", "--timeout", "0"],
            ["table1", "--timeout", "-5"],
            ["table1", "--timeout", "forever"],
        ],
    )
    def test_rejects_bad_fault_tolerance_values(self, argv):
        with pytest.raises(SystemExit):
            build_parser().parse_args(argv)

    def test_fault_tolerance_flags_parse(self):
        args = build_parser().parse_args(
            [
                "figure5b",
                "--retries", "2",
                "--timeout", "900",
                "--resume",
                "--journal-dir", "/tmp/journals",
            ]
        )
        assert args.retries == 2
        assert args.timeout == 900.0  # bitwise — float("900") parses exactly
        assert args.resume is True
        assert args.journal_dir == "/tmp/journals"

    def test_fault_tolerance_defaults_are_off(self):
        args = build_parser().parse_args(["table1"])
        assert args.retries == 0
        assert args.timeout is None
        assert args.resume is False
        assert args.journal_dir is None

    def test_shards_flag_parses(self):
        args = build_parser().parse_args(["figure5b", "--shards", "4"])
        assert args.shards == 4
        assert build_parser().parse_args(["figure5b"]).shards is None

    @pytest.mark.parametrize(
        "argv",
        [
            ["figure5b", "--shards", "0"],
            ["figure5b", "--shards", "-2"],
            ["figure5b", "--shards", "many"],
        ],
    )
    def test_rejects_bad_shard_counts(self, argv):
        with pytest.raises(SystemExit):
            build_parser().parse_args(argv)

    def test_shards_conflicts_with_set_override(self, capsys):
        with pytest.raises(SystemExit):
            main(
                ["figure5b", "--shards", "2", "--set", "shards=4"]
            )
        assert "--shards conflicts" in capsys.readouterr().err

    def test_shards_rejected_for_shardless_experiment(self, capsys):
        # table1 takes no `shards` keyword; the registry binding turns
        # that into the standard unknown-override error.
        with pytest.raises(SystemExit):
            main(["table1", "--shards", "2"])
        assert "invalid arguments" in capsys.readouterr().err


class TestRun:
    def test_runs_table1(self, capsys):
        assert main(["table1", "--set", "seed=5"]) == 0
        out = capsys.readouterr().out
        assert "scan" in out

    def test_unknown_override_is_a_clean_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["table1", "--set", "bogus_param=1"])
        assert excinfo.value.code == 2
        assert "invalid arguments" in capsys.readouterr().err

    def test_multi_trial_run(self, capsys):
        assert main(["table1", "--trials", "2", "--set", "seed=5"]) == 0
        out = capsys.readouterr().out
        assert "table1 trial 1/2" in out and "table1 trial 2/2" in out

    def test_cached_rerun_matches(self, tmp_path, capsys):
        argv = [
            "table1",
            "--cache",
            "--cache-dir",
            str(tmp_path),
            "--set",
            "seed=5",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert list(tmp_path.glob("*.pkl"))
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_resume_round_trip(self, tmp_path, capsys):
        argv = [
            "table1",
            "--trials",
            "2",
            "--cache-dir",
            str(tmp_path / "cache"),
            "--journal-dir",
            str(tmp_path / "journals"),
            "--set",
            "seed=5",
        ]
        assert main(argv) == 0  # --journal-dir implies --cache
        first = capsys.readouterr()
        assert list((tmp_path / "journals").glob("*.jsonl"))
        assert main(argv + ["--resume"]) == 0
        second = capsys.readouterr()
        assert second.out == first.out
        assert "resumed" in second.err

    def test_retries_recover_from_injected_fault(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PLAN", '{"0": ["raise"]}')
        argv = ["table1", "--trials", "2", "--retries", "1", "--set", "seed=5"]
        assert main(argv) == 0
        assert "retried" in capsys.readouterr().err

    def test_exhausted_retries_exit_nonzero(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PLAN", '{"0": ["raise", "raise"]}')
        argv = ["table1", "--trials", "2", "--retries", "1", "--set", "seed=5"]
        assert main(argv) == 1
        assert "failed" in capsys.readouterr().err


class TestPerf:
    SMALL = [
        "--set", "max_time=60",
        "--set", "hosts_per_slash16=150",
        "--set", "num_sensors=100",
        "--set", "scan_rate=20",
    ]

    def test_perf_flag_defaults_off(self):
        parser = build_parser()
        assert parser.parse_args(["table1"]).perf is False
        assert parser.parse_args(["table1", "--perf"]).perf is True

    def test_perf_prints_stage_timings(self, capsys):
        assert main(["containment", "--perf", *self.SMALL]) == 0
        err = capsys.readouterr().err
        assert "[perf]" in err
        for stage in ("generate", "filter", "dispatch", "infect"):
            assert stage in err
        assert "ticks" in err

    def test_no_perf_no_stage_timings(self, capsys):
        assert main(["containment", *self.SMALL]) == 0
        assert "[perf]" not in capsys.readouterr().err

    def test_perf_forces_serial_workers(self, capsys):
        argv = ["containment", "--perf", "--workers", "2", *self.SMALL]
        assert main(argv) == 0
        err = capsys.readouterr().err
        assert "forcing --workers 1" in err
        assert "[perf]" in err
