"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_flag(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "figure5c" in out

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "figure2" in capsys.readouterr().out

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["figure99"])

    def test_override_parsing(self):
        parser = build_parser()
        args = parser.parse_args(["table1", "--set", "seed=7"])
        assert dict(args.overrides) == {"seed": 7}

    def test_override_requires_equals(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["table1", "--set", "seed"])

    def test_string_override_falls_back(self):
        parser = build_parser()
        args = parser.parse_args(["figure1", "--set", "block_spec=99.0.0.0/17"])
        assert dict(args.overrides)["block_spec"] == "99.0.0.0/17"


class TestRun:
    def test_runs_table1(self, capsys):
        assert main(["table1", "--set", "seed=5"]) == 0
        out = capsys.readouterr().out
        assert "scan" in out
