"""Sanity checks on the package's public surface."""

import importlib

import pytest

import repro

SUBPACKAGES = [
    "repro.net",
    "repro.prng",
    "repro.worms",
    "repro.botnet",
    "repro.env",
    "repro.population",
    "repro.sensors",
    "repro.sim",
    "repro.traces",
    "repro.analysis",
    "repro.experiments",
]


class TestTopLevel:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_all_is_sorted(self):
        assert list(repro.__all__) == sorted(repro.__all__)


@pytest.mark.parametrize("module_name", SUBPACKAGES)
class TestSubpackages:
    def test_imports(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} needs a module docstring"

    def test_exports_resolve(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.{name}"


class TestDocumentation:
    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_public_callables_documented(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            obj = getattr(module, name)
            if callable(obj):
                assert obj.__doc__, f"{module_name}.{name} lacks a docstring"
