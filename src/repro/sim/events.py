"""A small discrete-event kernel.

The time-stepped engine cannot resolve sub-second effects (latency
races between an infection and a competing patch, per-packet jitter).
This kernel is a classic heap scheduler for the handful of scenarios
that need packet-level fidelity, e.g. latency-aware quarantine
micro-simulations.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Ordering is by ``(time, sequence)`` so simultaneous events fire in
    scheduling order (deterministic runs).
    """

    time: float
    sequence: int
    action: Callable[["EventKernel"], Any] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Prevent the event from firing (O(1); skipped when popped)."""
        self.cancelled = True


class EventKernel:
    """Heap-based discrete-event scheduler."""

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._counter = itertools.count()
        self.now = 0.0
        self._events_fired = 0

    @property
    def events_fired(self) -> int:
        """How many events have executed."""
        return self._events_fired

    @property
    def pending(self) -> int:
        """Events still queued (including cancelled ones not yet popped)."""
        return len(self._queue)

    def schedule(self, delay: float, action: Callable[["EventKernel"], Any]) -> Event:
        """Schedule ``action`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        event = Event(self.now + delay, next(self._counter), action)
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(
        self, time: float, action: Callable[["EventKernel"], Any]
    ) -> Event:
        """Schedule ``action`` at an absolute time."""
        if time < self.now:
            raise ValueError("cannot schedule into the past")
        event = Event(time, next(self._counter), action)
        heapq.heappush(self._queue, event)
        return event

    def step(self) -> bool:
        """Fire the next event; returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.now = event.time
            event.action(self)
            self._events_fired += 1
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Run until the queue drains, the horizon, or an event budget."""
        fired = 0
        while self._queue:
            if max_events is not None and fired >= max_events:
                return
            next_event = self._queue[0]
            if next_event.cancelled:
                heapq.heappop(self._queue)
                continue
            if until is not None and next_event.time > until:
                self.now = until
                return
            self.step()
            fired += 1
        if until is not None:
            self.now = max(self.now, until)
