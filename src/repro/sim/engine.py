"""Vectorized time-stepped epidemic simulator.

The simulation platform of the paper's Section 5, rebuilt: a worm
model supplies per-host targets in batches, the network environment
decides which probes are deliverable, darknet sensors and sensor
grids record what they see, and the host population tracks infections.

Each tick (default one simulated second):

1. every infected host emits ``scan_rate`` probes (fractional rates
   carry a per-host accumulator, so 0.4 scans/s emits a probe every
   2.5 s rather than never);
2. the environment filters the batch (NAT, policy, loss);
3. sensors observe the delivered probes;
4. delivered probes landing on vulnerable hosts infect them; new
   hosts start scanning on the next tick.

All hot-path work is numpy; a full paper-scale run (134,586
vulnerable hosts, 25 seeds, 10 scans/s) takes on the order of a
minute.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.env.environment import NetworkEnvironment
from repro.env.topology import Topology
from repro.net.kernels import kernels_enabled
from repro.population.model import HostPopulation
from repro.sensors.darknet import DarknetSensor
from repro.sensors.deployment import SensorGrid
from repro.sensors.index import SensorIndex
from repro.sim.containment import QuorumTriggeredContainment
from repro.traces.record import TraceRecorder
from repro.worms.base import WormModel


@dataclass(frozen=True)
class SimulationConfig:
    """Knobs for one outbreak run.

    Attributes
    ----------
    scan_rate:
        Probes per second per infected host (the paper fixes 10/s
        "to provide comparable results to [Autograph]").
    tick_seconds:
        Simulation step; probes within a tick are unordered.
    max_time:
        Simulated-seconds horizon.
    seed_count:
        Initially infected hosts, drawn uniformly from the population.
    stop_at_fraction:
        End early once this fraction of the population is infected.
    patch_rate:
        Optional fraction of *vulnerable* hosts immunized per second
        (simple patching model; 0 disables).
    """

    scan_rate: float = 10.0
    tick_seconds: float = 1.0
    max_time: float = 3600.0
    seed_count: int = 25
    stop_at_fraction: float = 1.0
    patch_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.scan_rate <= 0:
            raise ValueError("scan_rate must be positive")
        if self.tick_seconds <= 0:
            raise ValueError("tick_seconds must be positive")
        if self.max_time <= 0:
            raise ValueError("max_time must be positive")
        if self.seed_count < 1:
            raise ValueError("need at least one seed host")
        if not 0.0 < self.stop_at_fraction <= 1.0:
            raise ValueError("stop_at_fraction must be in (0, 1]")
        if not 0.0 <= self.patch_rate < 1.0:
            raise ValueError("patch_rate must be in [0, 1)")


@dataclass(eq=False)
class SimulationResult:
    """What one run produced.

    Equality is bitwise over every field (array dtypes included) —
    the contract the parallel trial runner and the result cache rely
    on when asserting that a replayed run matches the original.
    """

    times: np.ndarray
    infected_counts: np.ndarray
    infection_times: np.ndarray
    population_size: int
    total_probes: int
    delivered_probes: int

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SimulationResult):
            return NotImplemented
        from repro.runtime.compare import results_equal

        return all(
            results_equal(getattr(self, name), getattr(other, name))
            for name in (
                "times",
                "infected_counts",
                "infection_times",
                "population_size",
                "total_probes",
                "delivered_probes",
            )
        )

    @property
    def final_fraction_infected(self) -> float:
        """Infected fraction at the end of the run."""
        if not len(self.infected_counts):
            return 0.0
        return float(self.infected_counts[-1]) / self.population_size

    def fraction_infected_at(self, time: float) -> float:
        """Infected fraction at (or before) a given simulated time."""
        index = int(np.searchsorted(self.times, time, side="right")) - 1
        if index < 0:
            return 0.0
        return float(self.infected_counts[index]) / self.population_size

    def time_to_fraction(self, fraction: float) -> Optional[float]:
        """First time the infected fraction reached ``fraction``.

        Infections never revert, so ``infected_counts`` is monotone
        non-decreasing and the first crossing is a ``searchsorted``
        rather than a full scan.
        """
        threshold = fraction * self.population_size
        index = int(
            np.searchsorted(self.infected_counts, threshold, side="left")
        )
        if index >= len(self.infected_counts):
            return None
        return float(self.times[index])


class EpidemicSimulator:
    """Drives one worm over one population through one environment."""

    def __init__(
        self,
        worm: WormModel,
        population: HostPopulation,
        environment: Optional[NetworkEnvironment] = None,
        topology: Optional[Topology] = None,
        sensors: Sequence[DarknetSensor] = (),
        sensor_grids: Sequence[SensorGrid] = (),
        containment: Optional[QuorumTriggeredContainment] = None,
        trace_recorder: Optional[TraceRecorder] = None,
    ):
        self.worm = worm
        self.population = population
        self.environment = (
            environment if environment is not None else NetworkEnvironment()
        )
        self.topology = topology
        self.sensors = list(sensors)
        self.sensor_grids = list(sensor_grids)
        self.containment = containment
        self.trace_recorder = trace_recorder
        # Delivered batches normally route through one shared
        # SensorIndex pass; the per-sensor loop survives behind this
        # flag (and `kernel_override(False)`) as the equivalence
        # reference and the benchmark baseline.
        self.use_sensor_index = True

    def run(
        self,
        config: SimulationConfig,
        rng: np.random.Generator,
        seed_addrs: Optional[np.ndarray] = None,
    ) -> SimulationResult:
        """Run one outbreak to the horizon or the stop fraction.

        ``seed_addrs`` overrides the random seed choice (must be
        population members).
        """
        population = self.population
        if seed_addrs is None:
            if config.seed_count > population.size:
                raise ValueError("more seeds than hosts")
            seed_addrs = rng.choice(
                population.addresses(), size=config.seed_count, replace=False
            )
        seed_addrs = np.asarray(seed_addrs, dtype=np.uint32)

        state = self.worm.new_state()
        infected_now = population.infect(seed_addrs)
        self.worm.add_hosts(state, infected_now, rng)

        sensor_index = None
        if (
            self.use_sensor_index
            and kernels_enabled()
            and (self.sensors or self.sensor_grids)
        ):
            sensor_index = SensorIndex(self.sensors, self.sensor_grids)

        # Per-host fractional-scan accumulator, grown geometrically so
        # each wave of new infections appends into spare capacity
        # instead of reallocating the whole array.
        accumulator_buffer = np.zeros(max(state.num_hosts, 1), dtype=float)
        times: list[float] = []
        infected_counts: list[int] = []
        infection_times: list[float] = [0.0] * len(infected_now)
        total_probes = 0
        delivered_probes = 0

        num_ticks = int(np.ceil(config.max_time / config.tick_seconds))
        for tick in range(num_ticks):
            now = (tick + 1) * config.tick_seconds

            # Per-host scan budget this tick (fractional rates carry).
            if self.topology is not None:
                rates = self.topology.scan_rates(state.addresses())
            else:
                rates = np.full(state.num_hosts, config.scan_rate)
            scan_accumulator = accumulator_buffer[: state.num_hosts]
            scan_accumulator += rates * config.tick_seconds
            scans_per_host = np.floor(scan_accumulator).astype(np.int64)
            scan_accumulator -= scans_per_host
            max_scans = int(scans_per_host.max()) if state.num_hosts else 0

            if max_scans > 0:
                targets = self.worm.generate(state, max_scans, rng)
                column = np.arange(max_scans)
                active = column[None, :] < scans_per_host[:, None]
                sources = np.broadcast_to(
                    state.addresses()[:, None], targets.shape
                )
                flat_targets = targets[active]
                flat_sources = sources[active]
                total_probes += len(flat_targets)

                deliverable = self.environment.deliverable(
                    flat_sources, flat_targets, rng, worm=self.worm.name
                )
                if self.containment is not None:
                    deliverable = self.containment.filter_probes(
                        deliverable, now, rng
                    )
                delivered_targets = flat_targets[deliverable]
                delivered_sources = flat_sources[deliverable]
                delivered_probes += len(delivered_targets)

                if sensor_index is not None:
                    sensor_index.dispatch(
                        delivered_sources, delivered_targets, now
                    )
                else:
                    for sensor in self.sensors:
                        sensor.observe(delivered_sources, delivered_targets)
                    for grid in self.sensor_grids:
                        grid.observe(delivered_targets, now)
                if self.trace_recorder is not None:
                    self.trace_recorder.record(
                        now,
                        delivered_sources,
                        delivered_targets,
                        worm=self.worm.name,
                    )

                fresh = population.vulnerable_hits(delivered_targets)
                if len(fresh):
                    population.infect(fresh)
                    self.worm.add_hosts(state, fresh, rng)
                    if state.num_hosts > len(accumulator_buffer):
                        grown = np.zeros(
                            max(state.num_hosts, 2 * len(accumulator_buffer)),
                            dtype=float,
                        )
                        grown[: len(accumulator_buffer)] = accumulator_buffer
                        accumulator_buffer = grown
                    infection_times.extend([now] * len(fresh))

            if config.patch_rate > 0:
                vulnerable = population.vulnerable_addresses()
                patch_mask = (
                    rng.random(len(vulnerable))
                    < config.patch_rate * config.tick_seconds
                )
                population.immunize(vulnerable[patch_mask])

            if self.containment is not None:
                self.containment.update(now)

            times.append(now)
            infected_counts.append(population.num_infected)
            if population.fraction_infected >= config.stop_at_fraction:
                break

        return SimulationResult(
            times=np.array(times),
            infected_counts=np.array(infected_counts, dtype=np.int64),
            infection_times=np.array(infection_times),
            population_size=population.size,
            total_probes=total_probes,
            delivered_probes=delivered_probes,
        )


def run_simulation_trial(
    simulator: EpidemicSimulator,
    config: SimulationConfig,
    seed: "int | np.random.SeedSequence",
    seed_addrs: Optional[np.ndarray] = None,
) -> SimulationResult:
    """Module-level (picklable) trial entry point.

    ``TrialRunner`` ships work to pool processes by pickling the
    callable and its arguments; a bound ``simulator.run`` with a live
    ``Generator`` is the wrong unit because generator state would have
    to survive the round-trip.  This function instead carries the
    simulator and *seed material*, building the generator on the
    worker — the same construction the serial path uses, so results
    are identical wherever the trial lands.
    """
    return simulator.run(
        config, np.random.default_rng(seed), seed_addrs=seed_addrs
    )
