"""Vectorized time-stepped epidemic simulator.

The simulation platform of the paper's Section 5, rebuilt: a worm
model supplies per-host targets in batches, the network environment
decides which probes are deliverable, darknet sensors and sensor
grids record what they see, and the host population tracks infections.

Each tick (default one simulated second):

1. every infected host emits ``scan_rate`` probes (fractional rates
   carry a per-host accumulator, so 0.4 scans/s emits a probe every
   2.5 s rather than never);
2. the environment filters the batch (NAT, policy, loss);
3. sensors observe the delivered probes;
4. delivered probes landing on vulnerable hosts infect them; new
   hosts start scanning on the next tick.

All hot-path work is numpy; a full paper-scale run (134,586
vulnerable hosts, 25 seeds, 10 scans/s) takes on the order of a
minute.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from repro.env.environment import NetworkEnvironment
from repro.env.topology import Topology
from repro.net.kernels import MergedPartition, kernels_enabled
from repro.net.special import ADDR_PUBLIC, class_partition
from repro.population.model import HostPopulation
from repro.runtime.perf import stage_timer
from repro.sensors.darknet import DarknetSensor
from repro.sensors.deployment import SensorGrid
from repro.sensors.index import SensorIndex
from repro.sim.arena import TickArena
from repro.sim.containment import QuorumTriggeredContainment
from repro.traces.record import TraceRecorder
from repro.worms.base import WormModel

if TYPE_CHECKING:
    from repro.runtime.checkpoint import Checkpointer


@dataclass(frozen=True)
class SimulationConfig:
    """Knobs for one outbreak run.

    Attributes
    ----------
    scan_rate:
        Probes per second per infected host (the paper fixes 10/s
        "to provide comparable results to [Autograph]").
    tick_seconds:
        Simulation step; probes within a tick are unordered.
    max_time:
        Simulated-seconds horizon.
    seed_count:
        Initially infected hosts, drawn uniformly from the population.
    stop_at_fraction:
        End early once this fraction of the population is infected.
    patch_rate:
        Optional fraction of *vulnerable* hosts immunized per second
        (simple patching model; 0 disables).
    """

    scan_rate: float = 10.0
    tick_seconds: float = 1.0
    max_time: float = 3600.0
    seed_count: int = 25
    stop_at_fraction: float = 1.0
    patch_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.scan_rate <= 0:
            raise ValueError("scan_rate must be positive")
        if self.tick_seconds <= 0:
            raise ValueError("tick_seconds must be positive")
        if self.max_time <= 0:
            raise ValueError("max_time must be positive")
        if self.seed_count < 1:
            raise ValueError("need at least one seed host")
        if not 0.0 < self.stop_at_fraction <= 1.0:
            raise ValueError("stop_at_fraction must be in (0, 1]")
        if not 0.0 <= self.patch_rate < 1.0:
            raise ValueError("patch_rate must be in [0, 1)")


@dataclass(eq=False)
class SimulationResult:
    """What one run produced.

    Equality is bitwise over every field (array dtypes included) —
    the contract the parallel trial runner and the result cache rely
    on when asserting that a replayed run matches the original.
    """

    times: np.ndarray
    infected_counts: np.ndarray
    infection_times: np.ndarray
    population_size: int
    total_probes: int
    delivered_probes: int

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SimulationResult):
            return NotImplemented
        from repro.runtime.compare import results_equal

        return all(
            results_equal(getattr(self, name), getattr(other, name))
            for name in (
                "times",
                "infected_counts",
                "infection_times",
                "population_size",
                "total_probes",
                "delivered_probes",
            )
        )

    @property
    def final_fraction_infected(self) -> float:
        """Infected fraction at the end of the run."""
        if not len(self.infected_counts):
            return 0.0
        return float(self.infected_counts[-1]) / self.population_size

    def fraction_infected_at(self, time: float) -> float:
        """Infected fraction at (or before) a given simulated time."""
        index = int(np.searchsorted(self.times, time, side="right")) - 1
        if index < 0:
            return 0.0
        return float(self.infected_counts[index]) / self.population_size

    def time_to_fraction(self, fraction: float) -> Optional[float]:
        """First time the infected fraction reached ``fraction``.

        Infections never revert, so ``infected_counts`` is monotone
        non-decreasing and the first crossing is a ``searchsorted``
        rather than a full scan.
        """
        threshold = fraction * self.population_size
        index = int(
            np.searchsorted(self.infected_counts, threshold, side="left")
        )
        if index >= len(self.infected_counts):
            return None
        return float(self.times[index])


#: "Never built" sentinel for :class:`_FusedVerdict` (distinct from a
#: ``None`` policy kernel, which is a valid built state).
_UNBUILT = object()


class _FusedVerdict:
    """One merged-partition locate answering every per-target question.

    The tick loop's delivered-batch path asks three independent
    interval questions about the same targets — special-range class,
    policy membership, sensor ownership.  This glue fuses their tables
    into one :class:`repro.net.kernels.MergedPartition`, so a tick
    pays a single locate, then reads each answer with one gather.

    Invalidation is by identity: the policy's compiled kernel object
    changes whenever its rule list does (see
    :meth:`repro.env.filtering.FilteringPolicy.compiled_kernel`), the
    sensor index is fixed per run, and the special-range table is
    static — so ``refresh`` rebuilds exactly when the kernel object
    differs from the one the table was built for.
    """

    __slots__ = (
        "environment",
        "worm_name",
        "sensor_index",
        "_merged",
        "_kernel",
        "_built_for",
        "_policy_component",
        "_sensor_component",
        "_num_layers",
        "_det",
        "_host_policy_buf",
        "_host_policy_count",
    )

    def __init__(
        self,
        environment: NetworkEnvironment,
        worm_name: Optional[str],
        sensor_index: Optional[SensorIndex],
    ):
        self.environment = environment
        self.worm_name = worm_name
        self.sensor_index = sensor_index
        self._merged: Optional[MergedPartition] = None
        self._kernel = None
        self._built_for: object = _UNBUILT
        self._policy_component: Optional[int] = None
        self._sensor_component = 0
        self._num_layers = 0
        self._det: Optional[np.ndarray] = None
        self._host_policy_buf: Optional[np.ndarray] = None
        self._host_policy_count = 0

    @property
    def kernel(self):
        """The policy kernel the current table answers for (or None)."""
        return self._kernel

    def refresh(self) -> None:
        """Rebuild the merged table if any component changed."""
        kernel = self.environment.policy.compiled_kernel(self.worm_name)
        if kernel is self._built_for:
            return
        components = [class_partition()]
        self._policy_component = None
        if kernel is not None:
            self._policy_component = len(components)
            components.append(kernel.partition_component())
        self._sensor_component = len(components)
        self._num_layers = 0
        if self.sensor_index is not None:
            sensor_components = self.sensor_index.partition_components()
            components.extend(sensor_components)
            self._num_layers = len(sensor_components)
        self._merged = MergedPartition(components)
        self._kernel = kernel
        self._built_for = kernel
        self._host_policy_buf = None
        self._host_policy_count = 0
        # Every RNG-free layer is a pure function of the source's
        # policy region and the target's merged interval, so fold them
        # all into one verdict table when NAT permits: with no NATed
        # hosts under the strict model, the NAT layer reduces to
        # "target is not private", making routable & NAT & policy a
        # per-(source-region, interval) boolean.  A tick then resolves
        # the deterministic layers with ONE table gather and ANDs in
        # the loss draw; boolean AND commutes, so the mask is
        # bit-identical to the layer-by-layer composition.
        self._det = None
        nat = self.environment.nat
        if nat.num_hosts == 0 and nat.intra_private_model == "strict":
            target_ok = (
                np.asarray(self._merged.values(0)) == ADDR_PUBLIC
            )
            if kernel is not None:
                target_indices = self._merged.values(
                    self._policy_component
                )
                self._det = (
                    kernel.decision_table[:, target_indices]
                    & target_ok[None, :]
                )
            elif not self.environment.policy.rules:
                self._det = target_ok

    def host_policy_indices(
        self, addresses: np.ndarray
    ) -> Optional[np.ndarray]:
        """Per-host policy membership, cached across ticks.

        The infected-host address table only appends within a run, so
        each tick resolves membership for the new hosts alone; the
        buffer grows geometrically like every arena buffer.  ``None``
        when the policy has no compiled kernel.
        """
        kernel = self._kernel
        if kernel is None:
            return None
        count = len(addresses)
        buf = self._host_policy_buf
        if buf is None or len(buf) < count:
            grown = np.empty(
                max(count, 1) if buf is None else max(count, 2 * len(buf)),
                dtype=np.int64,
            )
            if buf is not None:
                grown[: self._host_policy_count] = buf[
                    : self._host_policy_count
                ]
            self._host_policy_buf = buf = grown
        if self._host_policy_count < count:
            buf[self._host_policy_count : count] = kernel.source_membership(
                addresses[self._host_policy_count : count]
            )
            self._host_policy_count = count
        return buf[:count]

    def deterministic(
        self,
        flat_sources: np.ndarray,
        flat_targets: np.ndarray,
        source_indices: Optional[np.ndarray] = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Pre-loss deliverability mask plus the merged slot per probe.

        Resolves every RNG-free layer (routability, NAT, policy) —
        bit-identical to ``environment.deterministic_deliverable`` on
        the same batch.  The sharded engine calls this per shard while
        the driver keeps the loss draw global; the serial path gets
        the loss ANDed back in by :meth:`verdict`.
        """
        merged = self._merged
        slots = merged.locate(flat_targets)
        det = self._det
        if det is not None:
            if det.ndim == 2:
                if source_indices is None:
                    source_indices = self._kernel.source_membership(
                        flat_sources
                    )
                ok = det[source_indices, slots]
            else:
                ok = det[slots]
            return ok, slots
        target_class = merged.values(0)[slots]
        policy_ok = None
        if self._kernel is not None:
            if source_indices is None:
                source_indices = self._kernel.source_membership(flat_sources)
            target_indices = merged.values(self._policy_component)[slots]
            policy_ok = self._kernel.deliverable_from_indices(
                source_indices, target_indices
            )
        ok = self.environment.deterministic_deliverable(
            flat_sources,
            flat_targets,
            worm=self.worm_name,
            target_class=target_class,
            policy_ok=policy_ok,
        )
        return ok, slots

    def verdict(
        self,
        flat_sources: np.ndarray,
        flat_targets: np.ndarray,
        rng: np.random.Generator,
        source_indices: Optional[np.ndarray] = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Deliverability mask plus the merged slot per probe.

        Bit-identical to ``environment.deliverable`` on the same batch
        (:meth:`deterministic` composes the RNG-free layers, then the
        loss draw is ANDed in last, so RNG consumption is unchanged);
        the returned slots feed :meth:`dispatch` so sensors reuse the
        same locate.
        """
        ok, slots = self.deterministic(
            flat_sources, flat_targets, source_indices
        )
        np.logical_and(
            ok,
            self.environment.loss.deliverable(flat_targets, rng),
            out=ok,
        )
        return ok, slots

    def dispatch(
        self,
        sources: np.ndarray,
        targets: np.ndarray,
        time: float,
        delivered_slots: np.ndarray,
    ) -> None:
        """Route a delivered batch to sensors via the shared locate."""
        if self.sensor_index is None:
            return
        owners = [
            self._merged.values(self._sensor_component + layer)[
                delivered_slots
            ]
            for layer in range(self._num_layers)
        ]
        self.sensor_index.dispatch_from_owner_slots(
            sources, targets, time, owners
        )


class EpidemicSimulator:
    """Drives one worm over one population through one environment."""

    def __init__(
        self,
        worm: WormModel,
        population: HostPopulation,
        environment: Optional[NetworkEnvironment] = None,
        topology: Optional[Topology] = None,
        sensors: Sequence[DarknetSensor] = (),
        sensor_grids: Sequence[SensorGrid] = (),
        containment: Optional[QuorumTriggeredContainment] = None,
        trace_recorder: Optional[TraceRecorder] = None,
    ):
        self.worm = worm
        self.population = population
        self.environment = (
            environment if environment is not None else NetworkEnvironment()
        )
        self.topology = topology
        self.sensors = list(sensors)
        self.sensor_grids = list(sensor_grids)
        self.containment = containment
        self.trace_recorder = trace_recorder
        # Delivered batches normally route through one shared
        # SensorIndex pass; the per-sensor loop survives behind this
        # flag (and `kernel_override(False)`) as the equivalence
        # reference and the benchmark baseline.
        self.use_sensor_index = True
        # The fused tick pipeline (arena buffers, merged verdict
        # partition, index-based gathering) and its uniform-rate fast
        # path.  Both are bit-equivalent to the reference loop, which
        # stays reachable via `kernel_override(False)` or these flags;
        # the equivalence suite exercises every combination.
        self.use_fused_tick = True
        self.use_uniform_fast_path = True
        #: The scratch arena of the most recent fused run (None after
        #: a reference run); exposed for allocation accounting.
        self.last_arena: Optional[TickArena] = None

    def run(
        self,
        config: SimulationConfig,
        rng: np.random.Generator,
        seed_addrs: Optional[np.ndarray] = None,
        checkpointer: Optional["Checkpointer"] = None,
        resume: Optional[dict] = None,
    ) -> SimulationResult:
        """Run one outbreak to the horizon or the stop fraction.

        ``seed_addrs`` overrides the random seed choice (must be
        population members).  ``checkpointer`` persists the full run
        state at its tick cadence; ``resume`` is a validated payload
        from :func:`repro.runtime.checkpoint.load_checkpoint` — the
        run restores every piece of mutable state (including the
        generator's bit-generator state, which already accounts for
        the seed draw) and continues from the next tick, bitwise-
        identical to a run that was never interrupted.
        """
        population = self.population
        if resume is not None:
            # The snapshot's worm state is deep-copied so a pool-
            # failure re-run restoring from the same payload starts
            # from unconsumed state.
            state = copy.deepcopy(resume["worm_state"])
            infected_now = np.empty(0, dtype=np.uint32)
        else:
            if seed_addrs is None:
                if config.seed_count > population.size:
                    raise ValueError("more seeds than hosts")
                seed_addrs = rng.choice(
                    population.addresses(),
                    size=config.seed_count,
                    replace=False,
                )
            seed_addrs = np.asarray(seed_addrs, dtype=np.uint32)

            state = self.worm.new_state()
            infected_now = population.infect(seed_addrs)
            self.worm.add_hosts(state, infected_now, rng)

        sensor_index = None
        if (
            self.use_sensor_index
            and kernels_enabled()
            and (self.sensors or self.sensor_grids)
        ):
            sensor_index = SensorIndex(self.sensors, self.sensor_grids)

        fused = self.use_fused_tick and kernels_enabled()
        arena = TickArena() if fused else None
        self.last_arena = arena
        verdict_path = (
            _FusedVerdict(self.environment, self.worm.name, sensor_index)
            if fused
            else None
        )
        # Uniform-rate fast path legality: with no topology and an
        # integral per-tick budget (one exact IEEE multiply — the same
        # product the accumulator path adds), the accumulator provably
        # stays 0.0 and every host emits exactly `uniform_scans`
        # probes, so the accumulator math, the all-True active mask,
        # and the source broadcast drop out bit-identically.
        per_tick_budget = config.scan_rate * config.tick_seconds
        uniform_fast = (
            fused
            and self.use_uniform_fast_path
            and self.topology is None
            and float(per_tick_budget).is_integer()
        )
        uniform_scans = int(per_tick_budget) if uniform_fast else 0

        if not fused:
            # Per-host fractional-scan accumulator, grown geometrically
            # so each wave of new infections appends into spare
            # capacity instead of reallocating the whole array (the
            # fused path keeps this carry in the arena instead).
            accumulator_buffer = np.zeros(
                max(state.num_hosts, 1), dtype=float
            )
        times: list[float] = []
        infected_counts: list[int] = []
        infection_times: list[float] = [0.0] * len(infected_now)
        total_probes = 0
        delivered_probes = 0
        start_tick = 0
        if resume is not None:
            rng.bit_generator.state = resume["rng_state"]
            population.state_restore(resume["population"])
            for sensor, snapshot in zip(self.sensors, resume["sensors"]):
                sensor.state_restore(snapshot)
            for grid, snapshot in zip(self.sensor_grids, resume["grids"]):
                grid.state_restore(snapshot)
            if (
                self.containment is not None
                and resume["containment"] is not None
            ):
                self.containment.state_restore(resume["containment"])
            if (
                self.trace_recorder is not None
                and resume["trace"] is not None
            ):
                self.trace_recorder.state_restore(resume["trace"])
            # A None carry means the writing run proved the
            # accumulator stays 0.0 (uniform fast path), so the
            # zero-initialized buffer above is already exact.
            carry = resume["accumulator"]
            if carry is not None:
                carry = np.asarray(carry, dtype=float)
                if fused:
                    arena.accumulator(len(carry))[:] = carry
                else:
                    accumulator_buffer[: len(carry)] = carry
            times = list(resume["times"])
            infected_counts = list(resume["infected_counts"])
            infection_times = list(resume["infection_times"])
            total_probes = int(resume["total_probes"])
            delivered_probes = int(resume["delivered_probes"])
            start_tick = int(resume["tick"]) + 1
        timer = stage_timer()

        num_ticks = int(np.ceil(config.max_time / config.tick_seconds))
        for tick in range(start_tick, num_ticks):
            now = (tick + 1) * config.tick_seconds
            timer.start()

            if uniform_fast:
                max_scans = uniform_scans if state.num_hosts else 0
            else:
                # Per-host scan budget this tick (fractional rates
                # carry across ticks in the accumulator).
                if self.topology is not None:
                    rates = self.topology.scan_rates(state.addresses())
                    budget = rates * config.tick_seconds
                else:
                    # A constant rate accumulates as a scalar; the
                    # per-tick np.full this replaces was bit-identical
                    # overhead (same IEEE product, broadcast add).
                    budget = per_tick_budget
                if fused:
                    scan_accumulator = arena.accumulator(state.num_hosts)
                else:
                    scan_accumulator = accumulator_buffer[: state.num_hosts]
                scan_accumulator += budget
                scans_per_host = np.floor(scan_accumulator).astype(np.int64)
                scan_accumulator -= scans_per_host
                max_scans = (
                    int(scans_per_host.max()) if state.num_hosts else 0
                )

            if max_scans > 0:
                targets = self.worm.generate(state, max_scans, rng)
                if uniform_fast:
                    # Every host scans exactly max_scans times: the
                    # active mask is all-True, so row-major flattening
                    # is the identity traversal the reference's
                    # `targets[active]` performs.
                    flat_targets = targets.ravel()
                    flat_sources = arena.repeated(
                        "uniform_sources", state.addresses(), max_scans
                    )
                elif fused:
                    active = arena.request(
                        "active", state.num_hosts * max_scans, np.bool_
                    ).reshape(state.num_hosts, max_scans)
                    np.less(
                        np.arange(max_scans)[None, :],
                        scans_per_host[:, None],
                        out=active,
                    )
                    probe_index = np.flatnonzero(active.ravel())
                    flat_targets = np.take(
                        targets,
                        probe_index,
                        out=arena.request(
                            "flat_targets", len(probe_index), targets.dtype
                        ),
                    )
                    source_rows = np.floor_divide(
                        probe_index,
                        max_scans,
                        out=arena.request(
                            "source_rows",
                            len(probe_index),
                            probe_index.dtype,
                        ),
                    )
                    flat_sources = np.take(
                        state.addresses(),
                        source_rows,
                        out=arena.request(
                            "flat_sources", len(probe_index), np.uint32
                        ),
                    )
                else:
                    column = np.arange(max_scans)
                    active = column[None, :] < scans_per_host[:, None]
                    sources = np.broadcast_to(
                        state.addresses()[:, None], targets.shape
                    )
                    flat_targets = targets[active]
                    flat_sources = sources[active]
                total_probes += len(flat_targets)
                timer.lap("generate")

                if verdict_path is not None:
                    verdict_path.refresh()
                    host_policy = verdict_path.host_policy_indices(
                        state.addresses()
                    )
                    source_indices = None
                    if host_policy is not None:
                        if uniform_fast:
                            source_indices = arena.repeated(
                                "uniform_source_policy",
                                host_policy,
                                max_scans,
                                token=verdict_path.kernel,
                            )
                        else:
                            source_indices = np.take(
                                host_policy,
                                source_rows,
                                out=arena.request(
                                    "flat_source_policy",
                                    len(source_rows),
                                    np.int64,
                                ),
                            )
                    deliverable, slots = verdict_path.verdict(
                        flat_sources, flat_targets, rng, source_indices
                    )
                else:
                    deliverable = self.environment.deliverable(
                        flat_sources, flat_targets, rng, worm=self.worm.name
                    )
                if self.containment is not None:
                    deliverable = self.containment.filter_probes(
                        deliverable, now, rng
                    )
                if fused:
                    delivered_index = np.flatnonzero(deliverable)
                    delivered_targets = np.take(
                        flat_targets,
                        delivered_index,
                        out=arena.request(
                            "delivered_targets",
                            len(delivered_index),
                            flat_targets.dtype,
                        ),
                    )
                    delivered_sources = np.take(
                        flat_sources,
                        delivered_index,
                        out=arena.request(
                            "delivered_sources",
                            len(delivered_index),
                            flat_sources.dtype,
                        ),
                    )
                else:
                    delivered_targets = flat_targets[deliverable]
                    delivered_sources = flat_sources[deliverable]
                delivered_probes += len(delivered_targets)
                timer.lap("filter")

                if verdict_path is not None and sensor_index is not None:
                    delivered_slots = np.take(
                        slots,
                        delivered_index,
                        out=arena.request(
                            "delivered_slots",
                            len(delivered_index),
                            slots.dtype,
                        ),
                    )
                    verdict_path.dispatch(
                        delivered_sources,
                        delivered_targets,
                        now,
                        delivered_slots,
                    )
                elif sensor_index is not None:
                    sensor_index.dispatch(
                        delivered_sources, delivered_targets, now
                    )
                else:
                    for sensor in self.sensors:
                        sensor.observe(delivered_sources, delivered_targets)
                    for grid in self.sensor_grids:
                        grid.observe(delivered_targets, now)
                if self.trace_recorder is not None:
                    self.trace_recorder.record(
                        now,
                        delivered_sources,
                        delivered_targets,
                        worm=self.worm.name,
                    )
                timer.lap("dispatch")

                fresh = population.vulnerable_hits(delivered_targets)
                if len(fresh):
                    population.infect(fresh)
                    self.worm.add_hosts(state, fresh, rng)
                    if not fused and state.num_hosts > len(
                        accumulator_buffer
                    ):
                        grown = np.zeros(
                            max(state.num_hosts, 2 * len(accumulator_buffer)),
                            dtype=float,
                        )
                        grown[: len(accumulator_buffer)] = accumulator_buffer
                        accumulator_buffer = grown
                    infection_times.extend([now] * len(fresh))
            else:
                timer.lap("generate")

            if config.patch_rate > 0:
                vulnerable = population.vulnerable_addresses()
                patch_mask = (
                    rng.random(len(vulnerable))
                    < config.patch_rate * config.tick_seconds
                )
                population.immunize(vulnerable[patch_mask])

            if self.containment is not None:
                self.containment.update(now)

            times.append(now)
            infected_counts.append(population.num_infected)
            timer.lap("infect")
            timer.tick()
            if population.fraction_infected >= config.stop_at_fraction:
                break
            if checkpointer is not None and checkpointer.due(tick):
                if uniform_fast:
                    carry = None
                elif fused:
                    carry = arena.accumulator(state.num_hosts).copy()
                else:
                    carry = accumulator_buffer[: state.num_hosts].copy()
                checkpointer.write(
                    tick,
                    {
                        "rng_state": rng.bit_generator.state,
                        "worm_state": state,
                        "population": population.state_snapshot(),
                        "sensors": [
                            sensor.state_snapshot()
                            for sensor in self.sensors
                        ],
                        "grids": [
                            grid.state_snapshot()
                            for grid in self.sensor_grids
                        ],
                        "containment": (
                            self.containment.state_snapshot()
                            if self.containment is not None
                            else None
                        ),
                        "trace": (
                            self.trace_recorder.state_snapshot()
                            if self.trace_recorder is not None
                            else None
                        ),
                        "accumulator": carry,
                        "times": list(times),
                        "infected_counts": list(infected_counts),
                        "infection_times": list(infection_times),
                        "total_probes": total_probes,
                        "delivered_probes": delivered_probes,
                    },
                )

        return SimulationResult(
            times=np.array(times),
            infected_counts=np.array(infected_counts, dtype=np.int64),
            infection_times=np.array(infection_times),
            population_size=population.size,
            total_probes=total_probes,
            delivered_probes=delivered_probes,
        )


def run_simulation_trial(
    simulator: EpidemicSimulator,
    config: SimulationConfig,
    seed: "int | np.random.SeedSequence",
    seed_addrs: Optional[np.ndarray] = None,
) -> SimulationResult:
    """Module-level (picklable) trial entry point.

    ``TrialRunner`` ships work to pool processes by pickling the
    callable and its arguments; a bound ``simulator.run`` with a live
    ``Generator`` is the wrong unit because generator state would have
    to survive the round-trip.  This function instead carries the
    simulator and *seed material*, building the generator on the
    worker — the same construction the serial path uses, so results
    are identical wherever the trial lands.
    """
    return simulator.run(
        config, np.random.default_rng(seed), seed_addrs=seed_addrs
    )
