"""Detection-triggered containment (Internet quarantine).

The paper warns that by the time a hotspot worm is noticed, "the worm
has already infected more than 50% of the vulnerable population making
global containment difficult or impossible" — referencing Moore et
al.'s quarantine requirements.  This module adds the response side: a
containment controller watches a detection grid and, once a quorum of
sensors alerts (plus a reaction delay for signature generation and
deployment), begins dropping the worm's probes with a given efficacy.

Plugged into :class:`~repro.sim.engine.EpidemicSimulator`, it turns
"when does detection fire?" into the operationally meaningful
"how much of the population is saved?"
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.sensors.deployment import SensorGrid


class QuorumTriggeredContainment:
    """Blocks worm traffic once a sensor quorum fires.

    Parameters
    ----------
    grid:
        The detection deployment driving the response.
    quorum_fraction:
        Fraction of sensors that must alert to trigger containment.
    reaction_delay:
        Seconds between the quorum firing and filters being deployed
        (signature generation, dissemination, router updates).
    block_probability:
        Efficacy: fraction of worm probes dropped once active
        (1.0 = perfect global quarantine).
    """

    def __init__(
        self,
        grid: SensorGrid,
        quorum_fraction: float = 0.05,
        reaction_delay: float = 60.0,
        block_probability: float = 1.0,
    ):
        if not 0.0 < quorum_fraction <= 1.0:
            raise ValueError("quorum_fraction must be in (0, 1]")
        if reaction_delay < 0:
            raise ValueError("reaction_delay must be non-negative")
        if not 0.0 <= block_probability <= 1.0:
            raise ValueError("block_probability must be in [0, 1]")
        self.grid = grid
        self.quorum_fraction = quorum_fraction
        self.reaction_delay = reaction_delay
        self.block_probability = block_probability
        self.triggered_at: Optional[float] = None

    @property
    def active_from(self) -> Optional[float]:
        """Time filters are live (trigger + reaction delay)."""
        if self.triggered_at is None:
            return None
        return self.triggered_at + self.reaction_delay

    def update(self, now: float) -> None:
        """Check the quorum; latch the trigger time."""
        if self.triggered_at is not None:
            return
        if self.grid.fraction_alerted(at_time=now) >= self.quorum_fraction:
            self.triggered_at = now

    def is_active(self, now: float) -> bool:
        """Whether filters are dropping probes at ``now``."""
        return self.active_from is not None and now >= self.active_from

    def filter_probes(
        self, deliverable: np.ndarray, now: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Apply containment drops on top of an environment mask."""
        if not self.is_active(now):
            return deliverable
        if self.block_probability >= 1.0:
            return np.zeros_like(deliverable)
        keep = rng.random(deliverable.shape) >= self.block_probability
        return deliverable & keep

    # -- checkpoint support -------------------------------------------

    def state_snapshot(self) -> dict:
        """The controller's only mutable state: the latched trigger."""
        return {"triggered_at": self.triggered_at}

    def state_restore(self, snapshot: dict) -> None:
        """Overwrite the latched trigger time from a snapshot."""
        triggered_at = snapshot["triggered_at"]
        self.triggered_at = (
            None if triggered_at is None else float(triggered_at)
        )
