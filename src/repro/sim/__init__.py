"""Worm outbreak simulation.

``engine``
    The vectorized time-stepped epidemic simulator used for every
    outbreak experiment in the paper's Section 5.
``spec``
    :class:`SimulationSpec` — the single picklable description of one
    outbreak (population + worm + environment + sensors + shard plan
    + tick budget) and :func:`simulate`, the one entry point over it.
``shard``
    The sharded address-space engine: K per-interval engines behind a
    deterministic exchange, bitwise-identical to the serial reference.
``epidemic``
    The classic analytic SI ("simple epidemic") model, used to
    validate the simulator and as the uniform-propagation baseline the
    paper defines hotspots against.
``events``
    A small discrete-event kernel for packet-level micro-simulations
    (latency-sensitive scenarios the 1-second engine cannot resolve).
"""

from repro.sim.arena import TickArena
from repro.sim.containment import QuorumTriggeredContainment
from repro.sim.engine import (
    EpidemicSimulator,
    SimulationConfig,
    SimulationResult,
    run_simulation_trial,
)
from repro.sim.epidemic import si_curve, si_time_to_fraction
from repro.sim.events import Event, EventKernel
from repro.sim.shard import ShardEngine, ShardPlan, ShardedSimulator
from repro.sim.spec import SimulationSpec, run_spec_trial, simulate

__all__ = [
    "EpidemicSimulator",
    "Event",
    "EventKernel",
    "QuorumTriggeredContainment",
    "ShardEngine",
    "ShardPlan",
    "ShardedSimulator",
    "SimulationConfig",
    "SimulationResult",
    "SimulationSpec",
    "TickArena",
    "run_simulation_trial",
    "run_spec_trial",
    "si_curve",
    "si_time_to_fraction",
    "simulate",
]
