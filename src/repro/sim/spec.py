"""`SimulationSpec`: one picklable description of one outbreak.

Engine construction had accreted loose kwargs — a worm here, a
population there, a :class:`~repro.sim.engine.SimulationConfig` plus
``seed_addrs`` threaded through ``run_simulation_trial`` — and none of
it could express shard topology.  ``SimulationSpec`` collapses all of
it into a single frozen, picklable unit: population + worm +
environment + sensors + shard plan + tick budget.  The registry, the
trial runner, the journal, and the CLI all pass specs around; the old
entry points (``EpidemicSimulator.run``, ``run_simulation_trial``)
remain as thin compatibility wrappers over the same engine for one
release.

Validation happens at construction and every error names the
offending field (``SimulationSpec.scan_rate must be positive``), so a
spec that pickles into a pool worker is already known-good.

:func:`simulate` is the one entry point: it runs the sharded engine
when the spec carries a shard plan (and kernels are enabled — under
``kernel_override(False)`` the same spec runs the serial reference
engine, the gating idiom every kernel follows), and the classic
serial engine otherwise.  Results are bitwise-identical either way.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Optional, Union

import numpy as np

from repro.env.environment import NetworkEnvironment
from repro.env.topology import Topology
from repro.net.kernels import kernels_enabled
from repro.population.model import HostPopulation
from repro.runtime.checkpoint import (
    Checkpointer,
    load_checkpoint,
    record_recovery,
    spec_hash,
)
from repro.sensors.darknet import DarknetSensor
from repro.sensors.deployment import SensorGrid
from repro.sim.containment import QuorumTriggeredContainment
from repro.sim.engine import (
    EpidemicSimulator,
    SimulationConfig,
    SimulationResult,
)
from repro.sim.shard import ShardPlan, ShardedSimulator, as_shard_plan
from repro.traces.record import TraceRecorder
from repro.worms.base import WormModel

#: Seed material accepted wherever a run needs randomness.
SeedLike = Union[int, np.random.SeedSequence, np.random.Generator]


def _type_error(field_name: str, expected: str, value: object) -> TypeError:
    return TypeError(
        f"SimulationSpec.{field_name}: expected {expected}, "
        f"got {type(value).__name__}"
    )


@dataclass(frozen=True, eq=False)
class SimulationSpec:
    """Everything one outbreak run needs, in one picklable object.

    Attributes
    ----------
    worm:
        The :class:`~repro.worms.base.WormModel` driving the outbreak.
    population:
        The vulnerable hosts — a
        :class:`~repro.population.model.HostPopulation` or an address
        array (coerced).
    environment:
        The :class:`~repro.env.environment.NetworkEnvironment`
        (default: empty — everything routable, no NAT, no loss).
    topology:
        Optional per-host bandwidth :class:`~repro.env.topology.Topology`.
    sensors, sensor_grids:
        Darknet sensors and /24 sensor grids observing the outbreak.
    containment:
        Optional quorum-triggered containment (in-process shards only).
    trace_recorder:
        Optional delivered-probe trace sink (in-process shards only).
    scan_rate, tick_seconds, max_time, seed_count, stop_at_fraction,
    patch_rate:
        The tick budget — the former ``SimulationConfig`` knobs,
        inlined with the same semantics and defaults.
    shards:
        The shard plan: a :class:`~repro.sim.shard.ShardPlan`, an
        ``int`` shard count (even split), or ``None`` for the classic
        single-engine run.
    seed_addrs:
        Optional explicit seed hosts (otherwise ``seed_count`` hosts
        are drawn uniformly at run time).
    checkpoint_every:
        Optional tick cadence for mid-run checkpoints (see
        :mod:`repro.runtime.checkpoint`); ``None`` disables them.
        Cadence never changes results — it is deliberately excluded
        from the checkpoint spec hash, so a run may be restored under
        a different cadence.
    """

    worm: WormModel
    population: HostPopulation
    environment: NetworkEnvironment = field(default=None)  # type: ignore[assignment]
    topology: Optional[Topology] = None
    sensors: tuple[DarknetSensor, ...] = ()
    sensor_grids: tuple[SensorGrid, ...] = ()
    containment: Optional[QuorumTriggeredContainment] = None
    trace_recorder: Optional[TraceRecorder] = None
    scan_rate: float = 10.0
    tick_seconds: float = 1.0
    max_time: float = 3600.0
    seed_count: int = 25
    stop_at_fraction: float = 1.0
    patch_rate: float = 0.0
    shards: Union[ShardPlan, int, None] = None
    seed_addrs: Optional[np.ndarray] = None
    checkpoint_every: Optional[int] = None

    def __post_init__(self) -> None:
        set_ = object.__setattr__
        if not isinstance(self.worm, WormModel):
            raise _type_error("worm", "a WormModel", self.worm)
        if not isinstance(self.population, HostPopulation):
            try:
                addrs = np.asarray(self.population, dtype=np.uint32)
            except (TypeError, ValueError):
                raise _type_error(
                    "population",
                    "a HostPopulation or an address array",
                    self.population,
                ) from None
            set_(self, "population", HostPopulation(addrs))
        if self.environment is None:
            set_(self, "environment", NetworkEnvironment())
        elif not isinstance(self.environment, NetworkEnvironment):
            raise _type_error(
                "environment", "a NetworkEnvironment or None", self.environment
            )
        if self.topology is not None and not isinstance(
            self.topology, Topology
        ):
            raise _type_error("topology", "a Topology or None", self.topology)
        sensors = tuple(self.sensors)
        for index, sensor in enumerate(sensors):
            if not isinstance(sensor, DarknetSensor):
                raise _type_error(
                    f"sensors[{index}]", "a DarknetSensor", sensor
                )
        set_(self, "sensors", sensors)
        grids = tuple(self.sensor_grids)
        for index, grid in enumerate(grids):
            if not isinstance(grid, SensorGrid):
                raise _type_error(
                    f"sensor_grids[{index}]", "a SensorGrid", grid
                )
        set_(self, "sensor_grids", grids)
        if self.containment is not None and not isinstance(
            self.containment, QuorumTriggeredContainment
        ):
            raise _type_error(
                "containment",
                "a QuorumTriggeredContainment or None",
                self.containment,
            )
        if self.trace_recorder is not None and not isinstance(
            self.trace_recorder, TraceRecorder
        ):
            raise _type_error(
                "trace_recorder", "a TraceRecorder or None", self.trace_recorder
            )
        if self.scan_rate <= 0:
            raise ValueError(
                f"SimulationSpec.scan_rate must be positive, "
                f"got {self.scan_rate}"
            )
        if self.tick_seconds <= 0:
            raise ValueError(
                f"SimulationSpec.tick_seconds must be positive, "
                f"got {self.tick_seconds}"
            )
        if self.max_time <= 0:
            raise ValueError(
                f"SimulationSpec.max_time must be positive, "
                f"got {self.max_time}"
            )
        if self.seed_count < 1:
            raise ValueError(
                f"SimulationSpec.seed_count must be at least 1, "
                f"got {self.seed_count}"
            )
        if not 0.0 < self.stop_at_fraction <= 1.0:
            raise ValueError(
                f"SimulationSpec.stop_at_fraction must be in (0, 1], "
                f"got {self.stop_at_fraction}"
            )
        if not 0.0 <= self.patch_rate < 1.0:
            raise ValueError(
                f"SimulationSpec.patch_rate must be in [0, 1), "
                f"got {self.patch_rate}"
            )
        # Normalizes and validates (ShardPlan | int | None), raising
        # with the field name on anything else.
        as_shard_plan(self.shards)
        if self.seed_addrs is not None:
            try:
                seed_addrs = np.asarray(self.seed_addrs, dtype=np.uint32)
            except (TypeError, ValueError):
                raise _type_error(
                    "seed_addrs", "an address array or None", self.seed_addrs
                ) from None
            if seed_addrs.ndim != 1:
                raise ValueError(
                    "SimulationSpec.seed_addrs must be one-dimensional, "
                    f"got shape {seed_addrs.shape}"
                )
            set_(self, "seed_addrs", seed_addrs)
        if self.checkpoint_every is not None:
            if not isinstance(self.checkpoint_every, (int, np.integer)):
                raise _type_error(
                    "checkpoint_every",
                    "an int tick cadence or None",
                    self.checkpoint_every,
                )
            if self.checkpoint_every < 1:
                raise ValueError(
                    "SimulationSpec.checkpoint_every must be at least 1, "
                    f"got {self.checkpoint_every}"
                )
            set_(self, "checkpoint_every", int(self.checkpoint_every))

    # -- construction helpers -----------------------------------------

    @classmethod
    def from_config(
        cls,
        config: SimulationConfig,
        *,
        worm: WormModel,
        population: HostPopulation,
        **kwargs: object,
    ) -> "SimulationSpec":
        """Back-compat: lift a ``SimulationConfig`` into a spec.

        Every remaining keyword (environment, sensors, shards, ...)
        passes through unchanged.
        """
        for knob in (
            "scan_rate",
            "tick_seconds",
            "max_time",
            "seed_count",
            "stop_at_fraction",
            "patch_rate",
        ):
            if knob in kwargs:
                raise ValueError(
                    f"SimulationSpec.{knob}: set via the config argument, "
                    "not as a keyword, when using from_config()"
                )
            kwargs[knob] = getattr(config, knob)
        return cls(worm=worm, population=population, **kwargs)  # type: ignore[arg-type]

    def with_(self, **changes: object) -> "SimulationSpec":
        """A copy with fields replaced (``dataclasses.replace``)."""
        return replace(self, **changes)  # type: ignore[arg-type]

    # -- derived views -------------------------------------------------

    @property
    def config(self) -> SimulationConfig:
        """The tick-budget knobs as a classic ``SimulationConfig``."""
        return SimulationConfig(
            scan_rate=self.scan_rate,
            tick_seconds=self.tick_seconds,
            max_time=self.max_time,
            seed_count=self.seed_count,
            stop_at_fraction=self.stop_at_fraction,
            patch_rate=self.patch_rate,
        )

    @property
    def shard_plan(self) -> Optional[ShardPlan]:
        """The normalized shard plan (``None`` = single engine)."""
        return as_shard_plan(self.shards)

    @property
    def num_ticks(self) -> int:
        """The tick budget: how many steps reach ``max_time``."""
        return int(np.ceil(self.max_time / self.tick_seconds))

    def build_simulator(self) -> EpidemicSimulator:
        """The classic single-engine simulator over this spec."""
        return EpidemicSimulator(
            worm=self.worm,
            population=self.population,
            environment=self.environment,
            topology=self.topology,
            sensors=self.sensors,
            sensor_grids=self.sensor_grids,
            containment=self.containment,
            trace_recorder=self.trace_recorder,
        )

    def describe(self) -> dict[str, object]:
        """A journal-friendly summary of the spec's shape."""
        plan = self.shard_plan
        return {
            "worm": self.worm.name,
            "population_size": self.population.size,
            "num_sensors": len(self.sensors),
            "num_sensor_grids": len(self.sensor_grids),
            "scan_rate": self.scan_rate,
            "tick_seconds": self.tick_seconds,
            "max_time": self.max_time,
            "seed_count": self.seed_count,
            "num_shards": plan.num_shards if plan is not None else 1,
        }


def simulate(
    spec: SimulationSpec,
    rng: SeedLike,
    *,
    shard_workers: int = 1,
    shard_transport: str = "ring",
    checkpoint_dir: "Union[str, os.PathLike[str], None]" = None,
    restore_from: "Union[str, os.PathLike[str], None]" = None,
    shard_heartbeat: Optional[float] = None,
) -> SimulationResult:
    """Run one outbreak described by a spec.

    ``rng`` is seed material (int / SeedSequence) or a live generator.
    With a shard plan (and kernels enabled), the sharded engine runs —
    bitwise-identical to the serial reference; under
    ``kernel_override(False)`` the same spec takes the serial
    reference path, like every compiled kernel.  ``shard_workers > 1``
    fans shards out over worker processes (results unchanged);
    ``shard_transport`` picks how pooled batches move — the pipelined
    command-ring transport over double-buffered shared-memory arenas
    (``"ring"``, default), single-buffered arenas with one executor
    submit per shard-tick (``"shmem"``), or the executor pickle pipe
    (``"pickle"``) — with no effect on results.

    ``checkpoint_dir`` (with ``spec.checkpoint_every`` set) persists
    the full run state at the spec's cadence; ``restore_from`` names a
    checkpoint file or directory to resume — the snapshot is validated
    against this spec's hash and execution mode before any state is
    touched, and the resumed run continues bitwise-identically to an
    uninterrupted one.  ``shard_heartbeat`` bounds how long a pooled
    tick waits on any one shard worker before treating it as hung.
    """
    generator = (
        rng
        if isinstance(rng, np.random.Generator)
        else np.random.default_rng(rng)
    )
    plan = spec.shard_plan
    sharded = plan is not None and kernels_enabled()
    mode = "shard" if sharded else "serial"
    checkpointer = None
    if checkpoint_dir is not None:
        if spec.checkpoint_every is None:
            raise ValueError(
                "SimulationSpec.checkpoint_every: checkpoint_dir was "
                "given but the spec has no checkpoint cadence — set "
                "checkpoint_every"
            )
        checkpointer = Checkpointer(
            checkpoint_dir,
            every=spec.checkpoint_every,
            spec_hash=spec_hash(spec),
            mode=mode,
        )
    resume = None
    if restore_from is not None:
        resume = load_checkpoint(
            restore_from,
            expected_spec_hash=spec_hash(spec),
            expected_mode=mode,
        )
        record_recovery(
            "restore",
            tick=int(resume["tick"]),
            mode=mode,
            path=str(restore_from),
        )
    if sharded:
        return ShardedSimulator(
            spec,
            workers=shard_workers,
            transport=shard_transport,
            heartbeat=shard_heartbeat,
            checkpointer=checkpointer,
            resume=resume,
        ).run(generator)
    return spec.build_simulator().run(
        spec.config,
        generator,
        seed_addrs=spec.seed_addrs,
        checkpointer=checkpointer,
        resume=resume,
    )


def run_spec_trial(
    spec: SimulationSpec,
    seed: "int | np.random.SeedSequence",
    shard_workers: int = 1,
    checkpoint_dir: "Union[str, os.PathLike[str], None]" = None,
    restore_from: "Union[str, os.PathLike[str], None]" = None,
) -> SimulationResult:
    """Module-level (picklable) trial entry point for specs.

    The spec-era successor of
    :func:`repro.sim.engine.run_simulation_trial`: ``TrialRunner``
    pickles the callable plus ``(spec, seed)``, and the generator is
    built on whichever worker the trial lands on.
    """
    return simulate(
        spec,
        seed,
        shard_workers=shard_workers,
        checkpoint_dir=checkpoint_dir,
        restore_from=restore_from,
    )


__all__ = [
    "SeedLike",
    "SimulationSpec",
    "run_spec_trial",
    "simulate",
]
