"""Sharded address-space execution of one outbreak.

``ShardedSimulator`` partitions the address space ``[0, 2^32)`` into
``K`` contiguous intervals (:class:`ShardPlan`) and gives each shard
its own engine state: a :class:`~repro.population.model.HostPopulation`
slice, a shard-clipped :class:`~repro.sensors.index.SensorIndex`, a
per-shard merged verdict partition, and a private
:class:`~repro.sim.arena.TickArena`.

**Determinism policy (the exchange contract).**  A sharded run must be
bitwise-identical to the unsharded serial reference, so the split
between driver and shards follows one rule: *every RNG-consuming
stage runs in the driver, in exactly the serial order; every
deterministic per-target stage runs in the owning shard.*

* the driver generates probes for the global infected-host table
  (``worm.generate`` under the single run RNG), draws the loss mask
  over the full flat batch in batch order, applies containment and
  patching draws, and feeds merged infection batches back to
  ``worm.add_hosts`` — the exact RNG call sequence of the serial
  engine;
* the *exchange step* routes each probe to the shard owning its
  target (``searchsorted`` over the shard boundaries, stable
  ordering), so per-shard batches preserve original batch order;
* each shard resolves the deterministic verdict layers (routability,
  NAT, policy) through its own merged partition, dispatches delivered
  probes to its clipped sensors, and matches them against its
  population slice;
* per-shard ``vulnerable_hits`` results are sorted-unique within the
  shard's interval, and shards are ordered by interval, so
  concatenating them in stable shard order *is* the global
  sorted-unique infection batch the serial engine computes.

Shards run serially in-process by default; ``workers > 1`` fans the
per-tick shard work out over a pool of dedicated worker processes
(:mod:`repro.runtime.shardpool`).  Pool execution never changes
results; if the pool breaks mid-run, the driver resets and re-runs
the whole outbreak serially from the original seed material —
the same degrade-to-serial philosophy as
:class:`~repro.runtime.runner.TrialRunner`.
"""

from __future__ import annotations

import copy
import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Optional

import numpy as np

from repro.population.model import HostPopulation
from repro.runtime.checkpoint import CheckpointError, record_recovery
from repro.runtime.perf import stage_timer
from repro.sensors.darknet import DarknetSensor
from repro.sensors.deployment import SensorGrid
from repro.sensors.index import SensorIndex
from repro.sim.arena import TickArena
from repro.sim.engine import SimulationResult, _FusedVerdict

if TYPE_CHECKING:
    from repro.runtime.checkpoint import Checkpointer
    from repro.runtime.shardpool import ShardPool
    from repro.sim.spec import SimulationSpec
    from repro.worms.base import WormState

#: End of the IPv4 address space (exclusive upper bound of any shard).
ADDRESS_SPACE_END = 1 << 32

#: Shard boundaries must be /24-aligned so no grid sensor (/24) and no
#: darknet /24 bin ever straddles two shards — the invariant that lets
#: per-shard sensor state merge exactly.
BOUNDARY_ALIGN = 256


@dataclass(frozen=True)
class ShardPlan:
    """A partition of the address space into contiguous shards.

    ``boundaries`` holds each shard's first address; shard ``i`` owns
    ``[boundaries[i], boundaries[i+1])`` (the last shard runs to the
    end of the space).  The first boundary must be 0 and every
    boundary must be /24-aligned (multiple of 256) and strictly
    increasing.
    """

    boundaries: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.boundaries:
            raise ValueError("ShardPlan.boundaries: need at least one shard")
        if self.boundaries[0] != 0:
            raise ValueError(
                "ShardPlan.boundaries: the first shard must start at 0, "
                f"got {self.boundaries[0]:#x}"
            )
        for index, boundary in enumerate(self.boundaries):
            if not 0 <= boundary < ADDRESS_SPACE_END:
                raise ValueError(
                    f"ShardPlan.boundaries[{index}]: {boundary:#x} is "
                    "outside the address space"
                )
            if boundary % BOUNDARY_ALIGN:
                raise ValueError(
                    f"ShardPlan.boundaries[{index}]: {boundary:#x} is not "
                    "/24-aligned (multiple of 256) — required so no /24 "
                    "sensor straddles two shards"
                )
        if any(
            later <= earlier
            for earlier, later in zip(self.boundaries, self.boundaries[1:])
        ):
            raise ValueError(
                "ShardPlan.boundaries: must be strictly increasing"
            )

    @classmethod
    def even(cls, num_shards: int) -> "ShardPlan":
        """``num_shards`` near-equal intervals (aligned down to /24s)."""
        if num_shards < 1:
            raise ValueError(
                f"ShardPlan: num_shards must be at least 1, got {num_shards}"
            )
        if num_shards > ADDRESS_SPACE_END // BOUNDARY_ALIGN:
            raise ValueError(
                f"ShardPlan: num_shards {num_shards} exceeds the /24 count"
            )
        boundaries = tuple(
            (index * ADDRESS_SPACE_END // num_shards) & ~(BOUNDARY_ALIGN - 1)
            for index in range(num_shards)
        )
        return cls(boundaries=boundaries)

    @property
    def num_shards(self) -> int:
        """How many shards the plan defines."""
        return len(self.boundaries)

    def interval(self, shard_id: int) -> tuple[int, int]:
        """Shard's ``[lo, hi)`` address interval (``hi`` may be 2^32)."""
        lo = self.boundaries[shard_id]
        hi = (
            self.boundaries[shard_id + 1]
            if shard_id + 1 < len(self.boundaries)
            else ADDRESS_SPACE_END
        )
        return lo, hi

    def owner_of(self, addrs: np.ndarray) -> np.ndarray:
        """Owning shard id per address (the exchange lookup).

        ``searchsorted(side="right") - 1`` over the boundary table: an
        address exactly on a boundary belongs to the shard *starting*
        there.
        """
        starts = np.asarray(self.boundaries, dtype=np.uint32)
        return (
            np.searchsorted(
                starts, np.asarray(addrs, dtype=np.uint32), side="right"
            )
            - 1
        )


class ShardEngine:
    """One shard's state: population slice, sensors, verdict tables.

    Constructed *from the spec* so the same code path serves both
    execution modes: built in-process, the sensor objects are the
    caller's own (shards ingest disjoint probe streams into them);
    built inside a pool worker, the objects arrive pickled — private
    clones whose state the driver absorbs back at end of run.

    Construction is memory-slim on purpose — the 10^6-host regime is
    the whole point of sharding.  The population slice is found with
    two ``searchsorted`` calls on the (sorted) global address table
    and shared as a *view* — no uint64 widening, no ownership mask,
    no copy; and the sensor index / fused-verdict tables are built
    lazily on the shard's first batch, so K engines never hold more
    than their population views until probes actually arrive.
    """

    def __init__(self, spec: "SimulationSpec", shard_id: int):
        plan = spec.shard_plan
        if plan is None:
            raise ValueError("spec has no shard plan")
        self.shard_id = shard_id
        self.lo, self.hi = plan.interval(shard_id)
        addrs = spec.population.addresses()
        lo_index = int(np.searchsorted(addrs, np.uint32(self.lo)))
        hi_index = (
            len(addrs)
            if self.hi >= ADDRESS_SPACE_END
            else int(np.searchsorted(addrs, np.uint32(self.hi)))
        )
        # The slice of a sorted-unique table is sorted-unique, and the
        # table is never mutated, so the population can alias it.
        self.population = HostPopulation(
            addrs[lo_index:hi_index], presorted_unique=True
        )
        self.sensors = list(spec.sensors)
        self.grids = list(spec.sensor_grids)
        self._environment = spec.environment
        self._worm_name = spec.worm.name
        self._sensor_index: Optional[SensorIndex] = None
        self._sensor_index_built = False
        self._verdict: Optional[_FusedVerdict] = None
        self.arena = TickArena()
        self.delivered_probes = 0

    @property
    def sensor_index(self) -> Optional[SensorIndex]:
        """The shard-clipped sensor index, built on first use."""
        if not self._sensor_index_built:
            self._sensor_index_built = True
            if self.sensors or self.grids:
                index = SensorIndex(
                    self.sensors, self.grids, within=(self.lo, self.hi)
                )
                if index.num_intervals:
                    self._sensor_index = index
        return self._sensor_index

    @property
    def verdict(self) -> _FusedVerdict:
        """The shard's fused verdict tables, built on first use."""
        if self._verdict is None:
            self._verdict = _FusedVerdict(
                self._environment, self._worm_name, self.sensor_index
            )
        return self._verdict

    def seed(self, seed_addrs: np.ndarray) -> None:
        """Infect this shard's share of the seed set."""
        if len(seed_addrs):
            self.population.infect(seed_addrs)

    def immunize(self, addrs: np.ndarray) -> None:
        """Apply a patch batch routed to this shard."""
        if len(addrs):
            self.population.immunize(addrs)

    def deterministic(
        self,
        sources: np.ndarray,
        targets: np.ndarray,
        source_indices: Optional[np.ndarray],
    ) -> tuple[np.ndarray, np.ndarray]:
        """Pre-loss verdict + merged slots for this shard's batch."""
        self.verdict.refresh()
        return self.verdict.deterministic(sources, targets, source_indices)

    def finish(
        self,
        now: float,
        sources: np.ndarray,
        targets: np.ndarray,
        slots: np.ndarray,
        deliverable: np.ndarray,
    ) -> np.ndarray:
        """Dispatch + infect the delivered survivors; returns fresh.

        ``deliverable`` is the final per-probe mask (deterministic
        layers ∧ loss ∧ containment, composed by the driver).  The
        returned fresh-infection array is sorted-unique within this
        shard's interval.
        """
        arena = self.arena
        delivered_index = np.flatnonzero(deliverable)
        delivered_targets = np.take(
            targets,
            delivered_index,
            out=arena.request(
                "delivered_targets", len(delivered_index), targets.dtype
            ),
        )
        delivered_sources = np.take(
            sources,
            delivered_index,
            out=arena.request(
                "delivered_sources", len(delivered_index), sources.dtype
            ),
        )
        self.delivered_probes += len(delivered_index)
        if self.sensor_index is not None:
            delivered_slots = np.take(
                slots,
                delivered_index,
                out=arena.request(
                    "delivered_slots", len(delivered_index), slots.dtype
                ),
            )
            self.verdict.dispatch(
                delivered_sources, delivered_targets, now, delivered_slots
            )
        fresh = self.population.vulnerable_hits(delivered_targets)
        if len(fresh):
            self.population.infect(fresh)
        return fresh

    def process(
        self,
        now: float,
        sources: np.ndarray,
        targets: np.ndarray,
        source_indices: Optional[np.ndarray],
        loss_ok: Optional[np.ndarray],
    ) -> tuple[np.ndarray, int]:
        """One shard-tick without driver feedback (no containment).

        Deterministic verdict ∧ routed loss mask, then dispatch and
        infection in one step; returns ``(fresh, delivered_count)``.
        This is the pool-worker entry point — one round trip per tick.
        """
        before = self.delivered_probes
        det, slots = self.deterministic(sources, targets, source_indices)
        if loss_ok is not None:
            np.logical_and(det, loss_ok, out=det)
        fresh = self.finish(now, sources, targets, slots, det)
        return fresh, self.delivered_probes - before

    # -- checkpoint support -------------------------------------------

    def state_snapshot(self, include_sensors: bool = True) -> dict:
        """Copy of this shard's mutable state.

        ``include_sensors`` is True in pool workers, whose sensor and
        grid objects are private clones; in-process engines share the
        caller's sensor objects, so the driver snapshots those once
        globally and passes False here.
        """
        snapshot: dict = {
            "population": self.population.state_snapshot(),
            "delivered_probes": int(self.delivered_probes),
            "sensors": None,
            "grids": None,
        }
        if include_sensors:
            snapshot["sensors"] = [
                sensor.state_snapshot() for sensor in self.sensors
            ]
            snapshot["grids"] = [
                grid.state_snapshot() for grid in self.grids
            ]
        return snapshot

    def state_restore(
        self, snapshot: dict, *, restore_sensors: bool = True
    ) -> None:
        """Overwrite this shard's mutable state from a snapshot.

        ``restore_sensors`` is False when the driver restores shared
        in-process sensor objects globally (merged across shards)
        instead of per engine.
        """
        self.population.state_restore(snapshot["population"])
        self.delivered_probes = int(snapshot["delivered_probes"])
        if restore_sensors and snapshot.get("sensors") is not None:
            for sensor, state in zip(self.sensors, snapshot["sensors"]):
                sensor.state_restore(state)
            for grid, state in zip(self.grids, snapshot["grids"]):
                grid.state_restore(state)


#: Above this shard count the O(K·n) counting partition loses to the
#: O(n log n) stable argsort it replaces, so ``route`` falls back.
_COUNTING_PARTITION_MAX_SHARDS = 64


class _Exchange:
    """The per-tick probe router: stable owner partition of a batch.

    Routing is a counting-sort partition, not a full-batch stable
    ``argsort``: shards own contiguous address intervals, so one
    wraparound-subtract range test per shard plus a ``flatnonzero``
    (whose ascending indices are exactly the bucket's probes in
    original batch order) yields the *identical* stable permutation in
    O(K·n) with trivial constants — this was the 1.89× driver-side
    overhead at K=4.  Scratch buffers and permuted outputs live in a
    private :class:`TickArena`, so steady-state routing allocates only
    the per-bucket index arrays.
    """

    __slots__ = ("plan", "arena", "order", "offsets")

    def __init__(self, plan: ShardPlan):
        self.plan = plan
        self.arena = TickArena()
        self.order: Optional[np.ndarray] = None
        self.offsets: Optional[np.ndarray] = None

    def route(self, targets: np.ndarray) -> None:
        """Compute the stable owner ordering for one flat batch."""
        num_shards = self.plan.num_shards
        count = len(targets)
        order = self.arena.request("order", count, np.intp)
        offsets = np.empty(num_shards + 1, dtype=np.int64)
        offsets[0] = 0
        if num_shards == 1:
            order[:] = np.arange(count)
            offsets[1] = count
        elif num_shards > _COUNTING_PARTITION_MAX_SHARDS:
            owner = self.plan.owner_of(targets)
            # Stable sort keeps each shard's probes in original batch
            # order — the same guarantee the counting partition gives.
            order[:] = np.argsort(owner, kind="stable")
            counts = np.bincount(owner, minlength=num_shards)
            np.cumsum(counts, out=offsets[1:])
        else:
            mask = self.arena.request("mask", count, np.bool_)
            shifted = self.arena.request("shifted", count, np.uint32)
            position = 0
            for shard_id in range(num_shards):
                lo, hi = self.plan.interval(shard_id)
                # uint32 wraparound makes (t - lo) < (hi - lo) exactly
                # "lo <= t < hi" without widening; works for the last
                # shard too since hi - lo < 2^32 whenever lo > 0.
                if lo == 0:
                    np.less(targets, np.uint32(hi), out=mask)
                else:
                    np.subtract(targets, np.uint32(lo), out=shifted)
                    np.less(shifted, np.uint32(hi - lo), out=mask)
                bucket = np.flatnonzero(mask)
                end = position + len(bucket)
                order[position:end] = bucket
                offsets[shard_id + 1] = end
                position = end
        self.order = order
        self.offsets = offsets

    def permute(self, values: np.ndarray, name: str) -> np.ndarray:
        """A batch array reordered into shard-contiguous layout.

        The result is an arena loan: valid until the next tick routes
        and permutes the same ``name`` (consumers either finish within
        the tick or copy/serialize before the next one).
        """
        assert self.order is not None
        out = self.arena.request(name, len(values), values.dtype)
        np.take(values, self.order, out=out)
        return out

    def slices(self, permuted: np.ndarray) -> list[np.ndarray]:
        """Per-shard views of a permuted array, in shard order."""
        assert self.offsets is not None
        return [
            permuted[self.offsets[k] : self.offsets[k + 1]]
            for k in range(self.plan.num_shards)
        ]

    def scatter(
        self, permuted: np.ndarray, out: np.ndarray
    ) -> np.ndarray:
        """Restore a permuted array to original batch order."""
        assert self.order is not None
        out[self.order] = permuted
        return out

    def stream(
        self, targets: np.ndarray
    ) -> Iterator[tuple[int, np.ndarray]]:
        """Yield ``(shard_id, bucket)`` in shard order, incrementally.

        The streamed counterpart of :meth:`route` for pipelined
        dispatch: each counting-sort bucket (the stable ascending
        index array of one shard's probes) is yielded the moment it is
        computed, *before* later shards have been partitioned — so a
        consumer can gather and dispatch shard ``k`` while shards
        ``k+1..K-1`` are still unrouted.  Gathering each bucket with
        :meth:`gather` produces exactly the per-shard slices that
        :meth:`route` + :meth:`permute` + :meth:`slices` would — same
        stable order, same disjoint coverage — which is why streamed
        dispatch preserves bitwise equivalence.  Buckets are fresh
        arrays; the scratch mask is an arena loan reused per shard.
        """
        num_shards = self.plan.num_shards
        count = len(targets)
        if num_shards == 1:
            yield 0, np.arange(count)
            return
        if num_shards > _COUNTING_PARTITION_MAX_SHARDS:
            # The argsort fallback is inherently whole-batch; stream
            # the slices of the one permutation it produces.
            self.route(targets)
            assert self.order is not None and self.offsets is not None
            for shard_id in range(num_shards):
                yield shard_id, self.order[
                    self.offsets[shard_id] : self.offsets[shard_id + 1]
                ]
            return
        mask = self.arena.request("mask", count, np.bool_)
        shifted = self.arena.request("shifted", count, np.uint32)
        for shard_id in range(num_shards):
            lo, hi = self.plan.interval(shard_id)
            if lo == 0:
                np.less(targets, np.uint32(hi), out=mask)
            else:
                np.subtract(targets, np.uint32(lo), out=shifted)
                np.less(shifted, np.uint32(hi - lo), out=mask)
            yield shard_id, np.flatnonzero(mask)

    def gather(
        self, values: np.ndarray, bucket: np.ndarray, name: str
    ) -> np.ndarray:
        """One shard's slice of a batch array, in stable batch order.

        The streamed analogue of :meth:`permute` + :meth:`slices` for
        a single shard.  The result is an arena loan reused for the
        *next* shard's gather under the same ``name`` — the consumer
        must serialize or copy it before then (the pool's transports
        all do: shared-memory staging is synchronous, and the pickle
        path copies before submitting).
        """
        out = self.arena.request(name, len(bucket), values.dtype)
        np.take(values, bucket, out=out)
        return out


class ShardedSimulator:
    """Drives one outbreak across K address-space shards.

    Parameters
    ----------
    spec:
        The :class:`~repro.sim.spec.SimulationSpec`; must carry a
        shard plan and a pristine population.
    workers:
        ``1`` (default) runs every shard in-process; ``> 1`` fans
        shards out over dedicated worker processes, one per shard,
        capped at ``workers`` concurrent pools.
    transport:
        How per-tick batches move between driver and pool workers:
        ``"ring"`` (default) stages arrays in double-buffered
        shared-memory arenas and streams each shard's dispatch
        through a persistent per-worker command ring the moment its
        routed slice is ready (:mod:`repro.runtime.ring`) — no
        executor round trip on the tick path; ``"shmem"`` stages
        arrays in single-buffered arenas
        (:mod:`repro.runtime.shmem`) and ships a tiny control tuple
        per shard per tick through the executor; ``"pickle"``
        serializes the arrays through the pool's normal argument
        path.  All transports are bitwise-identical; the
        shared-memory ones silently fall back to pickle where POSIX
        shared memory is unavailable.  Ignored when ``workers == 1``.
    heartbeat:
        Optional per-shard reply deadline (seconds) for pooled ticks;
        a worker that misses it counts as failed and is respawned
        (under supervision) or triggers the serial re-run.
    checkpointer:
        Optional :class:`~repro.runtime.checkpoint.Checkpointer`; the
        driver snapshots the full run state at its cadence, and pool
        mode enables per-slot supervision (snapshot + replay recovery
        instead of the full serial re-run).
    resume:
        Optional validated payload from
        :func:`~repro.runtime.checkpoint.load_checkpoint`; the run
        restores it and continues from the next tick, bitwise-
        identical to a run that was never interrupted.
    """

    def __init__(
        self,
        spec: "SimulationSpec",
        workers: int = 1,
        transport: str = "ring",
        heartbeat: Optional[float] = None,
        checkpointer: Optional["Checkpointer"] = None,
        resume: Optional[dict] = None,
    ):
        plan = spec.shard_plan
        if plan is None:
            raise ValueError(
                "SimulationSpec.shards: ShardedSimulator needs a shard plan"
            )
        if workers < 1:
            raise ValueError(f"workers must be at least 1, got {workers}")
        if spec.population.num_infected or spec.population.num_immune:
            raise ValueError(
                "SimulationSpec.population: sharded runs need a pristine "
                "population (no prior infections or immunizations) so a "
                "pool failure can deterministically restart the run"
            )
        if workers > 1:
            if spec.containment is not None:
                raise ValueError(
                    "SimulationSpec.containment: quorum containment is "
                    "global per-tick feedback and only runs with "
                    "in-process shards (workers=1)"
                )
            if spec.trace_recorder is not None:
                raise ValueError(
                    "SimulationSpec.trace_recorder: trace recording "
                    "preserves batch order and only runs with in-process "
                    "shards (workers=1)"
                )
            for index, sensor in enumerate(spec.sensors):
                if sensor.total_probes:
                    raise ValueError(
                        f"SimulationSpec.sensors[{index}] "
                        f"({sensor.name!r}): process-pool shard mode "
                        "needs sensors without prior observations"
                    )
            for index, grid in enumerate(spec.sensor_grids):
                if grid.payload_counts().any():
                    raise ValueError(
                        f"SimulationSpec.sensor_grids[{index}]: "
                        "process-pool shard mode needs grids without "
                        "prior observations"
                    )
        if transport not in ("ring", "shmem", "pickle"):
            raise ValueError(
                "ShardedSimulator.transport: expected 'ring', 'shmem' "
                f"or 'pickle', got {transport!r}"
            )
        if heartbeat is not None and heartbeat <= 0:
            raise ValueError(
                "ShardedSimulator.heartbeat must be positive, "
                f"got {heartbeat}"
            )
        if resume is not None and resume.get("mode") not in (None, "shard"):
            raise CheckpointError(
                f"checkpoint.mode: snapshot was written by a "
                f"{resume.get('mode')!r} run but this run executes "
                "as 'shard'"
            )
        self.spec = spec
        self.plan = plan
        self.workers = workers
        self.transport = transport
        self.heartbeat = heartbeat
        self.checkpointer = checkpointer
        self.resume = resume
        #: Filled after a pooled run: per-transport byte/round-trip
        #: counters and overlap timings from
        #: :meth:`repro.runtime.shardpool.ShardPool.stats`.
        self.transport_stats: Optional[dict[str, int | float | str]] = None

    # -- public entry -------------------------------------------------

    def run(self, rng: np.random.Generator) -> SimulationResult:
        """Run the sharded outbreak (bitwise ≡ the serial reference)."""
        self.transport_stats = None
        if self.workers > 1:
            # A pool failure loses worker-resident shard state, so the
            # recovery is a deterministic restart: pristine population
            # (validated above), untouched driver-side sensors, and a
            # pre-consumption copy of the generator.
            backup = copy.deepcopy(rng)
            try:
                return self._run(rng, pooled=True)
            except _ShardPoolFailure as failure:
                self.spec.population.reset()
                record_recovery("serial-rerun", reason=str(failure))
                warnings.warn(
                    f"shard worker pool failed ({failure}); re-running "
                    "all shards in-process (results are identical)",
                    RuntimeWarning,
                    stacklevel=2,
                )
                return self._run(backup, pooled=False)  # noqa: RP102 -- pre-consumption rng copy; the serial re-run is bitwise-identical to what the pooled run would have produced
        return self._run(rng, pooled=False)

    # -- the driver loop ---------------------------------------------

    def _run(
        self, rng: np.random.Generator, pooled: bool
    ) -> SimulationResult:
        spec = self.spec
        config = spec.config
        population = spec.population  # global source of truth

        if self.resume is not None:
            # The restored bit-generator state already accounts for
            # the seed draw; the restored populations already carry
            # the seed infections.
            seed_addrs = np.empty(0, dtype=np.uint32)
        elif spec.seed_addrs is None:
            if config.seed_count > population.size:
                raise ValueError("more seeds than hosts")
            seed_addrs = rng.choice(
                population.addresses(),
                size=config.seed_count,
                replace=False,
            )
        else:
            seed_addrs = spec.seed_addrs
        seed_addrs = np.asarray(seed_addrs, dtype=np.uint32)

        pool = None
        engines: list[ShardEngine] = []
        exchange = _Exchange(self.plan)
        num_shards = self.plan.num_shards
        try:
            if pooled:
                from repro.runtime.shardpool import ShardPool

                try:
                    pool = ShardPool(
                        spec,
                        num_shards,
                        self.workers,
                        transport=self.transport,
                        heartbeat=self.heartbeat,
                        # Supervision needs the checkpoint cadence to
                        # bound the replay buffer; without one, a pool
                        # failure degrades to the serial re-run.
                        supervise=self.checkpointer is not None,
                    )
                except Exception as error:
                    raise _ShardPoolFailure(str(error)) from error

            else:
                engines = [
                    ShardEngine(spec, shard_id)
                    for shard_id in range(num_shards)
                ]

            result = self._drive(
                rng, seed_addrs, engines, pool, exchange
            )
            if pool is not None:
                self.transport_stats = pool.stats()
            return result
        finally:
            if pool is not None:
                pool.close()

    def _drive(
        self,
        rng: np.random.Generator,
        seed_addrs: np.ndarray,
        engines: list[ShardEngine],
        pool: Optional["ShardPool"],
        exchange: _Exchange,
    ) -> SimulationResult:
        spec = self.spec
        config = spec.config
        worm = spec.worm
        population = spec.population
        environment = spec.environment
        containment = spec.containment
        num_shards = self.plan.num_shards

        resume = self.resume
        if resume is None:
            state = worm.new_state()
            infected_now = population.infect(seed_addrs)
            worm.add_hosts(state, infected_now, rng)
            seed_owner = self.plan.owner_of(infected_now)
            if pool is not None:
                pool.seed(
                    [
                        infected_now[seed_owner == shard_id]
                        for shard_id in range(num_shards)
                    ]
                )
            else:
                for shard_id, engine in enumerate(engines):
                    engine.seed(infected_now[seed_owner == shard_id])
        else:
            # Deep-copied so the pool-failure re-run restoring from
            # the same payload starts from unconsumed worm state.
            state = copy.deepcopy(resume["worm_state"])
            infected_now = np.empty(0, dtype=np.uint32)
            self._restore_engines(resume, engines, pool)
        pending_immunize: list[list[np.ndarray]] = [
            [] for _ in range(num_shards)
        ]
        if resume is not None:
            pending_immunize = [
                [np.array(batch, dtype=np.uint32) for batch in queued]
                for queued in resume["pending_immunize"]
            ]

        # Per-host policy membership cache for the det verdict tables
        # (mirrors the engine's host_policy_indices cache; consumes no
        # RNG).  A driver-side verdict with no sensor component serves
        # purely as that cache plus the kernel-identity tracker.
        host_verdict = _FusedVerdict(environment, worm.name, None)
        arena = TickArena()
        loss = environment.loss
        loss_active = loss.is_active

        per_tick_budget = config.scan_rate * config.tick_seconds
        uniform_fast = spec.topology is None and float(
            per_tick_budget
        ).is_integer()
        uniform_scans = int(per_tick_budget) if uniform_fast else 0
        needs_global_mask = (
            containment is not None or spec.trace_recorder is not None
        )

        times: list[float] = []
        infected_counts: list[int] = []
        infection_times: list[float] = [0.0] * len(infected_now)
        total_probes = 0
        delivered_probes = 0
        start_tick = 0
        if resume is not None:
            rng.bit_generator.state = resume["rng_state"]
            population.state_restore(resume["population"])
            if containment is not None and resume["containment"] is not None:
                containment.state_restore(resume["containment"])
            if (
                spec.trace_recorder is not None
                and resume["trace"] is not None
            ):
                spec.trace_recorder.state_restore(resume["trace"])
            # A None carry means the writing run proved the
            # accumulator stays 0.0 (uniform fast path), so the
            # arena's zero-filled growth is already exact.
            carry = resume["accumulator"]
            if carry is not None:
                carry = np.asarray(carry, dtype=float)
                arena.accumulator(len(carry))[:] = carry
            times = list(resume["times"])
            infected_counts = list(resume["infected_counts"])
            infection_times = list(resume["infection_times"])
            total_probes = int(resume["total_probes"])
            delivered_probes = int(resume["delivered_probes"])
            start_tick = int(resume["tick"]) + 1

        checkpointer = self.checkpointer
        timer = stage_timer()
        num_ticks = int(np.ceil(config.max_time / config.tick_seconds))
        for tick in range(start_tick, num_ticks):
            now = (tick + 1) * config.tick_seconds
            timer.start()

            if uniform_fast:
                max_scans = uniform_scans if state.num_hosts else 0
            else:
                if spec.topology is not None:
                    rates = spec.topology.scan_rates(state.addresses())
                    budget = rates * config.tick_seconds
                else:
                    budget = per_tick_budget
                scan_accumulator = arena.accumulator(state.num_hosts)
                scan_accumulator += budget
                scans_per_host = np.floor(scan_accumulator).astype(np.int64)
                scan_accumulator -= scans_per_host
                max_scans = (
                    int(scans_per_host.max()) if state.num_hosts else 0
                )

            if max_scans > 0:
                targets = worm.generate(state, max_scans, rng)
                if uniform_fast:
                    flat_targets = targets.ravel()
                    flat_sources = arena.repeated(
                        "uniform_sources", state.addresses(), max_scans
                    )
                    source_rows = None
                else:
                    active = arena.request(
                        "active", state.num_hosts * max_scans, np.bool_
                    ).reshape(state.num_hosts, max_scans)
                    np.less(
                        np.arange(max_scans)[None, :],
                        scans_per_host[:, None],
                        out=active,
                    )
                    probe_index = np.flatnonzero(active.ravel())
                    flat_targets = np.take(
                        targets,
                        probe_index,
                        out=arena.request(
                            "flat_targets", len(probe_index), targets.dtype
                        ),
                    )
                    source_rows = np.floor_divide(
                        probe_index,
                        max_scans,
                        out=arena.request(
                            "source_rows",
                            len(probe_index),
                            probe_index.dtype,
                        ),
                    )
                    flat_sources = np.take(
                        state.addresses(),
                        source_rows,
                        out=arena.request(
                            "flat_sources", len(probe_index), np.uint32
                        ),
                    )
                total_probes += len(flat_targets)
                timer.lap("generate")

                # RNG-consuming stage: the loss draw over the full
                # flat batch, in batch order — exactly the serial
                # engine's consumption.
                loss_ok = loss.deliverable(flat_targets, rng)

                host_verdict.refresh()
                host_policy = host_verdict.host_policy_indices(
                    state.addresses()
                )
                source_indices = None
                if host_policy is not None:
                    if uniform_fast:
                        source_indices = arena.repeated(
                            "uniform_source_policy",
                            host_policy,
                            max_scans,
                            token=host_verdict.kernel,
                        )
                    else:
                        source_indices = np.take(
                            host_policy,
                            source_rows,
                            out=arena.request(
                                "flat_source_policy",
                                len(source_rows),
                                np.int64,
                            ),
                        )

                timer.lap("filter")

                fresh_per_shard: list[np.ndarray] = []
                if pool is not None:
                    # Streamed pipelined dispatch: each shard's routed
                    # bucket is gathered and handed to the pool the
                    # moment the counting partition produces it, so the
                    # first workers compute while the driver is still
                    # partitioning and staging the rest.  Every RNG
                    # draw already happened above, in serial batch
                    # order — the overlap window consumes none (the
                    # RP105 flow rule polices this).
                    try:
                        pool.begin_tick()
                        for shard_id, bucket in exchange.stream(
                            flat_targets
                        ):
                            payload = (
                                now,
                                exchange.gather(
                                    flat_sources, bucket, "sources"
                                ),
                                exchange.gather(
                                    flat_targets, bucket, "targets"
                                ),
                                exchange.gather(
                                    source_indices, bucket, "policy"
                                )
                                if source_indices is not None
                                else None,
                                exchange.gather(loss_ok, bucket, "loss")
                                if loss_active
                                else None,
                                _drain_pending(pending_immunize, shard_id),
                            )
                            timer.lap("stage")
                            pool.dispatch_shard(shard_id, payload)
                            timer.lap("dispatch")
                        replies = pool.collect(timer)
                    except Exception as error:
                        raise _ShardPoolFailure(str(error)) from error
                    for fresh, delivered in replies:
                        fresh_per_shard.append(fresh)
                        delivered_probes += delivered
                else:
                    # The exchange: route every probe to the shard
                    # owning its target, preserving batch order per
                    # shard.
                    exchange.route(flat_targets)
                    timer.lap("route")
                    shard_targets = exchange.slices(
                        exchange.permute(flat_targets, "targets")
                    )
                    shard_sources = exchange.slices(
                        exchange.permute(flat_sources, "sources")
                    )
                    shard_policy: list[Optional[np.ndarray]]
                    if source_indices is not None:
                        shard_policy = list(
                            exchange.slices(
                                exchange.permute(source_indices, "policy")
                            )
                        )
                    else:
                        shard_policy = [None] * num_shards
                    shard_loss: list[Optional[np.ndarray]]
                    if loss_active:
                        shard_loss = list(
                            exchange.slices(
                                exchange.permute(loss_ok, "loss")
                            )
                        )
                    else:
                        shard_loss = [None] * num_shards
                    timer.lap("exchange")

                    if needs_global_mask:
                        # Containment / tracing need the whole batch's
                        # mask in original order: collect per-shard
                        # deterministic verdicts, compose globally,
                        # then hand each shard its final delivered
                        # mask.
                        det_perm = np.empty(len(flat_targets), dtype=bool)
                        det_slices = exchange.slices(det_perm)
                        slot_list = []
                        for shard_id, engine in enumerate(engines):
                            det, slots = engine.deterministic(
                                shard_sources[shard_id],
                                shard_targets[shard_id],
                                shard_policy[shard_id],
                            )
                            det_slices[shard_id][:] = det
                            slot_list.append(slots)
                        ok = exchange.scatter(
                            det_perm,
                            np.empty(len(flat_targets), dtype=bool),
                        )
                        np.logical_and(ok, loss_ok, out=ok)
                        if containment is not None:
                            ok = containment.filter_probes(ok, now, rng)
                        delivered_probes += int(ok.sum())
                        mask_slices = exchange.slices(
                            exchange.permute(ok, "delivered")
                        )
                        if spec.trace_recorder is not None:
                            spec.trace_recorder.record(
                                now,
                                flat_sources[ok],
                                flat_targets[ok],
                                worm=worm.name,
                            )
                        for shard_id, engine in enumerate(engines):
                            fresh_per_shard.append(
                                engine.finish(
                                    now,
                                    shard_sources[shard_id],
                                    shard_targets[shard_id],
                                    slot_list[shard_id],
                                    mask_slices[shard_id],
                                )
                            )
                        timer.lap("shards")
                    else:
                        for shard_id, engine in enumerate(engines):
                            fresh, delivered = engine.process(
                                now,
                                shard_sources[shard_id],
                                shard_targets[shard_id],
                                shard_policy[shard_id],
                                shard_loss[shard_id],
                            )
                            fresh_per_shard.append(fresh)
                            delivered_probes += delivered
                        timer.lap("shards")

                # Merge the infection streams: per-shard arrays are
                # sorted-unique within disjoint ascending intervals,
                # so shard-order concatenation is the global
                # sorted-unique batch of the serial engine.
                fresh_all = (
                    np.concatenate(fresh_per_shard)
                    if fresh_per_shard
                    else np.empty(0, dtype=np.uint32)
                )
                if len(fresh_all):
                    population.infect(fresh_all)
                    worm.add_hosts(state, fresh_all, rng)
                    infection_times.extend([now] * len(fresh_all))
                timer.lap("merge")

            if config.patch_rate > 0:
                vulnerable = population.vulnerable_addresses()
                patch_mask = (
                    rng.random(len(vulnerable))
                    < config.patch_rate * config.tick_seconds
                )
                patched = vulnerable[patch_mask]
                population.immunize(patched)
                if len(patched):
                    patch_owner = self.plan.owner_of(patched)
                    for shard_id in range(num_shards):
                        owned = patched[patch_owner == shard_id]
                        if not len(owned):
                            continue
                        if pool is not None:
                            # Applied at the start of the shard's next
                            # tick — before any further population
                            # reads, so timing is equivalent.
                            pending_immunize[shard_id].append(owned)
                        else:
                            engines[shard_id].immunize(owned)

            if containment is not None:
                containment.update(now)

            times.append(now)
            infected_counts.append(population.num_infected)
            timer.tick()
            if population.fraction_infected >= config.stop_at_fraction:
                break
            if checkpointer is not None and checkpointer.due(tick):
                self._capture(
                    checkpointer,
                    tick,
                    rng,
                    state,
                    engines,
                    pool,
                    arena,
                    uniform_fast,
                    pending_immunize,
                    times,
                    infected_counts,
                    infection_times,
                    total_probes,
                    delivered_probes,
                )

        if pool is not None:
            try:
                collected = pool.collect_sensors()
            except Exception as error:
                raise _ShardPoolFailure(str(error)) from error
            for sensors, grids in collected:
                for sensor, clone in zip(spec.sensors, sensors):
                    sensor.absorb(clone)
                for grid, clone in zip(spec.sensor_grids, grids):
                    grid.absorb(clone)

        return SimulationResult(
            times=np.array(times),
            infected_counts=np.array(infected_counts, dtype=np.int64),
            infection_times=np.array(infection_times),
            population_size=population.size,
            total_probes=total_probes,
            delivered_probes=delivered_probes,
        )

    # -- checkpoint plumbing -------------------------------------------

    def _restore_engines(
        self,
        resume: dict,
        engines: list[ShardEngine],
        pool: Optional["ShardPool"],
    ) -> None:
        """Load per-shard state from a resume payload into the shards.

        Pool-mode checkpoints store per-shard sensor clones inside
        each engine snapshot (``layout == "pool"``); in-process
        checkpoints store engine snapshots without sensors plus one
        global snapshot per shared sensor object
        (``layout == "inproc"``).  A pool checkpoint restores into an
        in-process run by merging the per-shard sensor states (exact:
        shard boundaries are /24-aligned); the reverse split is not
        defined, so restoring an in-process checkpoint into pool
        workers refuses by name.
        """
        spec = self.spec
        layout = resume.get("layout")
        if pool is not None:
            if layout != "pool":
                raise CheckpointError(
                    f"checkpoint.layout: snapshot stores {layout!r} "
                    "shard state (shared in-process sensors), which "
                    "cannot be split back into per-shard pool clones — "
                    "resume with shard_workers=1, or restore a "
                    "pool-mode checkpoint"
                )
            try:
                pool.seed(
                    [np.empty(0, dtype=np.uint32)]
                    * self.plan.num_shards
                )
                pool.restore(resume["engines"])
            except Exception as error:
                raise _ShardPoolFailure(str(error)) from error
            return
        for engine, snapshot in zip(engines, resume["engines"]):
            engine.state_restore(snapshot, restore_sensors=False)
        if layout == "pool":
            for index, sensor in enumerate(spec.sensors):
                sensor.state_restore(
                    DarknetSensor.merge_snapshots(
                        [
                            snapshot["sensors"][index]
                            for snapshot in resume["engines"]
                        ]
                    )
                )
            for index, grid in enumerate(spec.sensor_grids):
                grid.state_restore(
                    SensorGrid.merge_snapshots(
                        [
                            snapshot["grids"][index]
                            for snapshot in resume["engines"]
                        ]
                    )
                )
        else:
            for sensor, snapshot in zip(spec.sensors, resume["sensors"]):
                sensor.state_restore(snapshot)
            for grid, snapshot in zip(spec.sensor_grids, resume["grids"]):
                grid.state_restore(snapshot)

    def _capture(
        self,
        checkpointer: "Checkpointer",
        tick: int,
        rng: np.random.Generator,
        state: "WormState",
        engines: list[ShardEngine],
        pool: Optional["ShardPool"],
        arena: TickArena,
        uniform_fast: bool,
        pending_immunize: list[list[np.ndarray]],
        times: list[float],
        infected_counts: list[int],
        infection_times: list[float],
        total_probes: int,
        delivered_probes: int,
    ) -> None:
        """Write one shard-mode checkpoint of the full run state."""
        spec = self.spec
        if pool is not None:
            try:
                engines_state = pool.snapshot()
            except Exception as error:
                raise _ShardPoolFailure(str(error)) from error
            layout = "pool"
            sensor_state = None
            grid_state = None
        else:
            engines_state = [
                engine.state_snapshot(include_sensors=False)
                for engine in engines
            ]
            layout = "inproc"
            sensor_state = [
                sensor.state_snapshot() for sensor in spec.sensors
            ]
            grid_state = [
                grid.state_snapshot() for grid in spec.sensor_grids
            ]
        carry = None
        if not uniform_fast:
            carry = arena.accumulator(state.num_hosts).copy()
        checkpointer.write(
            tick,
            {
                "layout": layout,
                "rng_state": rng.bit_generator.state,
                "worm_state": state,
                "population": spec.population.state_snapshot(),
                "engines": engines_state,
                "sensors": sensor_state,
                "grids": grid_state,
                "containment": (
                    spec.containment.state_snapshot()
                    if spec.containment is not None
                    else None
                ),
                "trace": (
                    spec.trace_recorder.state_snapshot()
                    if spec.trace_recorder is not None
                    else None
                ),
                "accumulator": carry,
                "pending_immunize": [
                    list(queued) for queued in pending_immunize
                ],
                "times": list(times),
                "infected_counts": list(infected_counts),
                "infection_times": list(infection_times),
                "total_probes": total_probes,
                "delivered_probes": delivered_probes,
            },
        )


class _ShardPoolFailure(RuntimeError):
    """The shard worker pool became unusable mid-run."""


def _drain_pending(
    pending: list[list[np.ndarray]], shard_id: int
) -> Optional[np.ndarray]:
    """Pop a shard's queued immunizations as one array (or ``None``)."""
    if not pending[shard_id]:
        return None
    batch = np.concatenate(pending[shard_id])
    pending[shard_id] = []
    return batch


def as_shard_plan(
    value: "ShardPlan | int | None",
) -> Optional[ShardPlan]:
    """Coerce a shard knob to a plan: int → even split, None → None."""
    if value is None:
        return None
    if isinstance(value, ShardPlan):
        return value
    if isinstance(value, (int, np.integer)):
        return ShardPlan.even(int(value))
    raise TypeError(
        "SimulationSpec.shards: expected a ShardPlan, an int shard "
        f"count, or None; got {type(value).__name__}"
    )


