"""Analytic SI ("simple epidemic") model.

The uniform-propagation baseline: with ``N`` vulnerable hosts in an
address space of ``Ω`` addresses, each infected host scanning ``r``
addresses per second, the infected count ``i(t)`` follows the logistic

    di/dt = (r / Ω) * i * (N - i)
    i(t)  = N / (1 + (N / i0 - 1) * exp(-(r N / Ω) t))

This is the model the paper cites from Staniford et al. and the curve
hotspot-free propagation should follow; the test suite checks the
vectorized simulator converges to it for the uniform worm.
"""

from __future__ import annotations

import math
from typing import Union

import numpy as np

ArrayLike = Union[float, np.ndarray]


def si_curve(
    t: ArrayLike,
    population: int,
    seeds: int,
    scan_rate: float,
    address_space: float = 2.0**32,
) -> np.ndarray:
    """Infected count at time(s) ``t`` under the SI model."""
    if population <= 0 or seeds <= 0 or seeds > population:
        raise ValueError("need 0 < seeds <= population")
    if scan_rate <= 0 or address_space <= 0:
        raise ValueError("scan_rate and address_space must be positive")
    t = np.asarray(t, dtype=float)
    beta = scan_rate / address_space
    growth = np.exp(-beta * population * t)
    return population / (1.0 + (population / seeds - 1.0) * growth)


def si_time_to_fraction(
    fraction: float,
    population: int,
    seeds: int,
    scan_rate: float,
    address_space: float = 2.0**32,
) -> float:
    """Time for the SI model to reach an infected fraction."""
    if not 0.0 < fraction < 1.0:
        raise ValueError("fraction must be in (0, 1)")
    i0 = seeds
    target = fraction * population
    if target <= i0:
        return 0.0
    beta = scan_rate / address_space
    ratio = (population / i0 - 1.0) / (population / target - 1.0)
    return math.log(ratio) / (beta * population)
