"""Reusable per-tick buffers for the fused probe pipeline.

The simulator's tick loop used to allocate every intermediate fresh:
the active-scan mask, the flattened target/source batches, the
delivered survivors.  At figure scale that is hundreds of megabytes of
short-lived arrays per run, all of identical shape tick over tick.
:class:`TickArena` owns those buffers instead: each is requested by
name every tick, grows geometrically when the outbreak outgrows it,
and is otherwise reused in place — so a steady-state tick performs
O(1) array allocations (only index arrays whose length is the
tick's survivor count).

Arena views are *loans*: they are valid until the next tick touches
the same name, so nothing downstream may keep one (the engine's
consumers all copy or aggregate — ``TraceRecorder.record`` copies,
sensors aggregate into their own state, ``vulnerable_hits`` returns a
fresh ``np.unique`` array).
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np


class TickArena:
    """Named, geometrically-grown scratch buffers for one run.

    ``request`` hands out a length-``size`` view of the named buffer,
    reallocating (at doubled capacity) only when the buffer is missing,
    too small, or the wrong dtype.  ``accumulator`` is the one
    *content-preserving* buffer: the per-host fractional-scan carry
    must survive growth, so grown slots are zeroed and old values
    copied.  ``repeated`` caches a per-host value table repeated ``k``
    times each — the flat source column of the uniform-rate fast path
    — and only writes rows for hosts that appeared since the last
    tick.
    """

    __slots__ = ("_buffers", "_repeat_state", "allocations")

    def __init__(self) -> None:
        self._buffers: dict[str, np.ndarray] = {}
        # name -> (rows_written, k, token): validity of the repeated
        # prefix already materialized under that name.
        self._repeat_state: dict[str, tuple[int, int, Any]] = {}
        #: Count of backing-array allocations (growth events).  The
        #: allocation benchmark asserts this stays O(log final_size)
        #: over a whole run, i.e. O(1) amortized per tick.
        self.allocations = 0

    def request(self, name: str, size: int, dtype: Any) -> np.ndarray:
        """A length-``size`` view of the named buffer (contents junk).

        Grows by at least doubling, so a run performs O(log n) backing
        allocations per name no matter how many ticks request it.
        """
        dtype = np.dtype(dtype)
        base = self._buffers.get(name)
        if base is None or base.dtype != dtype or len(base) < size:
            capacity = (
                max(size, 1)
                if base is None or base.dtype != dtype
                else max(size, 2 * len(base))
            )
            base = np.empty(capacity, dtype=dtype)
            self._buffers[name] = base
            self._repeat_state.pop(name, None)
            self.allocations += 1
        return base[:size]

    def accumulator(self, size: int) -> np.ndarray:
        """The per-host float accumulator; contents survive growth."""
        base = self._buffers.get("accumulator")
        if base is None:
            base = np.zeros(max(size, 1), dtype=float)
            self._buffers["accumulator"] = base
            self.allocations += 1
        elif len(base) < size:
            grown = np.zeros(max(size, 2 * len(base)), dtype=float)
            grown[: len(base)] = base
            self._buffers["accumulator"] = base = grown
            self.allocations += 1
        return base[:size]

    def repeated(
        self,
        name: str,
        per_row: np.ndarray,
        k: int,
        token: Optional[Any] = None,
    ) -> np.ndarray:
        """``per_row`` values each repeated ``k`` times, incrementally.

        Valid only when ``per_row`` is *prefix-stable* between calls
        with the same ``name`` (rows only append — true of the host
        address table within a run); then only the new rows are
        written.  ``token`` guards the cached prefix: pass the object
        the values were derived from (e.g. a compiled policy kernel)
        and any identity change forces a full rewrite.
        """
        rows = len(per_row)
        size = rows * k
        out = self.request(name, size, per_row.dtype)
        state = self._repeat_state.get(name)
        written = 0
        if state is not None and state[1] == k and state[2] is token:
            written = min(state[0], rows)
        if written < rows:
            out.reshape(rows, k)[written:] = per_row[written:, None]
        self._repeat_state[name] = (max(written, rows), k, token)
        return out
