"""Quantifying hotspots.

Hotspots are "deviations from uniform propagation behavior".  Given a
vector of per-bin observation counts (probes or unique sources per
/24), these metrics measure how far the distribution is from uniform:

* Gini coefficient — 0 for perfectly uniform, → 1 for a single spike;
* normalized Shannon entropy — 1 for uniform, → 0 for a spike;
* chi-square statistic and p-value against the uniform null;
* peak-to-mean ratio — how tall the worst hotspot stands.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats


@dataclass(frozen=True)
class HotspotReport:
    """Summary statistics of a binned observation vector."""

    bins: int
    total: int
    gini: float
    normalized_entropy: float
    chi2: float
    chi2_pvalue: float
    peak_to_mean: float
    zero_fraction: float

    @property
    def is_uniform(self) -> bool:
        """Whether the chi-square test fails to reject uniformity at 1%."""
        return self.chi2_pvalue > 0.01


def gini_coefficient(counts: np.ndarray) -> float:
    """Gini coefficient of a non-negative count vector."""
    counts = np.sort(np.asarray(counts, dtype=float))
    if counts.sum() == 0:
        return 0.0
    n = len(counts)
    index = np.arange(1, n + 1)
    return float((2 * (index * counts).sum() / (n * counts.sum())) - (n + 1) / n)


def normalized_entropy(counts: np.ndarray) -> float:
    """Shannon entropy of the count distribution, normalized to [0, 1]."""
    counts = np.asarray(counts, dtype=float)
    total = counts.sum()
    if total == 0 or len(counts) < 2:
        return 1.0
    p = counts[counts > 0] / total
    entropy = -(p * np.log(p)).sum()
    return float(entropy / np.log(len(counts)))


def hotspot_report(counts: np.ndarray) -> HotspotReport:
    """Full non-uniformity report for one binned observation vector."""
    counts = np.asarray(counts, dtype=np.int64)
    if counts.ndim != 1 or len(counts) == 0:
        raise ValueError("counts must be a non-empty 1-D vector")
    if (counts < 0).any():
        raise ValueError("counts must be non-negative")
    total = int(counts.sum())
    if total > 0:
        chi2, pvalue = stats.chisquare(counts)
        peak_to_mean = float(counts.max() / counts.mean())
    else:
        chi2, pvalue = 0.0, 1.0
        peak_to_mean = 0.0
    return HotspotReport(
        bins=len(counts),
        total=total,
        gini=gini_coefficient(counts),
        normalized_entropy=normalized_entropy(counts),
        chi2=float(chi2),
        chi2_pvalue=float(pvalue),
        peak_to_mean=peak_to_mean,
        zero_fraction=float((counts == 0).mean()),
    )
