"""The Table 2 filtering study.

The paper compares, per organization, the number of worm-infected IPs
*observed at external darknet sensors*: Fortune-100 enterprises show
almost none despite their size, while broadband ISPs leak tens of
thousands — indirect evidence of pervasive enterprise egress
filtering.

This reproduction synthesizes both allocation classes, seeds internal
infections in each, applies (or not) egress filtering at enterprise
borders, and counts which infected hosts ever reach the IMS-style
sensor deployment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.env.environment import NetworkEnvironment
from repro.env.filtering import FilteringPolicy
from repro.population.allocation import OrganizationAllocation
from repro.prng.entropy import BootTimeModel
from repro.sensors.darknet import DarknetSensor
from repro.worms.base import WormModel
from repro.worms.blaster import blaster_starts_for_seeds


@dataclass(frozen=True)
class OrganizationRow:
    """One Table 2 row: per-worm observed infected IPs."""

    name: str
    kind: str
    total_addresses: int
    observed: Mapping[str, int]  # worm name -> unique infected IPs seen


@dataclass(frozen=True)
class FilteringStudyResult:
    """All rows of the study."""

    rows: tuple[OrganizationRow, ...]

    def enterprises(self) -> list[OrganizationRow]:
        """Rows for enterprise organizations."""
        return [row for row in self.rows if row.kind == "enterprise"]

    def broadband(self) -> list[OrganizationRow]:
        """Rows for broadband ISPs."""
        return [row for row in self.rows if row.kind == "broadband"]


def run_filtering_study(
    organizations: Sequence[OrganizationAllocation],
    infected: Mapping[str, Mapping[str, np.ndarray]],
    worms: Mapping[str, WormModel],
    sensors: Sequence[DarknetSensor],
    policy: FilteringPolicy,
    probes_per_host: int,
    rng: np.random.Generator,
) -> FilteringStudyResult:
    """Count infected IPs each organization leaks to the sensors.

    Parameters
    ----------
    infected:
        ``infected[worm_name][org_name]`` = infected host addresses
        inside that organization.
    worms:
        The worm models generating each infection's scan traffic.
    policy:
        The filtering policy (enterprise egress rules live here).
    probes_per_host:
        Scan budget per infected host during the observation window.
    """
    environment = NetworkEnvironment(policy=policy)
    observed: dict[str, dict[str, int]] = {
        org.name: {} for org in organizations
    }
    for worm_name, worm in worms.items():
        placements = infected.get(worm_name, {})
        for organization in organizations:
            hosts = placements.get(organization.name)
            if hosts is None or not len(hosts):
                observed[organization.name][worm_name] = 0
                continue
            state = worm.new_state()
            worm.add_hosts(state, hosts, rng)
            seen: set[int] = set()
            remaining = probes_per_host
            while remaining > 0:
                chunk = min(remaining, max(1, 2_000_000 // max(len(hosts), 1)))
                remaining -= chunk
                targets = worm.generate(state, chunk, rng)
                sources = np.broadcast_to(
                    state.addresses()[:, None], targets.shape
                )
                deliverable = environment.deliverable(
                    sources.ravel(), targets.ravel(), rng, worm=worm.name
                )
                flat_sources = sources.ravel()[deliverable]
                flat_targets = targets.ravel()[deliverable]
                for sensor in sensors:
                    inside = sensor.block.contains_array(flat_targets)
                    if inside.any():
                        seen.update(
                            int(s) for s in np.unique(flat_sources[inside])
                        )
            observed[organization.name][worm_name] = len(seen)

    rows = tuple(
        OrganizationRow(
            name=org.name,
            kind=org.kind,
            total_addresses=org.address_count,
            observed=dict(observed[org.name]),
        )
        for org in organizations
    )
    return FilteringStudyResult(rows=rows)


def blaster_leak_counts(
    placements: Mapping[str, np.ndarray],
    sensors: Sequence[DarknetSensor],
    policy: FilteringPolicy,
    reach: int,
    rng: np.random.Generator,
    boot_model: BootTimeModel | None = None,
) -> dict[str, int]:
    """Blaster-infected IPs observed externally, per organization.

    Blaster scans sequentially, so a bounded probe batch never reaches
    a distant darknet; over a month-long window each persistent host
    sweeps ``reach`` addresses from its boot-seeded start.  A host is
    observed iff its sweep ``[start, start + reach]`` intersects a
    sensor block *and* the egress policy lets the probe out.
    """
    if reach <= 0:
        raise ValueError("reach must be positive")
    boot_model = boot_model if boot_model is not None else BootTimeModel(
        uptime_fraction=0.5
    )
    counts: dict[str, int] = {}
    for org_name, hosts in placements.items():
        hosts = np.asarray(hosts, dtype=np.uint32)
        if not len(hosts):
            counts[org_name] = 0
            continue
        seeds = boot_model.sample_seeds(len(hosts), rng)
        starts, _ = blaster_starts_for_seeds(seeds.astype(np.uint64), hosts)
        starts64 = starts.astype(np.int64)
        observed = np.zeros(len(hosts), dtype=bool)
        for sensor in sensors:
            intersects = (starts64 <= sensor.block.last) & (
                starts64 + reach >= sensor.block.first
            )
            if not intersects.any():
                continue
            deliverable = policy.deliverable(
                hosts[intersects],
                np.full(
                    int(intersects.sum()), sensor.block.first, dtype=np.uint32
                ),
                worm="blaster",
            )
            hit_indices = np.where(intersects)[0][deliverable]
            observed[hit_indices] = True
        counts[org_name] = int(observed.sum())
    return counts
