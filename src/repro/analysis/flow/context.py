"""The shared analysis context project checkers receive.

Building the flow machinery — symbol table, call graph, taint
fixpoint — costs one full parse + two walks of the project, so the
result is cached per root and invalidated by a stat signature
(relative path, ``mtime_ns``, size) over every file in scope.  A
test session that runs ``hotspots lint`` a dozen times builds the
context once; touching any analyzed file rebuilds it.

:func:`build_context` accepts the (tree, source) pairs
:func:`~repro.analysis.lint.framework.run_lint` already parsed so
in-scope files are never parsed twice in one run.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping, Optional

from repro.analysis.flow.callgraph import CallGraph, build_callgraph
from repro.analysis.flow.symbols import SymbolTable
from repro.analysis.flow.taint import TaintIndex, analyze_taint
from repro.analysis.lint.config import LintConfig

#: (relpath, mtime_ns, size) per file — cheap change detection.
_Signature = tuple[tuple[str, int, int], ...]

_CACHE: dict[str, tuple[_Signature, "ProjectContext"]] = {}


@dataclass
class ProjectContext:
    """Everything the RP1xx checkers need, built once per project."""

    root: Path
    config: LintConfig
    table: SymbolTable
    graph: CallGraph
    taint: TaintIndex

    def source_lines(self, relpath: str) -> tuple[str, ...]:
        """The analyzed source of one module, split into lines."""
        module = self.table.modules_by_relpath.get(relpath)
        if module is None:
            return ()
        return module.source_lines


def _scope_files(root: Path, config: LintConfig) -> list[tuple[str, Path]]:
    """Every in-scope Python file, as (relpath, path), sorted."""
    files: dict[str, Path] = {}
    for entry in config.paths:
        base = root / entry
        if base.is_file() and base.suffix == ".py":
            candidates = [base]
        elif base.is_dir():
            candidates = sorted(base.rglob("*.py"))
        else:
            continue
        for path in candidates:
            try:
                relpath = path.resolve().relative_to(root.resolve()).as_posix()
            except ValueError:
                continue
            if config.is_excluded(relpath):
                continue
            files.setdefault(relpath, path)
    return sorted(files.items())


def _signature_for(files: list[tuple[str, Path]]) -> _Signature:
    entries: list[tuple[str, int, int]] = []
    for relpath, path in files:
        try:
            stat = path.stat()
        except OSError:
            entries.append((relpath, -1, -1))
            continue
        entries.append((relpath, stat.st_mtime_ns, stat.st_size))
    return tuple(entries)


def build_context(
    root: Path,
    config: LintConfig,
    parsed: Optional[Mapping[str, tuple[ast.Module, str]]] = None,
) -> ProjectContext:
    """The (possibly cached) flow context for a project root.

    ``parsed`` maps relpaths to already-parsed ``(tree, source)``
    pairs from the lint driver's file pass; files in scope but not in
    the mapping are parsed here.  Files that fail to parse are simply
    absent from the context — the driver reports RP000 for them.
    """
    root = root.resolve()
    files = _scope_files(root, config)
    signature = _signature_for(files)
    cache_key = str(root)
    cached = _CACHE.get(cache_key)
    if cached is not None and cached[0] == signature:
        return cached[1]

    table = SymbolTable()
    for relpath, path in files:
        pair = parsed.get(relpath) if parsed is not None else None
        if pair is not None:
            tree, source = pair
        else:
            try:
                source = path.read_text(encoding="utf-8")
                tree = ast.parse(source, filename=str(path))
            except (OSError, SyntaxError):
                continue
        table.add_module(relpath, tree, source)
    table.finalize()

    graph = build_callgraph(table)
    taint = analyze_taint(table, graph)
    context = ProjectContext(
        root=root, config=config, table=table, graph=graph, taint=taint
    )
    _CACHE[cache_key] = (signature, context)
    return context


def clear_cache() -> None:
    """Drop every cached context (test isolation hook)."""
    _CACHE.clear()
