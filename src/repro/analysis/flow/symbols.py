"""The project symbol table behind the flow analysis.

One :class:`ModuleInfo` per parsed file (the AST is parsed once and
shared with the lint framework's parse pass), indexed into a
:class:`SymbolTable` of classes and functions by *qualified name*
(``repro.sim.shard.ShardEngine.process``).  On top of the raw
definitions the table records what the dataflow layers need:

* per-class **instance attribute types** (``self.verdict =
  _FusedVerdict(...)`` types ``verdict`` as that class; dataclass
  field annotations count too), so call resolution can follow
  ``self.verdict.dispatch`` to the right method;
* **property return types**, so ``spec.shard_plan`` resolves through
  the property's annotation;
* **nesting** (functions inside functions, classes inside functions)
  — the picklability facts RP103 verifies.

Resolution is conservative: anything the table cannot name stays
``None`` and the downstream analysis treats it as unknown.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.analysis.lint.framework import ImportResolver

#: Names that wrap a type without changing the class we care about.
_TRANSPARENT_WRAPPERS = {
    "typing.Optional",
    "typing.Union",
    "typing.Annotated",
    "typing.Final",
    "typing.ClassVar",
    "Optional",
    "Union",
    "Annotated",
    "Final",
    "ClassVar",
}


def module_name_for(relpath: str) -> str:
    """The dotted module name a project-relative path denotes.

    ``src/`` is the import root (``src/repro/sim/shard.py`` →
    ``repro.sim.shard``); everything else keeps its path spelling
    (``tests/sim/test_sharded.py`` → ``tests.sim.test_sharded``).
    """
    parts = relpath.split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qualname: str
    module: str
    name: str
    relpath: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    #: Qualified name of the owning class (``None`` for module-level).
    owner_class: Optional[str] = None
    #: True when defined inside another function's body (unpicklable).
    nested: bool = False
    #: Resolved decorator names (``property``, ``classmethod``, ...).
    decorators: tuple[str, ...] = ()

    @property
    def is_property(self) -> bool:
        return any(
            dec in ("property", "functools.cached_property", "cached_property")
            for dec in self.decorators
        )

    @property
    def is_staticmethod(self) -> bool:
        return "staticmethod" in self.decorators

    @property
    def is_classmethod(self) -> bool:
        return "classmethod" in self.decorators


@dataclass
class ClassInfo:
    """One class definition plus the attribute facts flow needs."""

    qualname: str
    module: str
    name: str
    relpath: str
    node: ast.ClassDef
    #: True when defined inside a function body (unpicklable).
    nested_in_function: bool = False
    #: Base-class names, resolved to dotted names where possible.
    bases: tuple[str, ...] = ()
    #: Method name → function qualname.
    methods: dict[str, str] = field(default_factory=dict)
    #: Instance attribute → annotation AST (class-body ``x: T`` and
    #: ``self.x: T`` / ``self.x = C(...)`` sites record here).
    attr_annotations: dict[str, ast.expr] = field(default_factory=dict)
    #: Instance attribute → class qualname inferred from
    #: ``self.x = ClassName(...)`` constructor assignments.
    attr_constructed: dict[str, str] = field(default_factory=dict)
    #: Class-body line of each annotated field (RP103 anchoring).
    field_lines: dict[str, int] = field(default_factory=dict)
    #: True when decorated with ``@dataclass`` (any spelling).
    is_dataclass: bool = False
    #: True when ``@dataclass(frozen=True)``.
    frozen: bool = False


@dataclass
class ModuleInfo:
    """One parsed file: AST, imports, and its local definitions."""

    name: str
    relpath: str
    tree: ast.Module
    source_lines: tuple[str, ...]
    resolver: ImportResolver
    #: Function qualname → info (methods included).
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    #: Class qualname → info (module-level and nested).
    classes: dict[str, ClassInfo] = field(default_factory=dict)


class SymbolTable:
    """Every module, class, and function in the analyzed project."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.modules_by_relpath: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        #: Simple class name → qualnames (for name-based fallbacks).
        self.classes_by_name: dict[str, list[str]] = {}
        #: Method name → function qualnames (class-hierarchy fallback).
        self.methods_by_name: dict[str, list[str]] = {}
        #: Methods awaiting the post-index ``self.x = ...`` scan.
        self._pending_self_scans: list[
            tuple[ClassInfo, ast.FunctionDef | ast.AsyncFunctionDef, ModuleInfo]
        ] = []

    # -- construction --------------------------------------------------

    def add_module(self, relpath: str, tree: ast.Module, source: str) -> None:
        """Index one parsed file into the table."""
        name = module_name_for(relpath)
        info = ModuleInfo(
            name=name,
            relpath=relpath,
            tree=tree,
            source_lines=tuple(source.splitlines()),
            resolver=ImportResolver.for_tree(tree),
        )
        self.modules[name] = info
        self.modules_by_relpath[relpath] = info
        _Indexer(self, info).visit(tree)

    def finalize(self) -> None:
        """Resolve cross-module facts once every module is indexed.

        ``self.x = OtherModuleClass(...)`` can only type the
        attribute after the constructor's module is in the table, so
        the store scan is deferred to here.
        """
        for cls, node, module in self._pending_self_scans:
            self._record_self_assignments(cls, node, module)
        self._pending_self_scans.clear()

    def _record_self_assignments(
        self,
        cls: ClassInfo,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        module: ModuleInfo,
    ) -> None:
        """Harvest ``self.x = ...`` attribute types from a method."""
        if not node.args.args:
            return
        self_name = node.args.args[0].arg
        param_annotations = {
            param.arg: param.annotation
            for param in [
                *node.args.posonlyargs,
                *node.args.args,
                *node.args.kwonlyargs,
            ]
            if param.annotation is not None
        }
        for statement in ast.walk(node):
            target: Optional[ast.expr] = None
            value: Optional[ast.expr] = None
            if isinstance(statement, ast.Assign) and len(
                statement.targets
            ) == 1:
                target, value = statement.targets[0], statement.value
            elif isinstance(statement, ast.AnnAssign):
                target = statement.target
                if isinstance(target, ast.Attribute):
                    cls.attr_annotations.setdefault(
                        target.attr, statement.annotation
                    )
                value = statement.value
            if (
                not isinstance(target, ast.Attribute)
                or not isinstance(target.value, ast.Name)
                or target.value.id != self_name
            ):
                continue
            if value is not None:
                inferred = self._class_of_value(
                    value, param_annotations, module
                )
                if inferred is not None:
                    cls.attr_constructed.setdefault(target.attr, inferred)

    def _class_of_value(
        self,
        value: ast.expr,
        param_annotations: dict[str, ast.expr],
        module: ModuleInfo,
    ) -> Optional[str]:
        """The class a ``self.x = <value>`` store holds, if inferable.

        Covers constructor calls, parameter names typed by their
        annotation, and the ``x if x is not None else Default()``
        idiom (either branch resolving wins; a mixed-type conditional
        would be a design smell this analysis does not chase).
        """
        if isinstance(value, ast.Call):
            dotted = self._dotted_for(value.func, module)
            if dotted is not None and dotted in self.classes:
                return dotted
            return None
        if isinstance(value, ast.Name):
            annotation = param_annotations.get(value.id)
            if annotation is not None:
                return self.resolve_annotation(annotation, module)
            return None
        if isinstance(value, ast.IfExp):
            return self._class_of_value(
                value.body, param_annotations, module
            ) or self._class_of_value(value.orelse, param_annotations, module)
        return None

    # -- lookup --------------------------------------------------------

    def resolve_class(self, dotted: Optional[str]) -> Optional[ClassInfo]:
        """The project class a dotted name denotes, if any."""
        if dotted is None:
            return None
        return self.classes.get(dotted)

    def resolve_function(self, dotted: Optional[str]) -> Optional[FunctionInfo]:
        """The project function a dotted name denotes, if any."""
        if dotted is None:
            return None
        info = self.functions.get(dotted)
        if info is not None:
            return info
        # ``repro.sim.spec.simulate`` imported via ``repro.sim`` re-export:
        # fall back to matching by module-of-definition + name.
        head, _, tail = dotted.rpartition(".")
        for candidate in self.functions.values():
            if candidate.owner_class is None and candidate.name == tail:
                if candidate.module == head or head.startswith(
                    candidate.module
                ):
                    return candidate
        return None

    def method_in_class(
        self, class_qualname: str, method: str
    ) -> Optional[FunctionInfo]:
        """Look a method up in a class, chasing project base classes."""
        seen: set[str] = set()
        queue = [class_qualname]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            cls = self.classes.get(current)
            if cls is None:
                continue
            qualname = cls.methods.get(method)
            if qualname is not None:
                return self.functions.get(qualname)
            queue.extend(cls.bases)
        return None

    def attr_class(
        self, class_qualname: str, attr: str
    ) -> Optional[str]:
        """The class an instance attribute holds, if inferable."""
        seen: set[str] = set()
        queue = [class_qualname]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            cls = self.classes.get(current)
            if cls is None:
                continue
            constructed = cls.attr_constructed.get(attr)
            if constructed is not None:
                return constructed
            annotation = cls.attr_annotations.get(attr)
            if annotation is not None:
                module = self.modules.get(cls.module)
                if module is not None:
                    resolved = self.resolve_annotation(annotation, module)
                    if resolved is not None:
                        return resolved
            # A property is an attribute read with a return annotation.
            prop = self.method_in_class(current, attr)
            if prop is not None and prop.is_property:
                returns = prop.node.returns
                if returns is not None:
                    module = self.modules.get(prop.module)
                    if module is not None:
                        return self.resolve_annotation(returns, module)
                return None
            queue.extend(cls.bases)
        return None

    # -- annotation resolution -----------------------------------------

    def resolve_annotation(
        self, annotation: ast.expr, module: ModuleInfo
    ) -> Optional[str]:
        """The project-class qualname an annotation denotes, if one.

        Unwraps ``Optional``/``Union``/``X | None``/string forward
        references; containers (``tuple[X, ...]``, ``list[X]``) are
        not a class and resolve to ``None``.
        """
        for candidate in self.annotation_classes(annotation, module):
            return candidate
        return None

    def annotation_classes(
        self, annotation: ast.expr, module: ModuleInfo
    ) -> Iterator[str]:
        """Every project-class qualname mentioned by an annotation.

        Unlike :meth:`resolve_annotation` this *does* walk into
        container subscripts — RP103's transitive field graph needs
        ``tuple[DarknetSensor, ...]`` to surface ``DarknetSensor``.
        """
        if isinstance(annotation, ast.Constant) and isinstance(
            annotation.value, str
        ):
            try:
                parsed = ast.parse(annotation.value, mode="eval").body
            except SyntaxError:
                return
            yield from self.annotation_classes(parsed, module)
            return
        if isinstance(annotation, ast.Name) or isinstance(
            annotation, ast.Attribute
        ):
            dotted = self._dotted_for(annotation, module)
            if dotted is not None and dotted in self.classes:
                yield dotted
            return
        if isinstance(annotation, ast.Subscript):
            yield from self.annotation_classes(annotation.value, module)
            inner = annotation.slice
            elements = (
                inner.elts if isinstance(inner, ast.Tuple) else (inner,)
            )
            for element in elements:
                yield from self.annotation_classes(element, module)
            return
        if isinstance(annotation, ast.BinOp) and isinstance(
            annotation.op, ast.BitOr
        ):
            yield from self.annotation_classes(annotation.left, module)
            yield from self.annotation_classes(annotation.right, module)
            return

    def _dotted_for(
        self, node: ast.expr, module: ModuleInfo
    ) -> Optional[str]:
        """A Name/Attribute's dotted name: import-resolved or local."""
        dotted = module.resolver.resolve(node)
        if dotted is not None:
            if dotted in _TRANSPARENT_WRAPPERS:
                return None
            return dotted
        if isinstance(node, ast.Name):
            if node.id in _TRANSPARENT_WRAPPERS:
                return None
            local = f"{module.name}.{node.id}"
            if local in self.classes or local in self.functions:
                return local
        return None

    def dotted_name(
        self, node: ast.expr, module: ModuleInfo
    ) -> Optional[str]:
        """Public wrapper: the dotted name an expression denotes."""
        return self._dotted_for(node, module)


class _Indexer(ast.NodeVisitor):
    """Walk one module, registering definitions into the table."""

    def __init__(self, table: SymbolTable, module: ModuleInfo):
        self.table = table
        self.module = module
        #: Stack of (kind, name) scopes: kind is "class" or "function".
        self.scope: list[tuple[str, str]] = []

    # -- scope helpers -------------------------------------------------

    def _qualname(self, name: str) -> str:
        parts = [self.module.name, *(entry[1] for entry in self.scope), name]
        return ".".join(parts)

    def _in_function(self) -> bool:
        return any(kind == "function" for kind, _ in self.scope)

    def _enclosing_class(self) -> Optional[str]:
        if self.scope and self.scope[-1][0] == "class":
            parts = [
                self.module.name,
                *(entry[1] for entry in self.scope),
            ]
            return ".".join(parts)
        return None

    def _decorator_names(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef | ast.ClassDef
    ) -> tuple[str, ...]:
        names: list[str] = []
        for decorator in node.decorator_list:
            target = decorator
            if isinstance(target, ast.Call):
                target = target.func
            dotted = self.module.resolver.resolve(target)
            if dotted is None and isinstance(target, ast.Name):
                dotted = target.id
            if dotted is None and isinstance(target, ast.Attribute):
                dotted = target.attr
            if dotted is not None:
                names.append(dotted)
        return tuple(names)

    # -- definitions ---------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        qualname = self._qualname(node.name)
        decorators = self._decorator_names(node)
        is_dataclass = any(
            dec in ("dataclass", "dataclasses.dataclass")
            for dec in decorators
        )
        frozen = False
        if is_dataclass:
            for decorator in node.decorator_list:
                if isinstance(decorator, ast.Call):
                    for keyword in decorator.keywords:
                        if (
                            keyword.arg == "frozen"
                            and isinstance(keyword.value, ast.Constant)
                            and keyword.value.value is True
                        ):
                            frozen = True
        bases: list[str] = []
        for base in node.bases:
            dotted = self.table._dotted_for(base, self.module)
            if dotted is not None:
                bases.append(dotted)
        info = ClassInfo(
            qualname=qualname,
            module=self.module.name,
            name=node.name,
            relpath=self.module.relpath,
            node=node,
            nested_in_function=self._in_function(),
            bases=tuple(bases),
            is_dataclass=is_dataclass,
            frozen=frozen,
        )
        # Class-body annotated fields (dataclass fields included).
        for statement in node.body:
            if isinstance(statement, ast.AnnAssign) and isinstance(
                statement.target, ast.Name
            ):
                info.attr_annotations[statement.target.id] = (
                    statement.annotation
                )
                info.field_lines[statement.target.id] = statement.lineno
        self.module.classes[qualname] = info
        self.table.classes[qualname] = info
        self.table.classes_by_name.setdefault(node.name, []).append(qualname)
        self.scope.append(("class", node.name))
        self.generic_visit(node)
        self.scope.pop()

    def _visit_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        qualname = self._qualname(node.name)
        owner = self._enclosing_class()
        info = FunctionInfo(
            qualname=qualname,
            module=self.module.name,
            name=node.name,
            relpath=self.module.relpath,
            node=node,
            owner_class=owner,
            nested=self._in_function(),
            decorators=self._decorator_names(node),
        )
        self.module.functions[qualname] = info
        self.table.functions[qualname] = info
        if owner is not None:
            cls = self.table.classes[owner]
            # First definition wins (a @property and its @x.setter
            # share a name; the getter carries the annotation).
            cls.methods.setdefault(node.name, qualname)
            if not info.is_staticmethod:
                self.table._pending_self_scans.append(
                    (cls, node, self.module)
                )
        self.table.methods_by_name.setdefault(node.name, []).append(qualname)
        self.scope.append(("function", node.name))
        self.generic_visit(node)
        self.scope.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function
