"""Cross-module determinism-flow analysis (`repro.analysis.flow`).

The RP001–RP007 suite (:mod:`repro.analysis.lint`) is per-file
pattern matching: it can see a wall-clock call or an unseeded
generator, but not *where a value goes*.  The repo's correctness
story — bitwise reproduction at every optimization level — rests on
cross-module contracts that only runtime equivalence tests checked
until now:

* the **exchange determinism contract** (every RNG-consuming stage
  stays in the driver in exact serial order; shard-side stages are
  deterministic per-target),
* **pool-boundary picklability** (frozen spec units and module-level
  callables are the only things shipped to worker processes),
* the **equivalence gate** (every ``kernels_enabled()`` fast path has
  a reference twin that tests exercise via ``kernel_override``).

This package verifies those contracts statically:

* :mod:`~repro.analysis.flow.symbols` — a project symbol table: one
  AST per module, classes/functions by qualified name, instance
  attribute types, annotation resolution.
* :mod:`~repro.analysis.flow.callgraph` — an import-resolved call
  graph built with receiver-type inference (``self.verdict.dispatch``
  resolves through the attribute's inferred class, falling back to
  name-based class-hierarchy analysis only when the receiver type is
  unknown).
* :mod:`~repro.analysis.flow.taint` — a taint-style dataflow lattice
  tracking ``numpy.random.Generator`` values and wall-clock/entropy
  sources through assignments, calls, attribute loads, and
  comprehensions, plus a worklist fixpoint over the call graph.
  Conservative by design: unknown calls propagate taint.
* :mod:`~repro.analysis.flow.context` — the cached
  :class:`~repro.analysis.flow.context.ProjectContext` the lint
  framework hands to project-level checkers.
* :mod:`~repro.analysis.flow.checkers` — the RP101–RP105 rules
  exposed through ``hotspots lint``.

Every suppression of an RP1xx finding must name a reason::

    fresh = engine.run(rng)  # noqa: RP101 -- driver-owned rng, consumed pre-exchange

A bare ``# noqa: RP101`` does not silence the finding; the checker
reports the missing reason instead.
"""

from repro.analysis.flow.checkers import (
    DispatchWindowChecker,
    KernelGateCoverageChecker,
    PoolBoundaryPicklabilityChecker,
    RngOrderingChecker,
    ShardPurityChecker,
)
from repro.analysis.flow.context import ProjectContext, build_context

__all__ = [
    "DispatchWindowChecker",
    "KernelGateCoverageChecker",
    "PoolBoundaryPicklabilityChecker",
    "ProjectContext",
    "RngOrderingChecker",
    "ShardPurityChecker",
    "build_context",
]
