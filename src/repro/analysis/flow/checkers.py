"""The RP101–RP105 determinism-flow checkers.

All five are :class:`~repro.analysis.lint.framework.ProjectChecker`
subclasses with ``needs_context = True``: the lint driver hands them
one shared :class:`~repro.analysis.flow.context.ProjectContext`
(symbol table + call graph + taint fixpoint) instead of a single
file's AST.

Suppression policy — stricter than the RP00x rules on purpose: a
flow finding names a cross-module contract, so silencing one must
name the argument why the contract still holds::

    self._run(backup, pooled=False)  # noqa: RP102 -- pre-consumption rng copy; serial re-run is bitwise-identical

A bare ``# noqa: RP102`` (or a blanket ``# noqa``) does not silence
the finding; the checker reports the missing reason instead.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterable, Iterator, Optional

from repro.analysis.flow.callgraph import SubmitSite
from repro.analysis.flow.context import ProjectContext, build_context
from repro.analysis.flow.taint import RNG
from repro.analysis.lint.config import LintConfig
from repro.analysis.lint.diagnostics import Diagnostic
from repro.analysis.lint.framework import ProjectChecker

#: ``# noqa: RP101 -- reason`` — codes are mandatory, the reason
#: group decides whether the suppression is honored or reported.
_NOQA_WITH_REASON = re.compile(
    r"#\s*noqa:\s*(?P<codes>[A-Z]+\d+(?:\s*,\s*[A-Z]+\d+)*)"
    r"(?:\s*--\s*(?P<reason>\S.*))?",
    re.IGNORECASE,
)


def _short(context: ProjectContext, qualname: str) -> str:
    """A qualname without its module prefix, for readable messages."""
    info = context.table.functions.get(qualname)
    if info is not None and qualname.startswith(info.module + "."):
        return qualname[len(info.module) + 1 :]
    cls = context.table.classes.get(qualname)
    if cls is not None and qualname.startswith(cls.module + "."):
        return qualname[len(cls.module) + 1 :]
    return qualname


class FlowChecker(ProjectChecker):
    """Shared driver: scope filter, reasoned-noqa policy, ordering."""

    needs_context = True
    #: Findings are only reported for files under these prefixes —
    #: the *analysis* still sees the whole project (a test passing a
    #: generator into shard code is an edge; the finding anchors in
    #: ``src``).
    scope: tuple[str, ...] = ("src",)

    def check_project(
        self,
        root: Path,
        config: LintConfig,
        context: Optional[ProjectContext] = None,
    ) -> Iterator[Diagnostic]:
        if context is None:
            context = build_context(root, config)
        seen: set[tuple[str, int, int, str]] = set()
        results: list[Diagnostic] = []
        for diagnostic in self._find(context):
            if not self.applies_to(diagnostic.path):
                continue
            key = (
                diagnostic.path,
                diagnostic.line,
                diagnostic.col,
                diagnostic.message,
            )
            if key in seen:
                continue
            seen.add(key)
            resolved = self._apply_noqa(context, diagnostic)
            if resolved is not None:
                results.append(resolved)
        yield from sorted(results)

    def _find(self, context: ProjectContext) -> Iterable[Diagnostic]:
        raise NotImplementedError

    def _apply_noqa(
        self, context: ProjectContext, diagnostic: Diagnostic
    ) -> Optional[Diagnostic]:
        """Honor reasoned suppressions; report bare ones."""
        lines = context.source_lines(diagnostic.path)
        first = max(diagnostic.line, 1)
        last = max(diagnostic.end_line, first)
        bare_line: Optional[int] = None
        for lineno in range(first, min(last, len(lines)) + 1):
            for match in _NOQA_WITH_REASON.finditer(lines[lineno - 1]):
                codes = {
                    code.strip().upper()
                    for code in match.group("codes").split(",")
                }
                if self.code.upper() not in codes:
                    continue
                reason = match.group("reason")
                if reason and reason.strip():
                    return None
                bare_line = lineno
        if bare_line is not None:
            return Diagnostic(
                path=diagnostic.path,
                line=diagnostic.line,
                col=diagnostic.col,
                code=self.code,
                message=(
                    f"suppression of {self.code} must name a reason "
                    f"('# noqa: {self.code} -- why'); suppressed finding: "
                    f"{diagnostic.message}"
                ),
                end_line=diagnostic.end_line,
            )
        return diagnostic


class ShardPurityChecker(FlowChecker):
    """RP101: RNG/clock/entropy must not flow into shard-side code.

    Shard-side code is every method of a ``ShardEngine`` class plus
    everything reachable from a pool ``submit`` payload (the
    ``repro.runtime.shardpool`` workers).  The exchange determinism
    contract keeps all stream consumption in the driver, in serial
    order; a draw inside a shard would interleave with worker
    scheduling and break bitwise reproduction.
    """

    code = "RP101"
    name = "shard-purity"
    rationale = (
        "RNG, wall-clock, and entropy reads must stay in the driver; "
        "shard-side stages are deterministic per-target (exchange "
        "determinism contract)."
    )

    def _find(self, context: ProjectContext) -> Iterable[Diagnostic]:
        table, graph, taint = context.table, context.graph, context.taint
        roots: dict[str, str] = {}
        for class_qualname in table.classes_by_name.get("ShardEngine", ()):
            cls = table.classes[class_qualname]
            for method_qualname in cls.methods.values():
                roots.setdefault(
                    method_qualname, f"method of {class_qualname}"
                )
        for site in graph.submit_sites:
            if site.payload is not None:
                roots.setdefault(
                    site.payload,
                    f"pool payload ({site.relpath}:{site.node.lineno})",
                )

        parent: dict[str, str] = {}
        shard_set = set(roots)
        queue = list(roots)
        while queue:
            current = queue.pop()
            for callee in graph.edges.get(current, ()):
                if callee not in shard_set:
                    shard_set.add(callee)
                    parent[callee] = current
                    queue.append(callee)

        def chain(qualname: str) -> str:
            parts = [qualname]
            while parts[-1] in parent:
                parts.append(parent[parts[-1]])
            return " <- ".join(_short(context, part) for part in parts)

        # (a) direct stream/clock/entropy consumption in shard code.
        for qualname in sorted(shard_set):
            info = table.functions.get(qualname)
            summary = taint.functions.get(qualname)
            if info is None or summary is None:
                continue
            for site in summary.sites:
                yield Diagnostic(
                    path=info.relpath,
                    line=site.line,
                    col=site.col,
                    code=self.code,
                    message=(
                        f"shard-side code consumes {site.kind}: "
                        f"{_short(context, qualname)} {site.detail} "
                        f"[shard-reachable: {chain(qualname)}]"
                    ),
                    end_line=site.line,
                )

        # (b) a live generator handed from the driver into shard code.
        for qualname, summary in sorted(taint.functions.items()):
            if qualname in shard_set:
                continue
            info = table.functions.get(qualname)
            if info is None:
                continue
            for call in summary.call_sites:
                if call.kind != RNG or call.via_cha:
                    continue
                crossing = next(
                    (t for t in call.targets if t in shard_set), None
                )
                if crossing is None:
                    continue
                yield Diagnostic(
                    path=info.relpath,
                    line=call.line,
                    col=call.col,
                    code=self.code,
                    message=(
                        f"a generator crosses into shard-side code: "
                        f"{_short(context, qualname)} {call.detail} "
                        f"[{_short(context, crossing)} is shard-reachable: "
                        f"{chain(crossing)}]"
                    ),
                    end_line=call.line,
                )

        # (c) a tainted value shipped through a pool submit().
        for site in graph.submit_sites:
            summary = taint.functions.get(site.caller)
            if summary is None:
                continue
            for call in summary.call_sites:
                if (
                    call.line == site.node.lineno
                    and call.col == site.node.col_offset
                ):
                    yield Diagnostic(
                        path=site.relpath,
                        line=call.line,
                        col=call.col,
                        code=self.code,
                        message=(
                            f"a {call.kind}-tainted value crosses the pool "
                            f"boundary in {_short(context, site.caller)}; "
                            "ship frozen spec data, not live streams"
                        ),
                        end_line=call.line,
                    )


class DispatchWindowChecker(FlowChecker):
    """RP105: the streamed-dispatch overlap window must be RNG-free.

    The pipelined shard pool overlaps worker compute with the
    driver's remaining route/stage work: between a tick's first
    ``.dispatch_shard(...)`` and its last ``.collect(...)`` some
    shards are already executing.  Every RNG-consuming stage must
    have run *before* that window opens (the exchange determinism
    contract draws in serial batch order); a draw inside the window
    would make stream position depend on how far dispatch had
    progressed — exactly the scheduling-dependent consumption the
    contract exists to forbid.  The window is syntactic per function:
    the line span from the first ``dispatch_shard`` call through the
    last ``collect`` call.
    """

    code = "RP105"
    name = "dispatch-window"
    rationale = (
        "Driver code must not consume RNG between a tick's first "
        "dispatch_shard and last collect — the streamed-dispatch "
        "overlap window runs concurrently with worker compute, and "
        "all draws must already have happened in serial batch order."
    )

    def _find(self, context: ProjectContext) -> Iterable[Diagnostic]:
        table, taint = context.table, context.taint
        for qualname in sorted(table.functions):
            info = table.functions[qualname]
            window = self._window(info.node)
            if window is None:
                continue
            first, last = window
            summary = taint.functions.get(qualname)
            if summary is None:
                continue
            for site in summary.sites:
                if site.kind != RNG or not first <= site.line <= last:
                    continue
                yield Diagnostic(
                    path=info.relpath,
                    line=site.line,
                    col=site.col,
                    code=self.code,
                    message=(
                        f"RNG consumed inside the dispatch window "
                        f"(lines {first}-{last}) of "
                        f"{_short(context, qualname)}: {site.detail}; "
                        "draws must complete before the first "
                        "dispatch_shard"
                    ),
                    end_line=site.line,
                )
            for call in summary.call_sites:
                if call.kind != RNG or not first <= call.line <= last:
                    continue
                consumer = next(
                    (t for t in call.targets if t in taint.uses_rng), None
                )
                if consumer is None:
                    continue
                yield Diagnostic(
                    path=info.relpath,
                    line=call.line,
                    col=call.col,
                    code=self.code,
                    message=(
                        f"a generator flows into "
                        f"{_short(context, consumer)} inside the "
                        f"dispatch window (lines {first}-{last}) of "
                        f"{_short(context, qualname)}; the overlap "
                        "window must be RNG-free"
                    ),
                    end_line=call.line,
                )

    @staticmethod
    def _window(node: ast.AST) -> Optional[tuple[int, int]]:
        """The ``dispatch_shard``..``collect`` line span, if both occur."""
        first: Optional[int] = None
        last: Optional[int] = None
        for sub in ast.walk(node):
            if not (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
            ):
                continue
            if sub.func.attr == "dispatch_shard":
                if first is None or sub.lineno < first:
                    first = sub.lineno
            elif sub.func.attr == "collect":
                if last is None or sub.lineno > last:
                    last = sub.lineno
        if first is None or last is None or last < first:
            return None
        return first, last


class RngOrderingChecker(FlowChecker):
    """RP102: no RNG consumption under data-dependent order.

    Draw order *is* the reproducibility contract, so a draw inside a
    set iteration, an ``os.listdir``/``glob`` loop, or an
    ``except``/``finally`` recovery path — code the serial reference
    would not execute, or would execute in another order — silently
    forks the stream.  The fork-deadlock and degrade-to-serial
    fallbacks in ``runner.py``/``shardpool.py`` are the motivating
    precedents.
    """

    code = "RP102"
    name = "rng-ordering"
    rationale = (
        "RNG must not be consumed under data-dependent iteration "
        "order (sets, os.listdir, unsorted glob) or in except/finally "
        "recovery paths the serial reference would not execute."
    )

    def _find(self, context: ProjectContext) -> Iterable[Diagnostic]:
        taint = context.taint
        for qualname, summary in sorted(taint.functions.items()):
            info = context.table.functions.get(qualname)
            if info is None:
                continue
            for site in summary.sites:
                if site.kind != RNG or not site.regions:
                    continue
                yield Diagnostic(
                    path=info.relpath,
                    line=site.line,
                    col=site.col,
                    code=self.code,
                    message=(
                        f"RNG drawn under {site.regions[0]}: "
                        f"{_short(context, qualname)} {site.detail}; "
                        "draw order must match the serial reference"
                    ),
                    end_line=site.line,
                )
            for call in summary.call_sites:
                if call.kind != RNG or not call.regions:
                    continue
                consumer = next(
                    (t for t in call.targets if t in taint.uses_rng), None
                )
                if consumer is None:
                    continue
                witness = taint.witness.get(consumer, "consumes the stream")
                yield Diagnostic(
                    path=info.relpath,
                    line=call.line,
                    col=call.col,
                    code=self.code,
                    message=(
                        f"a generator flows into "
                        f"{_short(context, consumer)} under "
                        f"{call.regions[0]} in {_short(context, qualname)} "
                        f"({witness}); recovery paths must not consume "
                        "the live stream"
                    ),
                    end_line=call.line,
                )


class PoolBoundaryPicklabilityChecker(FlowChecker):
    """RP103: everything crossing a pool boundary pickles statically.

    Generalizes RP004 from "the payload callable" to the whole
    shipped object graph: the payload must be a module-level
    function, no argument may be a lambda or a closure, and every
    project class reachable from the payload's parameter annotations
    (through dataclass fields and constructor-typed attributes) must
    be module-level with no lambda field defaults.
    """

    code = "RP103"
    name = "pool-picklability"
    rationale = (
        "Objects crossing a ProcessPoolExecutor boundary must be "
        "statically picklable: module-level callables and classes, no "
        "lambdas, closures, or function-local classes in the "
        "transitive field set."
    )

    def _find(self, context: ProjectContext) -> Iterable[Diagnostic]:
        table, graph = context.table, context.graph
        shipped_classes: dict[str, str] = {}
        for site in graph.submit_sites:
            payload_label = (
                _short(context, site.payload)
                if site.payload is not None
                else "the pool payload"
            )
            if isinstance(site.payload_node, ast.Lambda):
                yield self._site_diag(
                    site.relpath,
                    site.payload_node,
                    "a lambda is submitted as a pool payload; only "
                    "module-level functions pickle",
                )
            elif site.payload is not None:
                info = table.functions[site.payload]
                if info.nested:
                    yield self._site_diag(
                        site.relpath,
                        site.node,
                        f"pool payload {payload_label} is a nested "
                        "function (closure); only module-level "
                        "functions pickle",
                    )
                module = table.modules.get(info.module)
                if module is not None:
                    args = info.node.args
                    for param in [*args.posonlyargs, *args.args]:
                        if param.annotation is None:
                            continue
                        for class_qualname in table.annotation_classes(
                            param.annotation, module
                        ):
                            shipped_classes.setdefault(
                                class_qualname, payload_label
                            )
            for arg in site.node.args[1:]:
                yield from self._check_arg(context, site, arg)
            for keyword in site.node.keywords:
                yield from self._check_arg(context, site, keyword.value)

        yield from self._check_shipped_graph(context, shipped_classes)

    def _site_diag(
        self, relpath: str, node: ast.AST, message: str
    ) -> Diagnostic:
        line = int(getattr(node, "lineno", 1))
        return Diagnostic(
            path=relpath,
            line=line,
            col=int(getattr(node, "col_offset", 0)),
            code=self.code,
            message=message,
            end_line=int(getattr(node, "end_lineno", 0) or line),
        )

    def _check_arg(
        self, context: ProjectContext, site: "SubmitSite", arg: ast.expr
    ) -> Iterator[Diagnostic]:
        relpath = site.relpath
        for node in ast.walk(arg):
            if isinstance(node, ast.Lambda):
                yield self._site_diag(
                    relpath,
                    node,
                    "a lambda is shipped as a pool-submit argument; "
                    "lambdas do not pickle",
                )
        module = context.table.modules_by_relpath.get(relpath)
        if module is None:
            return
        dotted = context.table.dotted_name(arg, module)
        info = context.table.resolve_function(dotted)
        if info is None and isinstance(arg, ast.Name):
            info = context.table.functions.get(f"{site.caller}.{arg.id}")
        if dotted is None and info is None:
            return
        if info is not None and info.nested:
            yield self._site_diag(
                relpath,
                arg,
                f"pool-submit argument {_short(context, info.qualname)} "
                "is a nested function (closure); it does not pickle",
            )
        cls = context.table.resolve_class(dotted)
        if cls is not None and cls.nested_in_function:
            yield self._site_diag(
                relpath,
                arg,
                f"pool-submit argument {cls.name} is a function-local "
                "class; it does not pickle",
            )

    def _check_shipped_graph(
        self, context: ProjectContext, shipped: dict[str, str]
    ) -> Iterator[Diagnostic]:
        table = context.table
        seen: set[str] = set()
        queue = sorted(shipped)
        via = dict(shipped)
        while queue:
            class_qualname = queue.pop(0)
            if class_qualname in seen:
                continue
            seen.add(class_qualname)
            cls = table.classes.get(class_qualname)
            if cls is None:
                continue
            payload_label = via.get(class_qualname, "a pool payload")
            if cls.nested_in_function:
                yield self._site_diag(
                    cls.relpath,
                    cls.node,
                    f"class {cls.name} crosses a pool boundary (shipped "
                    f"via {payload_label}) but is defined inside a "
                    "function; function-local classes do not pickle",
                )
            for statement in cls.node.body:
                value = getattr(statement, "value", None)
                if value is None:
                    continue
                for node in ast.walk(value):
                    if isinstance(node, ast.Lambda):
                        yield self._site_diag(
                            cls.relpath,
                            node,
                            f"field default of pool-shipped class "
                            f"{cls.name} is a lambda; it does not pickle",
                        )
            module = table.modules.get(cls.module)
            if module is not None:
                for annotation in cls.attr_annotations.values():
                    for reached in table.annotation_classes(
                        annotation, module
                    ):
                        via.setdefault(reached, payload_label)
                        queue.append(reached)
            for constructed in cls.attr_constructed.values():
                via.setdefault(constructed, payload_label)
                queue.append(constructed)


class KernelGateCoverageChecker(FlowChecker):
    """RP104: every gated fast path has equivalence-test coverage.

    A function branching on ``kernels_enabled()`` has two
    implementations; the bitwise guarantee is only as good as the
    tests that run *both*.  This rule requires each gated function to
    be call-graph-reachable from at least one test module that also
    references ``kernel_override`` (the context manager equivalence
    tests use to force the reference path).
    """

    code = "RP104"
    name = "kernel-gate-coverage"
    rationale = (
        "Every kernels_enabled() fast path must be reachable from at "
        "least one test that also exercises the reference path via "
        "kernel_override."
    )

    def _find(self, context: ProjectContext) -> Iterable[Diagnostic]:
        table, graph = context.table, context.graph
        tests_prefix = context.config.tests_path.rstrip("/") + "/"
        covered: set[str] = set()
        for module in table.modules.values():
            relpath = module.relpath
            if not relpath.startswith(tests_prefix):
                continue
            basename = relpath.rsplit("/", 1)[-1]
            if not basename.startswith("test_"):
                continue
            if not any(
                "kernel_override" in line for line in module.source_lines
            ):
                continue
            roots = {
                qualname
                for qualname, info in table.functions.items()
                if info.relpath == relpath
            }
            covered |= graph.reachable_from(roots)

        for qualname in sorted(graph.gated_functions):
            if qualname in covered:
                continue
            info = table.functions.get(qualname)
            if info is None:
                continue
            yield Diagnostic(
                path=info.relpath,
                line=info.node.lineno,
                col=info.node.col_offset,
                code=self.code,
                message=(
                    f"kernels_enabled() fast path in "
                    f"{_short(context, qualname)} is not reachable from "
                    "any test that exercises the reference path via "
                    "kernel_override; add an equivalence test driving "
                    "both implementations"
                ),
                end_line=info.node.lineno,
            )
