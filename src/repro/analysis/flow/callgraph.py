"""Import-resolved call graph with receiver-type inference.

Edges come from four resolution strategies, tried in order:

1. **Direct names** — ``simulate(spec, rng)`` resolves through the
   module's :class:`~repro.analysis.lint.framework.ImportResolver`
   to a project function or class (a class call is its constructor).
2. **Typed receivers** — ``self.verdict.dispatch(...)`` follows the
   inferred type of the receiver: parameter annotations, ``self`` →
   owner class, locals bound to constructor calls, instance
   attribute types from the symbol table, property return types, and
   the return annotations of already-resolved calls.
3. **Class-hierarchy fallback** — when the receiver's type is
   unknown, a method call resolves to *every* project method with
   that name.  This over-approximates on purpose: a missed edge
   would let tainted flow escape the analysis, a spurious edge at
   worst widens a reachability set.
4. Anything else is **external/unknown** and is left to the taint
   layer's conservative call rule.

While building edges the pass also records what the checkers anchor
on: ``.submit(...)`` pool-boundary sites and functions whose bodies
branch on ``kernels_enabled()``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.flow.symbols import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    SymbolTable,
)

#: Method names too generic for the class-hierarchy fallback — wiring
#: every ``.get``/``.append`` to every project method of that name
#: would connect the whole graph through dict/list idioms.
_CHA_STOPLIST = {
    "get",
    "append",
    "extend",
    "add",
    "pop",
    "items",
    "keys",
    "values",
    "copy",
    "update",
    "close",
    "join",
    "sort",
    "split",
    "strip",
    "format",
    "read",
    "write",
    "result",
    "submit",
}


@dataclass(frozen=True)
class CallResolution:
    """What one call expression resolves to."""

    #: Project functions this call may invoke (empty when external).
    targets: tuple[str, ...] = ()
    #: The external dotted name, when the callee is import-resolved
    #: but not defined in the project (``numpy.random.default_rng``).
    external: Optional[str] = None
    #: The project class the call's *result* is an instance of, when
    #: inferable (constructor calls, annotated returns).
    result_class: Optional[str] = None
    #: True when targets came from the name-based fallback.
    via_cha: bool = False


@dataclass
class SubmitSite:
    """One ``pool.submit(fn, *args)`` pool-boundary crossing."""

    caller: str
    relpath: str
    node: ast.Call
    #: Resolved qualname of the payload callable, if a project one.
    payload: Optional[str]
    #: The payload expression as written (for diagnostics).
    payload_node: Optional[ast.expr]


@dataclass
class CallGraph:
    """Call edges plus the site inventories the checkers consume."""

    table: SymbolTable
    #: Caller qualname → callee qualnames (project functions only).
    edges: dict[str, set[str]] = field(default_factory=dict)
    #: Callee qualname → caller qualnames.
    reverse: dict[str, set[str]] = field(default_factory=dict)
    #: Per-function: call node → resolution (node identity keyed;
    #: the ASTs live for the lifetime of the context).
    resolutions: dict[str, dict[int, CallResolution]] = field(
        default_factory=dict
    )
    #: Every ``.submit(...)`` crossing found in the project.
    submit_sites: list[SubmitSite] = field(default_factory=list)
    #: Functions whose body calls ``kernels_enabled()`` (the gated
    #: fast paths RP104 audits); the defining module is excluded.
    gated_functions: set[str] = field(default_factory=set)

    def resolution_for(
        self, function: str, call: ast.Call
    ) -> Optional[CallResolution]:
        return self.resolutions.get(function, {}).get(id(call))

    def reachable_from(self, roots: set[str]) -> set[str]:
        """Transitive closure of ``roots`` over call edges."""
        seen = set(roots)
        queue = list(roots)
        while queue:
            current = queue.pop()
            for callee in self.edges.get(current, ()):
                if callee not in seen:
                    seen.add(callee)
                    queue.append(callee)
        return seen

    def reaching(self, targets: set[str]) -> set[str]:
        """Every function from which some target is reachable."""
        seen = set(targets)
        queue = list(targets)
        while queue:
            current = queue.pop()
            for caller in self.reverse.get(current, ()):
                if caller not in seen:
                    seen.add(caller)
                    queue.append(caller)
        return seen


#: Dotted names that flip kernel gating — calls to these mark a
#: function as hosting a gated fast path.
_GATE_NAMES = {"repro.net.kernels.kernels_enabled", "kernels_enabled"}
_GATE_MODULE = "repro.net.kernels"


def build_callgraph(table: SymbolTable) -> CallGraph:
    """Resolve every call site in every project function."""
    graph = CallGraph(table=table)
    for info in table.functions.values():
        _FunctionResolver(graph, info).run()
    return graph


class _FunctionResolver:
    """Resolve one function's call sites against the symbol table."""

    def __init__(self, graph: CallGraph, info: FunctionInfo):
        self.graph = graph
        self.table = graph.table
        self.info = info
        self.module: ModuleInfo = graph.table.modules[info.module]
        #: Local name → project class qualname.
        self.env: dict[str, str] = {}

    def run(self) -> None:
        self._seed_env()
        self.graph.resolutions.setdefault(self.info.qualname, {})
        # Two passes so a local typed late in the body still types a
        # receiver used in an earlier loop iteration.
        for _ in range(2):
            for node in ast.walk(self.info.node):
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    self._bind_assign(node.targets[0], node.value)
                elif isinstance(node, ast.AnnAssign) and isinstance(
                    node.target, ast.Name
                ):
                    resolved = self.table.resolve_annotation(
                        node.annotation, self.module
                    )
                    if resolved is not None:
                        self.env[node.target.id] = resolved
            for node in ast.walk(self.info.node):
                if isinstance(node, ast.Call):
                    self._resolve_call(node)

    # -- environment ---------------------------------------------------

    def _seed_env(self) -> None:
        args = self.info.node.args
        all_params = [
            *args.posonlyargs,
            *args.args,
            *args.kwonlyargs,
        ]
        if (
            self.info.owner_class is not None
            and not self.info.is_staticmethod
            and all_params
        ):
            self.env[all_params[0].arg] = self.info.owner_class
            all_params = all_params[1:]
        for param in all_params:
            if param.annotation is not None:
                resolved = self.table.resolve_annotation(
                    param.annotation, self.module
                )
                if resolved is not None:
                    self.env[param.arg] = resolved

    def _bind_assign(self, target: ast.expr, value: ast.expr) -> None:
        if not isinstance(target, ast.Name):
            return
        inferred = self._infer_type(value)
        if inferred is not None:
            self.env[target.id] = inferred

    # -- type inference ------------------------------------------------

    def _infer_type(self, expr: ast.expr) -> Optional[str]:
        """The project class an expression evaluates to, if known."""
        if isinstance(expr, ast.Name):
            return self.env.get(expr.id)
        if isinstance(expr, ast.Attribute):
            receiver = self._infer_type(expr.value)
            if receiver is not None:
                return self.table.attr_class(receiver, expr.attr)
            # Module attribute: ``spec_mod.SimulationSpec`` — handled
            # at call resolution via the import resolver instead.
            return None
        if isinstance(expr, ast.Call):
            resolution = self._resolve_call(expr)
            return resolution.result_class
        if isinstance(expr, ast.Await):
            return self._infer_type(expr.value)
        return None

    # -- call resolution -----------------------------------------------

    def _resolve_call(self, call: ast.Call) -> CallResolution:
        cache = self.graph.resolutions[self.info.qualname]
        cached = cache.get(id(call))
        if cached is not None and cached.targets:
            return cached
        resolution = self._resolve_callee(call.func)
        cache[id(call)] = resolution
        for target in resolution.targets:
            self._add_edge(target)
        self._note_gate(resolution)
        self._note_submit(call, resolution)
        return resolution

    def _resolve_callee(self, func: ast.expr) -> CallResolution:
        dotted = self.table.dotted_name(func, self.module)
        if dotted is not None:
            function = self.table.resolve_function(dotted)
            if function is not None:
                return CallResolution(
                    targets=(function.qualname,),
                    result_class=self._return_class(function),
                )
            cls = self.table.resolve_class(dotted)
            if cls is not None:
                return self._constructor_resolution(cls)
            return CallResolution(external=dotted)
        if isinstance(func, ast.Attribute):
            return self._resolve_method(func)
        if isinstance(func, ast.Name):
            # A local bound to a class object would need value
            # tracking we don't do; leave unknown.
            return CallResolution()
        return CallResolution()

    def _resolve_method(self, func: ast.Attribute) -> CallResolution:
        receiver_class = self._infer_type(func.value)
        if receiver_class is not None:
            method = self.table.method_in_class(receiver_class, func.attr)
            if method is not None:
                return CallResolution(
                    targets=(method.qualname,),
                    result_class=self._return_class(method),
                )
            # Typed receiver without such a method: constructor-typed
            # attribute calling an inherited/external method — treat
            # as unknown rather than fanning out by name.
            return CallResolution()
        if func.attr in _CHA_STOPLIST:
            return CallResolution()
        candidates = tuple(
            qualname
            for qualname in self.table.methods_by_name.get(func.attr, ())
            if self.table.functions[qualname].owner_class is not None
        )
        if candidates:
            return CallResolution(targets=candidates, via_cha=True)
        return CallResolution()

    def _constructor_resolution(self, cls: ClassInfo) -> CallResolution:
        init = self.table.method_in_class(cls.qualname, "__init__")
        targets = (init.qualname,) if init is not None else ()
        return CallResolution(targets=targets, result_class=cls.qualname)

    def _return_class(self, function: FunctionInfo) -> Optional[str]:
        if function.node.returns is None:
            return None
        module = self.table.modules.get(function.module)
        if module is None:
            return None
        return self.table.resolve_annotation(function.node.returns, module)

    # -- side inventories ----------------------------------------------

    def _add_edge(self, callee: str) -> None:
        caller = self.info.qualname
        self.graph.edges.setdefault(caller, set()).add(callee)
        self.graph.reverse.setdefault(callee, set()).add(caller)

    def _note_gate(self, resolution: CallResolution) -> None:
        if self.info.module == _GATE_MODULE:
            return
        gate_hit = resolution.external in _GATE_NAMES or any(
            target in _GATE_NAMES for target in resolution.targets
        )
        if gate_hit:
            self.graph.gated_functions.add(self.info.qualname)

    def _note_submit(
        self, call: ast.Call, resolution: CallResolution
    ) -> None:
        func = call.func
        if not isinstance(func, ast.Attribute) or func.attr not in (
            "submit",
            "apply_async",
        ):
            return
        if resolution.targets:
            # ``.submit`` resolved to a *project* method — that's an
            # ordinary call, not a pool boundary.
            return
        payload_node = call.args[0] if call.args else None
        payload: Optional[str] = None
        if payload_node is not None:
            dotted = self.table.dotted_name(payload_node, self.module)
            function = self.table.resolve_function(dotted)
            if function is None and isinstance(payload_node, ast.Name):
                # A function defined in the submitting scope itself
                # (``def inner(): ...; pool.submit(inner)``).
                local = f"{self.info.qualname}.{payload_node.id}"
                function = self.table.functions.get(local)
            if function is not None:
                payload = function.qualname
        self.graph.submit_sites.append(
            SubmitSite(
                caller=self.info.qualname,
                relpath=self.info.relpath,
                node=call,
                payload=payload,
                payload_node=payload_node,
            )
        )
