"""Taint-style dataflow over the project call graph.

Three taint kinds flow through the lattice:

* ``rng`` — a live ``numpy.random.Generator`` (or legacy
  ``RandomState``) stream.  *Drawn values are not tainted*: the
  exchange contract ships arrays of consumed draws into shards all
  the time; it is the stateful stream whose consumption order
  matters.
* ``clock`` — wall-clock reads (``time.time``, ``datetime.now``).
* ``entropy`` — OS entropy (``os.urandom``, ``uuid.uuid4``,
  ``secrets``).

Taint enters at generator factories, clock/entropy sources, and
parameters that are RNG by name (``rng``/``generator``) or
annotation (``np.random.Generator``).  It propagates through
assignments, tuple unpacking, attribute loads, subscripts,
containers, comprehension targets, ``copy.deepcopy``/``copy.copy``,
and — conservatively — through any *unresolved* call that receives a
tainted argument.  Resolved project calls return untainted values
unless their return annotation names a ``Generator``; this is the
one deliberate hole, and it is closed in practice by the annotation
rule plus class-attribute taint (a method storing ``self.rng = rng``
taints that attribute for every method of the class, found by
iterating the per-class store/load rounds to a fixpoint).

The per-function summaries feed a worklist fixpoint computing
``uses_rng``: the set of functions that consume a generator directly
or pass one into a consumer, with a witness chain for diagnostics.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.flow.callgraph import CallGraph, CallResolution
from repro.analysis.flow.symbols import FunctionInfo, ModuleInfo, SymbolTable

RNG = "rng"
CLOCK = "clock"
ENTROPY = "entropy"

#: Join precedence: a value that is possibly-RNG is the worst case.
_KIND_RANK = {RNG: 3, ENTROPY: 2, CLOCK: 1}

_RNG_FACTORIES = {
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.RandomState",
    "numpy.random.PCG64",
    "numpy.random.Philox",
}
_CLOCK_SOURCES = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}
_ENTROPY_SOURCES = {
    "os.urandom",
    "os.getrandom",
    "uuid.uuid4",
    "uuid.uuid1",
    "secrets.token_bytes",
    "secrets.token_hex",
    "secrets.token_urlsafe",
    "secrets.randbits",
    "secrets.randbelow",
    "random.SystemRandom",
}
#: Calls that return their (first) argument's taint unchanged.
_PASSTHROUGH = {"copy.deepcopy", "copy.copy"}
#: Builtins that wrap a container without consuming its elements.
_PASSTHROUGH_BUILTINS = {
    "list",
    "tuple",
    "sorted",
    "reversed",
    "iter",
    "next",
    "enumerate",
    "zip",
}
_RNG_PARAM_NAMES = {"rng", "generator", "bit_generator"}
#: Generator methods whose *result* is again a live stream.
_STREAM_RESULTS = {"spawn"}

#: Iteration sources with data-dependent order (RP102 regions).
_UNORDERED_CALLS = {
    "os.listdir": "os.listdir()",
    "os.scandir": "os.scandir()",
    "glob.glob": "glob.glob()",
    "glob.iglob": "glob.iglob()",
}
_UNORDERED_METHOD_NAMES = {
    "iterdir": ".iterdir()",
    "glob": ".glob()",
    "rglob": ".rglob()",
}


def _annotation_mentions_generator(annotation: Optional[ast.expr]) -> bool:
    if annotation is None:
        return False
    try:
        text = ast.unparse(annotation)
    except Exception:  # pragma: no cover - unparse is total on parsed ASTs
        return False
    return "Generator" in text or "RandomState" in text


def _join(*kinds: Optional[str]) -> Optional[str]:
    best: Optional[str] = None
    for kind in kinds:
        if kind is None:
            continue
        if best is None or _KIND_RANK[kind] > _KIND_RANK[best]:
            best = kind
    return best


@dataclass(frozen=True)
class ConsumptionSite:
    """One direct draw from a tainted stream/clock/entropy source."""

    line: int
    col: int
    kind: str
    detail: str
    #: Innermost-to-outermost RP102 region tags active at the site
    #: (``"except block"``, ``"iteration over os.listdir()"`` ...).
    regions: tuple[str, ...]


@dataclass(frozen=True)
class TaintedCallSite:
    """One call that passes a tainted value onward."""

    line: int
    col: int
    #: Resolved project callees (empty for external/unknown).
    targets: tuple[str, ...]
    external: Optional[str]
    via_cha: bool
    #: Worst taint kind among the tainted arguments.
    kind: str
    detail: str
    regions: tuple[str, ...]


@dataclass
class FunctionTaint:
    """The per-function summary the fixpoint and checkers consume."""

    qualname: str
    relpath: str
    sites: list[ConsumptionSite] = field(default_factory=list)
    call_sites: list[TaintedCallSite] = field(default_factory=list)
    #: ``self.attr = <tainted>`` stores: attr name → kind.
    attr_stores: dict[str, str] = field(default_factory=dict)
    #: True when a parameter arrives already tainted as RNG.
    rng_params: tuple[str, ...] = ()


@dataclass
class TaintIndex:
    """Project-wide taint results."""

    functions: dict[str, FunctionTaint]
    #: Functions that consume a generator, directly or transitively
    #: through a tainted argument they pass on.
    uses_rng: set[str]
    #: Function → one-line witness of *why* it is in ``uses_rng``.
    witness: dict[str, str]
    #: (class qualname, attr) → kind for tainted instance attributes.
    class_attr_taint: dict[tuple[str, str], str]


def analyze_taint(table: SymbolTable, graph: CallGraph) -> TaintIndex:
    """Run per-function analysis + fixpoints over the whole project."""
    class_attr_taint: dict[tuple[str, str], str] = {}
    # Annotation-declared generator attributes taint immediately.
    for cls in table.classes.values():
        for attr, annotation in cls.attr_annotations.items():
            if _annotation_mentions_generator(annotation):
                class_attr_taint[(cls.qualname, attr)] = RNG

    functions: dict[str, FunctionTaint] = {}
    # Store→load rounds: a method storing ``self.rng = rng`` taints
    # the attribute for sibling methods analyzed in the next round.
    # Each round can only add (class, attr) pairs, so this converges;
    # four rounds covers store chains deeper than any sane code.
    for _ in range(4):
        functions = {}
        before = len(class_attr_taint)
        for info in table.functions.values():
            summary = _analyze_function(info, table, graph, class_attr_taint)
            functions[info.qualname] = summary
            if info.owner_class is not None:
                for attr, kind in summary.attr_stores.items():
                    key = (info.owner_class, attr)
                    existing = class_attr_taint.get(key)
                    class_attr_taint[key] = _join(existing, kind) or kind
        if len(class_attr_taint) == before:
            break

    uses_rng: set[str] = set()
    witness: dict[str, str] = {}
    for qualname, summary in functions.items():
        for site in summary.sites:
            if site.kind == RNG:
                uses_rng.add(qualname)
                witness.setdefault(
                    qualname, f"{site.detail} at line {site.line}"
                )
                break
    # Worklist: F joins when it passes an RNG value into a consumer.
    changed = True
    while changed:
        changed = False
        for qualname, summary in functions.items():
            if qualname in uses_rng:
                continue
            for call in summary.call_sites:
                if call.kind != RNG:
                    continue
                consumer = next(
                    (t for t in call.targets if t in uses_rng), None
                )
                if consumer is not None:
                    uses_rng.add(qualname)
                    witness[qualname] = (
                        f"passes a generator to {consumer} at line "
                        f"{call.line} ({witness.get(consumer, 'consumes rng')})"
                    )
                    changed = True
                    break
    return TaintIndex(
        functions=functions,
        uses_rng=uses_rng,
        witness=witness,
        class_attr_taint=class_attr_taint,
    )


def _analyze_function(
    info: FunctionInfo,
    table: SymbolTable,
    graph: CallGraph,
    class_attr_taint: dict[tuple[str, str], str],
) -> FunctionTaint:
    module = table.modules[info.module]
    walker = _TaintWalker(info, module, table, graph, class_attr_taint)
    return walker.run()


class _TaintWalker:
    """One function's statement walk with a region stack."""

    def __init__(
        self,
        info: FunctionInfo,
        module: ModuleInfo,
        table: SymbolTable,
        graph: CallGraph,
        class_attr_taint: dict[tuple[str, str], str],
    ):
        self.info = info
        self.module = module
        self.table = table
        self.graph = graph
        self.class_attr_taint = class_attr_taint
        self.taint: dict[str, str] = {}
        self.regions: list[str] = []
        self.summary = FunctionTaint(
            qualname=info.qualname, relpath=info.relpath
        )
        self._seen_sites: set[tuple[int, int, str]] = set()
        self._seen_calls: set[tuple[int, int]] = set()
        self.self_name: Optional[str] = None

    # -- entry ---------------------------------------------------------

    def run(self) -> FunctionTaint:
        self._seed_params()
        # Two passes: a loop body may consume a stream bound later in
        # the same loop's first textual iteration.
        for _ in range(2):
            self._walk_body(self.info.node.body)
        return self.summary

    def _seed_params(self) -> None:
        args = self.info.node.args
        params = [*args.posonlyargs, *args.args, *args.kwonlyargs]
        if (
            self.info.owner_class is not None
            and not self.info.is_staticmethod
            and params
        ):
            self.self_name = params[0].arg
            params = params[1:]
        rng_params = []
        for param in params:
            if param.arg in _RNG_PARAM_NAMES or _annotation_mentions_generator(
                param.annotation
            ):
                self.taint[param.arg] = RNG
                rng_params.append(param.arg)
        self.summary.rng_params = tuple(rng_params)

    # -- statements ----------------------------------------------------

    def _walk_body(self, body: list[ast.stmt]) -> None:
        for statement in body:
            self._walk_stmt(statement)

    def _walk_stmt(self, statement: ast.stmt) -> None:
        if isinstance(statement, ast.Assign):
            kind = self._eval(statement.value)
            for target in statement.targets:
                self._bind(target, kind, statement.value)
        elif isinstance(statement, ast.AnnAssign):
            kind = (
                self._eval(statement.value)
                if statement.value is not None
                else None
            )
            if _annotation_mentions_generator(statement.annotation):
                kind = _join(kind, RNG)
            self._bind(statement.target, kind, statement.value)
        elif isinstance(statement, ast.AugAssign):
            self._eval(statement.value)
        elif isinstance(statement, (ast.Expr, ast.Return)):
            value = statement.value
            if value is not None:
                self._eval(value)
        elif isinstance(statement, ast.For):
            self._walk_for(statement)
        elif isinstance(statement, ast.AsyncFor):
            kind = self._eval(statement.iter)
            self._bind(statement.target, kind, None)
            self._walk_body(statement.body)
            self._walk_body(statement.orelse)
        elif isinstance(statement, ast.While):
            self._eval(statement.test)
            self._walk_body(statement.body)
            self._walk_body(statement.orelse)
        elif isinstance(statement, ast.If):
            self._eval(statement.test)
            self._walk_body(statement.body)
            self._walk_body(statement.orelse)
        elif isinstance(statement, ast.Try):
            self._walk_body(statement.body)
            for handler in statement.handlers:
                self.regions.append("except block")
                self._walk_body(handler.body)
                self.regions.pop()
            self._walk_body(statement.orelse)
            if statement.finalbody:
                self.regions.append("finally block")
                self._walk_body(statement.finalbody)
                self.regions.pop()
        elif isinstance(statement, (ast.With, ast.AsyncWith)):
            for item in statement.items:
                kind = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, kind, None)
            self._walk_body(statement.body)
        elif isinstance(
            statement, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            # Closure: the nested body sees the enclosing bindings.
            self._walk_body(statement.body)
        elif isinstance(statement, ast.ClassDef):
            pass
        elif isinstance(statement, (ast.Assert, ast.Raise, ast.Delete)):
            for child in ast.iter_child_nodes(statement):
                if isinstance(child, ast.expr):
                    self._eval(child)
        elif isinstance(statement, ast.Match):
            self._eval(statement.subject)
            for case in statement.cases:
                self._walk_body(case.body)

    def _walk_for(self, statement: ast.For) -> None:
        iter_kind = self._eval(statement.iter)
        self._bind(statement.target, iter_kind, None)
        tag = self._unordered_tag(statement.iter)
        if tag is not None:
            self.regions.append(tag)
        self._walk_body(statement.body)
        if tag is not None:
            self.regions.pop()
        self._walk_body(statement.orelse)

    def _unordered_tag(self, iter_expr: ast.expr) -> Optional[str]:
        """A region tag when iteration order is data-dependent."""
        if isinstance(iter_expr, (ast.Set, ast.SetComp)):
            return "iteration over a set"
        if isinstance(iter_expr, ast.Call):
            func = iter_expr.func
            dotted = self.table.dotted_name(func, self.module)
            if dotted is None and isinstance(func, ast.Name):
                if func.id in ("set", "frozenset"):
                    return "iteration over a set"
                if func.id == "sorted":
                    return None
            if dotted == "sorted":
                return None
            if dotted in _UNORDERED_CALLS:
                return f"iteration over {_UNORDERED_CALLS[dotted]}"
            if (
                dotted is None
                and isinstance(func, ast.Attribute)
                and func.attr in _UNORDERED_METHOD_NAMES
            ):
                return (
                    "iteration over "
                    f"{_UNORDERED_METHOD_NAMES[func.attr]} results"
                )
        return None

    # -- binding -------------------------------------------------------

    def _bind(
        self,
        target: ast.expr,
        kind: Optional[str],
        value: Optional[ast.expr],
    ) -> None:
        if isinstance(target, ast.Name):
            if kind is not None:
                self.taint[target.id] = kind
            else:
                self.taint.pop(target.id, None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                inner = element.value if isinstance(
                    element, ast.Starred
                ) else element
                self._bind(inner, kind, None)
        elif isinstance(target, ast.Attribute):
            if (
                kind is not None
                and self.self_name is not None
                and isinstance(target.value, ast.Name)
                and target.value.id == self.self_name
            ):
                existing = self.summary.attr_stores.get(target.attr)
                self.summary.attr_stores[target.attr] = (
                    _join(existing, kind) or kind
                )
        elif isinstance(target, ast.Subscript):
            self._eval(target.value)

    # -- expressions ---------------------------------------------------

    def _eval(self, expr: ast.expr) -> Optional[str]:
        """The taint kind an expression evaluates to, recording sites."""
        if isinstance(expr, ast.Name):
            return self.taint.get(expr.id)
        if isinstance(expr, ast.Attribute):
            return self._eval_attribute(expr)
        if isinstance(expr, ast.Call):
            return self._eval_call(expr)
        if isinstance(expr, ast.Await):
            return self._eval(expr.value)
        if isinstance(expr, ast.Subscript):
            base = self._eval(expr.value)
            self._eval(expr.slice)
            return base
        if isinstance(expr, ast.Starred):
            return self._eval(expr.value)
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            return _join(*(self._eval(element) for element in expr.elts))
        if isinstance(expr, ast.Dict):
            kinds = [
                self._eval(value) for value in expr.values if value is not None
            ]
            for key in expr.keys:
                if key is not None:
                    self._eval(key)
            return _join(*kinds)
        if isinstance(expr, ast.IfExp):
            self._eval(expr.test)
            return _join(self._eval(expr.body), self._eval(expr.orelse))
        if isinstance(expr, ast.BoolOp):
            return _join(*(self._eval(value) for value in expr.values))
        if isinstance(expr, ast.NamedExpr):
            kind = self._eval(expr.value)
            self._bind(expr.target, kind, expr.value)
            return kind
        if isinstance(
            expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
        ):
            return self._eval_comprehension(expr)
        if isinstance(expr, (ast.BinOp, ast.UnaryOp, ast.Compare)):
            for child in ast.iter_child_nodes(expr):
                if isinstance(child, ast.expr):
                    self._eval(child)
            return None
        if isinstance(expr, ast.Lambda):
            return None
        if isinstance(expr, (ast.JoinedStr, ast.FormattedValue)):
            for child in ast.iter_child_nodes(expr):
                if isinstance(child, ast.expr):
                    self._eval(child)
            return None
        return None

    def _eval_attribute(self, expr: ast.Attribute) -> Optional[str]:
        base = self._eval(expr.value)
        if base is not None:
            # Attribute loads on tainted values stay tainted
            # (``pair.rng``, ``holder.stream``).
            return base
        if (
            self.self_name is not None
            and isinstance(expr.value, ast.Name)
            and expr.value.id == self.self_name
            and self.info.owner_class is not None
        ):
            return self._class_attr_kind(self.info.owner_class, expr.attr)
        return None

    def _class_attr_kind(
        self, class_qualname: str, attr: str
    ) -> Optional[str]:
        seen: set[str] = set()
        queue = [class_qualname]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            kind = self.class_attr_taint.get((current, attr))
            if kind is not None:
                return kind
            cls = self.table.classes.get(current)
            if cls is not None:
                queue.extend(cls.bases)
        return None

    def _eval_comprehension(self, expr: ast.expr) -> Optional[str]:
        assert isinstance(
            expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
        )
        saved: dict[str, Optional[str]] = {}
        for comp in expr.generators:
            iter_kind = self._eval(comp.iter)
            for name in _target_names(comp.target):
                saved.setdefault(name, self.taint.get(name))
                if iter_kind is not None:
                    self.taint[name] = iter_kind
                else:
                    self.taint.pop(name, None)
            for condition in comp.ifs:
                self._eval(condition)
        if isinstance(expr, ast.DictComp):
            self._eval(expr.key)
            result = self._eval(expr.value)
        else:
            result = self._eval(expr.elt)
        for name, kind in saved.items():
            if kind is None:
                self.taint.pop(name, None)
            else:
                self.taint[name] = kind
        return result

    def _eval_call(self, call: ast.Call) -> Optional[str]:
        resolution = self.graph.resolution_for(self.info.qualname, call)
        if resolution is None:
            resolution = CallResolution()
        func = call.func
        result: Optional[str] = None
        consumed_receiver = False

        if isinstance(func, ast.Attribute):
            receiver_kind = self._eval(func.value)
            if receiver_kind == RNG:
                consumed_receiver = True
                self._record_site(
                    call,
                    RNG,
                    f"draws from a tainted generator via .{func.attr}()",
                )
                if func.attr in _STREAM_RESULTS:
                    result = RNG
        elif not isinstance(func, ast.Name):
            self._eval(func)

        external = resolution.external
        if external is None and not resolution.targets:
            external = self.table.dotted_name(func, self.module)

        if external in _RNG_FACTORIES:
            result = RNG
        elif external in _CLOCK_SOURCES:
            self._record_site(call, CLOCK, f"reads wall clock {external}()")
            result = CLOCK
        elif external in _ENTROPY_SOURCES:
            self._record_site(
                call, ENTROPY, f"reads OS entropy via {external}()"
            )
            result = ENTROPY

        arg_kinds: list[Optional[str]] = []
        for arg in call.args:
            target = arg.value if isinstance(arg, ast.Starred) else arg
            arg_kinds.append(self._eval(target))
        for keyword in call.keywords:
            arg_kinds.append(self._eval(keyword.value))
        passed = _join(*arg_kinds)

        if external in _PASSTHROUGH:
            return _join(result, arg_kinds[0] if arg_kinds else None)
        if (
            isinstance(func, ast.Name)
            and func.id in _PASSTHROUGH_BUILTINS
            and not resolution.targets
        ):
            return _join(result, passed)

        if passed is not None:
            self._record_call(call, resolution, external, passed)
            if not resolution.targets and external not in _RNG_FACTORIES:
                # Unknown callee holding a tainted argument: assume
                # the result is tainted too.
                result = _join(result, passed)
        if resolution.targets and result is None and not consumed_receiver:
            # Project call: result is clean unless annotated as a
            # generator source.
            for target in resolution.targets:
                target_info = self.table.functions.get(target)
                if target_info is not None and _annotation_mentions_generator(
                    target_info.node.returns
                ):
                    result = RNG
                    break
        return result

    # -- recording -----------------------------------------------------

    def _record_site(self, node: ast.expr, kind: str, detail: str) -> None:
        key = (node.lineno, node.col_offset, kind)
        if key in self._seen_sites:
            return
        self._seen_sites.add(key)
        self.summary.sites.append(
            ConsumptionSite(
                line=node.lineno,
                col=node.col_offset,
                kind=kind,
                detail=detail,
                regions=tuple(reversed(self.regions)),
            )
        )

    def _record_call(
        self,
        call: ast.Call,
        resolution: CallResolution,
        external: Optional[str],
        kind: str,
    ) -> None:
        key = (call.lineno, call.col_offset)
        if key in self._seen_calls:
            return
        self._seen_calls.add(key)
        try:
            spelled = ast.unparse(call.func)
        except Exception:  # pragma: no cover
            spelled = "<call>"
        self.summary.call_sites.append(
            TaintedCallSite(
                line=call.lineno,
                col=call.col_offset,
                targets=resolution.targets,
                external=external,
                via_cha=resolution.via_cha,
                kind=kind,
                detail=f"passes a tainted value into {spelled}(...)",
                regions=tuple(reversed(self.regions)),
            )
        )


def _target_names(target: ast.expr) -> list[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        names: list[str] = []
        for element in target.elts:
            inner = element.value if isinstance(element, ast.Starred) else element
            names.extend(_target_names(inner))
        return names
    return []
