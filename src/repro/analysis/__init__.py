"""Hotspot quantification and per-case-study forensics.

``hotspots``
    Metrics that quantify deviation from uniform propagation over
    binned observations (Gini, entropy, chi-square, peak ratios).
``blaster_seeds``
    The seed-to-target mapping for Blaster and the hot-/24 → boot-time
    inversion of the paper's Figure 1 analysis.
``slammer_cycles``
    Analytic per-/24 and per-block Slammer observation predictions
    from the LCG cycle structure (Figures 2/3).
``filtering_study``
    The Table 2 enterprise-vs-broadband leaked-infection comparison.
``lint``
    The determinism & reproducibility static-analysis suite behind
    ``hotspots lint`` (error codes RP001-RP006) — not imported here
    to keep paper-analysis imports light; see
    :mod:`repro.analysis.lint`.
"""

from repro.analysis.blaster_seeds import BlasterSweepModel, SeedTargetMap
from repro.analysis.filtering_study import (
    FilteringStudyResult,
    blaster_leak_counts,
    run_filtering_study,
)
from repro.analysis.hotspots import HotspotReport, hotspot_report
from repro.analysis.slammer_cycles import (
    block_distinct_cycle_sum,
    expected_unique_sources_per_slash24,
    slash24_cycle_lengths,
)
from repro.analysis.coverage import scan_coverage_curve, uniform_coverage_expectation
from repro.analysis.visibility import placement_variability, size_visibility

__all__ = [
    "BlasterSweepModel",
    "FilteringStudyResult",
    "HotspotReport",
    "SeedTargetMap",
    "blaster_leak_counts",
    "block_distinct_cycle_sum",
    "expected_unique_sources_per_slash24",
    "hotspot_report",
    "placement_variability",
    "run_filtering_study",
    "scan_coverage_curve",
    "size_visibility",
    "slash24_cycle_lengths",
    "uniform_coverage_expectation",
]
