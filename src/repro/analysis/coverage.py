"""Scanning coverage and duplication.

Staniford et al.'s scanning-strategy taxonomy (which the paper folds
into its algorithmic factors) is ultimately about *coverage
efficiency*: how fast a population of scanners touches new addresses
and how much work it wastes re-probing old ones.  These helpers
measure both for any worm model:

* uniform scanning follows the coupon-collector curve
  ``1 - exp(-probes / size)`` and wastes work at the same rate;
* permutation scanning is (near) duplicate-free until wraparound;
* local preference trades global coverage for local density — which
  is exactly a hotspot, viewed from the coverage side.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.net.cidr import CIDRBlock
from repro.worms.base import WormModel


@dataclass(frozen=True)
class CoverageCurve:
    """Coverage and duplication as probes accumulate."""

    probes: np.ndarray          # cumulative probes after each step
    covered_fraction: np.ndarray
    duplicate_fraction: np.ndarray  # duplicates / probes, cumulative

    def final_coverage(self) -> float:
        """Fraction of the region touched by the end."""
        return float(self.covered_fraction[-1]) if len(self.covered_fraction) else 0.0

    def final_duplicate_rate(self) -> float:
        """Fraction of all probes that were re-probes."""
        return (
            float(self.duplicate_fraction[-1])
            if len(self.duplicate_fraction)
            else 0.0
        )


def uniform_coverage_expectation(probes: np.ndarray, size: int) -> np.ndarray:
    """Analytic coupon-collector coverage for uniform scanning."""
    probes = np.asarray(probes, dtype=float)
    if size <= 0:
        raise ValueError("size must be positive")
    return 1.0 - np.exp(-probes / size)


def scan_coverage_curve(
    worm: WormModel,
    source_addrs: np.ndarray,
    region: CIDRBlock,
    steps: int,
    probes_per_step: int,
    rng: np.random.Generator,
) -> CoverageCurve:
    """Measure a worm population's coverage of a region over time.

    Probes landing outside ``region`` count toward the probe budget
    but not toward coverage — local preference pays for its density
    by burning budget elsewhere.
    """
    if region.prefix_len < 12:
        raise ValueError("refusing to track coverage of a region above /12")
    state = worm.new_state()
    worm.add_hosts(state, source_addrs, rng)
    seen = np.zeros(region.size, dtype=bool)
    cumulative_probes = []
    covered = []
    duplicates = []
    total_probes = 0
    duplicate_probes = 0
    for _ in range(steps):
        targets = worm.generate(state, probes_per_step, rng).ravel()
        total_probes += len(targets)
        inside = region.contains_array(targets)
        offsets = (targets[inside] - np.uint32(region.first)).astype(np.int64)
        already = seen[offsets]
        duplicate_probes += int(already.sum())
        seen[offsets] = True
        cumulative_probes.append(total_probes)
        covered.append(seen.mean())
        duplicates.append(duplicate_probes / max(total_probes, 1))
    return CoverageCurve(
        probes=np.array(cumulative_probes, dtype=np.int64),
        covered_fraction=np.array(covered),
        duplicate_fraction=np.array(duplicates),
    )
