"""Slammer cycle forensics — the Figures 2/3 analysis.

Key fact (see :mod:`repro.worms.slammer`): the worm stores its LCG
state little-endian into the destination address, so a destination
/24 pins the state's low 24 bits.  All 256 addresses of a /24 then
share ``v2(state - c)`` — they lie on a *single* cycle per ``b``
value, whose length the affine theory gives in O(1).

From that, the expected number of unique Slammer sources a /24
observes is

    E[sources] = Σ_b  N_b · min(256·T, L_b) / 2^32

where ``N_b`` hosts run DLL version ``b``, each emitting ``T`` probes
during the observation window, and ``L_b`` is the /24's cycle length
under ``b``: a host observes the /24 iff its seed lands on that cycle
(probability ``L_b / 2^32``) and its ``T``-probe walk reaches one of
the /24's 256 states on the cycle (probability ``≈ min(256·T/L_b, 1)``
for states spread evenly around the cycle).

Blocks whose high octets select short cycles observe systematically
fewer sources — the H-block deficit of Figure 2.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.net.cidr import CIDRBlock
from repro.prng.cycles import cycle_structure
from repro.worms.slammer import SLAMMER_A, SLAMMER_B_VALUES, address_to_state


def slash24_cycle_lengths(
    prefixes: np.ndarray, b: int, a: int = SLAMMER_A
) -> np.ndarray:
    """Cycle length of each destination /24 under increment ``b``.

    Uses the first address of each /24 as the representative; the
    whole /24 shares the length except for the at-most-one /24 whose
    low-bit offset from the fixed point is zero (where lengths vary —
    the representative is still a valid member).
    """
    prefixes = np.asarray(prefixes, dtype=np.uint32)
    structure = cycle_structure(a, b, bits=32)
    first_addrs = (prefixes.astype(np.uint32) << np.uint32(8)).astype(np.uint32)
    states = address_to_state(first_addrs)
    return structure.cycle_lengths_of_states(states)


def expected_unique_sources_per_slash24(
    prefixes: np.ndarray,
    num_hosts: int,
    probes_per_host: int,
    b_values: Sequence[int] = SLAMMER_B_VALUES,
    a: int = SLAMMER_A,
) -> np.ndarray:
    """Expected unique sources per destination /24 (see module docs).

    ``num_hosts`` is split evenly across the ``b_values`` (DLL
    versions); increase ``probes_per_host`` toward the cycle lengths
    to model a long observation window.
    """
    if num_hosts <= 0 or probes_per_host <= 0:
        raise ValueError("num_hosts and probes_per_host must be positive")
    prefixes = np.asarray(prefixes, dtype=np.uint32)
    expected = np.zeros(len(prefixes), dtype=float)
    hosts_per_version = num_hosts / len(b_values)
    for b in b_values:
        lengths = slash24_cycle_lengths(prefixes, b, a)
        coverage = np.minimum(256.0 * probes_per_host, lengths.astype(float))
        expected += hosts_per_version * coverage / 2.0**32
    return expected


def block_distinct_cycle_sum(
    block: CIDRBlock, b: int, a: int = SLAMMER_A
) -> float:
    """Sum of the lengths of distinct cycles traversing a block.

    The paper's block-level prediction metric ("computing the total
    length of all cycles that traverse each block"), normalized by
    2^32 so a block traversed by every long cycle scores near 1.
    """
    structure = cycle_structure(a, b, bits=32)
    prefixes = block.slash24_prefixes()
    first_addrs = (prefixes.astype(np.uint32) << np.uint32(8)).astype(np.uint32)
    states = address_to_state(first_addrs)
    seen: set[tuple] = set()
    total = 0
    for state in states:
        cycle_id = structure.cycle_id_of_state(int(state))
        if cycle_id in seen:
            continue
        seen.add(cycle_id)
        total += structure.cycle_length_of_state(int(state))
    return total / 2.0**32


def slash16_observation_scores(
    probes_per_host: int,
    b_values: Sequence[int] = SLAMMER_B_VALUES,
    a: int = SLAMMER_A,
) -> np.ndarray:
    """Expected-observation score for every possible /16 position.

    Index ``low16`` is the LCG state's pinned low 16 bits — i.e. the
    candidate block's first two address octets ``A = low16 & 0xFF``,
    ``B = low16 >> 8``.  The score is the per-host probability weight
    ``mean_b min(256·T, L_b) / 2^32``: multiply by the infected host
    count to get the expected unique sources per /24 at that /16.

    Because the three fixed points' low bits differ in their lowest
    bit, no position is cold under every DLL version — the achievable
    hot/cold contrast is a factor of ~2.5, which is exactly the
    regime of the paper's D/H/I imbalance.
    """
    low16 = np.arange(65_536, dtype=np.int64)
    score = np.zeros(65_536, dtype=float)
    for b in b_values:
        structure = cycle_structure(a, b, bits=32)
        c_low = structure.fixed_point & 0xFFFF
        diff = (low16 - c_low) % 65_536
        nonzero = diff != 0
        valuation = np.zeros(65_536, dtype=np.int64)
        valuation[nonzero] = np.log2(
            (diff[nonzero] & -diff[nonzero]).astype(float)
        ).astype(np.int64)
        # diff == 0 pins v2 >= 16: those /16s hold a mix of shorter
        # cycles; score them with the v=16 length as a bound.
        valuation[~nonzero] = 16
        lengths = np.ldexp(1.0, 30 - valuation)
        score += np.minimum(256.0 * probes_per_host, lengths) / 2.0**32
    return score / len(b_values)


def find_block_with_cycle_valuation(
    target_v2: int,
    prefix_len: int,
    b_values: Sequence[int] = SLAMMER_B_VALUES,
    a: int = SLAMMER_A,
    search_limit: int = 65_536,
) -> CIDRBlock:
    """Find a block whose /24s share a given cycle-length class.

    Searches (first, second) octet pairs for a block position where,
    under *every* ``b`` version, ``v2(state - c)`` of the pinned low
    bits equals ``target_v2`` — i.e. all its /24s sit on cycles of
    length ``2^(30 - target_v2)``.  Used to place synthetic sensor
    blocks that are provably hot (``target_v2 = 0``) or cold (larger
    valuations), standing in for the paper's confidential block
    positions.
    """
    if not 16 <= prefix_len <= 24:
        raise ValueError(
            "blocks share a valuation only when their first two octets "
            "are fixed: use 16 <= prefix_len <= 24"
        )
    structures = [cycle_structure(a, b, bits=32) for b in b_values]
    for low16 in range(search_limit):
        ok = True
        for structure in structures:
            c_low16 = structure.fixed_point & 0xFFFF
            diff = (low16 - c_low16) % 65_536
            if diff == 0:
                ok = False
                break
            valuation = (diff & -diff).bit_length() - 1
            if valuation != target_v2:
                ok = False
                break
        if ok:
            # The state's low 16 bits are the first two address octets
            # (little-endian store): bits 0-7 -> octet A, 8-15 -> B.
            octet_a = low16 & 0xFF
            octet_b = (low16 >> 8) & 0xFF
            network = (octet_a << 24) | (octet_b << 16)
            return CIDRBlock.containing(network, prefix_len)
    raise ValueError(f"no block found with shared valuation {target_v2}")
