"""Darknet size and placement visibility.

Background for the paper's motivation: Cooke et al. observed that
"distinct darknet monitors observed orders-of-magnitude different
amounts of traffic and different numbers of unique source IPs" even
after accounting for size.  These helpers quantify both axes for any
worm model:

* :func:`size_visibility` — unique sources observed as a function of
  darknet size (/8 down to /24), for a fixed position;
* :func:`placement_variability` — spread of unique-source counts
  across same-size darknets at different positions.

For a uniform worm, visibility scales smoothly with size and is
position-independent; hotspot worms break both properties.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.net.cidr import CIDRBlock
from repro.worms.base import WormModel


def _unique_sources_per_block(
    worm: WormModel,
    source_addrs: np.ndarray,
    probes_per_host: int,
    blocks: Sequence[CIDRBlock],
    rng: np.random.Generator,
    chunk: int = 2_000,
) -> np.ndarray:
    """Unique sources observed at each block for one worm population."""
    state = worm.new_state()
    worm.add_hosts(state, source_addrs, rng)
    seen: list[set[int]] = [set() for _ in blocks]
    remaining = probes_per_host
    while remaining > 0:
        step = min(remaining, max(1, chunk))
        remaining -= step
        targets = worm.generate(state, step, rng)
        sources = np.broadcast_to(state.addresses()[:, None], targets.shape)
        flat_targets = targets.ravel()
        flat_sources = sources.ravel()
        for index, block in enumerate(blocks):
            inside = block.contains_array(flat_targets)
            if inside.any():
                seen[index].update(np.unique(flat_sources[inside]).tolist())
    return np.array([len(s) for s in seen], dtype=np.int64)


@dataclass(frozen=True)
class SizeVisibility:
    """Unique sources per darknet size."""

    prefix_lens: tuple[int, ...]
    unique_sources: np.ndarray

    def scaling_exponent(self) -> float:
        """Log-log slope of unique sources vs block size.

        Uniform scanning gives ≈ 1 in the unsaturated regime (double
        the addresses, double the observed sources); hotspot worms
        deviate.
        """
        sizes = np.array([2.0 ** (32 - p) for p in self.prefix_lens])
        counts = self.unique_sources.astype(float)
        valid = counts > 0
        if valid.sum() < 2:
            return float("nan")
        slope, _ = np.polyfit(np.log(sizes[valid]), np.log(counts[valid]), 1)
        return float(slope)


def size_visibility(
    worm: WormModel,
    source_addrs: np.ndarray,
    probes_per_host: int,
    base_network: int,
    prefix_lens: Sequence[int],
    rng: np.random.Generator,
) -> SizeVisibility:
    """Unique sources observed by nested darknets of varying size."""
    blocks = [
        CIDRBlock.containing(base_network, prefix_len)
        for prefix_len in prefix_lens
    ]
    counts = _unique_sources_per_block(
        worm, source_addrs, probes_per_host, blocks, rng
    )
    return SizeVisibility(
        prefix_lens=tuple(prefix_lens), unique_sources=counts
    )


@dataclass(frozen=True)
class PlacementVariability:
    """Unique sources across same-size darknets at many positions."""

    prefix_len: int
    unique_sources: np.ndarray

    @property
    def coefficient_of_variation(self) -> float:
        """std/mean of the per-position counts (0 = position-blind)."""
        mean = self.unique_sources.mean()
        if mean == 0:
            return 0.0
        return float(self.unique_sources.std() / mean)

    @property
    def max_to_min_ratio(self) -> float:
        """Largest over smallest non-zero count (inf if any zero)."""
        low = self.unique_sources.min()
        high = self.unique_sources.max()
        if low == 0:
            return float("inf") if high > 0 else 1.0
        return float(high / low)


def placement_variability(
    worm: WormModel,
    source_addrs: np.ndarray,
    probes_per_host: int,
    positions: Sequence[int],
    prefix_len: int,
    rng: np.random.Generator,
) -> PlacementVariability:
    """Unique sources at same-size darknets placed at each position."""
    blocks = [
        CIDRBlock.containing(position, prefix_len) for position in positions
    ]
    counts = _unique_sources_per_block(
        worm, source_addrs, probes_per_host, blocks, rng
    )
    return PlacementVariability(
        prefix_len=prefix_len, unique_sources=counts
    )
