"""Blaster seed forensics — the Figure 1 analysis.

Two tools:

* :class:`SeedTargetMap` — the deterministic map from candidate
  ``GetTickCount()`` seeds to sequential-scan start addresses, built
  "using the decompiled Blaster source code and a range of possible
  tick count values from 1000 to 10,000,000".  It answers the inverse
  query: which seeds (boot times) would make a host sweep through a
  given /24?
* :class:`BlasterSweepModel` — an exact fast-forward of Blaster's
  sequential scanning for large host populations.  A host with start
  ``s`` and total probe budget ``R`` observes address ``x`` iff
  ``x ∈ [s, s+R]``, so per-/24 unique-source counts over millions of
  hosts reduce to sorted-array window queries — no per-probe work.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.net.cidr import CIDRBlock
from repro.worms.blaster import blaster_starts_for_seeds

MILLISECONDS = 1000.0


class SeedTargetMap:
    """Seed → start-address mapping over a tick-count range.

    Only the random-start branch is invertible without knowing each
    host's own address, so local-start seeds are excluded (matching
    the paper, whose map targets the population-wide hotspots that
    only the shared random branch can produce).
    """

    def __init__(self, tick_low: int = 1_000, tick_high: int = 10_000_000):
        if tick_low >= tick_high:
            raise ValueError("tick_low must be below tick_high")
        seeds = np.arange(tick_low, tick_high, dtype=np.uint64)
        starts, is_local = blaster_starts_for_seeds(seeds)
        self.seeds = seeds[~is_local].astype(np.uint32)
        self.starts = starts[~is_local]
        order = np.argsort(self.starts, kind="stable")
        self._sorted_starts = self.starts[order]
        self._sorted_seeds = self.seeds[order]

    def seeds_for_window(self, low_addr: int, high_addr: int) -> np.ndarray:
        """Seeds whose start address falls inside ``[low, high]``."""
        lo = np.searchsorted(self._sorted_starts, np.uint32(low_addr), side="left")
        hi = np.searchsorted(self._sorted_starts, np.uint32(high_addr), side="right")
        return np.sort(self._sorted_seeds[lo:hi])

    def seeds_reaching_slash24(self, prefix: int, reach: int) -> np.ndarray:
        """Seeds that make a host sweep through the /24 ``prefix``.

        A sequential scanner reaches the /24 iff its start lies within
        ``reach`` addresses before the end of the /24.
        """
        block_end = (int(prefix) << 8) | 0xFF
        low = max(block_end - reach, 0)
        return self.seeds_for_window(low, block_end)

    def boot_times_for_slash24(self, prefix: int, reach: int) -> np.ndarray:
        """Boot times (seconds) explaining observations at a /24."""
        return self.seeds_reaching_slash24(prefix, reach) / MILLISECONDS


@dataclass(frozen=True)
class SweepResult:
    """Per-/24 unique-source counts for one monitored block."""

    block: CIDRBlock
    unique_sources: np.ndarray  # one entry per /24 in the block


class BlasterSweepModel:
    """Closed-form sequential-sweep observation model.

    Parameters
    ----------
    starts:
        Start address per infected host.
    reach:
        Scan budget per host in addresses (scan rate × active time).
        The paper-era estimate: Blaster probes a few tens of addresses
        per second, so weeks of activity sweep on the order of 10^7
        addresses.
    """

    def __init__(self, starts: np.ndarray, reach: int):
        if reach <= 0:
            raise ValueError("reach must be positive")
        self.reach = int(reach)
        self._sorted_starts = np.sort(np.asarray(starts, dtype=np.uint32))

    @property
    def num_hosts(self) -> int:
        """Number of modelled hosts."""
        return len(self._sorted_starts)

    def sources_observing(self, addr: int) -> int:
        """How many hosts sweep across one address.

        Counts hosts with ``start ∈ [addr - reach, addr]``; sweeps are
        treated as non-wrapping (starts near the top of the space stop
        at 2^32, matching a bounded observation window).
        """
        high = np.uint32(addr)
        low = np.uint32(max(int(addr) - self.reach, 0))
        lo = np.searchsorted(self._sorted_starts, low, side="left")
        hi = np.searchsorted(self._sorted_starts, high, side="right")
        return int(hi - lo)

    def sweep_block(self, block: CIDRBlock) -> SweepResult:
        """Unique sources per /24 of a monitored block.

        A host observes a /24 iff its sweep intersects it, i.e. its
        start is at most ``reach`` below the /24's last address.
        """
        prefixes = block.slash24_prefixes()
        last_addrs = (prefixes.astype(np.int64) << 8) + 0xFF
        lows = np.maximum(last_addrs - self.reach, 0).astype(np.uint32)
        highs = last_addrs.astype(np.uint32)
        lo = np.searchsorted(self._sorted_starts, lows, side="left")
        hi = np.searchsorted(self._sorted_starts, highs, side="right")
        return SweepResult(block=block, unique_sources=(hi - lo).astype(np.int64))
