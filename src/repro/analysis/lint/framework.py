"""The shared checker framework behind ``hotspots lint``.

Three layers:

* :class:`Checker` / :class:`ProjectChecker` — the contract a lint
  rule implements: an ``RPxxx`` code, a one-line rationale, a path
  scope, and a visitor over one file's AST (or, for project checkers,
  over the whole project).
* :class:`ImportResolver` — per-file import-alias tracking so rules
  can match *canonical* dotted names (``numpy.random.default_rng``)
  regardless of how a module spelled the import (``import numpy as
  np``, ``from numpy.random import default_rng as rng_factory``, …).
* :func:`run_lint` — the driver: walk the configured paths, parse
  each file once, fan the AST out to every applicable checker, then
  drop findings silenced by an inline ``# noqa: RPxxx`` marker or the
  TOML suppression baseline.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence

from repro.analysis.lint.config import LintConfig
from repro.analysis.lint.diagnostics import Diagnostic

#: ``# noqa`` (all codes) or ``# noqa: RP001, RP005`` (listed codes).
_NOQA_PATTERN = re.compile(
    r"#\s*noqa(?::\s*(?P<codes>[A-Z]+[0-9]+(?:\s*,\s*[A-Z]+[0-9]+)*))?",
    re.IGNORECASE,
)


class Checker:
    """One lint rule applied file by file.

    Subclasses set the class attributes and implement
    :meth:`check_file`; the driver handles walking, parsing, scoping,
    and suppression.
    """

    #: The ``RPxxx`` error code this rule reports under.
    code: str = "RP000"
    #: Short rule name (shown by ``hotspots lint --list-checks``).
    name: str = "base"
    #: One-line rationale (shown by ``--list-checks`` and the docs).
    rationale: str = ""
    #: Project-relative path prefixes the rule applies to by default.
    scope: tuple[str, ...] = ("src/repro",)
    #: True when the finding has a mechanical fix (shown in the
    #: generated checker reference table).
    fixable: bool = False

    def applies_to(self, relpath: str) -> bool:
        """True when ``relpath`` falls inside this rule's scope."""
        return any(
            relpath == prefix or relpath.startswith(prefix.rstrip("/") + "/")
            for prefix in self.scope
        )

    def check_file(
        self,
        relpath: str,
        tree: ast.Module,
        source: str,
        config: LintConfig,
    ) -> Iterator[Diagnostic]:
        """Yield diagnostics for one parsed file."""
        raise NotImplementedError
        yield  # pragma: no cover - makes the signature a generator

    def diagnostic(
        self, relpath: str, node: ast.AST, message: str
    ) -> Diagnostic:
        """A :class:`Diagnostic` anchored to ``node``."""
        line = int(getattr(node, "lineno", 1))
        return Diagnostic(
            path=relpath,
            line=line,
            col=int(getattr(node, "col_offset", 0)),
            code=self.code,
            message=message,
            end_line=int(getattr(node, "end_lineno", 0) or line),
        )


class ProjectChecker(Checker):
    """A lint rule over the project as a whole, not a single file.

    Used for consistency rules (RP006) that need to import modules
    and cross-reference directories rather than visit one AST.

    Checkers that set ``needs_context = True`` (the RP1xx flow rules)
    receive a shared :class:`~repro.analysis.flow.context.
    ProjectContext` — symbol table, call graph, taint fixpoint — as a
    third ``check_project`` argument; the driver builds it at most
    once per run, reusing the file pass's parsed ASTs.
    """

    #: True when ``check_project`` takes a ``ProjectContext``.
    needs_context: bool = False

    def check_file(
        self,
        relpath: str,
        tree: ast.Module,
        source: str,
        config: LintConfig,
    ) -> Iterator[Diagnostic]:
        return iter(())

    def check_project(
        self, root: Path, config: LintConfig
    ) -> Iterator[Diagnostic]:
        """Yield diagnostics for the project rooted at ``root``."""
        raise NotImplementedError
        yield  # pragma: no cover - makes the signature a generator


class ImportResolver(ast.NodeVisitor):
    """Map local names to canonical dotted import paths for one file.

    After visiting a module, :meth:`resolve` turns a ``Name`` or
    ``Attribute`` expression into the fully-qualified dotted name it
    denotes (``"numpy.random.seed"``), or ``None`` for names that are
    not rooted in an import (locals, builtins, attribute chains on
    call results).
    """

    def __init__(self) -> None:
        self.aliases: dict[str, str] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.asname is not None:
                self.aliases[alias.asname] = alias.name
            else:
                # ``import numpy.random`` binds the *root* package.
                root = alias.name.split(".", 1)[0]
                self.aliases[root] = root

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is None or node.level:
            return  # relative imports cannot be stdlib/numpy
        for alias in node.names:
            local = alias.asname or alias.name
            self.aliases[local] = f"{node.module}.{alias.name}"

    @classmethod
    def for_tree(cls, tree: ast.Module) -> "ImportResolver":
        """A resolver primed with every import in ``tree``."""
        resolver = cls()
        resolver.visit(tree)  # generic_visit recurses, so nested imports count
        return resolver

    def resolve(self, node: ast.expr) -> Optional[str]:
        """The canonical dotted name of an expression, if import-rooted."""
        parts: list[str] = []
        current: ast.expr = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        base = self.aliases.get(current.id)
        if base is None:
            return None
        parts.append(base)
        return ".".join(reversed(parts))


def inline_suppressed(
    diagnostic: Diagnostic, source_lines: Sequence[str]
) -> bool:
    """True when a ``# noqa`` marker on the flagged lines applies."""
    first = max(diagnostic.line, 1)
    last = max(diagnostic.end_line, first)
    for lineno in range(first, min(last, len(source_lines)) + 1):
        for match in _NOQA_PATTERN.finditer(source_lines[lineno - 1]):
            codes = match.group("codes")
            if codes is None:
                return True
            listed = {code.strip().upper() for code in codes.split(",")}
            if diagnostic.code.upper() in listed:
                return True
    return False


def _iter_python_files(
    root: Path, paths: Sequence[Path], config: LintConfig
) -> Iterator[Path]:
    seen: set[Path] = set()
    for path in paths:
        if path.is_file():
            candidates: Iterable[Path] = (path,)
        elif path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            continue
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            yield candidate


def _relative_posix(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


class LintReport:
    """The outcome of one lint run."""

    def __init__(
        self, diagnostics: Sequence[Diagnostic], files_checked: int
    ) -> None:
        self.diagnostics = tuple(sorted(diagnostics))
        self.files_checked = files_checked

    @property
    def clean(self) -> bool:
        """True when no diagnostic survived suppression."""
        return not self.diagnostics


def run_lint(
    root: Path,
    paths: Optional[Sequence[Path]] = None,
    config: Optional[LintConfig] = None,
    checkers: Optional[Sequence[Checker]] = None,
    run_project_checks: Optional[bool] = None,
    scoped_files: bool = False,
) -> LintReport:
    """Lint a project and return the surviving diagnostics.

    ``paths`` defaults to the configured lint roots under ``root``.
    When the caller passes explicit *files*, every file checker runs
    on them regardless of its scope (so a fixture or an out-of-tree
    file can be linted directly), and project-level checkers are
    skipped unless ``run_project_checks`` forces them on.

    ``scoped_files=True`` flips that convention for explicit files:
    normal scope and exclusion rules apply, as if each file had been
    reached by the configured walk.  ``--changed`` uses this so a
    git-diff-derived file list behaves like a faster full run.
    """
    if config is None:
        from repro.analysis.lint.config import load_config

        config = load_config(root)
    if checkers is None:
        from repro.analysis.lint.checkers import all_checkers

        checkers = all_checkers()

    explicit = paths is not None
    if paths is None:
        paths = [root / entry for entry in config.paths]
    explicit_files = (
        explicit and not scoped_files and all(path.is_file() for path in paths)
    )
    # Files the caller named directly are always linted, even inside
    # an excluded directory (the fixture corpus lints itself this way)
    # — unless the caller asked for scoped semantics.
    named_files = (
        set()
        if scoped_files
        else {path.resolve() for path in paths if explicit and path.is_file()}
    )
    if run_project_checks is None:
        run_project_checks = not explicit_files and not scoped_files

    file_checkers = [
        checker
        for checker in checkers
        if not isinstance(checker, ProjectChecker)
    ]
    project_checkers = [
        checker for checker in checkers if isinstance(checker, ProjectChecker)
    ]

    diagnostics: list[Diagnostic] = []
    files_checked = 0
    parsed: dict[str, tuple[ast.Module, str]] = {}
    for path in _iter_python_files(root, paths, config):
        relpath = _relative_posix(path, root)
        if config.is_excluded(relpath) and path.resolve() not in named_files:
            continue
        applicable = [
            checker
            for checker in file_checkers
            if explicit_files or checker.applies_to(relpath)
        ]
        if not applicable:
            continue
        files_checked += 1
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as error:
            diagnostics.append(
                Diagnostic(
                    path=relpath,
                    line=int(error.lineno or 1),
                    col=int(error.offset or 0),
                    code="RP000",
                    message=f"file does not parse: {error.msg}",
                )
            )
            continue
        parsed[relpath] = (tree, source)
        source_lines = source.splitlines()
        for checker in applicable:
            for diagnostic in checker.check_file(
                relpath, tree, source, config
            ):
                if inline_suppressed(diagnostic, source_lines):
                    continue
                if config.is_suppressed(relpath, diagnostic.code):
                    continue
                diagnostics.append(diagnostic)

    if run_project_checks:
        context = None
        if any(
            getattr(checker, "needs_context", False)
            for checker in project_checkers
        ):
            from repro.analysis.flow.context import build_context

            context = build_context(root, config, parsed)
        for checker in project_checkers:
            if getattr(checker, "needs_context", False):
                # The flow checkers widen check_project with a third
                # context parameter; the base signature stays 2-arg so
                # RP006-style checkers remain untouched.
                found = checker.check_project(
                    root, config, context  # type: ignore[call-arg]
                )
            else:
                found = checker.check_project(root, config)
            for diagnostic in found:
                if config.is_suppressed(diagnostic.path, diagnostic.code):
                    continue
                diagnostics.append(diagnostic)

    return LintReport(diagnostics, files_checked)
