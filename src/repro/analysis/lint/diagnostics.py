"""Lint diagnostics: what a checker reports and how it renders.

A :class:`Diagnostic` is one file/line-anchored finding carrying an
``RPxxx`` error code.  Rendering is deliberately boring — a
``path:line:col: CODE message`` text form that editors and CI logs
hyperlink, and a JSON form for tooling — so checkers stay focused on
*finding* problems, not describing them.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Sequence


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding, anchored to a file location.

    Attributes
    ----------
    path:
        Project-relative path of the offending file (posix separators).
    line / col:
        1-based line and 0-based column of the flagged node.
    code:
        The ``RPxxx`` error code of the checker that fired.
    message:
        Human-readable description of the specific violation.
    end_line:
        Last line of the flagged node — inline suppressions anywhere
        in ``line..end_line`` silence the diagnostic.
    """

    path: str
    line: int
    col: int
    code: str
    message: str
    end_line: int = field(default=0, compare=False)

    def render(self) -> str:
        """The canonical ``path:line:col: CODE message`` text line."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


def render_text(
    diagnostics: Sequence[Diagnostic], files_checked: int
) -> str:
    """The text report: one line per finding plus a summary line."""
    lines = [diagnostic.render() for diagnostic in diagnostics]
    if diagnostics:
        lines.append(
            f"found {len(diagnostics)} issue(s) in "
            f"{len({d.path for d in diagnostics})} file(s) "
            f"({files_checked} checked)"
        )
    else:
        lines.append(f"clean: {files_checked} file(s) checked")
    return "\n".join(lines)


def render_json(
    diagnostics: Sequence[Diagnostic], files_checked: int
) -> str:
    """The JSON report: ``{"diagnostics": [...], "summary": {...}}``."""
    payload = {
        "diagnostics": [asdict(diagnostic) for diagnostic in diagnostics],
        "summary": {
            "issues": len(diagnostics),
            "files_with_issues": len({d.path for d in diagnostics}),
            "files_checked": files_checked,
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)
