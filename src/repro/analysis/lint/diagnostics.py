"""Lint diagnostics: what a checker reports and how it renders.

A :class:`Diagnostic` is one file/line-anchored finding carrying an
``RPxxx`` error code.  Rendering is deliberately boring — a
``path:line:col: CODE message`` text form that editors and CI logs
hyperlink, and a JSON form for tooling — so checkers stay focused on
*finding* problems, not describing them.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Mapping, Optional, Sequence, Tuple


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding, anchored to a file location.

    Attributes
    ----------
    path:
        Project-relative path of the offending file (posix separators).
    line / col:
        1-based line and 0-based column of the flagged node.
    code:
        The ``RPxxx`` error code of the checker that fired.
    message:
        Human-readable description of the specific violation.
    end_line:
        Last line of the flagged node — inline suppressions anywhere
        in ``line..end_line`` silence the diagnostic.
    """

    path: str
    line: int
    col: int
    code: str
    message: str
    end_line: int = field(default=0, compare=False)

    def render(self) -> str:
        """The canonical ``path:line:col: CODE message`` text line."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


def render_text(
    diagnostics: Sequence[Diagnostic], files_checked: int
) -> str:
    """The text report: one line per finding plus a summary line."""
    lines = [diagnostic.render() for diagnostic in diagnostics]
    if diagnostics:
        lines.append(
            f"found {len(diagnostics)} issue(s) in "
            f"{len({d.path for d in diagnostics})} file(s) "
            f"({files_checked} checked)"
        )
    else:
        lines.append(f"clean: {files_checked} file(s) checked")
    return "\n".join(lines)


def render_json(
    diagnostics: Sequence[Diagnostic], files_checked: int
) -> str:
    """The JSON report: ``{"diagnostics": [...], "summary": {...}}``."""
    payload = {
        "diagnostics": [asdict(diagnostic) for diagnostic in diagnostics],
        "summary": {
            "issues": len(diagnostics),
            "files_with_issues": len({d.path for d in diagnostics}),
            "files_checked": files_checked,
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_sarif(
    diagnostics: Sequence[Diagnostic],
    rules: Optional[Mapping[str, Tuple[str, str]]] = None,
) -> str:
    """A SARIF 2.1.0 log for code-scanning upload.

    ``rules`` maps a checker code to ``(name, rationale)`` so the
    rule metadata renders in the alert UI; codes appearing only in
    diagnostics still get a bare rule entry.
    """
    rules = dict(rules or {})
    for diagnostic in diagnostics:
        rules.setdefault(diagnostic.code, (diagnostic.code, ""))
    rule_entries = [
        {
            "id": code,
            "name": name,
            "shortDescription": {"text": name},
            "fullDescription": {"text": rationale or name},
            "defaultConfiguration": {"level": "error"},
        }
        for code, (name, rationale) in sorted(rules.items())
    ]
    results = [
        {
            "ruleId": diagnostic.code,
            "level": "error",
            "message": {"text": diagnostic.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": diagnostic.path,
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": max(diagnostic.line, 1),
                            "startColumn": diagnostic.col + 1,
                            "endLine": max(
                                diagnostic.end_line, diagnostic.line, 1
                            ),
                        },
                    }
                }
            ],
        }
        for diagnostic in diagnostics
    ]
    log = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "hotspots-lint",
                        "informationUri": (
                            "https://github.com/hotspots-repro"
                        ),
                        "rules": rule_entries,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=2, sort_keys=True)
