"""The ``hotspots lint`` command.

Usage::

    hotspots lint                       # lint the whole project
    hotspots lint src/repro/sim         # lint a subtree
    hotspots lint path/to/file.py       # lint one file (all checkers)
    hotspots lint --format json         # machine-readable output
    hotspots lint --sarif out.sarif     # also write a SARIF 2.1.0 log
    hotspots lint --changed [REF]       # only files changed vs. REF
    hotspots lint --select RP001,RP101  # a subset of checkers
    hotspots lint --explain RP102       # one checker, in detail
    hotspots lint --list-checks         # codes and rationales
    hotspots lint --list-checks --markdown   # the DESIGN.md table

Exit status: 0 when clean, 1 when any diagnostic survives
suppression, 2 on usage errors.  ``--sarif`` adds an output file but
changes neither the stdout format nor the exit-code contract.
"""

from __future__ import annotations

import argparse
import dataclasses
import inspect
import subprocess
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.lint.checkers import (
    CHECKER_CLASSES,
    all_checkers,
    checkers_for_codes,
)
from repro.analysis.lint.config import load_config
from repro.analysis.lint.diagnostics import (
    render_json,
    render_sarif,
    render_text,
)
from repro.analysis.lint.framework import run_lint


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hotspots lint",
        description="Determinism & reproducibility lint for the "
        "hotspots reproduction (per-file rules RP001-RP007, "
        "cross-module flow rules RP101-RP104).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: the configured "
        "project paths)",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="project root holding pyproject.toml (default: cwd)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--sarif",
        type=Path,
        default=None,
        metavar="PATH",
        help="additionally write a SARIF 2.1.0 log to PATH "
        "(stdout format and exit code are unchanged)",
    )
    parser.add_argument(
        "--changed",
        nargs="?",
        const="HEAD",
        default=None,
        metavar="REF",
        help="lint only files changed relative to git REF (default "
        "HEAD) plus untracked files; falls back to a full run "
        "outside a git repository",
    )
    parser.add_argument(
        "--select",
        "--only",
        dest="select",
        default=None,
        metavar="CODES",
        help="comma-separated checker codes to run (default: all)",
    )
    parser.add_argument(
        "--explain",
        default=None,
        metavar="CODE",
        help="print one checker's full documentation and exit",
    )
    parser.add_argument(
        "--list-checks",
        action="store_true",
        help="list checker codes with rationales and exit",
    )
    parser.add_argument(
        "--markdown",
        action="store_true",
        help="with --list-checks: emit the markdown reference table "
        "(code, name, rationale, scope, fixable)",
    )
    parser.add_argument(
        "--registry-module",
        default=None,
        metavar="MODULE",
        help="dotted module holding the experiment registry "
        "(RP006; default from config)",
    )
    parser.add_argument(
        "--tests-path",
        default=None,
        metavar="DIR",
        help="test tree scanned by RP006 and RP104 "
        "(default from config)",
    )
    parser.add_argument(
        "--no-project-checks",
        action="store_true",
        help="skip project-level checkers (RP006, RP101-RP104)",
    )
    return parser


def _list_checks() -> str:
    lines = []
    for checker_class in CHECKER_CLASSES:
        lines.append(f"{checker_class.code}  {checker_class.name}")
        lines.append(f"       {checker_class.rationale}")
    return "\n".join(lines)


def list_checks_markdown() -> str:
    """The checker reference table DESIGN.md embeds (generated)."""
    rows = [
        "| Code | Name | Rationale | Scope | Fixable |",
        "| --- | --- | --- | --- | --- |",
    ]
    for checker_class in CHECKER_CLASSES:
        scope = ", ".join(f"`{prefix}`" for prefix in checker_class.scope)
        fixable = "yes" if checker_class.fixable else "no"
        rows.append(
            f"| {checker_class.code} | {checker_class.name} | "
            f"{checker_class.rationale} | {scope} | {fixable} |"
        )
    return "\n".join(rows)


def _explain(code: str) -> Optional[str]:
    normalized = code.strip().upper()
    for checker_class in CHECKER_CLASSES:
        if checker_class.code != normalized:
            continue
        lines = [
            f"{checker_class.code}  {checker_class.name}",
            f"  scope:    {', '.join(checker_class.scope)}",
            f"  fixable:  {'yes' if checker_class.fixable else 'no'}",
            f"  rationale: {checker_class.rationale}",
        ]
        doc = inspect.getdoc(checker_class)
        if doc:
            lines.append("")
            lines.extend(f"  {line}".rstrip() for line in doc.splitlines())
        return "\n".join(lines)
    return None


def _changed_files(root: Path, ref: str) -> Optional[list[Path]]:
    """Python files changed vs. ``ref`` plus untracked ones.

    ``None`` signals "not a usable git checkout" — the caller falls
    back to a full run rather than failing.
    """
    def _git(*args: str) -> list[str]:
        completed = subprocess.run(
            ["git", "-C", str(root), *args],
            capture_output=True,
            text=True,
            check=True,
        )
        return [line for line in completed.stdout.splitlines() if line]

    try:
        names = set(_git("diff", "--name-only", ref, "--"))
        names.update(_git("ls-files", "--others", "--exclude-standard"))
    except (OSError, subprocess.CalledProcessError):
        return None
    files = []
    for name in sorted(names):
        if not name.endswith(".py"):
            continue
        path = root / name
        if path.is_file():
            files.append(path)
    return files


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.explain is not None:
        text = _explain(args.explain)
        if text is None:
            known = ", ".join(c.code for c in CHECKER_CLASSES)
            parser.error(f"unknown checker code {args.explain!r}; known: {known}")
        print(text)
        return 0

    if args.list_checks:
        print(list_checks_markdown() if args.markdown else _list_checks())
        return 0
    if args.markdown:
        parser.error("--markdown requires --list-checks")

    root = (args.root or Path.cwd()).resolve()
    config = load_config(root)
    if args.registry_module or args.tests_path:
        config = dataclasses.replace(
            config,
            registry_module=args.registry_module or config.registry_module,
            tests_path=args.tests_path or config.tests_path,
        )

    checkers = all_checkers()
    if args.select:
        try:
            checkers = checkers_for_codes(args.select.split(","))
        except ValueError as error:
            parser.error(str(error))

    run_project: Optional[bool] = None
    if args.no_project_checks:
        run_project = False
    elif args.registry_module is not None:
        run_project = True

    paths: Optional[list[Path]] = list(args.paths) or None
    scoped_files = False
    if args.changed is not None:
        if paths is not None:
            parser.error("--changed and explicit paths are exclusive")
        changed = _changed_files(root, args.changed)
        if changed is None:
            print(
                "hotspots lint: not a git checkout; --changed falls "
                "back to a full run",
                file=sys.stderr,
            )
        else:
            paths = changed
            scoped_files = True

    report = run_lint(
        root,
        paths=paths,
        config=config,
        checkers=checkers,
        run_project_checks=run_project,
        scoped_files=scoped_files,
    )
    if args.sarif is not None:
        rules = {
            checker.code: (checker.name, checker.rationale)
            for checker in checkers
        }
        args.sarif.parent.mkdir(parents=True, exist_ok=True)
        args.sarif.write_text(
            render_sarif(report.diagnostics, rules) + "\n", encoding="utf-8"
        )
    if args.format == "json":
        print(render_json(report.diagnostics, report.files_checked))
    else:
        print(render_text(report.diagnostics, report.files_checked))
    return 0 if report.clean else 1


if __name__ == "__main__":
    sys.exit(main())
