"""The ``hotspots lint`` command.

Usage::

    hotspots lint                       # lint the whole project
    hotspots lint src/repro/sim         # lint a subtree
    hotspots lint path/to/file.py       # lint one file (all checkers)
    hotspots lint --format json         # machine-readable output
    hotspots lint --select RP001,RP005  # a subset of checkers
    hotspots lint --list-checks         # codes and rationales

Exit status: 0 when clean, 1 when any diagnostic survives
suppression, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.lint.checkers import (
    CHECKER_CLASSES,
    all_checkers,
    checkers_for_codes,
)
from repro.analysis.lint.config import load_config
from repro.analysis.lint.diagnostics import render_json, render_text
from repro.analysis.lint.framework import run_lint


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hotspots lint",
        description="Determinism & reproducibility lint for the "
        "hotspots reproduction (codes RP001-RP006).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: the configured "
        "project paths)",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="project root holding pyproject.toml (default: cwd)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="CODES",
        help="comma-separated checker codes to run (default: all)",
    )
    parser.add_argument(
        "--list-checks",
        action="store_true",
        help="list checker codes with rationales and exit",
    )
    parser.add_argument(
        "--registry-module",
        default=None,
        metavar="MODULE",
        help="dotted module holding the experiment registry "
        "(RP006; default from config)",
    )
    parser.add_argument(
        "--tests-path",
        default=None,
        metavar="DIR",
        help="test tree RP006 scans for experiment-id references "
        "(default from config)",
    )
    parser.add_argument(
        "--no-project-checks",
        action="store_true",
        help="skip project-level checkers (RP006)",
    )
    return parser


def _list_checks() -> str:
    lines = []
    for checker_class in CHECKER_CLASSES:
        lines.append(f"{checker_class.code}  {checker_class.name}")
        lines.append(f"       {checker_class.rationale}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_checks:
        print(_list_checks())
        return 0

    root = (args.root or Path.cwd()).resolve()
    config = load_config(root)
    if args.registry_module or args.tests_path:
        config = dataclasses.replace(
            config,
            registry_module=args.registry_module or config.registry_module,
            tests_path=args.tests_path or config.tests_path,
        )

    checkers = all_checkers()
    if args.select:
        try:
            checkers = checkers_for_codes(args.select.split(","))
        except ValueError as error:
            parser.error(str(error))

    run_project: Optional[bool] = None
    if args.no_project_checks:
        run_project = False
    elif args.registry_module is not None:
        run_project = True

    report = run_lint(
        root,
        paths=list(args.paths) or None,
        config=config,
        checkers=checkers,
        run_project_checks=run_project,
    )
    if args.format == "json":
        print(render_json(report.diagnostics, report.files_checked))
    else:
        print(render_text(report.diagnostics, report.files_checked))
    return 0 if report.clean else 1


if __name__ == "__main__":
    sys.exit(main())
