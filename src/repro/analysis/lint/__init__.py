"""Determinism & reproducibility lint (``hotspots lint``).

A custom AST-based static-analysis pass that mechanically enforces
the discipline the reproduction's results rest on — seeded,
explicitly-passed RNGs, pure model layers, picklable parallel
dispatch, deliberate float comparison, and a consistent experiment
registry.  Error codes:

========  ==========================================================
RP001     no global-state RNG (stdlib ``random``, ``np.random.seed``,
          ``np.random.RandomState``) inside ``src/repro``
RP002     no ``np.random.default_rng()`` without a seed outside
          designated entrypoints
RP003     no wall-clock / OS-entropy / unsorted-set nondeterminism in
          ``sim``, ``worms``, ``env``, ``sensors``
RP004     callables dispatched through ``TrialRunner`` must be
          module-level (picklable)
RP005     float ``==`` must use ``isclose`` or carry ``# bitwise``
RP006     registry defaults bind to real runner parameters and every
          experiment id is referenced by a test
RP007     no bare ``except:``/``except BaseException:`` and no
          handlers that silently ``pass`` inside ``src/repro``
========  ==========================================================

Suppression: inline ``# noqa: RPxxx`` on the flagged line(s), or a
path-glob baseline under ``[tool.hotspots-lint]`` in
``pyproject.toml`` (see :mod:`repro.analysis.lint.config`).
"""

from repro.analysis.lint.checkers import (
    CHECKER_CLASSES,
    all_checkers,
    checkers_for_codes,
)
from repro.analysis.lint.config import LintConfig, load_config
from repro.analysis.lint.diagnostics import Diagnostic, render_json, render_text
from repro.analysis.lint.framework import (
    Checker,
    ImportResolver,
    LintReport,
    ProjectChecker,
    run_lint,
)

__all__ = [
    "CHECKER_CLASSES",
    "Checker",
    "Diagnostic",
    "ImportResolver",
    "LintConfig",
    "LintReport",
    "ProjectChecker",
    "all_checkers",
    "checkers_for_codes",
    "load_config",
    "render_json",
    "render_text",
    "run_lint",
]
