"""Determinism & reproducibility lint (``hotspots lint``).

A custom AST-based static-analysis pass that mechanically enforces
the discipline the reproduction's results rest on — seeded,
explicitly-passed RNGs, pure model layers, picklable parallel
dispatch, deliberate float comparison, and a consistent experiment
registry.  Error codes:

========  ==========================================================
RP001     no global-state RNG (stdlib ``random``, ``np.random.seed``,
          ``np.random.RandomState``) inside ``src/repro``
RP002     no ``np.random.default_rng()`` without a seed outside
          designated entrypoints
RP003     no wall-clock / OS-entropy / unsorted-set nondeterminism in
          ``sim``, ``worms``, ``env``, ``sensors``
RP004     callables dispatched through ``TrialRunner`` must be
          module-level (picklable)
RP005     float ``==`` must use ``isclose`` or carry ``# bitwise``
RP006     registry defaults bind to real runner parameters and every
          experiment id is referenced by a test
RP007     no bare ``except:``/``except BaseException:`` and no
          handlers that silently ``pass`` inside ``src/repro``
========  ==========================================================

The cross-module flow checkers RP101–RP104 (shard purity, RNG
ordering, pool picklability, kernel-gate coverage) live in
:mod:`repro.analysis.flow` and register here through
:mod:`repro.analysis.lint.checkers`.

Suppression: inline ``# noqa: RPxxx`` on the flagged line(s), or a
path-glob baseline under ``[tool.hotspots-lint]`` in
``pyproject.toml`` (see :mod:`repro.analysis.lint.config`).

Exports resolve lazily (PEP 562): :mod:`repro.analysis.flow` imports
:mod:`~repro.analysis.lint.framework` for its base classes while
:mod:`~repro.analysis.lint.checkers` imports the flow checkers back,
so an eager ``__init__`` would close an import cycle whenever a flow
module is imported first.
"""

from typing import Any

_EXPORTS = {
    "CHECKER_CLASSES": "repro.analysis.lint.checkers",
    "all_checkers": "repro.analysis.lint.checkers",
    "checkers_for_codes": "repro.analysis.lint.checkers",
    "LintConfig": "repro.analysis.lint.config",
    "load_config": "repro.analysis.lint.config",
    "Diagnostic": "repro.analysis.lint.diagnostics",
    "render_json": "repro.analysis.lint.diagnostics",
    "render_text": "repro.analysis.lint.diagnostics",
    "Checker": "repro.analysis.lint.framework",
    "ImportResolver": "repro.analysis.lint.framework",
    "LintReport": "repro.analysis.lint.framework",
    "ProjectChecker": "repro.analysis.lint.framework",
    "run_lint": "repro.analysis.lint.framework",
}


def __getattr__(name: str) -> Any:
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list[str]:
    return sorted(__all__)


__all__ = [
    "CHECKER_CLASSES",
    "Checker",
    "Diagnostic",
    "ImportResolver",
    "LintConfig",
    "LintReport",
    "ProjectChecker",
    "all_checkers",
    "checkers_for_codes",
    "load_config",
    "render_json",
    "render_text",
    "run_lint",
]
