"""RP007 — no silent or catch-everything exception handlers.

The fault-tolerant runner's whole contract is that failures are
*accounted for*: retried, reported, journaled — never swallowed.  A
bare ``except:`` or ``except BaseException:`` catches
``KeyboardInterrupt`` and ``SystemExit`` (so ^C stops stopping), and
a handler whose body is only ``pass`` erases the evidence that
anything failed.  Deliberate best-effort cleanup paths do exist
(temp-file removal, terminating already-dead workers); they opt out
explicitly with ``# noqa: RP007`` on the ``except`` line, which is
the allowlist.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint.config import LintConfig
from repro.analysis.lint.diagnostics import Diagnostic
from repro.analysis.lint.framework import Checker


def _silent_body(body: list[ast.stmt]) -> bool:
    """True when a handler body does nothing but ``pass`` / ``...``."""
    for statement in body:
        if isinstance(statement, ast.Pass):
            continue
        if (
            isinstance(statement, ast.Expr)
            and isinstance(statement.value, ast.Constant)
            and statement.value.value is Ellipsis
        ):
            continue
        return False
    return True


def _catches_base_exception(annotation: ast.expr) -> bool:
    """True when the except clause names ``BaseException``."""
    if isinstance(annotation, ast.Tuple):
        return any(
            _catches_base_exception(element) for element in annotation.elts
        )
    return (
        isinstance(annotation, ast.Name)
        and annotation.id == "BaseException"
    )


class SilentExceptChecker(Checker):
    """RP007: exception handlers must be narrow and honest."""

    code = "RP007"
    name = "no-silent-except"
    rationale = (
        "bare `except:`/`except BaseException:` swallows ^C and "
        "interpreter exit, and a handler that only `pass`es erases "
        "failures the runner is contractually obliged to report; "
        "deliberate best-effort cleanup marks the except line "
        "`# noqa: RP007`"
    )
    scope = ("src/repro",)

    def check_file(
        self,
        relpath: str,
        tree: ast.Module,
        source: str,
        config: LintConfig,
    ) -> Iterator[Diagnostic]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self._on_except_line(
                    relpath,
                    node,
                    "bare `except:` catches everything, including "
                    "KeyboardInterrupt and SystemExit; name the "
                    "exceptions this path can actually recover from",
                )
            elif _catches_base_exception(node.type):
                yield self._on_except_line(
                    relpath,
                    node,
                    "`except BaseException` intercepts interpreter "
                    "shutdown and ^C; catch `Exception` or narrower "
                    "(deliberate cleanup paths mark the line "
                    "`# noqa: RP007`)",
                )
            elif _silent_body(node.body):
                caught = ast.unparse(node.type)
                yield self._on_except_line(
                    relpath,
                    node,
                    f"handler for `{caught}` silently `pass`es; "
                    "record what was swallowed (warn, count, or "
                    "comment the why and mark `# noqa: RP007`)",
                )

    def _on_except_line(
        self, relpath: str, node: ast.ExceptHandler, message: str
    ) -> Diagnostic:
        # Anchor to the ``except`` line only: the handler *body* may
        # legitimately contain unrelated ``# noqa`` markers, and the
        # allowlist convention is a marker on the except line itself.
        line = int(node.lineno)
        return Diagnostic(
            path=relpath,
            line=line,
            col=int(node.col_offset),
            code=self.code,
            message=message,
            end_line=line,
        )
