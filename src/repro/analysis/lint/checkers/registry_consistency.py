"""RP006 — the experiment registry must stay consistent.

Every registered :class:`~repro.experiments.registry.Experiment` is a
cache identity and a CLI contract.  Three invariants are checked by
importing the real registry rather than parsing it:

* the runner resolves (its module imports, the attribute exists);
* every registry-level default names a real runner parameter (a typo
  here silently changes what gets cached under which key);
* the seed parameter exists on the runner (the trial runner injects
  per-trial ``SeedSequence`` children through it);
* every experiment id is referenced by at least one test file, so no
  artifact can silently lose coverage.
"""

from __future__ import annotations

import importlib
import inspect
from pathlib import Path
from typing import Any, Iterator, Mapping, Optional

from repro.analysis.lint.config import LintConfig
from repro.analysis.lint.diagnostics import Diagnostic
from repro.analysis.lint.framework import ProjectChecker


def _registry_anchor(
    registry_source: Optional[list[str]], experiment_id: str
) -> int:
    """The registry-source line declaring ``experiment_id`` (or 1)."""
    if registry_source is None:
        return 1
    for index, line in enumerate(registry_source, start=1):
        if f'id="{experiment_id}"' in line or f"id='{experiment_id}'" in line:
            return index
    return 1


def _accepts_kwargs(signature: inspect.Signature) -> bool:
    return any(
        parameter.kind is inspect.Parameter.VAR_KEYWORD
        for parameter in signature.parameters.values()
    )


class RegistryConsistencyChecker(ProjectChecker):
    """RP006: registered experiments resolve, bind, and are tested."""

    code = "RP006"
    name = "registry-consistency"
    rationale = (
        "a default that names no runner parameter, an unresolvable "
        "runner, or an experiment no test references silently corrupts "
        "cache keys and coverage; the registry is checked against the "
        "real signatures and the test tree"
    )
    scope = ()

    def check_project(
        self, root: Path, config: LintConfig
    ) -> Iterator[Diagnostic]:
        try:
            registry_module = importlib.import_module(config.registry_module)
        except Exception as error:  # pragma: no cover - import env issue
            yield Diagnostic(
                path=config.registry_module.replace(".", "/") + ".py",
                line=1,
                col=0,
                code=self.code,
                message=f"registry module does not import: {error}",
            )
            return
        registry: Mapping[str, Any] = getattr(
            registry_module, config.registry_attr, {}
        )
        module_file = getattr(registry_module, "__file__", None)
        registry_path = (
            Path(module_file).resolve() if module_file else None
        )
        relpath = config.registry_module.replace(".", "/") + ".py"
        registry_source: Optional[list[str]] = None
        if registry_path is not None and registry_path.is_file():
            registry_source = registry_path.read_text(
                encoding="utf-8"
            ).splitlines()
            try:
                relpath = registry_path.relative_to(
                    root.resolve()
                ).as_posix()
            except ValueError:
                relpath = registry_path.as_posix()

        tests_root = root / config.tests_path
        test_texts: list[str] = []
        if tests_root.is_dir():
            for test_file in sorted(tests_root.rglob("*.py")):
                rel = test_file.resolve()
                try:
                    rel_posix = rel.relative_to(root.resolve()).as_posix()
                except ValueError:
                    rel_posix = test_file.as_posix()
                if config.is_excluded(rel_posix):
                    continue
                test_texts.append(test_file.read_text(encoding="utf-8"))

        for experiment_id, experiment in sorted(registry.items()):
            line = _registry_anchor(registry_source, experiment_id)

            def report(message: str) -> Diagnostic:
                return Diagnostic(
                    path=relpath,
                    line=line,
                    col=0,
                    code=self.code,
                    message=f"experiment {experiment_id!r}: {message}",
                )

            try:
                runner, formatter = experiment.resolve()
            except Exception as error:
                yield report(f"runner does not resolve: {error}")
                continue
            try:
                signature = inspect.signature(runner)
            except (TypeError, ValueError):
                yield report("runner has no inspectable signature")
                continue
            parameters = set(signature.parameters)
            if not _accepts_kwargs(signature):
                for name in sorted(experiment.defaults):
                    if name not in parameters:
                        yield report(
                            f"default {name!r} names no parameter of "
                            f"{experiment.module}.{experiment.runner}()"
                        )
                seed_param = getattr(experiment, "seed_param", "seed")
                if seed_param not in parameters:
                    yield report(
                        f"seed parameter {seed_param!r} missing from "
                        f"{experiment.module}.{experiment.runner}(); "
                        "multi-trial campaigns cannot inject seeds"
                    )
            if not callable(formatter):
                yield report("formatter is not callable")
            if test_texts and not any(
                experiment_id in text for text in test_texts
            ):
                yield report(
                    f"id is referenced by no test under "
                    f"{config.tests_path}/; every artifact needs at "
                    "least one test"
                )
