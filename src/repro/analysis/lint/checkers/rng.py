"""RP001/RP002 — randomness must flow through seeded, passed-in RNGs.

The reproduction's determinism contract is that every stochastic
function takes an explicit ``rng: np.random.Generator`` argument and
all entropy descends from one campaign ``SeedSequence``.  Global
RNG state (``random``, ``np.random.seed``, ``np.random.RandomState``)
and unseeded generators break that contract silently: results drift
without any test failing — exactly the corruption mode the paper's
PRNG case studies (Blaster's boot-time seeds, Slammer's broken LCG)
show dominates real outcomes.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint.config import LintConfig
from repro.analysis.lint.diagnostics import Diagnostic
from repro.analysis.lint.framework import Checker, ImportResolver

#: Canonical dotted names that manipulate numpy's *global* RNG state.
_GLOBAL_STATE_NAMES = {
    "numpy.random.seed",
    "numpy.random.RandomState",
}


class GlobalRandomChecker(Checker):
    """RP001: no global-state RNG inside ``src/repro``."""

    code = "RP001"
    name = "no-global-rng"
    rationale = (
        "stdlib `random` and numpy's global RNG (`np.random.seed`, "
        "`np.random.RandomState`) are process-wide mutable state; any "
        "use breaks the explicit rng-passing discipline and makes "
        "trial results depend on call order"
    )
    scope = ("src/repro",)

    def check_file(
        self,
        relpath: str,
        tree: ast.Module,
        source: str,
        config: LintConfig,
    ) -> Iterator[Diagnostic]:
        resolver = ImportResolver.for_tree(tree)
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".", 1)[0]
                    if root == "random":
                        yield self.diagnostic(
                            relpath,
                            node,
                            "stdlib `random` imported; thread a seeded "
                            "`np.random.Generator` through instead",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module is not None:
                    root = node.module.split(".", 1)[0]
                    if root == "random":
                        yield self.diagnostic(
                            relpath,
                            node,
                            "stdlib `random` imported; thread a seeded "
                            "`np.random.Generator` through instead",
                        )
                    elif node.module.startswith("numpy"):
                        for alias in node.names:
                            dotted = f"{node.module}.{alias.name}"
                            if dotted in _GLOBAL_STATE_NAMES:
                                yield self.diagnostic(
                                    relpath,
                                    node,
                                    f"`{dotted}` is global RNG state; "
                                    "use `np.random.default_rng(seed)`",
                                )
            elif isinstance(node, ast.Attribute):
                dotted = resolver.resolve(node)
                if dotted in _GLOBAL_STATE_NAMES:
                    yield self.diagnostic(
                        relpath,
                        node,
                        f"`{dotted}` is global RNG state; "
                        "use `np.random.default_rng(seed)`",
                    )
            elif isinstance(node, ast.Name) and not isinstance(
                node.ctx, ast.Store
            ):
                dotted = resolver.resolve(node)
                if dotted in _GLOBAL_STATE_NAMES:
                    yield self.diagnostic(
                        relpath,
                        node,
                        f"`{dotted}` is global RNG state; "
                        "use `np.random.default_rng(seed)`",
                    )


class UnseededRngChecker(Checker):
    """RP002: ``default_rng()`` needs an explicit seed argument."""

    code = "RP002"
    name = "no-unseeded-rng"
    rationale = (
        "`np.random.default_rng()` with no seed draws OS entropy, so "
        "two runs of the same experiment differ; outside designated "
        "interactive entrypoints every generator must be seeded or "
        "spawned from the campaign SeedSequence"
    )
    scope = ("src/repro",)

    def check_file(
        self,
        relpath: str,
        tree: ast.Module,
        source: str,
        config: LintConfig,
    ) -> Iterator[Diagnostic]:
        if config.is_entrypoint(relpath):
            return
        resolver = ImportResolver.for_tree(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = resolver.resolve(node.func)
            if dotted != "numpy.random.default_rng":
                continue
            if node.args or node.keywords:
                continue
            yield self.diagnostic(
                relpath,
                node,
                "`np.random.default_rng()` without a seed is "
                "nondeterministic; pass a seed or a spawned "
                "`SeedSequence` child",
            )
