"""The checker registry for ``hotspots lint``.

One module per concern; :func:`all_checkers` is the canonical
ordering (by error code) the CLI and the test suite both use.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.flow.checkers import (
    DispatchWindowChecker,
    KernelGateCoverageChecker,
    PoolBoundaryPicklabilityChecker,
    RngOrderingChecker,
    ShardPurityChecker,
)
from repro.analysis.lint.checkers.dispatch import PicklableDispatchChecker
from repro.analysis.lint.checkers.excepts import SilentExceptChecker
from repro.analysis.lint.checkers.floats import FloatEqualityChecker
from repro.analysis.lint.checkers.nondeterminism import NondeterminismChecker
from repro.analysis.lint.checkers.registry_consistency import (
    RegistryConsistencyChecker,
)
from repro.analysis.lint.checkers.rng import (
    GlobalRandomChecker,
    UnseededRngChecker,
)
from repro.analysis.lint.framework import Checker

#: Checker classes in error-code order.  RP00x are per-file rules;
#: RP10x are the cross-module determinism-flow rules from
#: :mod:`repro.analysis.flow`.
CHECKER_CLASSES: tuple[type[Checker], ...] = (
    GlobalRandomChecker,
    UnseededRngChecker,
    NondeterminismChecker,
    PicklableDispatchChecker,
    FloatEqualityChecker,
    RegistryConsistencyChecker,
    SilentExceptChecker,
    ShardPurityChecker,
    RngOrderingChecker,
    PoolBoundaryPicklabilityChecker,
    KernelGateCoverageChecker,
    DispatchWindowChecker,
)


def all_checkers() -> list[Checker]:
    """Fresh instances of every registered checker, code order."""
    return [checker_class() for checker_class in CHECKER_CLASSES]


def checkers_for_codes(codes: Sequence[str]) -> list[Checker]:
    """Instances for a ``--select`` list; unknown codes raise."""
    known = {
        checker_class.code: checker_class
        for checker_class in CHECKER_CLASSES
    }
    selected: list[Checker] = []
    for code in codes:
        normalized = code.strip().upper()
        if normalized not in known:
            raise ValueError(
                f"unknown checker code {code!r}; known: {sorted(known)}"
            )
        selected.append(known[normalized]())
    return selected


__all__ = [
    "CHECKER_CLASSES",
    "all_checkers",
    "checkers_for_codes",
    "FloatEqualityChecker",
    "GlobalRandomChecker",
    "KernelGateCoverageChecker",
    "NondeterminismChecker",
    "PicklableDispatchChecker",
    "PoolBoundaryPicklabilityChecker",
    "RegistryConsistencyChecker",
    "RngOrderingChecker",
    "ShardPurityChecker",
    "SilentExceptChecker",
    "UnseededRngChecker",
]
