"""RP003 — no wall-clock or environment nondeterminism in model code.

The simulation layers (``sim/``, ``worms/``, ``env/``, ``sensors/``)
compute pure functions of ``(parameters, seed)``.  A wall-clock read,
OS entropy, or iteration over an unsorted ``set`` (string hashing is
randomized per process) quietly couples results to the machine and
the moment — the drift the serial≡parallel and cache-replay
invariants exist to rule out.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.lint.config import LintConfig
from repro.analysis.lint.diagnostics import Diagnostic
from repro.analysis.lint.framework import Checker, ImportResolver

#: Canonical dotted names whose *call* is inherently nondeterministic.
_FORBIDDEN_CALLS = {
    "time.time": "wall-clock read",
    "time.time_ns": "wall-clock read",
    "time.monotonic": "wall-clock read",
    "time.monotonic_ns": "wall-clock read",
    "time.perf_counter": "wall-clock read",
    "time.perf_counter_ns": "wall-clock read",
    "datetime.datetime.now": "wall-clock read",
    "datetime.datetime.utcnow": "wall-clock read",
    "datetime.datetime.today": "wall-clock read",
    "datetime.date.today": "wall-clock read",
    "os.urandom": "OS entropy",
    "os.getrandom": "OS entropy",
    "secrets.token_bytes": "OS entropy",
    "secrets.token_hex": "OS entropy",
    "secrets.randbelow": "OS entropy",
    "uuid.uuid1": "host/time-derived id",
    "uuid.uuid4": "OS entropy",
}

#: Calls that consume an iterable and preserve its (set) order.
_ORDER_SENSITIVE_WRAPPERS = {"list", "tuple", "enumerate", "iter"}


def _set_expression(node: ast.expr) -> Optional[str]:
    """Describe ``node`` if it produces a ``set``, else ``None``."""
    if isinstance(node, ast.Set):
        return "a set literal"
    if isinstance(node, ast.SetComp):
        return "a set comprehension"
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in {"set", "frozenset"}
    ):
        return f"`{node.func.id}(...)`"
    return None


class NondeterminismChecker(Checker):
    """RP003: model code must be a pure function of (params, seed)."""

    code = "RP003"
    name = "no-ambient-nondeterminism"
    rationale = (
        "wall-clock reads, OS entropy, and unsorted-set iteration make "
        "results depend on the machine, the moment, or the hash seed; "
        "model layers must be pure functions of parameters and seed"
    )
    scope = (
        "src/repro/sim",
        "src/repro/worms",
        "src/repro/env",
        "src/repro/sensors",
    )

    def check_file(
        self,
        relpath: str,
        tree: ast.Module,
        source: str,
        config: LintConfig,
    ) -> Iterator[Diagnostic]:
        resolver = ImportResolver.for_tree(tree)
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                dotted = resolver.resolve(node.func)
                if dotted in _FORBIDDEN_CALLS:
                    yield self.diagnostic(
                        relpath,
                        node,
                        f"`{dotted}` is {_FORBIDDEN_CALLS[dotted]}; "
                        "results must not depend on when or where "
                        "they are computed",
                    )
                    continue
                # list(set(...)) / enumerate(set(...)): order escapes.
                if (
                    isinstance(node.func, ast.Name)
                    and node.func.id in _ORDER_SENSITIVE_WRAPPERS
                    and node.args
                ):
                    described = _set_expression(node.args[0])
                    if described is not None:
                        yield self.diagnostic(
                            relpath,
                            node,
                            f"`{node.func.id}(...)` over {described} "
                            "leaks hash-dependent ordering; wrap in "
                            "`sorted(...)`",
                        )
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                described = _set_expression(node.iter)
                if described is not None:
                    yield self.diagnostic(
                        relpath,
                        node.iter,
                        f"iterating {described} leaks hash-dependent "
                        "ordering; wrap in `sorted(...)`",
                    )
            elif isinstance(node, ast.comprehension):
                described = _set_expression(node.iter)
                if described is not None:
                    yield self.diagnostic(
                        relpath,
                        node.iter,
                        f"iterating {described} in a comprehension "
                        "leaks hash-dependent ordering; wrap in "
                        "`sorted(...)`",
                    )
