"""RP005 — float equality must be deliberate.

``x == 0.1`` is usually a bug (accumulated rounding), but this
codebase also has *intentional* bitwise comparisons: the
``SimulationResult.__eq__`` contract behind "parallel equals serial"
and "cache hit equals fresh run".  The rule therefore demands that a
float ``==``/``!=`` either use a tolerance (``np.isclose`` /
``math.isclose``) or carry an explicit ``# bitwise`` marker stating
exactness is the point.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint.config import LintConfig
from repro.analysis.lint.diagnostics import Diagnostic
from repro.analysis.lint.framework import Checker

#: The sanctioned marker for intentional exact float comparison.
BITWISE_MARKER = "# bitwise"


def _is_float_expression(node: ast.expr) -> bool:
    """True for float literals, ``float(...)`` calls, and negations."""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp):
        return _is_float_expression(node.operand)
    if isinstance(node, ast.Call):
        return isinstance(node.func, ast.Name) and node.func.id == "float"
    return False


class FloatEqualityChecker(Checker):
    """RP005: float ``==`` needs ``isclose`` or a ``# bitwise`` marker."""

    code = "RP005"
    name = "deliberate-float-equality"
    rationale = (
        "bare float == hides rounding drift; use np.isclose/"
        "math.isclose, or mark intentional exact comparisons with "
        "`# bitwise` (the SimulationResult.__eq__ contract)"
    )
    scope = ("src", "tests")

    def check_file(
        self,
        relpath: str,
        tree: ast.Module,
        source: str,
        config: LintConfig,
    ) -> Iterator[Diagnostic]:
        lines = source.splitlines()
        for node in ast.walk(tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(
                isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops
            ):
                continue
            operands = [node.left, *node.comparators]
            if not any(_is_float_expression(operand) for operand in operands):
                continue
            first = node.lineno
            last = node.end_lineno or first
            flagged_span = lines[first - 1 : min(last, len(lines))]
            if any(BITWISE_MARKER in line for line in flagged_span):
                continue
            yield self.diagnostic(
                relpath,
                node,
                "float equality comparison; use np.isclose/math.isclose "
                "or mark intentional exactness with `# bitwise`",
            )
