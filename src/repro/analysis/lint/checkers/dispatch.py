"""RP004 — work dispatched through ``TrialRunner`` must be picklable.

``ProcessPoolExecutor`` pickles each :class:`~repro.runtime.runner.Trial`
to ship it to a worker.  A lambda or a function defined inside another
function cannot be pickled, so a parallel campaign silently degrades
to the serial fallback path — the run still *works*, which is exactly
why only a static check catches the regression.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.lint.config import LintConfig
from repro.analysis.lint.diagnostics import Diagnostic
from repro.analysis.lint.framework import Checker

#: Call targets whose ``func`` argument fans out through the pool.
_TRIAL_CONSTRUCTOR = "Trial"
_DISPATCH_METHODS = {"run_repeated"}


def _nested_function_names(tree: ast.Module) -> set[str]:
    """Names of functions defined inside another function's body."""
    nested: set[str] = set()

    def walk(node: ast.AST, inside_function: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if inside_function:
                    nested.add(child.name)
                walk(child, True)
            elif isinstance(child, ast.Lambda):
                walk(child, True)
            else:
                walk(child, inside_function)

    walk(tree, False)
    return nested


def _func_argument(node: ast.Call) -> Optional[ast.expr]:
    """The ``func`` payload of a fan-out call, if this is one."""
    if isinstance(node.func, ast.Name) and node.func.id == _TRIAL_CONSTRUCTOR:
        for keyword in node.keywords:
            if keyword.arg == "func":
                return keyword.value
        if node.args:
            return node.args[0]
        return None
    callee: Optional[str] = None
    if isinstance(node.func, ast.Attribute):
        callee = node.func.attr
    elif isinstance(node.func, ast.Name):
        callee = node.func.id
    if callee in _DISPATCH_METHODS:
        for keyword in node.keywords:
            if keyword.arg == "func":
                return keyword.value
        if node.args:
            return node.args[0]
    return None


class PicklableDispatchChecker(Checker):
    """RP004: no lambdas/closures at ``TrialRunner`` fan-out sites."""

    code = "RP004"
    name = "picklable-dispatch"
    rationale = (
        "lambdas and nested functions cannot be pickled, so handing "
        "one to `Trial`/`run_repeated` silently forfeits parallelism "
        "via the serial fallback; dispatched callables must be "
        "module-level"
    )
    scope = ("src", "tests", "benchmarks", "scripts")

    def check_file(
        self,
        relpath: str,
        tree: ast.Module,
        source: str,
        config: LintConfig,
    ) -> Iterator[Diagnostic]:
        nested = _nested_function_names(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            payload = _func_argument(node)
            if payload is None:
                continue
            if isinstance(payload, ast.Lambda):
                yield self.diagnostic(
                    relpath,
                    payload,
                    "lambda passed to a TrialRunner fan-out site is "
                    "unpicklable; use a module-level function",
                )
            elif isinstance(payload, ast.Name) and payload.id in nested:
                yield self.diagnostic(
                    relpath,
                    payload,
                    f"nested function `{payload.id}` passed to a "
                    "TrialRunner fan-out site is unpicklable; move it "
                    "to module level",
                )
