"""Lint configuration: defaults, ``pyproject.toml`` loading, suppressions.

Configuration lives in ``[tool.hotspots-lint]`` of the project's
``pyproject.toml``::

    [tool.hotspots-lint]
    paths = ["src", "tests", "benchmarks", "scripts"]
    exclude = ["tests/analysis/lint_fixtures"]
    entrypoints = ["src/repro/cli.py", "src/repro/__init__.py"]

    [[tool.hotspots-lint.suppress]]
    path = "src/repro/legacy_module.py"
    codes = ["RP002"]

``suppress`` entries form the *baseline*: per-path (glob-matched)
lists of codes that do not fail the build, so a new checker can land
before the last violation is fixed.  The shipped baseline is empty —
the repo lints clean — and the defaults below keep the linter useful
even without a readable ``pyproject.toml`` (Python < 3.11 without
``tomllib``).
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping, Optional, Sequence

#: Directories walked when ``hotspots lint`` is invoked without paths.
DEFAULT_PATHS: tuple[str, ...] = ("src", "tests", "benchmarks", "scripts")

#: Path fragments never linted: checker fixtures *are* violations.
DEFAULT_EXCLUDE: tuple[str, ...] = (
    "tests/analysis/lint_fixtures",
    "tests/analysis/flow_fixtures",
)

#: Files allowed to call ``np.random.default_rng()`` without a seed
#: (interactive entrypoints where fresh entropy is the point).
DEFAULT_ENTRYPOINTS: tuple[str, ...] = (
    "src/repro/cli.py",
    "src/repro/__init__.py",
)

#: Where RP006 finds the experiment registry and the test tree.
DEFAULT_REGISTRY_MODULE = "repro.experiments.registry"
DEFAULT_REGISTRY_ATTR = "REGISTRY"
DEFAULT_TESTS_PATH = "tests"


@dataclass(frozen=True)
class Suppression:
    """One baseline entry: codes tolerated under a path glob."""

    path: str
    codes: tuple[str, ...] = ()

    def matches(self, relpath: str, code: str) -> bool:
        """True when this entry silences ``code`` in ``relpath``."""
        if self.codes and code not in self.codes:
            return False
        return (
            fnmatch.fnmatch(relpath, self.path)
            or relpath == self.path
            or relpath.startswith(self.path.rstrip("/") + "/")
        )


@dataclass(frozen=True)
class LintConfig:
    """Resolved lint configuration (defaults merged with TOML)."""

    paths: tuple[str, ...] = DEFAULT_PATHS
    exclude: tuple[str, ...] = DEFAULT_EXCLUDE
    entrypoints: tuple[str, ...] = DEFAULT_ENTRYPOINTS
    suppressions: tuple[Suppression, ...] = ()
    registry_module: str = DEFAULT_REGISTRY_MODULE
    registry_attr: str = DEFAULT_REGISTRY_ATTR
    tests_path: str = DEFAULT_TESTS_PATH

    def is_excluded(self, relpath: str) -> bool:
        """True when ``relpath`` (posix, project-relative) is skipped."""
        for pattern in self.exclude:
            if (
                fnmatch.fnmatch(relpath, pattern)
                or relpath == pattern
                or relpath.startswith(pattern.rstrip("/") + "/")
            ):
                return True
        return False

    def is_entrypoint(self, relpath: str) -> bool:
        """True when ``relpath`` is a designated RP002 entrypoint."""
        return any(
            fnmatch.fnmatch(relpath, pattern) or relpath == pattern
            for pattern in self.entrypoints
        )

    def is_suppressed(self, relpath: str, code: str) -> bool:
        """True when the baseline silences ``code`` in ``relpath``."""
        return any(
            suppression.matches(relpath, code)
            for suppression in self.suppressions
        )


def _str_tuple(value: Any, key: str) -> tuple[str, ...]:
    if not isinstance(value, (list, tuple)) or not all(
        isinstance(item, str) for item in value
    ):
        raise TypeError(f"[tool.hotspots-lint] {key} must be a list of strings")
    return tuple(value)


def config_from_mapping(data: Mapping[str, Any]) -> LintConfig:
    """Build a :class:`LintConfig` from a parsed TOML table."""
    kwargs: dict[str, Any] = {}
    for key in ("paths", "exclude", "entrypoints"):
        if key in data:
            kwargs[key] = _str_tuple(data[key], key)
    for key, attr in (
        ("registry-module", "registry_module"),
        ("registry-attr", "registry_attr"),
        ("tests-path", "tests_path"),
    ):
        value = data.get(key, data.get(attr.replace("-", "_")))
        if value is not None:
            if not isinstance(value, str):
                raise TypeError(f"[tool.hotspots-lint] {key} must be a string")
            kwargs[attr] = value
    suppressions = []
    for entry in data.get("suppress", ()):
        if not isinstance(entry, Mapping) or "path" not in entry:
            raise TypeError(
                "[[tool.hotspots-lint.suppress]] entries need a 'path' key"
            )
        suppressions.append(
            Suppression(
                path=str(entry["path"]),
                codes=_str_tuple(entry.get("codes", []), "suppress.codes"),
            )
        )
    kwargs["suppressions"] = tuple(suppressions)
    return LintConfig(**kwargs)


def _read_pyproject_table(pyproject: Path) -> Optional[Mapping[str, Any]]:
    """The ``[tool.hotspots-lint]`` table, or ``None`` if unavailable."""
    try:
        import tomllib
    except ImportError:  # Python < 3.11: fall back to defaults.
        return None
    try:
        with open(pyproject, "rb") as handle:
            document = tomllib.load(handle)
    except (OSError, tomllib.TOMLDecodeError):
        return None
    tool = document.get("tool", {})
    table = tool.get("hotspots-lint", tool.get("hotspots_lint"))
    if table is None:
        return None
    if not isinstance(table, Mapping):
        raise TypeError("[tool.hotspots-lint] must be a table")
    return table


def load_config(
    root: Path, config_file: Optional[Path] = None
) -> LintConfig:
    """The effective configuration for a project rooted at ``root``.

    Reads ``config_file`` (default: ``<root>/pyproject.toml``) when a
    TOML parser is available; otherwise — and when the file or table
    is absent — the shipped defaults apply unchanged.
    """
    pyproject = config_file or (root / "pyproject.toml")
    table = _read_pyproject_table(pyproject)
    if table is None:
        return LintConfig()
    return config_from_mapping(table)


def default_config() -> LintConfig:
    """The built-in defaults (used when no TOML is readable)."""
    return LintConfig()


__all__: Sequence[str] = [
    "LintConfig",
    "Suppression",
    "config_from_mapping",
    "default_config",
    "load_config",
]
