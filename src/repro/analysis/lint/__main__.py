"""``python -m repro.analysis.lint`` — same as ``hotspots lint``."""

import sys

from repro.analysis.lint.cli import main

if __name__ == "__main__":
    sys.exit(main())
