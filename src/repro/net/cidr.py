"""CIDR blocks and block sets.

:class:`CIDRBlock` models one aligned, power-of-two sized address block
(the paper's sensor blocks, hit-list prefixes, and private ranges are
all CIDR blocks).  :class:`BlockSet` holds many blocks and answers
vectorized membership queries, which is how the simulator decides which
scan probes landed on a darknet sensor or inside a policy region.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.net.address import ADDRESS_SPACE_SIZE, format_addr, parse_addr


@dataclass(frozen=True, order=True)
class CIDRBlock:
    """An aligned IPv4 CIDR block, e.g. ``192.0.0.0/8``.

    Attributes
    ----------
    network:
        Integer address of the first address in the block.  Must be
        aligned to the prefix length.
    prefix_len:
        Number of leading prefix bits (0-32).
    """

    network: int
    prefix_len: int

    def __post_init__(self) -> None:
        if not 0 <= self.prefix_len <= 32:
            raise ValueError(f"prefix length out of range: {self.prefix_len}")
        if not 0 <= self.network < ADDRESS_SPACE_SIZE:
            raise ValueError(f"network address out of range: {self.network}")
        if self.network & (self.size - 1):
            raise ValueError(
                f"network {format_addr(self.network)} not aligned to /{self.prefix_len}"
            )

    @classmethod
    def parse(cls, text: str) -> "CIDRBlock":
        """Parse ``"a.b.c.d/len"`` notation.

        >>> CIDRBlock.parse("10.0.0.0/8").size
        16777216
        """
        addr_text, _, len_text = text.partition("/")
        if not len_text:
            raise ValueError(f"missing prefix length in {text!r}")
        return cls(parse_addr(addr_text), int(len_text))

    @classmethod
    def containing(cls, addr: int, prefix_len: int) -> "CIDRBlock":
        """The /``prefix_len`` block that contains ``addr``."""
        mask = ~((1 << (32 - prefix_len)) - 1) & 0xFFFFFFFF if prefix_len else 0
        return cls(int(addr) & mask, prefix_len)

    @property
    def size(self) -> int:
        """Number of addresses in the block."""
        return 1 << (32 - self.prefix_len)

    @property
    def first(self) -> int:
        """First (lowest) address in the block."""
        return self.network

    @property
    def last(self) -> int:
        """Last (highest) address in the block."""
        return self.network + self.size - 1

    def __contains__(self, addr: object) -> bool:
        if not isinstance(addr, (int, np.integer)):
            return NotImplemented
        return self.first <= int(addr) <= self.last

    def contains_array(self, addrs: np.ndarray) -> np.ndarray:
        """Boolean mask of which ``addrs`` fall inside this block."""
        addrs = np.asarray(addrs, dtype=np.uint32)
        return (addrs >= np.uint32(self.first)) & (addrs <= np.uint32(self.last))

    def subblocks(self, prefix_len: int) -> Iterator["CIDRBlock"]:
        """Iterate the /``prefix_len`` blocks inside this block."""
        if prefix_len < self.prefix_len:
            raise ValueError(
                f"/{prefix_len} blocks are larger than this /{self.prefix_len}"
            )
        step = 1 << (32 - prefix_len)
        for network in range(self.first, self.last + 1, step):
            yield CIDRBlock(network, prefix_len)

    def slash24_prefixes(self) -> np.ndarray:
        """The ``addr >> 8`` prefixes of every /24 inside this block."""
        if self.prefix_len > 24:
            return np.array([self.network >> 8], dtype=np.uint32)
        start = self.network >> 8
        count = 1 << (24 - self.prefix_len)
        return (start + np.arange(count, dtype=np.uint32)).astype(np.uint32)

    def overlaps(self, other: "CIDRBlock") -> bool:
        """Whether the two blocks share any address."""
        return self.first <= other.last and other.first <= self.last

    def random_addresses(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``count`` uniform random addresses inside this block."""
        offsets = rng.integers(0, self.size, size=count, dtype=np.uint64)
        return (np.uint64(self.network) + offsets).astype(np.uint32)

    def addresses(self) -> np.ndarray:
        """All addresses in the block (use only for small blocks)."""
        if self.prefix_len < 16:
            raise ValueError("refusing to materialize a block larger than /16")
        return (np.uint64(self.network) + np.arange(self.size, dtype=np.uint64)).astype(
            np.uint32
        )

    def __str__(self) -> str:
        return f"{format_addr(self.network)}/{self.prefix_len}"


class BlockSet:
    """A set of CIDR blocks with vectorized membership tests.

    Blocks may overlap; membership means "inside at least one block".
    Internally the block intervals are merged and sorted so a lookup is
    one ``searchsorted`` per query batch.
    """

    def __init__(self, blocks: Iterable[CIDRBlock] = ()):
        self._blocks: list[CIDRBlock] = sorted(set(blocks))
        starts = []
        ends = []
        for block in self._blocks:
            if starts and block.first <= ends[-1] + 1:
                ends[-1] = max(ends[-1], block.last)
            else:
                starts.append(block.first)
                ends.append(block.last)
        self._starts = np.array(starts, dtype=np.uint64)
        self._ends = np.array(ends, dtype=np.uint64)

    @classmethod
    def parse(cls, texts: Iterable[str]) -> "BlockSet":
        """Build a block set from ``"a.b.c.d/len"`` strings."""
        return cls(CIDRBlock.parse(text) for text in texts)

    @property
    def blocks(self) -> Sequence[CIDRBlock]:
        """The original (deduplicated, sorted) blocks."""
        return tuple(self._blocks)

    @property
    def address_count(self) -> int:
        """Total number of distinct addresses covered."""
        if not len(self._starts):
            return 0
        return int(np.sum(self._ends - self._starts + 1))

    def __len__(self) -> int:
        return len(self._blocks)

    def __contains__(self, addr: object) -> bool:
        if not isinstance(addr, (int, np.integer)):
            return NotImplemented
        return bool(self.contains_array(np.array([addr], dtype=np.uint32))[0])

    def contains_array(self, addrs: np.ndarray) -> np.ndarray:
        """Boolean mask of which ``addrs`` fall inside any block."""
        addrs = np.asarray(addrs, dtype=np.uint32)
        if not len(self._starts):
            return np.zeros(addrs.shape, dtype=bool)
        wide = addrs.astype(np.uint64)
        idx = np.searchsorted(self._starts, wide, side="right") - 1
        valid = idx >= 0
        result = np.zeros(addrs.shape, dtype=bool)
        result[valid] = wide[valid] <= self._ends[idx[valid]]
        return result

    def random_addresses(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``count`` addresses uniformly over the covered space.

        Each covered address is equally likely regardless of which
        block it belongs to (blocks are merged first, so overlaps do
        not double-weight).
        """
        if not len(self._starts):
            raise ValueError("cannot sample from an empty block set")
        sizes = self._ends - self._starts + 1
        cumulative = np.cumsum(sizes)
        total = int(cumulative[-1])
        offsets = rng.integers(0, total, size=count, dtype=np.uint64)
        interval = np.searchsorted(cumulative, offsets, side="right")
        base = np.concatenate([[np.uint64(0)], cumulative[:-1]])
        return (self._starts[interval] + (offsets - base[interval])).astype(np.uint32)

    def union(self, other: "BlockSet") -> "BlockSet":
        """A new block set covering both operands."""
        return BlockSet(list(self.blocks) + list(other.blocks))

    def __repr__(self) -> str:
        preview = ", ".join(str(block) for block in self._blocks[:4])
        suffix = ", ..." if len(self._blocks) > 4 else ""
        return f"BlockSet([{preview}{suffix}], n={len(self._blocks)})"
