"""Compiled interval kernels for the probe hot path.

The simulator pushes millions of probes per tick through address
classification: longest-prefix policy matches, special-range checks,
sensor membership.  Walking a radix trie (or scanning per-sensor
blocks) per address is the dominant cost at figure scale, so the hot
path compiles those structures down to one shared shape — a sorted
partition of the 2^32 address space into half-open intervals — and
answers whole batches with one :class:`IntervalLocator` pass.

:class:`CompiledLPM` is that flattened table.  It is produced by
:meth:`repro.net.prefixtree.PrefixTree.compile` and consumed by the
filtering policy, the special-range classifier, and anything else
that needs batched longest-prefix-match.  A compiled table is frozen:
mutating the source tree does not update it (the tree's ``compiled()``
accessor re-compiles lazily on version change).

``kernel_override`` is the escape hatch the equivalence tests and the
benchmark baseline use to force the pre-kernel reference paths; it
exists so "kernelized run ≡ reference run" stays checkable forever.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator, Optional, Sequence

import numpy as np

#: ``lookup_indices`` result for addresses no prefix covers.
NO_VALUE = -1

_kernels_enabled = True


def kernels_enabled() -> bool:
    """Whether compiled kernels are globally enabled (default: yes)."""
    return _kernels_enabled


@contextmanager
def kernel_override(enabled: bool) -> Iterator[None]:
    """Force compiled kernels on or off within a ``with`` block.

    The equivalence harness runs every experiment twice — once under
    ``kernel_override(False)`` (the reference per-rule / per-sensor
    paths) and once normally — and demands bitwise-equal results.
    """
    global _kernels_enabled
    previous = _kernels_enabled
    _kernels_enabled = enabled
    try:
        yield
    finally:
        _kernels_enabled = previous


#: Bucket granularity of :class:`IntervalLocator`: one direct-indexed
#: slot per /16, small enough to stay cache-resident (256 KiB).
_BUCKET_BITS = 16
_BUCKET_SHIFT = np.uint64(32 - _BUCKET_BITS)
_BUCKET_SHIFT_32 = np.uint32(32 - _BUCKET_BITS)

#: Tables at or below this size locate by summed compares instead of
#: bucket gathers.  Random gathers cost ~10x a SIMD compare pass per
#: element, so the crossover sits around a few dozen intervals.
_SMALL_TABLE_MAX = 32

#: Densest-bucket step bound beyond which the bucketed path would
#: degenerate (each advance step is a full-batch pass); such tables
#: fall back to plain ``searchsorted``.
_MAX_ADVANCE_STEPS = 16


class IntervalLocator:
    """Vectorized "which interval?" over sorted interval starts.

    Semantically identical to ``np.searchsorted(starts, addrs,
    side="right") - 1`` but much faster on big batches, where
    per-element binary search is branchy and cache-hostile.  Three
    regimes, chosen at build time:

    * small tables (≤ :data:`_SMALL_TABLE_MAX` starts): the slot is
      the number of starts at or below the address, computed as a sum
      of pure SIMD compare passes — no gathers at all;
    * spread-out tables: a direct-indexed /16 bucket table precomputes
      the slot at every bucket boundary, and the batch resolves with
      one table gather plus a few vectorized advance steps (as many
      as the densest bucket needs, usually 0-3);
    * tables clustered so tightly that one /16 bucket would need more
      than :data:`_MAX_ADVANCE_STEPS` advance steps (hotspot-shaped
      address sets): plain ``searchsorted``, so the locator never
      loses to the reference it replaces.
    """

    __slots__ = ("_starts32", "_starts_ext", "_bucket_slot", "_max_steps")

    def __init__(self, starts: np.ndarray):
        starts = np.asarray(starts, dtype=np.uint64)
        # Starts are addresses, so they always fit uint32; the small
        # and fallback paths compare against them directly to keep
        # every pass at 4 bytes/element.
        self._starts32 = starts.astype(np.uint32)
        self._starts_ext = None
        self._bucket_slot = None
        self._max_steps = 0
        if len(starts) <= _SMALL_TABLE_MAX:
            return
        bounds = np.arange(1 << _BUCKET_BITS, dtype=np.uint64) << _BUCKET_SHIFT
        upper_bounds = np.concatenate(
            [bounds[1:], np.array([1 << 32], dtype=np.uint64)]
        )
        lower_slots = np.searchsorted(starts, bounds, side="right")
        starts_per_bucket = (
            np.searchsorted(starts, upper_bounds, side="left") - lower_slots
        )
        max_steps = int(starts_per_bucket.max())
        if max_steps > _MAX_ADVANCE_STEPS:
            return
        # The advance table stays in uint32 (starts are addresses) so
        # every gather and compare moves 4 bytes per element; the
        # sentinel is the max address, which a real batch can contain —
        # such elements over-advance into the sentinel padding (hence
        # max_steps + 1 pad entries) and the final clip in `locate`
        # pulls them back to the last interval.
        self._starts_ext = np.concatenate(
            [
                self._starts32,
                np.full(
                    max_steps + 1, np.iinfo(np.uint32).max, dtype=np.uint32
                ),
            ]
        )
        self._bucket_slot = lower_slots.astype(np.int32) - 1
        self._max_steps = max_steps

    def locate(self, addrs: np.ndarray) -> np.ndarray:
        """Interval slot per address (``-1`` = before every interval).

        ``addrs`` must be unsigned integers below ``2^32``; pass
        ``uint32`` so every pass stays at 4 bytes/element.
        """
        if self._bucket_slot is not None:
            if addrs.dtype != np.uint32:
                addrs = addrs.astype(np.uint32)
            slot = self._bucket_slot[addrs >> _BUCKET_SHIFT_32]
            for _ in range(self._max_steps):
                advance = self._starts_ext[slot + 1] <= addrs
                if not advance.any():
                    break
                np.add(slot, advance, out=slot, casting="unsafe")
            # Max-address elements ride the sentinel padding past the
            # last interval; everything else is already in range.
            np.minimum(
                slot, np.int32(len(self._starts32) - 1), out=slot
            )
            return slot
        if len(self._starts32) <= _SMALL_TABLE_MAX:
            slot = np.full(addrs.shape, -1, dtype=np.int16)
            for start in self._starts32:
                slot += addrs >= start
            return slot
        return (
            np.searchsorted(self._starts32, addrs, side="right").astype(
                np.int64
            )
            - 1
        )


class CompiledLPM:
    """A longest-prefix-match table flattened to sorted intervals.

    The address space ``[0, 2^32)`` is partitioned into half-open
    intervals: interval ``i`` spans ``[starts[i], starts[i+1])`` (the
    last one runs to the end of the space) and carries
    ``value_index[i]`` — an index into :attr:`values`, or
    :data:`NO_VALUE` where no prefix matches.  A batch lookup is one
    interval-locate regardless of how many prefixes were compiled.
    """

    __slots__ = ("_starts", "_value_index", "_values", "_int_values", "_locator")

    def __init__(
        self,
        starts: np.ndarray,
        value_index: np.ndarray,
        values: Sequence[Any],
    ):
        starts = np.asarray(starts, dtype=np.uint64)
        value_index = np.asarray(value_index, dtype=np.int64)
        if len(starts) == 0 or int(starts[0]) != 0:
            raise ValueError("interval table must start at address 0")
        if len(starts) != len(value_index):
            raise ValueError("starts and value_index must align")
        self._starts = starts
        self._value_index = value_index
        self._values = list(values)
        self._int_values: Optional[np.ndarray] = None
        self._locator = IntervalLocator(starts)

    @property
    def num_intervals(self) -> int:
        """Number of address intervals in the partition."""
        return len(self._starts)

    @property
    def values(self) -> tuple:
        """The compiled value table (index space of ``lookup_indices``)."""
        return tuple(self._values)

    @property
    def interval_starts(self) -> np.ndarray:
        """Sorted interval starts (``uint64``, first entry is 0).

        Together with :attr:`interval_value_index` this is the table's
        *partition form* — the shape :class:`MergedPartition` fuses.
        Treat both arrays as read-only.
        """
        return self._starts

    @property
    def interval_value_index(self) -> np.ndarray:
        """Per-interval index into :attr:`values` (:data:`NO_VALUE` = miss)."""
        return self._value_index

    def interval_int_values(self, default: int = 0) -> np.ndarray:
        """Resolved integer value per interval (``default`` on miss).

        The partition-form analogue of :meth:`lookup_int_array`:
        ``interval_int_values(d)[locator.locate(addrs)]`` equals
        ``lookup_int_array(addrs, d)`` for any batch.
        """
        out = np.full(len(self._value_index), default, dtype=np.int64)
        matched = self._value_index >= 0
        if matched.any():
            ints = np.array(
                [int(value) for value in self._values], dtype=np.int64
            )
            out[matched] = ints[self._value_index[matched]]
        return out

    def lookup_indices(self, addrs: np.ndarray) -> np.ndarray:
        """Per-address index into :attr:`values` (:data:`NO_VALUE` = miss).

        One bucketed interval-locate over the whole batch; output
        shape matches the input shape.
        """
        addrs = np.asarray(addrs, dtype=np.uint32)
        return self._value_index[self._locator.locate(addrs)]

    def lookup_array(self, addrs: np.ndarray, default: Any = None) -> list[Any]:
        """Batched LPM with ``PrefixTree.lookup_array``'s exact contract."""
        indices = self.lookup_indices(np.asarray(addrs).ravel())
        return [
            self._values[index] if index >= 0 else default
            for index in indices
        ]

    def lookup_int_array(self, addrs: np.ndarray, default: int = 0) -> np.ndarray:
        """Vectorized lookup when every compiled value is an integer.

        Returns an ``int64`` array shaped like ``addrs`` with
        ``default`` where no prefix matches.
        """
        if self._int_values is None:
            self._int_values = np.array(
                [int(value) for value in self._values], dtype=np.int64
            )
        indices = self.lookup_indices(addrs)
        matched = indices >= 0
        out = np.full(indices.shape, default, dtype=np.int64)
        if len(self._int_values):
            out[matched] = self._int_values[indices[matched]]
        return out


class MergedPartition:
    """Several interval partitions fused into one locate.

    The per-tick probe path asks three independent "which interval?"
    questions about the *same* target batch — special-range class,
    filtering-policy membership, sensor ownership.  Each component is
    a partition of ``[0, 2^32)``: sorted ``uint64`` starts (first
    entry 0) plus an ``int64`` value per interval.  Merging unions
    every component's breakpoints into one sorted table and
    re-samples each component's values onto the merged intervals, so
    a single :class:`IntervalLocator` pass answers every question::

        slots = merged.locate(targets)          # one locate
        cls   = merged.values(0)[slots]         # special class
        pol   = merged.values(1)[slots]         # policy membership
        own   = merged.values(2)[slots]         # sensor owner

    A merged table is frozen, like every compiled kernel; the caller
    (``sim.engine``'s fused tick path) tracks component versions —
    policy-kernel identity, sensor-index identity — and rebuilds on
    change.
    """

    __slots__ = ("_starts", "_component_values", "_locator")

    def __init__(
        self, components: Sequence[tuple[np.ndarray, np.ndarray]]
    ):
        if not components:
            raise ValueError("need at least one partition component")
        normalized = []
        for starts, values in components:
            starts = np.asarray(starts, dtype=np.uint64)
            values = np.asarray(values, dtype=np.int64)
            if len(starts) == 0 or int(starts[0]) != 0:
                raise ValueError("partition components must start at 0")
            if len(starts) != len(values):
                raise ValueError("starts and values must align")
            normalized.append((starts, values))
        merged = np.unique(
            np.concatenate([starts for starts, _ in normalized])
        )
        self._starts = merged
        # Every component start is a merged start, so the resampling
        # slot is always >= 0.
        self._component_values = tuple(
            values[np.searchsorted(starts, merged, side="right") - 1]
            for starts, values in normalized
        )
        self._locator = IntervalLocator(merged)

    @property
    def num_intervals(self) -> int:
        """Merged interval count (union of every component's starts)."""
        return len(self._starts)

    @property
    def num_components(self) -> int:
        """How many partitions were fused."""
        return len(self._component_values)

    def locate(self, addrs: np.ndarray) -> np.ndarray:
        """Merged interval slot per address (one pass for the batch)."""
        return self._locator.locate(np.asarray(addrs, dtype=np.uint32))

    def values(self, component: int) -> np.ndarray:
        """Component's per-merged-slot value table (index with slots)."""
        return self._component_values[component]
