"""Binary radix trie with longest-prefix-match lookup.

The filtering-policy layer stores per-prefix actions here, mirroring
how routers and firewalls evaluate rules.  Lookups return the value of
the most specific matching prefix.
"""

from __future__ import annotations

from typing import Any, Generic, Iterator, Optional, TypeVar

import numpy as np

from repro.net.cidr import CIDRBlock
from repro.net.kernels import CompiledLPM

V = TypeVar("V")


class _Node(Generic[V]):
    __slots__ = ("children", "value", "has_value")

    def __init__(self) -> None:
        self.children: list[Optional["_Node[V]"]] = [None, None]
        self.value: Optional[V] = None
        self.has_value = False


class PrefixTree(Generic[V]):
    """Maps CIDR prefixes to values with longest-prefix-match semantics."""

    def __init__(self) -> None:
        self._root: _Node[V] = _Node()
        self._count = 0
        self._version = 0
        self._compiled: Optional[CompiledLPM] = None
        self._compiled_version = -1

    def __len__(self) -> int:
        return self._count

    def insert(self, block: CIDRBlock, value: V) -> None:
        """Associate ``value`` with ``block``; replaces any prior value."""
        self._version += 1
        node = self._root
        for depth in range(block.prefix_len):
            bit = (block.network >> (31 - depth)) & 1
            child = node.children[bit]
            if child is None:
                child = _Node()
                node.children[bit] = child
            node = child
        if not node.has_value:
            self._count += 1
        node.value = value
        node.has_value = True

    def lookup(self, addr: int) -> Optional[V]:
        """Value of the longest prefix containing ``addr``, or ``None``."""
        addr = int(addr)
        node = self._root
        best: Optional[V] = node.value if node.has_value else None
        for depth in range(32):
            bit = (addr >> (31 - depth)) & 1
            child = node.children[bit]
            if child is None:
                break
            node = child
            if node.has_value:
                best = node.value
        return best

    def lookup_array(self, addrs: np.ndarray, default: Any = None) -> list[Any]:
        """Longest-prefix lookup for each address in a batch.

        This walks the trie per address; use it for moderate batch
        sizes (policy tables are small, so each walk is short).
        """
        results = []
        for addr in np.asarray(addrs).ravel():
            value = self.lookup(int(addr))
            results.append(default if value is None else value)
        return results

    def compile(self) -> CompiledLPM:
        """Flatten the trie into a :class:`CompiledLPM` interval table.

        Every prefix boundary splits the address space; each resulting
        interval carries the index of the longest prefix covering it.
        The compiled table is a frozen snapshot — later ``insert``
        calls do not update it (use :meth:`compiled` for a cached
        table that re-compiles after mutations).
        """
        entries = list(self.items())
        index_tree: PrefixTree[int] = PrefixTree()
        boundaries = {0}
        for position, (block, _) in enumerate(entries):
            index_tree.insert(block, position)
            boundaries.add(block.first)
            if block.last + 1 < (1 << 32):
                boundaries.add(block.last + 1)
        starts = np.array(sorted(boundaries), dtype=np.uint64)
        value_index = np.array(
            [
                index if (index := index_tree.lookup(int(start))) is not None
                else -1
                for start in starts
            ],
            dtype=np.int64,
        )
        if len(starts) > 1:
            keep = np.concatenate(
                [[True], value_index[1:] != value_index[:-1]]
            )
            starts = starts[keep]
            value_index = value_index[keep]
        return CompiledLPM(
            starts, value_index, [value for _, value in entries]
        )

    def compiled(self) -> CompiledLPM:
        """A cached compiled table, rebuilt after any mutation.

        ``insert`` bumps an internal version counter; this accessor
        re-compiles when the cached table's version is stale, so hot
        paths can call it every batch at zero steady-state cost.
        """
        if self._compiled is None or self._compiled_version != self._version:
            self._compiled = self.compile()
            self._compiled_version = self._version
        return self._compiled

    def items(self) -> Iterator[tuple[CIDRBlock, V]]:
        """Iterate ``(block, value)`` pairs in prefix order."""

        def walk(node: _Node[V], prefix: int, depth: int) -> Iterator[tuple[CIDRBlock, V]]:
            if node.has_value:
                yield CIDRBlock(prefix << (32 - depth) if depth else 0, depth), node.value
            for bit in (0, 1):
                child = node.children[bit]
                if child is not None:
                    yield from walk(child, (prefix << 1) | bit, depth + 1)

        yield from walk(self._root, 0, 0)
