"""Conversions between IPv4 representations.

Addresses are plain Python ``int`` (scalar) or numpy ``uint32`` arrays
(batch).  These helpers are the only sanctioned way to move between the
integer world and dotted-quad strings.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

ADDRESS_SPACE_SIZE = 2**32
MAX_ADDRESS = ADDRESS_SPACE_SIZE - 1


def parse_addr(text: str) -> int:
    """Parse a dotted-quad string into an integer address.

    >>> parse_addr("192.168.0.1")
    3232235521
    """
    parts = text.strip().split(".")
    if len(parts) != 4:
        raise ValueError(f"not a dotted-quad address: {text!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


def format_addr(addr: int) -> str:
    """Format an integer address as a dotted-quad string.

    >>> format_addr(3232235521)
    '192.168.0.1'
    """
    addr = int(addr)
    if not 0 <= addr <= MAX_ADDRESS:
        raise ValueError(f"address out of range: {addr}")
    return ".".join(str((addr >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def octets(addr: int) -> tuple[int, int, int, int]:
    """Split an integer address into its four octets (most significant first)."""
    addr = int(addr)
    return ((addr >> 24) & 0xFF, (addr >> 16) & 0xFF, (addr >> 8) & 0xFF, addr & 0xFF)


def from_octets(a: int, b: int, c: int, d: int) -> int:
    """Build an integer address from four octets.

    >>> format_addr(from_octets(10, 0, 0, 1))
    '10.0.0.1'
    """
    for octet in (a, b, c, d):
        if not 0 <= octet <= 255:
            raise ValueError(f"octet out of range: {octet}")
    return (a << 24) | (b << 16) | (c << 8) | d


def parse_addrs(texts: Iterable[str]) -> np.ndarray:
    """Parse an iterable of dotted-quad strings into a ``uint32`` array."""
    return np.array([parse_addr(text) for text in texts], dtype=np.uint64).astype(
        np.uint32
    )


def format_addrs(addrs: Sequence[int] | np.ndarray) -> list[str]:
    """Format an array of integer addresses as dotted-quad strings."""
    return [format_addr(int(addr)) for addr in np.asarray(addrs).ravel()]
