"""IPv4 address-space substrate.

Everything in the hot path treats IPv4 addresses as unsigned 32-bit
integers (scalars or numpy ``uint32`` arrays).  Dotted-quad strings only
appear at the edges (parsing configuration, printing reports).

Modules
-------
``address``
    Scalar and vectorized conversions between dotted-quad strings,
    integers, and octets.
``cidr``
    :class:`~repro.net.cidr.CIDRBlock` — a contiguous power-of-two
    aligned address block — and :class:`~repro.net.cidr.BlockSet`, a
    collection of blocks with vectorized membership tests.
``special``
    Well-known ranges (RFC 1918 private space, loopback, multicast,
    class E) and routability predicates.
``prefixtree``
    A binary radix trie with longest-prefix-match lookup, used by the
    policy layers.
``kernels``
    Compiled interval tables (:class:`~repro.net.kernels.CompiledLPM`)
    behind the batched hot-path lookups, plus the global kernel
    on/off override the equivalence harness uses.
"""

from repro.net.address import (
    format_addr,
    format_addrs,
    from_octets,
    octets,
    parse_addr,
    parse_addrs,
)
from repro.net.cidr import BlockSet, CIDRBlock
from repro.net.kernels import CompiledLPM, kernel_override, kernels_enabled
from repro.net.prefixtree import PrefixTree
from repro.net.special import (
    LOOPBACK,
    MULTICAST,
    PRIVATE_BLOCKS,
    RESERVED_CLASS_E,
    is_private,
    is_routable,
)

__all__ = [
    "BlockSet",
    "CIDRBlock",
    "CompiledLPM",
    "LOOPBACK",
    "MULTICAST",
    "PRIVATE_BLOCKS",
    "PrefixTree",
    "RESERVED_CLASS_E",
    "format_addr",
    "kernel_override",
    "kernels_enabled",
    "format_addrs",
    "from_octets",
    "is_private",
    "is_routable",
    "octets",
    "parse_addr",
    "parse_addrs",
]
