"""Well-known IPv4 ranges and routability predicates.

The paper's environmental factors hinge on RFC 1918 private space
(``192.168/16`` in particular), so these ranges are first-class here.
"""

from __future__ import annotations

import numpy as np

from repro.net.cidr import BlockSet, CIDRBlock
from repro.net.prefixtree import PrefixTree

#: RFC 1918 private address blocks.
PRIVATE_10 = CIDRBlock.parse("10.0.0.0/8")
PRIVATE_172 = CIDRBlock.parse("172.16.0.0/12")
PRIVATE_192 = CIDRBlock.parse("192.168.0.0/16")
PRIVATE_BLOCKS = BlockSet([PRIVATE_10, PRIVATE_172, PRIVATE_192])

#: Loopback (127/8), multicast (224/4), and class E reserved (240/4).
LOOPBACK = CIDRBlock.parse("127.0.0.0/8")
MULTICAST = CIDRBlock.parse("224.0.0.0/4")
RESERVED_CLASS_E = CIDRBlock.parse("240.0.0.0/4")
ZERO_NETWORK = CIDRBlock.parse("0.0.0.0/8")

#: Everything that is never a legitimate unicast destination on the
#: public Internet.
UNROUTABLE = BlockSet(
    [LOOPBACK, MULTICAST, RESERVED_CLASS_E, ZERO_NETWORK]
)


#: Address classes answered by :func:`classify`.
ADDR_PUBLIC = 0
ADDR_PRIVATE = 1
ADDR_UNROUTABLE = 2


def _build_class_table() -> PrefixTree:
    """The special-range trie behind the compiled classifier."""
    tree: PrefixTree[int] = PrefixTree()
    for block in (LOOPBACK, MULTICAST, RESERVED_CLASS_E, ZERO_NETWORK):
        tree.insert(block, ADDR_UNROUTABLE)
    for block in (PRIVATE_10, PRIVATE_172, PRIVATE_192):
        tree.insert(block, ADDR_PRIVATE)
    return tree


#: Compiled special-range classifier: the private and unroutable
#: blocks never overlap, so one LPM pass assigns every address exactly
#: one class.  The environment layer classifies each probe batch once
#: instead of re-scanning it per block set.
_CLASS_LPM = _build_class_table().compile()


def classify(addrs: np.ndarray) -> np.ndarray:
    """Address class per address (``ADDR_*`` constants).

    One compiled-LPM pass over the batch; everything that is neither
    RFC 1918 private nor in an unroutable range is ``ADDR_PUBLIC``.
    """
    return _CLASS_LPM.lookup_int_array(addrs, default=ADDR_PUBLIC)


def class_partition() -> tuple[np.ndarray, np.ndarray]:
    """The classifier in partition form: ``(starts, class_per_interval)``.

    The component :class:`repro.net.kernels.MergedPartition` fuses:
    ``class_per_interval[locate(addrs)]`` is bit-identical to
    :func:`classify` for any batch.  The table is static for the
    process lifetime (the special ranges never change), so callers may
    cache the returned arrays; treat them as read-only.
    """
    return _CLASS_LPM.interval_starts, _CLASS_LPM.interval_int_values(
        default=ADDR_PUBLIC
    )


def is_private(addrs: np.ndarray) -> np.ndarray:
    """Boolean mask of RFC 1918 private addresses."""
    return classify(addrs) == ADDR_PRIVATE


def is_routable(addrs: np.ndarray) -> np.ndarray:
    """Boolean mask of addresses routable on the public Internet.

    Private space is *not* routable publicly; reachability between
    private hosts behind the same NAT is handled by the environment
    layer, not here.
    """
    return classify(addrs) == ADDR_PUBLIC
