"""Well-known IPv4 ranges and routability predicates.

The paper's environmental factors hinge on RFC 1918 private space
(``192.168/16`` in particular), so these ranges are first-class here.
"""

from __future__ import annotations

import numpy as np

from repro.net.cidr import BlockSet, CIDRBlock

#: RFC 1918 private address blocks.
PRIVATE_10 = CIDRBlock.parse("10.0.0.0/8")
PRIVATE_172 = CIDRBlock.parse("172.16.0.0/12")
PRIVATE_192 = CIDRBlock.parse("192.168.0.0/16")
PRIVATE_BLOCKS = BlockSet([PRIVATE_10, PRIVATE_172, PRIVATE_192])

#: Loopback (127/8), multicast (224/4), and class E reserved (240/4).
LOOPBACK = CIDRBlock.parse("127.0.0.0/8")
MULTICAST = CIDRBlock.parse("224.0.0.0/4")
RESERVED_CLASS_E = CIDRBlock.parse("240.0.0.0/4")
ZERO_NETWORK = CIDRBlock.parse("0.0.0.0/8")

#: Everything that is never a legitimate unicast destination on the
#: public Internet.
UNROUTABLE = BlockSet(
    [LOOPBACK, MULTICAST, RESERVED_CLASS_E, ZERO_NETWORK]
)


def is_private(addrs: np.ndarray) -> np.ndarray:
    """Boolean mask of RFC 1918 private addresses."""
    return PRIVATE_BLOCKS.contains_array(np.asarray(addrs, dtype=np.uint32))


def is_routable(addrs: np.ndarray) -> np.ndarray:
    """Boolean mask of addresses routable on the public Internet.

    Private space is *not* routable publicly; reachability between
    private hosts behind the same NAT is handled by the environment
    layer, not here.
    """
    addrs = np.asarray(addrs, dtype=np.uint32)
    return ~(UNROUTABLE.contains_array(addrs) | is_private(addrs))
