"""Command-line entry point.

Run any paper experiment by id::

    hotspots table1
    hotspots figure5b --set max_time=600
    hotspots --list

Keyword overrides use ``--set name=value``; values parse as Python
literals (ints, floats, tuples), falling back to strings.
"""

from __future__ import annotations

import argparse
import ast
import sys
from typing import Any, Sequence

from repro.experiments.registry import EXPERIMENTS, run_experiment


def _parse_override(text: str) -> tuple[str, Any]:
    name, separator, raw = text.partition("=")
    if not separator:
        raise argparse.ArgumentTypeError(
            f"override must look like name=value, got {text!r}"
        )
    try:
        value = ast.literal_eval(raw)
    except (ValueError, SyntaxError):
        value = raw
    return name, value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hotspots",
        description="Reproduce the tables and figures of the Hotspots "
        "paper (Cooke, Mao, Jahanian — DSN 2006).",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        choices=sorted(EXPERIMENTS),
        help="experiment id to run",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments"
    )
    parser.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        type=_parse_override,
        metavar="NAME=VALUE",
        help="override a run() keyword argument (repeatable)",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list or args.experiment is None:
        for experiment_id in sorted(EXPERIMENTS):
            print(experiment_id)
        return 0
    overrides = dict(args.overrides)
    _, text = run_experiment(args.experiment, **overrides)
    print(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
