"""Command-line entry point.

Run any paper experiment by id::

    hotspots table1
    hotspots figure5b --set max_time=600
    hotspots figure5b --trials 8 --workers 4 --cache
    hotspots --list

Keyword overrides use ``--set name=value``; values parse as Python
literals (ints, floats, tuples), falling back to strings.
``--trials`` repeats the experiment under independently spawned
seeds, ``--workers`` fans those trials out over processes (results
are identical to a serial run), and ``--cache`` memoizes finished
trials on disk so re-runs are instant.

Fault tolerance: ``--retries`` re-executes failed trials under their
original seeds, ``--timeout`` bounds each trial's runtime (hung
workers are replaced), and ``--resume`` (with ``--journal-dir`` to
relocate the checkpoint) skips trials an interrupted run already
completed.  None of these change results — every recovery path is
bitwise-identical to a clean serial run::

    hotspots figure5b --trials 8 --workers 4 --retries 2 --timeout 900
    hotspots figure5b --trials 8 --workers 4 --resume   # after a crash

Mid-run checkpointing (experiments that accept the keywords, e.g.
figure5a/figure5b): ``--checkpoint-every N`` snapshots simulation
state every N ticks into ``--checkpoint-dir``, and
``--restore-from DIR`` resumes a simulation from the latest snapshot
there — the continued run is bitwise-identical to one that never
stopped::

    hotspots figure5b --checkpoint-every 200 --checkpoint-dir ckpt/
    hotspots figure5b --checkpoint-every 200 --restore-from ckpt/

``hotspots lint`` runs the determinism & reproducibility checkers
(:mod:`repro.analysis.lint`) instead of an experiment::

    hotspots lint
    hotspots lint --format json src/repro/sim
"""

from __future__ import annotations

import argparse
import ast
import sys
from contextlib import nullcontext
from typing import Any, Sequence

from repro.experiments import registry
from repro.runtime.cache import ResultCache
from repro.runtime.perf import perf_collection


def _parse_override(text: str) -> tuple[str, Any]:
    name, separator, raw = text.partition("=")
    if not separator:
        raise argparse.ArgumentTypeError(
            f"override must look like name=value, got {text!r}"
        )
    try:
        value = ast.literal_eval(raw)
    except (ValueError, SyntaxError):
        value = raw
    return name, value


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {value}"
        )
    return value


def _workers_count(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"workers must be >= 1, or 0 for all cores; got {value}"
        )
    return value


def _non_negative_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"expected a non-negative integer, got {value}"
        )
    return value


def _positive_float(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {text!r}")
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"expected a positive number of seconds, got {value}"
        )
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hotspots",
        description="Reproduce the tables and figures of the Hotspots "
        "paper (Cooke, Mao, Jahanian — DSN 2006).",
        epilog="The `hotspots lint` subcommand runs the determinism "
        "& reproducibility checkers instead (see `hotspots lint "
        "--help`).",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        choices=registry.experiment_ids(),
        help="experiment id to run",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list available experiments with titles and default params",
    )
    parser.add_argument(
        "--perf",
        action="store_true",
        help="collect per-stage engine timings "
        "(generate/filter/dispatch/infect) and print them to stderr; "
        "forces --workers 1 so every trial is timed in-process",
    )
    parser.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        type=_parse_override,
        metavar="NAME=VALUE",
        help="override a run() keyword argument (repeatable)",
    )
    parser.add_argument(
        "--shards",
        type=_positive_int,
        default=None,
        metavar="K",
        help="partition the simulated address space into K shards "
        "(experiments that accept a `shards` keyword only); an "
        "execution-topology knob like --workers — results are "
        "bitwise-identical to an unsharded run",
    )
    parser.add_argument(
        "--shard-transport",
        choices=("ring", "shmem", "pickle"),
        default=None,
        help="how pooled shard batches move between driver and "
        "workers (experiments that accept a `shard_transport` keyword "
        "only): 'ring' streams dispatches through persistent "
        "shared-memory command rings (default), 'shmem' submits one "
        "executor task per shard-tick over shared-memory arenas, "
        "'pickle' ships arrays through the executor pipe; results are "
        "bitwise-identical either way",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=_positive_int,
        default=None,
        metavar="TICKS",
        help="snapshot mid-run simulation state every TICKS ticks "
        "(experiments that accept a `checkpoint_every` keyword only); "
        "pairs with --checkpoint-dir / --restore-from and never "
        "changes results",
    )
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help="directory receiving mid-run checkpoints "
        "(requires --checkpoint-every)",
    )
    parser.add_argument(
        "--restore-from",
        default=None,
        metavar="DIR",
        help="resume the simulation from the latest checkpoint in DIR; "
        "the continued run is bitwise-identical to an uninterrupted one",
    )
    parser.add_argument(
        "--trials",
        type=_positive_int,
        default=None,
        metavar="N",
        help="Monte-Carlo repetitions under independently spawned seeds "
        "(default: the experiment's trial-count knob, usually 1)",
    )
    parser.add_argument(
        "--workers",
        type=_workers_count,
        default=1,
        metavar="N",
        help="processes to fan trials out over; 1 runs serial, "
        "0 uses every core (results are identical either way)",
    )
    parser.add_argument(
        "--cache",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="memoize finished trials on disk keyed by "
        "(experiment, params, seed); --no-cache disables (default)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="result cache directory (default: $REPRO_CACHE_DIR or "
        "~/.cache/hotspots-repro)",
    )
    parser.add_argument(
        "--retries",
        type=_non_negative_int,
        default=0,
        metavar="N",
        help="extra attempts for a failed or timed-out trial; retries "
        "re-execute the identical seeded trial, so results never change "
        "(default: 0)",
    )
    parser.add_argument(
        "--timeout",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help="per-trial runtime bound under parallel execution; a hung "
        "trial's worker pool is replaced and the trial retried per "
        "--retries (default: unbounded)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="skip trials a previous (interrupted) run of this exact "
        "campaign already completed, per its journal; implies --cache",
    )
    parser.add_argument(
        "--journal-dir",
        default=None,
        metavar="DIR",
        help="where campaign journals (completion checkpoints) live "
        "(default: $REPRO_JOURNAL_DIR or ~/.cache/hotspots-repro/"
        "journals); passing it enables journaling and implies --cache",
    )
    return parser


def _format_default(value: Any) -> str:
    if isinstance(value, float) and value == int(value):
        return str(int(value))
    return repr(value)


def _list_experiments() -> str:
    lines = []
    width = max(len(experiment_id) for experiment_id in registry.REGISTRY)
    for experiment_id in registry.experiment_ids():
        experiment = registry.get(experiment_id)
        lines.append(f"{experiment_id:<{width}}  {experiment.title}")
        shown = {
            name: value
            for name, value in experiment.display_params().items()
            if value is not None
        }
        if shown:
            rendered = ", ".join(
                f"{name}={_format_default(value)}"
                for name, value in shown.items()
            )
            lines.append(f"{'':<{width}}  defaults: {rendered}")
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "lint":
        # The lint suite has its own option surface; dispatch before
        # experiment-oriented parsing sees (and rejects) its flags.
        from repro.analysis.lint.cli import main as lint_main

        return lint_main(list(argv[1:]))
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list or args.experiment is None:
        print(_list_experiments())
        return 0

    cache = None
    journaling = args.resume or args.journal_dir is not None
    if args.cache or args.cache_dir is not None or journaling:
        # --resume/--journal-dir imply --cache: the journal records
        # which trials finished; the cache holds their results.
        cache = ResultCache(args.cache_dir)
    overrides = dict(args.overrides)
    if args.shards is not None:
        if "shards" in overrides:
            parser.error(
                "--shards conflicts with --set shards=...; pass one"
            )
        overrides["shards"] = args.shards
    for flag, name in (
        ("--shard-transport", "shard_transport"),
        ("--checkpoint-every", "checkpoint_every"),
        ("--checkpoint-dir", "checkpoint_dir"),
        ("--restore-from", "restore_from"),
    ):
        value = getattr(args, name)
        if value is None:
            continue
        if name in overrides:
            parser.error(f"{flag} conflicts with --set {name}=...; pass one")
        overrides[name] = value
    if args.checkpoint_dir is not None and args.checkpoint_every is None:
        parser.error("--checkpoint-dir requires --checkpoint-every")
    experiment = registry.get(args.experiment)
    workers = args.workers
    perf_context = nullcontext()
    if args.perf:
        if workers != 1:
            print(
                "[perf] forcing --workers 1 (stage timings are "
                "collected in-process)",
                file=sys.stderr,
            )
            workers = 1
        perf_context = perf_collection()
    try:
        with perf_context:
            campaign = experiment.run(
                trials=args.trials,
                workers=workers,
                cache=cache,
                retry=args.retries,
                timeout=args.timeout,
                journal_dir=args.journal_dir,
                resume=args.resume,
                raise_on_failure=False,
                **overrides,
            )
    except TypeError as error:
        # Typically an unknown --set override; argparse-style message,
        # not a traceback.
        parser.error(f"invalid arguments for {args.experiment!r}: {error}")
    except ValueError as error:
        parser.error(f"invalid value for {args.experiment!r}: {error}")
    print(campaign.formatted())
    report = campaign.report
    perf_line = report.perf_summary() if report is not None else None
    if perf_line is not None:
        print(f"[perf] {perf_line}", file=sys.stderr)
    if report is not None and (
        not report.uneventful or report.recovery_events
    ):
        # Recoveries and failures are worth a stderr line even on
        # success; silence only covers the boring case.  Checkpoint
        # writes alone keep the run "uneventful" but still get their
        # count printed so --checkpoint-every is visibly working.
        print(f"[runner] {report.describe()}", file=sys.stderr)
    if report is not None and not report.ok:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
