"""One module per table and figure of the paper's evaluation.

Every experiment exposes a ``run(...)`` function returning a plain
dataclass of series/rows, plus a ``format_result`` helper that prints
them the way the paper's artifact does.  The registry maps experiment
ids (``table1``, ``figure5b``, ...) to their runners for the CLI and
the benchmark harness.
"""

from repro.experiments.registry import EXPERIMENTS, run_experiment

__all__ = ["EXPERIMENTS", "run_experiment"]
