"""One module per table and figure of the paper's evaluation.

Every experiment exposes a ``run(...)`` function returning a plain
dataclass of series/rows, plus a ``format_result`` helper that prints
them the way the paper's artifact does.  The registry holds one
declarative :class:`~repro.experiments.registry.Experiment` record
per id (``table1``, ``figure5b``, ...) — the shared definition the
CLI, the parallel trial runner, and the benchmark harness all
consume.
"""

from repro.experiments.registry import (
    REGISTRY,
    Experiment,
    ExperimentRun,
    experiment_ids,
    get,
)

__all__ = [
    "REGISTRY",
    "Experiment",
    "ExperimentRun",
    "experiment_ids",
    "get",
]
