"""Table 1 — botnet scan commands captured on a live /15 network.

The paper's table lists ~15 anonymized propagation commands from
about 11 bots seen in one month.  We synthesize an IRC capture with
the same structure, run the signature extractor over it, and render
the recovered commands in the paper's anonymized style.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.botnet.commands import anonymize_command
from repro.botnet.corpus import extract_commands, synthesize_capture


@dataclass(frozen=True)
class Table1Row:
    """One recovered command."""

    bot_id: int
    command: str  # anonymized, Table 1 style
    hitlist_prefix_len: int


@dataclass(frozen=True)
class Table1Result:
    """The reproduced table."""

    rows: tuple[Table1Row, ...]
    num_bots: int
    capture_lines: int

    @property
    def restricted_fraction(self) -> float:
        """Fraction of commands restricting scans to a subnet."""
        if not self.rows:
            return 0.0
        restricted = sum(1 for row in self.rows if row.hitlist_prefix_len >= 8)
        return restricted / len(self.rows)


def run(
    num_bots: int = 11,
    commands_per_bot: tuple[int, int] = (1, 3),
    seed: int = 2004,
) -> Table1Result:
    """Synthesize the capture, extract commands, build the table."""
    rng = np.random.default_rng(seed)
    capture = synthesize_capture(num_bots, commands_per_bot, rng)
    extracted = extract_commands(capture)
    rows = tuple(
        Table1Row(
            bot_id=line.source_bot,
            command=anonymize_command(command),
            hitlist_prefix_len=command.hitlist_block().prefix_len,
        )
        for line, command in extracted
    )
    return Table1Result(rows=rows, num_bots=num_bots, capture_lines=len(capture))


def format_result(result: Table1Result) -> str:
    """Render rows the way the paper's Table 1 prints them."""
    lines = ["Bot Propagation Command (captured on synthetic /15 capture)"]
    lines.extend(f"  {row.command}" for row in result.rows)
    lines.append(
        f"-- {len(result.rows)} commands from {result.num_bots} bots; "
        f"{result.restricted_fraction:.0%} restrict scanning to a subnet"
    )
    return "\n".join(lines)
