"""Figure 1 — Blaster unique source IPs by /24, and seed forensics.

Reproduces two linked results:

1. the per-/24 unique-source histogram over a dark /17 block (the
   paper plots the I/17 sensor) for a large Blaster population seeded
   by ``GetTickCount()`` at worm start — the hotspot spikes.  The
   worm-start tick model: boot (~30 s ± 1 s) plus a lognormal service
   launch delay centred at 4.5 minutes, quantized to the ~16 ms
   ``GetTickCount`` resolution; the quantization makes many hosts
   share a seed and therefore share a scan start address.
2. the inversion: spike-onset /24s map back, through the decompiled
   seed-to-target map, to worm-start times of ~1-20 minutes (the
   paper: "approximately 1 minute to 20 minutes ... centered around
   4-5 minutes"), while cold /24s map only to implausible uptimes.

Host addresses come from the clustered synthetic population and the
monitored block is placed in *unallocated* space — a darknet — so the
40% local-start branch (which starts near the host's own address)
rarely reaches it and the shared random-branch starts stand out.

Population sweeps are fast-forwarded analytically by
:class:`~repro.analysis.blaster_seeds.BlasterSweepModel`; this is
exact for a sequential scanner, so million-host months are cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analysis.blaster_seeds import BlasterSweepModel, SeedTargetMap
from repro.analysis.hotspots import HotspotReport, hotspot_report
from repro.net.cidr import CIDRBlock
from repro.population.synthesis import (
    PopulationSpec,
    synthesize_clustered_population,
)
from repro.prng.entropy import BootTimeModel
from repro.worms.blaster import blaster_starts_for_seeds

#: A count step-up of at least this many hosts marks a genuine shared
#: scan-start (boot-seed cluster) rather than a lone long-uptime host.
SPIKE_ONSET_THRESHOLD = 3


@dataclass(frozen=True)
class Figure1Result:
    """Per-/24 counts over the monitored block plus seed forensics."""

    block: CIDRBlock
    unique_sources: np.ndarray
    hotspots: HotspotReport
    spike_boot_minutes: tuple[float, ...]
    cold_boot_minutes: tuple[float, ...]
    plausible_window_minutes: tuple[float, float]

    @property
    def spikes_have_plausible_start_times(self) -> bool:
        """Spike /24s should invert to worm-start times in the window."""
        low, high = self.plausible_window_minutes
        return bool(self.spike_boot_minutes) and all(
            low * 0.5 <= minutes <= high * 1.5
            for minutes in self.spike_boot_minutes
        )

    @property
    def cold_bins_look_implausible(self) -> bool:
        """Cold /24s invert to nothing or to long-uptime tick values."""
        _, high = self.plausible_window_minutes
        return all(minutes > high for minutes in self.cold_boot_minutes)


def _spiky_dark_slash17(
    population: np.ndarray,
    starts: np.ndarray,
    plausible: np.ndarray,
) -> CIDRBlock:
    """The dark /17 where the boot-seed hotspots are most visible.

    The paper plots the I block because "hotspots are clearly visible
    in the middle of the I sensor block" — i.e. the figure shows the
    sensor that caught the phenomenon.  We make the same editorial
    choice programmatically: among /17s inside unallocated /8s, take
    the one containing the most shared (plausible-seed) scan starts.
    """
    populated = set(np.unique(population >> 24).tolist())
    dark_octets = {
        octet
        for octet in range(1, 224)
        if octet not in populated and octet not in (10, 127, 172, 192)
    }
    cluster_starts = starts[plausible]
    slash17 = (cluster_starts >> np.uint32(15)).astype(np.int64)
    unique17, point_counts = np.unique(slash17, return_counts=True)
    order = np.argsort(point_counts)[::-1]
    for index in order:
        prefix17 = int(unique17[index])
        if (prefix17 >> 9) in dark_octets:
            return CIDRBlock(prefix17 << 15, 17)
    raise RuntimeError("no dark /17 received any cluster start")


def run(
    num_hosts: int = 1_000_000,
    reach: int = 30_000,
    block_spec: Optional[str] = None,
    uptime_fraction: float = 0.1,
    seed: int = 2003,
) -> Figure1Result:
    """Model the Blaster population and invert its hotspots.

    ``reach`` is each host's scan budget in addresses over the
    observation window; ``uptime_fraction`` hosts carry long-uptime
    (non-reboot) seeds rather than fresh-boot seeds.  ``block_spec``
    overrides the auto-selected dark /17.
    """
    rng = np.random.default_rng(seed)

    boot_model = BootTimeModel(
        uptime_fraction=uptime_fraction,
        launch_delay_median_seconds=270.0,
        tick_resolution_ms=16,
    )
    seeds = boot_model.sample_seeds(num_hosts, rng).astype(np.uint64)
    population = synthesize_clustered_population(PopulationSpec(), rng)
    sources = rng.choice(population, size=num_hosts, replace=True)
    starts, _ = blaster_starts_for_seeds(seeds, sources.astype(np.uint32))

    low_tick, high_tick = boot_model.seed_probability_window()
    plausible = (seeds >= low_tick) & (seeds <= high_tick)
    block = (
        CIDRBlock.parse(block_spec)
        if block_spec is not None
        else _spiky_dark_slash17(population, starts, plausible)
    )
    sweep = BlasterSweepModel(starts, reach=reach)
    counts = sweep.sweep_block(block).unique_sources

    # Forensics.  A spike *onset* — a sharp count increase from one
    # /24 to the next — marks a shared scan-start address at that /24;
    # inverting the exact /24 through the seed map recovers candidate
    # ticks.  Boot-cluster seeds are small (minutes); long-uptime
    # strays are uniform over hours, so the smallest candidate is the
    # explanation a forensic analyst would report.
    seed_map = SeedTargetMap()
    prefixes = block.slash24_prefixes()
    onsets = np.diff(counts, prepend=counts[:1])
    spike_prefixes = prefixes[onsets >= SPIKE_ONSET_THRESHOLD]
    cold_prefixes = prefixes[np.argsort(counts, kind="stable")[:5]]

    def smallest_candidate_minutes(prefix_list: np.ndarray) -> tuple[float, ...]:
        out = []
        for prefix in prefix_list:
            addr = int(prefix) << 8
            ticks = seed_map.seeds_for_window(addr, addr | 0xFF)
            if len(ticks):
                out.append(float(ticks.min()) / 60_000.0)
        return tuple(out)

    return Figure1Result(
        block=block,
        unique_sources=counts,
        hotspots=hotspot_report(counts),
        spike_boot_minutes=smallest_candidate_minutes(spike_prefixes),
        cold_boot_minutes=smallest_candidate_minutes(cold_prefixes),
        plausible_window_minutes=(low_tick / 60_000.0, high_tick / 60_000.0),
    )


def format_result(result: Figure1Result) -> str:
    """Figure 1 as a text summary."""
    counts = result.unique_sources
    low, high = result.plausible_window_minutes
    lines = [
        f"Blaster unique sources by /24 over {result.block} "
        f"({len(counts)} bins)",
        f"  total={counts.sum()}  max={counts.max()}  min={counts.min()}  "
        f"gini={result.hotspots.gini:.3f}  "
        f"peak/mean={result.hotspots.peak_to_mean:.1f}",
        f"  spike /24s map to worm-start times (min): "
        f"{[round(m, 1) for m in result.spike_boot_minutes]} "
        f"(plausible window {low:.1f}-{high:.1f})",
        f"  cold /24s map to (min): "
        f"{[round(m, 1) for m in result.cold_boot_minutes]}",
        f"  uniform by chi-square? {result.hotspots.is_uniform}",
    ]
    return "\n".join(lines)
