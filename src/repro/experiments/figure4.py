"""Figure 4 — CodeRedII, private address space, and the M-block
hotspot.

* (a) a CodeRedII-infected population containing hosts NATed at
  192.168/16 addresses produces a large unique-source hotspot at the
  M sensor block (which sits inside 192/8): a NATed host's /8-local
  probes target 192/8, and since 192.168/16 is the only private /16
  there, almost all of them leak onto the public Internet.
* (b) the quarantine experiment, public source: one captured worm
  instance at an address outside 192/8 sends ~7.57 M probes; only a
  trickle reaches the monitored blocks.
* (c) the quarantine experiment repeated with the host at
  192.168.0.100: the same probe budget now puts a distinct spike on
  the M block.

The quarantine harness is exactly the paper's honeypot/VMWare setup:
the worm's target generator run standalone with a controlled source
address, binned over the same sensor /24s.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.env.environment import NetworkEnvironment
from repro.net.address import parse_addr
from repro.population.synthesis import (
    PopulationSpec,
    nat_population,
    synthesize_clustered_population,
)
from repro.sensors.darknet import DarknetSensor, ims_standard_deployment
from repro.worms.codered2 import CodeRedIIWorm


@dataclass(frozen=True)
class QuarantineRun:
    """Scan-target histogram of one quarantined infected host."""

    source: int
    probes: int
    hits_by_block: Mapping[str, np.ndarray]

    def total(self, name: str) -> int:
        """Probes that landed in one block."""
        return int(self.hits_by_block[name].sum())


@dataclass(frozen=True)
class Figure4Result:
    """Population observations plus the two quarantine runs."""

    unique_sources_by_block: Mapping[str, np.ndarray]
    public_quarantine: QuarantineRun
    private_quarantine: QuarantineRun

    def per_slash24_mean(self, name: str) -> float:
        """Mean unique sources per /24 of one block."""
        return float(self.unique_sources_by_block[name].mean())

    @property
    def m_block_hotspot(self) -> bool:
        """M sees far more unique sources per /24 than other blocks."""
        m_mean = self.per_slash24_mean("M")
        others = [
            self.per_slash24_mean(name)
            for name in self.unique_sources_by_block
            if name != "M"
        ]
        return m_mean > 5 * max(others)

    @property
    def quarantine_contrast(self) -> bool:
        """Only the 192.168 source produces the M spike."""
        return (
            self.private_quarantine.total("M")
            > 20 * max(self.public_quarantine.total("M"), 1)
        )


def _quarantine(
    source_text: str,
    probes: int,
    sensors: list[DarknetSensor],
    rng: np.random.Generator,
) -> QuarantineRun:
    """The honeypot harness: one infected host, raw target binning."""
    worm = CodeRedIIWorm()
    source = parse_addr(source_text)
    hits: dict[str, np.ndarray] = {
        sensor.name: np.zeros(sensor.num_slash24, dtype=np.int64)
        for sensor in sensors
    }
    state = worm.new_state()
    worm.add_hosts(state, np.array([source], dtype=np.uint32), rng)
    remaining = probes
    while remaining > 0:
        chunk = min(remaining, 1_000_000)
        remaining -= chunk
        targets = worm.generate(state, chunk, rng)[0]
        for sensor in sensors:
            inside = sensor.block.contains_array(targets)
            if not inside.any():
                continue
            bins = (
                targets[inside] - np.uint32(sensor.block.first)
            ) >> np.uint32(8)
            hits[sensor.name] += np.bincount(
                bins.astype(np.int64), minlength=sensor.num_slash24
            )
    return QuarantineRun(source=source, probes=probes, hits_by_block=hits)


def run(
    num_hosts: int = 3_000,
    nat_fraction: float = 0.15,
    probes_per_host: int = 20_000,
    quarantine_probes: int = 7_567_093,
    seed: int = 2005,
) -> Figure4Result:
    """Run the population observation and both quarantine runs."""
    rng = np.random.default_rng(seed)
    sensors = ims_standard_deployment()

    # Population study (a): persistent CRII-infected hosts, a
    # fraction NATed at 192.168/16, scanning through the environment.
    population = synthesize_clustered_population(PopulationSpec(), rng)
    infected = rng.choice(population, size=num_hosts, replace=False)
    infected, nat = nat_population(infected, nat_fraction, rng)
    environment = NetworkEnvironment(nat=nat)

    worm = CodeRedIIWorm()
    state = worm.new_state()
    worm.add_hosts(state, infected, rng)
    remaining = probes_per_host
    while remaining > 0:
        chunk = min(remaining, max(1, 2_000_000 // num_hosts))
        remaining -= chunk
        targets = worm.generate(state, chunk, rng)
        sources = np.broadcast_to(state.addresses()[:, None], targets.shape)
        deliverable = environment.deliverable(
            sources.ravel(), targets.ravel(), rng, worm=worm.name
        )
        flat_sources = sources.ravel()[deliverable]
        flat_targets = targets.ravel()[deliverable]
        for sensor in sensors:
            sensor.observe(flat_sources, flat_targets)
    unique_by_block = {
        sensor.name: sensor.unique_sources_by_slash24() for sensor in sensors
    }

    # Quarantine runs (b) and (c).
    public_run = _quarantine("141.213.4.4", quarantine_probes, sensors, rng)
    private_run = _quarantine("192.168.0.100", quarantine_probes, sensors, rng)

    return Figure4Result(
        unique_sources_by_block=unique_by_block,
        public_quarantine=public_run,
        private_quarantine=private_run,
    )


def format_result(result: Figure4Result) -> str:
    """Figure 4 as per-block summaries."""
    lines = ["CodeRedII unique sources per /24 (population with NATed hosts):"]
    for name, counts in sorted(result.unique_sources_by_block.items()):
        lines.append(
            f"  {name}: mean/24={counts.mean():.3f}  max={counts.max()}"
        )
    lines.append(
        "Quarantine (public source) hits by block: "
        + str({n: result.public_quarantine.total(n) for n in result.unique_sources_by_block})
    )
    lines.append(
        "Quarantine (192.168.0.100) hits by block: "
        + str({n: result.private_quarantine.total(n) for n in result.unique_sources_by_block})
    )
    lines.append(f"  M-block hotspot? {result.m_block_hotspot}")
    lines.append(f"  quarantine contrast? {result.quarantine_contrast}")
    return "\n".join(lines)
