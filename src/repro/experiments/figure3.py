"""Figure 3 — per-host Slammer scanning bias and the LCG cycle
spectrum.

* (a) **Host A**: a Slammer instance whose seed landed on a cycle
  that traverses the I block but *not* the D block — D observes zero
  infection attempts from it while I receives the most.
* (b) **Host B**: an instance on a 2^30 cycle observed before it has
  covered the cycle; its partial walk produces high intra-block
  per-/24 variance ("a distinct pattern").
* (c) the period of every cycle of the Slammer LCG — 64 cycles whose
  lengths span from 1 to 2^30, including the tiny cycles that turn an
  infected host into a targeted-DoS source.

The per-host replays are bit-exact worm executions (blocked LCG
stream + little-endian address mapping), binned over the same sensor
blocks as Figure 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.experiments.figure2 import paper_block_positions
from repro.net.cidr import CIDRBlock
from repro.prng.cycles import cycle_structure
from repro.prng.lcg import LCG
from repro.worms.slammer import SLAMMER_A, SLAMMER_B_VALUES, address_to_state


@dataclass(frozen=True)
class HostFootprint:
    """One host's per-/24 probe counts over the monitored blocks."""

    label: str
    b_value: int
    seed_state: int
    probes: int
    counts_by_block: Mapping[str, np.ndarray]

    def total(self, name: str) -> int:
        """Probes landing anywhere in one block."""
        return int(self.counts_by_block[name].sum())


@dataclass(frozen=True)
class Figure3Result:
    """Host footprints plus the cycle-length spectrum."""

    host_a: HostFootprint
    host_b: HostFootprint
    cycle_lengths: tuple[int, ...]

    @property
    def host_a_block_bias(self) -> bool:
        """Host A misses one block entirely while hitting another."""
        totals = [self.host_a.total(name) for name in ("D", "H", "I")]
        return min(totals) == 0 and max(totals) > 0

    @property
    def spectrum_spans_orders_of_magnitude(self) -> bool:
        """Cycle lengths range from single digits to ~10^9."""
        return self.cycle_lengths[0] <= 2 and self.cycle_lengths[-1] == 2**30


def _replay_host(
    label: str,
    b_value: int,
    seed_state: int,
    probes: int,
    blocks: Mapping[str, CIDRBlock],
) -> HostFootprint:
    """Run one Slammer host bit-exactly and bin its probes."""
    lcg = LCG(SLAMMER_A, b_value, seed=seed_state)
    states = lcg.stream_fast(probes)
    targets = address_to_state(states.astype(np.uint32))
    counts = {}
    for name, block in blocks.items():
        prefixes = block.slash24_prefixes()
        inside = block.contains_array(targets)
        bins = (targets[inside] >> np.uint32(8)) - prefixes[0]
        counts[name] = np.bincount(
            bins.astype(np.int64), minlength=len(prefixes)
        )
    return HostFootprint(
        label=label,
        b_value=b_value,
        seed_state=seed_state,
        probes=probes,
        counts_by_block=counts,
    )


def _biased_host_seed(blocks: Mapping[str, CIDRBlock]) -> tuple[int, int]:
    """A (b, seed) whose cycle traverses I but not D.

    Walks the DLL versions until I's and D's pinned /24 states sit on
    different cycles, then seeds the host on I's cycle.
    """
    for b in SLAMMER_B_VALUES:
        structure = cycle_structure(SLAMMER_A, b, bits=32)
        state_i = int(
            address_to_state(np.array([blocks["I"].first], dtype=np.uint32))[0]
        )
        state_d = int(
            address_to_state(np.array([blocks["D"].first], dtype=np.uint32))[0]
        )
        if structure.cycle_id_of_state(state_i) != structure.cycle_id_of_state(
            state_d
        ):
            return b, state_i
    raise RuntimeError("every DLL version puts D and I on the same cycle")


def run(
    probes_per_host: int = 20_000_000,
    seed: int = 2005,
) -> Figure3Result:
    """Replay the two illustrative hosts and compute the spectrum."""
    rng = np.random.default_rng(seed)
    blocks = paper_block_positions()

    b_a, seed_a = _biased_host_seed(blocks)
    host_a = _replay_host("Host A", b_a, seed_a, probes_per_host, blocks)

    # Host B: same cycle as Host A but a distant phase — "another
    # unique Slammer source" whose partial walk covers a different
    # stretch, so its per-/24 pattern inside I differs from A's.
    jumper = LCG(SLAMMER_A, b_a, seed=seed_a)
    jump_offset = int(rng.integers(10**8, 10**9))
    seed_b = jumper.jump(jump_offset)
    host_b = _replay_host("Host B", b_a, seed_b, probes_per_host, blocks)

    spectrum = tuple(
        cycle_structure(SLAMMER_A, SLAMMER_B_VALUES[1], bits=32).cycle_lengths
    )
    return Figure3Result(host_a=host_a, host_b=host_b, cycle_lengths=spectrum)


def format_result(result: Figure3Result) -> str:
    """Figure 3 as per-block host totals plus the spectrum summary."""
    lines = ["Per-host Slammer infection attempts by block:"]
    for host in (result.host_a, result.host_b):
        totals = {name: host.total(name) for name in host.counts_by_block}
        lines.append(
            f"  {host.label} (b={host.b_value:#x}, {host.probes:,} probes): "
            f"{totals}"
        )
    lengths = result.cycle_lengths
    lines.append(
        f"  LCG cycle spectrum: {len(lengths)} cycles, "
        f"min={lengths[0]}, max={lengths[-1]}, "
        f"#(length<=1000)={sum(1 for length in lengths if length <= 1000)}"
    )
    lines.append(f"  Host A block bias reproduced? {result.host_a_block_bias}")
    return "\n".join(lines)
