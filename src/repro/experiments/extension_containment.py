"""Extension — can quorum-triggered quarantine contain a hotspot worm?

The paper: "After 11 minutes the worm has already infected more than
50% of the vulnerable population making global containment difficult
or impossible."  This extension closes the loop it implies, running
two outbreaks against an identical quorum-triggered quarantine in a
scale-model Internet (one /8 universe, vulnerable hosts clustered in a
few /16s, random /24 sensors across the universe):

* a **uniform** scanner sweeps the whole universe — the propagation
  model quorum systems were designed around.  Its probes rain on
  sensors everywhere, the quorum fires early, and quarantine caps the
  outbreak;
* the **hotspot** variant (CodeRedII local preference confined to a
  /16 hit-list) sends *every* probe into the hit-list.  Only the few
  sensors inside it can ever alert, the quorum never fires, and the
  worm saturates.

Same vulnerable hosts, same sensors, same quarantine — the only
difference is where the probes go.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.net.cidr import BlockSet, CIDRBlock
from repro.population.model import HostPopulation
from repro.runtime import Trial, TrialRunner
from repro.sensors.deployment import SensorGrid, place_random
from repro.sim.containment import QuorumTriggeredContainment
from repro.sim.engine import EpidemicSimulator, SimulationConfig
from repro.worms.hitlist import HitListCodeRedIIWorm, HitListWorm


@dataclass(frozen=True)
class ContainmentRun:
    """One worm variant's outcome under quarantine."""

    worm_name: str
    containment_triggered_at: Optional[float]
    final_infected_fraction: float
    infected_when_triggered: Optional[float]


@dataclass(frozen=True)
class ContainmentResult:
    """Uniform vs hotspot under identical quarantine."""

    uniform: ContainmentRun
    hotspot: ContainmentRun

    @property
    def hotspots_defeat_containment(self) -> bool:
        """Quarantine caps the uniform worm but not the hotspot one."""
        return (
            self.uniform.containment_triggered_at is not None
            and self.hotspot.final_infected_fraction
            > 2 * self.uniform.final_infected_fraction
        )


def _one_run(
    worm,
    hosts: np.ndarray,
    universe: CIDRBlock,
    num_sensors: int,
    quorum_fraction: float,
    reaction_delay: float,
    scan_rate: float,
    max_time: float,
    seed: int,
) -> ContainmentRun:
    rng = np.random.default_rng(seed)
    population = HostPopulation(hosts)
    grid = SensorGrid(
        place_random(num_sensors, rng, within=BlockSet([universe])),
        alert_threshold=5,
    )
    containment = QuorumTriggeredContainment(
        grid,
        quorum_fraction=quorum_fraction,
        reaction_delay=reaction_delay,
    )
    simulator = EpidemicSimulator(
        worm, population, sensor_grids=[grid], containment=containment
    )
    config = SimulationConfig(
        scan_rate=scan_rate, max_time=max_time, seed_count=10
    )
    result = simulator.run(config, rng)
    infected_at_trigger = None
    if containment.triggered_at is not None:
        infected_at_trigger = result.fraction_infected_at(
            containment.triggered_at
        )
    return ContainmentRun(
        worm_name=worm.name,
        containment_triggered_at=containment.triggered_at,
        final_infected_fraction=result.final_fraction_infected,
        infected_when_triggered=infected_at_trigger,
    )


def run(
    universe_spec: str = "60.0.0.0/8",
    num_target_slash16s: int = 6,
    hosts_per_slash16: int = 700,
    num_sensors: int = 500,
    quorum_fraction: float = 0.05,
    reaction_delay: float = 30.0,
    scan_rate: float = 50.0,
    max_time: float = 1_500.0,
    seed: int = 2008,
    workers: int = 1,
) -> ContainmentResult:
    """Race quarantine against the uniform and hotspot variants.

    The two variants are independent runs from the same explicit seed
    (identical hosts, sensors, quarantine — only the worm differs), so
    they dispatch through the trial runner and can execute in parallel
    with results identical to the serial order.
    """
    rng = np.random.default_rng(seed)
    universe = CIDRBlock.parse(universe_spec)
    second_octets = rng.choice(256, size=num_target_slash16s, replace=False)
    hitlist = BlockSet(
        CIDRBlock(universe.network | (int(octet) << 16), 16)
        for octet in second_octets
    )
    hosts = np.unique(
        hitlist.random_addresses(num_target_slash16s * hosts_per_slash16, rng)
    )

    shared = dict(
        hosts=hosts,
        universe=universe,
        num_sensors=num_sensors,
        quorum_fraction=quorum_fraction,
        reaction_delay=reaction_delay,
        scan_rate=scan_rate,
        max_time=max_time,
        seed=seed,
    )
    uniform_run, hotspot_run = TrialRunner(workers=workers).run(
        [
            Trial(
                func=_one_run,
                kwargs=dict(worm=HitListWorm(BlockSet([universe])), **shared),
                label="containment[uniform]",
            ),
            Trial(
                func=_one_run,
                kwargs=dict(worm=HitListCodeRedIIWorm(hitlist), **shared),
                label="containment[hotspot]",
            ),
        ]
    )
    return ContainmentResult(uniform=uniform_run, hotspot=hotspot_run)


def format_result(result: ContainmentResult) -> str:
    """Both runs side by side."""
    lines = ["Quorum-triggered quarantine vs worm variants:"]
    for label, run_ in (("uniform", result.uniform), ("hotspot", result.hotspot)):
        trigger = (
            f"{run_.containment_triggered_at:.0f}s "
            f"(at {run_.infected_when_triggered:.1%} infected)"
            if run_.containment_triggered_at is not None
            else "never"
        )
        lines.append(
            f"  {label:<8} ({run_.worm_name:<26}) quorum fired: {trigger:<24} "
            f"final infected: {run_.final_infected_fraction:.1%}"
        )
    lines.append(
        f"  hotspots defeat containment? {result.hotspots_defeat_containment}"
    )
    return "\n".join(lines)
